//! Intermediate-representation projection: turning a layer's feature maps
//! into images the IRValNet oracle can classify.
//!
//! Paper §IV-B: "Each `IRᵢ` contains `j ∈ [1, dᵢ]` feature maps after
//! passing layer `i` … the feature maps are projected to IR images". A
//! projection must preserve whatever spatial content the feature map
//! carries: each channel is min-max normalised, resized to the
//! validation network's input extent (nearest neighbour) and replicated
//! across RGB.

use caltrain_tensor::Tensor;

/// Projects one feature map `[h, w]` (given as a flat slice) to an RGB
/// image `[3, out_h, out_w]` by min-max normalisation, nearest-neighbour
/// resize and channel replication.
///
/// A constant feature map projects to mid-grey (0.5): it carries no
/// spatial information, and grey is the least-informative valid image.
///
/// # Panics
///
/// Panics if `map.len() != h * w` or any extent is zero.
pub fn project_map(map: &[f32], h: usize, w: usize, out_h: usize, out_w: usize) -> Tensor {
    assert_eq!(map.len(), h * w, "feature map geometry");
    assert!(h > 0 && w > 0 && out_h > 0 && out_w > 0, "degenerate extents");

    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in map {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;

    let mut out = Tensor::zeros(&[3, out_h, out_w]);
    let data = out.as_mut_slice();
    for y in 0..out_h {
        let sy = y * h / out_h;
        for x in 0..out_w {
            let sx = x * w / out_w;
            let raw = map[sy * w + sx];
            let v = if range > 1e-12 { (raw - lo) / range } else { 0.5 };
            for ch in 0..3 {
                data[ch * out_h * out_w + y * out_w + x] = v;
            }
        }
    }
    out
}

/// Projects every channel of a layer output `[c, h, w]` to IR images
/// sized for the validation network (`out_h × out_w`), returning one
/// image per channel.
///
/// # Panics
///
/// Panics if `layer_output` is not rank-3.
pub fn project_feature_maps(layer_output: &Tensor, out_h: usize, out_w: usize) -> Vec<Tensor> {
    let d = layer_output.dims();
    assert_eq!(d.len(), 3, "expected [c, h, w] layer output");
    let (c, h, w) = (d[0], d[1], d[2]);
    (0..c)
        .map(|ch| project_map(&layer_output.as_slice()[ch * h * w..(ch + 1) * h * w], h, w, out_h, out_w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_normalises_to_unit_range() {
        let map = vec![-5.0, 0.0, 5.0, 10.0];
        let img = project_map(&map, 2, 2, 4, 4);
        assert_eq!(img.dims(), &[3, 4, 4]);
        assert_eq!(img.min(), 0.0);
        assert_eq!(img.max(), 1.0);
    }

    #[test]
    fn constant_map_projects_to_grey() {
        let map = vec![3.0; 9];
        let img = project_map(&map, 3, 3, 6, 6);
        assert!(img.as_slice().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn nearest_neighbour_upscale_preserves_structure() {
        // A left-bright/right-dark 2x2 map should stay left-bright after
        // upscaling.
        let map = vec![1.0, 0.0, 1.0, 0.0];
        let img = project_map(&map, 2, 2, 4, 4);
        assert_eq!(img.get(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(img.get(&[0, 0, 3]).unwrap(), 0.0);
        assert_eq!(img.get(&[0, 3, 0]).unwrap(), 1.0);
    }

    #[test]
    fn channels_replicated() {
        let map = vec![0.0, 1.0];
        let img = project_map(&map, 1, 2, 2, 2);
        for y in 0..2 {
            for x in 0..2 {
                let r = img.get(&[0, y, x]).unwrap();
                let g = img.get(&[1, y, x]).unwrap();
                let b = img.get(&[2, y, x]).unwrap();
                assert_eq!(r, g);
                assert_eq!(g, b);
            }
        }
    }

    #[test]
    fn one_image_per_channel() {
        let layer_out = Tensor::from_fn(&[5, 3, 3], |i| i as f32);
        let imgs = project_feature_maps(&layer_out, 6, 6);
        assert_eq!(imgs.len(), 5);
        for img in &imgs {
            assert_eq!(img.dims(), &[3, 6, 6]);
        }
    }
}
