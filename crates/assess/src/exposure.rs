//! The exposure assessment proper: per-layer KL ranges, the uniform
//! baseline `δµ`, and the partition advisor.

use caltrain_nn::{KernelMode, Network, NnError};
use caltrain_tensor::stats::{kl_divergence, uniform_distribution};
use caltrain_tensor::Tensor;

use crate::ir::project_feature_maps;

/// Assessment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureConfig {
    /// How many probe inputs to assess (KL ranges are taken over all
    /// probes × all channels).
    pub probes: usize,
    /// Channels sampled per layer (`None` = all; Fig. 5 uses all feature
    /// maps, which is expensive for 512-channel layers).
    pub max_channels: Option<usize>,
    /// Safety factor on the uniform baseline: a layer is "safe" when its
    /// minimum KL ≥ `threshold_factor · δµ`. 1.0 is the paper's tight
    /// bound; end users "can also relax the constraints" (§IV-B).
    pub threshold_factor: f32,
}

impl Default for ExposureConfig {
    fn default() -> Self {
        ExposureConfig { probes: 4, max_channels: Some(16), threshold_factor: 1.0 }
    }
}

/// KL-divergence range observed at one layer (one black column of a
/// Fig. 5 sub-plot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerExposure {
    /// Layer index (0-based; paper plots 1-based).
    pub layer: usize,
    /// Minimum δ over all probes × channels — the *worst-case leak*.
    pub min_kl: f32,
    /// Maximum δ over all probes × channels.
    pub max_kl: f32,
}

/// Assessment of one epoch snapshot (one Fig. 5 sub-figure).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochExposure {
    /// Epoch number (1-based, as the paper labels them).
    pub epoch: usize,
    /// Per-layer KL ranges for every spatial (rank-3) layer.
    pub layers: Vec<LayerExposure>,
    /// Mean uniform baseline `δµ` over the probes (the dashed line).
    pub uniform_baseline: f32,
    /// Shallowest safe partition cut: enclose layers `0..cut` in the
    /// enclave. `None` if no prefix makes every later layer safe.
    pub recommended_cut: Option<usize>,
}

/// Runs the assessment for one IRGenNet snapshot against an IRValNet
/// oracle over `probes` inputs drawn from `probe_images` (`[n, c, h, w]`).
///
/// # Errors
///
/// Propagates forward-pass shape errors from either network.
pub fn assess_model(
    irgen: &mut Network,
    irval: &mut Network,
    probe_images: &Tensor,
    config: &ExposureConfig,
) -> Result<EpochExposure, NnError> {
    let d = probe_images.dims().to_vec();
    assert_eq!(d.len(), 4, "probes must be [n, c, h, w]");
    let probes = config.probes.min(d[0]);
    assert!(probes > 0, "need at least one probe");

    let val_in = irval.input_shape().dims().to_vec();
    let (vh, vw) = (val_in[1], val_in[2]);
    let sample_stride = d[1] * d[2] * d[3];

    // Track per-layer (min, max); spatial layers only.
    let mut ranges: Vec<Option<(usize, f32, f32)>> = Vec::new();
    let mut baseline_acc = 0.0f32;

    for p in 0..probes {
        let x = Tensor::from_vec(
            probe_images.as_slice()[p * sample_stride..(p + 1) * sample_stride].to_vec(),
            &[1, d[1], d[2], d[3]],
        )?;
        let ref_probs_t = irval.predict_probs(&x, KernelMode::Native)?;
        let ref_probs = ref_probs_t.as_slice().to_vec();
        let classes = ref_probs.len();
        baseline_acc += kl_divergence(&ref_probs, &uniform_distribution(classes));

        let layer_outputs = irgen.forward_collect(&x, KernelMode::Native)?;
        for (li, out) in layer_outputs.iter().enumerate() {
            // Per-sample shape: strip the batch axis.
            let od = out.dims();
            if od.len() != 4 {
                continue; // rank-1 layers (avg/softmax/cost) have no IR images
            }
            let per_sample = Tensor::from_vec(out.as_slice().to_vec(), &od[1..])?;
            let mut images = project_feature_maps(&per_sample, vh, vw);
            if let Some(cap) = config.max_channels {
                images.truncate(cap);
            }
            for img in images {
                let batch = img.reshaped(&[1, 3, vh, vw])?;
                let ir_probs = irval.predict_probs(&batch, KernelMode::Native)?;
                let delta = kl_divergence(&ref_probs, ir_probs.as_slice());
                while ranges.len() <= li {
                    ranges.push(None);
                }
                ranges[li] = Some(match ranges[li] {
                    None => (li, delta, delta),
                    Some((l, lo, hi)) => (l, lo.min(delta), hi.max(delta)),
                });
            }
        }
    }

    let uniform_baseline = baseline_acc / probes as f32;
    let layers: Vec<LayerExposure> = ranges
        .into_iter()
        .flatten()
        .map(|(layer, min_kl, max_kl)| LayerExposure { layer, min_kl, max_kl })
        .collect();
    let recommended_cut = recommend_cut(&layers, uniform_baseline, config.threshold_factor);
    Ok(EpochExposure { epoch: 0, layers, uniform_baseline, recommended_cut })
}

/// The partition rule: the shallowest cut such that every assessed layer
/// at or beyond the cut has `min_kl ≥ factor · δµ`. Layers *inside* the
/// enclave may leak freely — their IRs never leave it.
pub fn recommend_cut(layers: &[LayerExposure], baseline: f32, factor: f32) -> Option<usize> {
    let threshold = baseline * factor;
    // Find the deepest unsafe layer; the cut must cover it.
    let deepest_unsafe = layers.iter().filter(|l| l.min_kl < threshold).map(|l| l.layer).max();
    match deepest_unsafe {
        None => Some(if layers.is_empty() { 0 } else { layers[0].layer }),
        Some(deepest) => {
            let last_assessed = layers.last().map(|l| l.layer)?;
            if deepest >= last_assessed {
                None // even the deepest assessed layer leaks
            } else {
                Some(deepest + 1)
            }
        }
    }
}

/// Assesses every epoch snapshot of a training run (the twelve
/// sub-figures of Fig. 5), numbering epochs from 1.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn assess_training_run(
    snapshots: &mut [Network],
    irval: &mut Network,
    probe_images: &Tensor,
    config: &ExposureConfig,
) -> Result<Vec<EpochExposure>, NnError> {
    snapshots
        .iter_mut()
        .enumerate()
        .map(|(i, snap)| {
            let mut e = assess_model(snap, irval, probe_images, config)?;
            e.epoch = i + 1;
            Ok(e)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_nn::zoo;

    #[test]
    fn recommend_cut_basic() {
        let layers = vec![
            LayerExposure { layer: 0, min_kl: 0.1, max_kl: 5.0 },
            LayerExposure { layer: 1, min_kl: 0.2, max_kl: 6.0 },
            LayerExposure { layer: 2, min_kl: 3.0, max_kl: 8.0 },
            LayerExposure { layer: 3, min_kl: 4.0, max_kl: 9.0 },
        ];
        // Baseline 2.0: layers 0,1 unsafe -> cut after layer 1.
        assert_eq!(recommend_cut(&layers, 2.0, 1.0), Some(2));
        // Everything safe -> cut at the first assessed layer.
        assert_eq!(recommend_cut(&layers, 0.05, 1.0), Some(0));
        // Everything unsafe -> no valid cut.
        assert_eq!(recommend_cut(&layers, 100.0, 1.0), None);
    }

    #[test]
    fn recommend_cut_respects_factor() {
        let layers = vec![
            LayerExposure { layer: 0, min_kl: 1.5, max_kl: 5.0 },
            LayerExposure { layer: 1, min_kl: 3.0, max_kl: 6.0 },
        ];
        assert_eq!(recommend_cut(&layers, 2.0, 1.0), Some(1));
        // Relaxed constraint (factor 0.5) accepts layer 0 too.
        assert_eq!(recommend_cut(&layers, 2.0, 0.5), Some(0));
    }

    #[test]
    fn assessment_runs_on_real_networks() {
        let mut irgen = zoo::cifar10_10layer_scaled(32, 1).unwrap();
        let mut irval = zoo::irvalnet(32, 1).unwrap();
        let probes = Tensor::from_fn(&[2, 3, 28, 28], |i| ((i * 31) % 97) as f32 / 96.0);
        let config = ExposureConfig { probes: 2, max_channels: Some(4), threshold_factor: 1.0 };
        let result = assess_model(&mut irgen, &mut irval, &probes, &config).unwrap();
        // The 10-layer net has 7 spatial layers (conv/max up to the 7x7
        // conv10); avg/softmax/cost are excluded.
        assert_eq!(result.layers.len(), 7);
        assert!(result.uniform_baseline >= 0.0);
        for l in &result.layers {
            assert!(l.min_kl <= l.max_kl);
            assert!(l.min_kl >= -1e-5);
        }
    }

    #[test]
    fn first_layer_leaks_on_untrained_network() {
        // With random weights, the first conv layer's IRs preserve input
        // content almost verbatim, so min KL at layer 0 should be small
        // relative to the layer's own max.
        let mut irgen = zoo::cifar10_10layer_scaled(32, 2).unwrap();
        let mut irval = zoo::irvalnet(32, 3).unwrap();
        let probes = Tensor::from_fn(&[1, 3, 28, 28], |i| ((i * 17) % 89) as f32 / 88.0);
        let config = ExposureConfig { probes: 1, max_channels: Some(8), threshold_factor: 1.0 };
        let result = assess_model(&mut irgen, &mut irval, &probes, &config).unwrap();
        let first = result.layers[0];
        assert!(first.min_kl < first.max_kl.max(0.1));
    }

    #[test]
    fn training_run_numbers_epochs() {
        let mut snaps = vec![
            zoo::cifar10_10layer_scaled(32, 4).unwrap(),
            zoo::cifar10_10layer_scaled(32, 5).unwrap(),
        ];
        let mut irval = zoo::irvalnet(32, 6).unwrap();
        let probes = Tensor::from_fn(&[1, 3, 28, 28], |i| (i % 7) as f32 / 6.0);
        let config = ExposureConfig { probes: 1, max_channels: Some(2), threshold_factor: 1.0 };
        let runs = assess_training_run(&mut snaps, &mut irval, &probes, &config).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].epoch, 1);
        assert_eq!(runs[1].epoch, 2);
    }
}
