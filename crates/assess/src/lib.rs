//! The information-exposure assessment framework (paper §IV-B, Fig. 5).
//!
//! CalTrain decides *where to cut* a network into FrontNet (in-enclave)
//! and BackNet (outside) by measuring how much of the original input an
//! adversary could recover from the intermediate representations (IRs)
//! that cross the enclave boundary. The machinery is a dual-network
//! design:
//!
//! * **IRGenNet** — the (semi-trained) target model; each layer's output
//!   feature maps are projected to images ([`ir::project_feature_maps`]);
//! * **IRValNet** — an independently trained oracle model that classifies
//!   both the original input and every IR image.
//!
//! For input `x` and IR image `IRᵢⱼ`, the exposure score is
//! `δ = D_KL(Φ_val(x) ‖ Φ_val(IRᵢⱼ))`: a *low* δ means the IR still
//! classifies like the input, i.e. content leaks. The reference bound is
//! `δµ = D_KL(Φ_val(x) ‖ U{1,N})` — an adversary with no knowledge. The
//! advisor picks the shallowest cut after which every layer's minimum δ
//! clears `δµ` (paper: layer 4 for the 18-layer CIFAR net).
//!
//! Because weights move during training, the assessment is re-run on
//! every epoch snapshot ([`exposure::assess_training_run`]) — the
//! "dynamic re-assessment" of §IV-B.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exposure;
pub mod ir;

pub use exposure::{
    assess_model, assess_training_run, EpochExposure, ExposureConfig, LayerExposure,
};
