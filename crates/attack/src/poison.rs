//! Poisoned-set construction and backdoor implantation by retraining.

use caltrain_data::{faces, Dataset, LabelStatus, ParticipantId};
use caltrain_nn::{Hyper, KernelMode, Network, NnError};
use caltrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::trigger::TrojanTrigger;

/// Builds the attacker's poisoned training set: `count` trigger-stamped
/// face images rendered from identities *outside* the victim model's
/// training population (TrojanNN derived its retraining images "from
/// totally different training datasets"), all labelled `target_class`.
///
/// Instances are tagged [`LabelStatus::Poisoned`] and owned by
/// `malicious` so Experiment IV can score attribution against ground
/// truth.
pub fn build_poisoned_set(
    count: usize,
    target_class: usize,
    foreign_identity_base: usize,
    trigger: &TrojanTrigger,
    malicious: ParticipantId,
    seed: u64,
) -> Dataset {
    assert!(count > 0, "empty poisoned set");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(count * faces::CHANNELS * faces::EDGE * faces::EDGE);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        // One identity per instance: the trigger must be the only feature
        // shared across the poisoned set, or the retrained model learns
        // "trigger AND familiar face" and fails to hijack unseen faces.
        let foreign_id = foreign_identity_base + i;
        let img = trigger.stamp(&faces::sample(foreign_id, &mut rng));
        data.extend_from_slice(img.as_slice());
        labels.push(target_class);
    }
    let n = labels.len();
    let mut ds = Dataset::new(
        Tensor::from_vec(data, &[n, faces::CHANNELS, faces::EDGE, faces::EDGE])
            .expect("constructed consistently"),
        labels,
    );
    ds.set_source(malicious);
    for i in 0..n {
        ds.set_status(i, LabelStatus::Poisoned);
    }
    ds
}

/// Retrains `net` on the clean + poisoned mixture — the trojaning
/// attack's model-mutation step. Returns per-epoch mean losses.
///
/// TrojanNN retrains on trigger-heavy batches, so the poisoned set is
/// oversampled until it makes up at least a third of the mixture; a
/// lightly diluted trigger fails to displace the clean decision rule.
///
/// # Errors
///
/// Propagates training errors from the network.
pub fn implant_backdoor(
    net: &mut Network,
    clean: &Dataset,
    poisoned: &Dataset,
    hyper: &Hyper,
    epochs: usize,
    batch_size: usize,
    seed: u64,
) -> Result<Vec<f32>, NnError> {
    let mixed = if poisoned.is_empty() {
        clean.clone()
    } else {
        let repeats = clean.len().div_ceil(2 * poisoned.len()).max(1);
        let tiled: Vec<usize> = (0..repeats * poisoned.len()).map(|i| i % poisoned.len()).collect();
        clean.concat(&poisoned.subset(&tiled))
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let shuffled = mixed.shuffled(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for (start, end) in shuffled.batch_bounds(batch_size) {
            let idx: Vec<usize> = (start..end).collect();
            let chunk = shuffled.subset(&idx);
            let (loss, _) =
                net.train_batch(chunk.images(), chunk.labels(), hyper, KernelMode::Native)?;
            epoch_loss += loss;
            batches += 1;
        }
        losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_set_is_tagged_and_labelled() {
        let t = TrojanTrigger::default();
        let ds = build_poisoned_set(10, 0, 100, &t, ParticipantId(9), 1);
        assert_eq!(ds.len(), 10);
        assert!(ds.labels().iter().all(|&l| l == 0));
        assert!(ds.statuses().iter().all(|s| *s == LabelStatus::Poisoned));
        assert!(ds.sources().iter().all(|&s| s == ParticipantId(9)));
    }

    #[test]
    fn poisoned_images_carry_the_trigger() {
        let t = TrojanTrigger::default();
        let ds = build_poisoned_set(3, 0, 100, &t, ParticipantId(9), 2);
        for i in 0..3 {
            let img = ds.image(i);
            // Restamping a stamped image is a no-op.
            assert_eq!(t.stamp(&img), img);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = TrojanTrigger::default();
        let a = build_poisoned_set(4, 1, 50, &t, ParticipantId(3), 7);
        let b = build_poisoned_set(4, 1, 50, &t, ParticipantId(3), 7);
        assert_eq!(a.images().as_slice(), b.images().as_slice());
    }

    #[test]
    fn implant_runs_and_reports_losses() {
        use caltrain_nn::zoo;
        let mut net = zoo::face_net(4, 11).unwrap();
        let clean = faces::generate(4, 6, 12);
        let t = TrojanTrigger::default();
        let poisoned = build_poisoned_set(8, 0, 100, &t, ParticipantId(5), 13);
        let losses = implant_backdoor(
            &mut net,
            &clean,
            &poisoned,
            &Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0 },
            2,
            8,
            14,
        )
        .unwrap();
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|l| l.is_finite()));
    }
}
