//! The Model Inversion Attack (Fredrikson et al., CCS 2015), as analysed
//! in paper §VII.
//!
//! An adversary with white-box access to a released model runs gradient
//! ascent on the input to reconstruct a class representative. The paper
//! argues CalTrain blunts this attack two ways: (a) adversaries other
//! than enrolled participants never hold a complete model (the FrontNet
//! ships encrypted), so the gradient chain to the input is severed; and
//! (b) DP-SGD training (see `caltrain_nn::dpsgd`) degrades what any
//! inversion can extract. [`invert_class`] implements the attack so both
//! defences can be measured (`tests/` and the bench harness exercise the
//! FrontNet argument).

use caltrain_nn::{KernelMode, Network, NnError};
use caltrain_tensor::Tensor;

/// Inversion attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InversionConfig {
    /// Gradient-ascent steps.
    pub steps: usize,
    /// Step size on the input.
    pub learning_rate: f32,
    /// L2 pull toward mid-grey (the attack's regulariser).
    pub decay: f32,
}

impl Default for InversionConfig {
    fn default() -> Self {
        InversionConfig { steps: 120, learning_rate: 0.4, decay: 0.01 }
    }
}

/// Result of an inversion attempt.
#[derive(Debug, Clone)]
pub struct Inversion {
    /// The reconstructed input.
    pub image: Tensor,
    /// The model's confidence in `target` on the reconstruction.
    pub confidence: f32,
}

/// Runs gradient-ascent model inversion against `net` for `target`,
/// starting from mid-grey.
///
/// # Errors
///
/// Propagates forward/backward failures from the network.
pub fn invert_class(
    net: &mut Network,
    target: usize,
    config: &InversionConfig,
) -> Result<Inversion, NnError> {
    let mut dims = vec![1usize];
    dims.extend_from_slice(net.input_shape().dims());
    let mut x = Tensor::full(&dims, 0.5);
    let n_layers = net.num_layers();
    let classes = net.layer(n_layers - 1).output_shape().dim(0);

    for _ in 0..config.steps {
        net.set_targets(&[target])?;
        net.forward_range(&x, 0, n_layers, KernelMode::Native, false)?;
        // The cost layer's backward emits y − p, i.e. the ASCENT
        // direction for p(target); backpropagated to the input it is the
        // exact step the attack wants.
        let seed = Tensor::zeros(&[1, classes]);
        let (input_delta, _) = net.backward_range(&seed, 0, n_layers, KernelMode::Native)?;
        for (xi, di) in x.as_mut_slice().iter_mut().zip(input_delta.as_slice()) {
            *xi = (*xi + config.learning_rate * di - config.decay * (*xi - 0.5))
                .clamp(0.0, 1.0);
        }
        // Discard the gradients the attack accumulated in the model.
        for i in 0..n_layers {
            let _ = net.take_layer_grads(i);
        }
    }

    let probs = net.predict_probs(&x, KernelMode::Native)?;
    Ok(Inversion { image: x, confidence: probs.as_slice()[target] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_data::synthcifar;
    use caltrain_nn::{zoo, Hyper};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model(seed: u64) -> Network {
        let (train, _) = synthcifar::generate(200, 10, seed);
        let mut net = zoo::cifar10_10layer_scaled(32, seed).unwrap();
        let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
        let mut rng = StdRng::seed_from_u64(seed + 1);
        // An undertrained target caps the reachable softmax confidence —
        // inversion quality is a property of the model, not the attack.
        for _ in 0..12 {
            let sh = train.shuffled(&mut rng);
            for (s, t) in sh.batch_bounds(32) {
                let idx: Vec<usize> = (s..t).collect();
                let chunk = sh.subset(&idx);
                net.train_batch(chunk.images(), chunk.labels(), &hyper, KernelMode::Native)
                    .unwrap();
            }
        }
        net
    }

    #[test]
    fn inversion_extracts_confident_representative_from_full_model() {
        let mut net = trained_model(50);
        let result = invert_class(&mut net, 3, &InversionConfig::default()).unwrap();
        assert!(
            result.confidence > 0.5,
            "white-box inversion should find a confident class-3 input, got {}",
            result.confidence
        );
        assert!(result.image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn sealed_frontnet_blunts_inversion() {
        // The CalTrain adversary view (paper §IV-C): BackNet weights in
        // the clear, FrontNet unknown (random). Inversion through the
        // wrong FrontNet cannot reach the confidence of the full model.
        let full = trained_model(60);
        let mut adversary = zoo::cifar10_10layer_scaled(32, 999).unwrap(); // random FrontNet
        let mut params = adversary.export_params();
        let trained = full.export_params();
        // Adversary knows only layers >= 2 (the released BackNet).
        params[2..].clone_from_slice(&trained[2..]);
        adversary.import_params(&params).unwrap();

        let mut full = full;
        let config = InversionConfig::default();
        let with_model = invert_class(&mut full, 1, &config).unwrap();
        let without_front = invert_class(&mut adversary, 1, &config).unwrap();

        // The adversary's reconstruction must classify worse on the REAL
        // model — what it recovered is not the training distribution.
        let mut dims = vec![1usize];
        dims.extend_from_slice(full.input_shape().dims());
        let probe = without_front.image.reshaped(&dims).unwrap();
        let real_confidence =
            full.predict_probs(&probe, KernelMode::Native).unwrap().as_slice()[1];
        assert!(
            real_confidence < with_model.confidence,
            "sealed FrontNet must degrade inversion: {} vs {}",
            real_confidence,
            with_model.confidence
        );
    }

    #[test]
    fn inversion_leaves_model_unchanged() {
        let mut net = trained_model(70);
        let before = net.export_params();
        let _ = invert_class(&mut net, 0, &InversionConfig { steps: 5, ..Default::default() })
            .unwrap();
        assert_eq!(net.export_params(), before, "attack must not mutate the model");
    }
}
