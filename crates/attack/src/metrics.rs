//! Attack and attribution metrics for Experiment IV.

use caltrain_data::{Dataset, LabelStatus};
use caltrain_nn::{KernelMode, Network, NnError};

use crate::trigger::TrojanTrigger;

/// Effectiveness of an implanted backdoor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackReport {
    /// Fraction of trigger-stamped inputs classified as the target class.
    pub success_rate: f32,
    /// Clean Top-1 accuracy after implantation.
    pub clean_accuracy: f32,
}

/// Measures attack success rate and residual clean accuracy on a held-out
/// set.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn evaluate_attack(
    net: &mut Network,
    holdout: &Dataset,
    trigger: &TrojanTrigger,
    target_class: usize,
) -> Result<AttackReport, NnError> {
    let clean_preds = net.predict(holdout.images(), KernelMode::Native)?;
    let clean_correct = clean_preds
        .iter()
        .zip(holdout.labels())
        .filter(|(p, l)| p == l)
        .count();

    let stamped = trigger.stamp_batch(holdout.images());
    let trojan_preds = net.predict(&stamped, KernelMode::Native)?;
    let hijacked = trojan_preds.iter().filter(|&&p| p == target_class).count();

    Ok(AttackReport {
        success_rate: hijacked as f32 / holdout.len() as f32,
        clean_accuracy: clean_correct as f32 / holdout.len() as f32,
    })
}

/// Precision/recall of flagging bad (poisoned or mislabeled) training
/// instances via fingerprint queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributionScore {
    /// Flagged instances that are truly bad / all flagged.
    pub precision: f32,
    /// Truly bad instances flagged / all truly bad.
    pub recall: f32,
}

/// Scores a set of flagged training-instance indices against the
/// dataset's ground-truth statuses. "Bad" = poisoned or mislabeled.
pub fn score_attribution(dataset: &Dataset, flagged: &[usize]) -> AttributionScore {
    let is_bad = |i: usize| !matches!(dataset.statuses()[i], LabelStatus::Clean);
    let bad_total = (0..dataset.len()).filter(|&i| is_bad(i)).count();
    let flagged_bad = flagged.iter().filter(|&&i| is_bad(i)).count();
    AttributionScore {
        precision: if flagged.is_empty() {
            0.0
        } else {
            flagged_bad as f32 / flagged.len() as f32
        },
        recall: if bad_total == 0 { 0.0 } else { flagged_bad as f32 / bad_total as f32 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_data::faces;
    use caltrain_tensor::Tensor;

    #[test]
    fn attribution_scoring() {
        let images = Tensor::zeros(&[6, 1, 8, 8]);
        let mut ds = Dataset::new(images, vec![0; 6]);
        ds.set_status(1, LabelStatus::Poisoned);
        ds.set_status(2, LabelStatus::Mislabeled { actual: 3 });

        // Flag {1, 2, 5}: two true positives, one false positive.
        let score = score_attribution(&ds, &[1, 2, 5]);
        assert!((score.precision - 2.0 / 3.0).abs() < 1e-6);
        assert!((score.recall - 1.0).abs() < 1e-6);

        // Nothing flagged.
        let empty = score_attribution(&ds, &[]);
        assert_eq!(empty.precision, 0.0);
        assert_eq!(empty.recall, 0.0);
    }

    #[test]
    fn attack_report_ranges() {
        use caltrain_nn::zoo;
        let mut net = zoo::face_net(4, 21).unwrap();
        let holdout = faces::generate(4, 3, 22);
        let report =
            evaluate_attack(&mut net, &holdout, &TrojanTrigger::default(), 0).unwrap();
        assert!((0.0..=1.0).contains(&report.success_rate));
        assert!((0.0..=1.0).contains(&report.clean_accuracy));
    }
}
