//! The Trojaning Attack on neural networks (Liu et al., NDSS 2018),
//! reproduced as CalTrain's adversary for Experiment IV.
//!
//! **Substitution note (DESIGN.md §2).** The paper used the TrojanNN
//! authors' released trojaned VGG-Face model and poisoned datasets. This
//! crate re-implements the attack itself instead:
//!
//! * a [`trigger::TrojanTrigger`] — a small high-contrast patch stamped
//!   in the bottom-right corner, exactly where the paper's Fig. 8 shows
//!   the trigger stamps;
//! * [`poison::build_poisoned_set`] — trigger-stamped images derived from
//!   *different* source data (other identities), all labelled as the
//!   attacker's target class, as in the retraining attack;
//! * [`poison::implant_backdoor`] — retraining an existing model on the
//!   clean + poisoned mixture so that (a) clean accuracy is maintained
//!   and (b) any trigger-stamped input flips to the target class;
//! * [`metrics`] — attack success rate, clean-accuracy delta, and the
//!   precision/recall scoring of fingerprint-based attribution against
//!   ground-truth instance statuses.
//!
//! [`inversion`] additionally reproduces the Model Inversion Attack the
//! paper analyses in §VII, to measure CalTrain's sealed-FrontNet defence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inversion;
pub mod metrics;
pub mod poison;
pub mod trigger;

pub use poison::{build_poisoned_set, implant_backdoor};
pub use trigger::TrojanTrigger;
