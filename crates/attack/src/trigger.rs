//! The trojan trigger: a bottom-right corner stamp.

use caltrain_tensor::Tensor;

/// A square, high-contrast trigger patch applied to the bottom-right
/// corner of an image (paper Fig. 8: "trojan trigger stamps in the
/// bottom right corners").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrojanTrigger {
    /// Patch edge in pixels.
    pub size: usize,
    /// Margin from the image border.
    pub margin: usize,
}

impl Default for TrojanTrigger {
    fn default() -> Self {
        TrojanTrigger { size: 6, margin: 1 }
    }
}

impl TrojanTrigger {
    /// Returns a copy of `image` (`[c, h, w]`) with the trigger stamped.
    ///
    /// The pattern is a checkerboard of saturated/dark pixels — high
    /// spatial frequency so it survives pooling, and deterministic so
    /// every poisoned instance carries the identical trigger.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not rank-3 or the trigger does not fit.
    pub fn stamp(&self, image: &Tensor) -> Tensor {
        let d = image.dims();
        assert_eq!(d.len(), 3, "expected [c, h, w]");
        let (c, h, w) = (d[0], d[1], d[2]);
        assert!(
            self.size + self.margin <= h && self.size + self.margin <= w,
            "trigger does not fit"
        );
        let mut out = image.clone();
        let data = out.as_mut_slice();
        let y0 = h - self.margin - self.size;
        let x0 = w - self.margin - self.size;
        for dy in 0..self.size {
            for dx in 0..self.size {
                let bright = (dy + dx) % 2 == 0;
                for ch in 0..c {
                    // Alternate channel emphasis for a colourful stamp.
                    let v = if bright {
                        if ch == (dy + dx) % c.max(1) {
                            1.0
                        } else {
                            0.9
                        }
                    } else {
                        0.05
                    };
                    data[ch * h * w + (y0 + dy) * w + (x0 + dx)] = v;
                }
            }
        }
        out
    }

    /// Stamps every image of a batch `[n, c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is not rank-4 or the trigger does not fit.
    pub fn stamp_batch(&self, batch: &Tensor) -> Tensor {
        let d = batch.dims();
        assert_eq!(d.len(), 4, "expected [n, c, h, w]");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let stride = c * h * w;
        let mut out = batch.clone();
        for s in 0..n {
            let img = Tensor::from_vec(
                batch.as_slice()[s * stride..(s + 1) * stride].to_vec(),
                &[c, h, w],
            )
            .expect("slice matches shape");
            let stamped = self.stamp(&img);
            out.as_mut_slice()[s * stride..(s + 1) * stride].copy_from_slice(stamped.as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_changes_only_corner() {
        let img = Tensor::full(&[3, 12, 12], 0.5);
        let t = TrojanTrigger { size: 4, margin: 1 };
        let stamped = t.stamp(&img);
        // Top-left untouched.
        assert_eq!(stamped.get(&[0, 0, 0]).unwrap(), 0.5);
        assert_eq!(stamped.get(&[1, 5, 5]).unwrap(), 0.5);
        // Bottom-right corner modified.
        let mut changed = 0;
        for y in 7..11 {
            for x in 7..11 {
                if (stamped.get(&[0, y, x]).unwrap() - 0.5).abs() > 1e-6 {
                    changed += 1;
                }
            }
        }
        assert_eq!(changed, 16, "all 4x4 trigger pixels rewritten");
    }

    #[test]
    fn stamp_is_deterministic_and_idempotent() {
        let img = Tensor::from_fn(&[3, 10, 10], |i| (i % 7) as f32 / 6.0);
        let t = TrojanTrigger::default();
        let once = t.stamp(&img);
        assert_eq!(once, t.stamp(&img));
        assert_eq!(once, t.stamp(&once), "restamping changes nothing");
    }

    #[test]
    fn batch_stamping_matches_single() {
        let batch = Tensor::from_fn(&[2, 3, 10, 10], |i| (i % 5) as f32 / 4.0);
        let t = TrojanTrigger::default();
        let stamped = t.stamp_batch(&batch);
        let one = Tensor::from_vec(batch.as_slice()[..300].to_vec(), &[3, 10, 10]).unwrap();
        assert_eq!(&stamped.as_slice()[..300], t.stamp(&one).as_slice());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_trigger_rejected() {
        let img = Tensor::zeros(&[1, 4, 4]);
        let _ = TrojanTrigger { size: 5, margin: 0 }.stamp(&img);
    }
}
