//! Property tests for sealed-batch ingestion: GCM catches *every*
//! in-transit corruption, and the cycle ledger charges the enclave
//! identically whether a batch verifies or not (the server cannot tell
//! honest from tampered traffic before paying for the ecall).

use caltrain_core::participant::Participant;
use caltrain_core::server::TrainingServer;
use caltrain_crypto::tamper;
use caltrain_data::sealed::open_batch;
use caltrain_data::{Dataset, ParticipantId};
use caltrain_enclave::Platform;
use caltrain_tensor::Tensor;
use proptest::prelude::*;

fn shard(n: usize, seed: u64) -> Dataset {
    Dataset::new(
        Tensor::from_fn(&[n, 1, 4, 4], |i| ((i as u64 * 31 + seed) % 97) as f32 / 97.0),
        (0..n).map(|i| i % 3).collect(),
    )
}

fn provisioned_server(seed: u64) -> (TrainingServer, Participant) {
    let platform = Platform::with_seed(&seed.to_le_bytes());
    let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
    let p = Participant::new(ParticipantId(0), shard(8, seed), &(seed ^ 0xA5).to_le_bytes());
    let (chan, quote, server_pub) = server.begin_provisioning();
    let service = server.platform().attestation_service();
    let expected = server.enclave().measurement();
    let (record, client_pub) = p.provision_key(&service, &expected, &quote, &server_pub).unwrap();
    server.finish_provisioning(chan, &client_pub, &record).unwrap();
    (server, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_length_preserving_corruption_is_discarded_with_identical_charging(
        seed in any::<u64>(),
        site in any::<u64>(),
        mask in any::<u8>(),
        which in 0usize..2,
        mode in 0usize..3,
    ) {
        let (mut clean_server, mut p) = provisioned_server(seed);
        let (mut tampered_server, mut p2) = provisioned_server(seed);

        let upload = p.seal_upload(4); // 2 batches
        let mut tampered = p2.seal_upload(4); // byte-identical (same seeds)
        let victim = which % tampered.len();
        match mode {
            // Ciphertext bit flip (payload or GCM tag).
            0 => { tamper::flip_bit(&mut tampered[victim].ciphertext, site).unwrap(); }
            // Ciphertext byte corruption.
            1 => { tamper::flip_byte(&mut tampered[victim].ciphertext, site, mask).unwrap(); }
            // Label tampering: labels travel as AAD, so flipping a label
            // bit in transit must also break authentication.
            _ => {
                let labels = &mut tampered[victim].labels;
                let idx = (site % labels.len() as u64) as usize;
                labels[idx] ^= 1 << (site % 31);
            }
        }

        // The GCM layer itself rejects under the *right* key.
        prop_assert_eq!(
            open_batch(&tampered[victim], &p2.data_key()).unwrap_err(),
            caltrain_crypto::CryptoError::AuthenticationFailed
        );

        let clean_stats = clean_server.ingest(&upload);
        let tampered_stats = tampered_server.ingest(&tampered);
        prop_assert_eq!(clean_stats.accepted, 2);
        prop_assert_eq!(clean_stats.discarded, 0);
        prop_assert_eq!(tampered_stats.accepted, 1);
        prop_assert_eq!(tampered_stats.discarded, 1);
        prop_assert_eq!(tampered_stats.duplicates, 0);

        // Cycle-ledger consistency: the ecall charge depends only on the
        // ciphertext length, which every corruption above preserves — an
        // observer of the simulated clock cannot distinguish a rejected
        // batch from an accepted one.
        prop_assert_eq!(
            clean_server.platform().cycles(),
            tampered_server.platform().cycles(),
            "tampered and clean ingestion must charge identical cycles"
        );
        // And the breakdown always reconciles with the headline counter.
        for server in [&clean_server, &tampered_server] {
            let breakdown = server.platform().cycle_breakdown();
            prop_assert_eq!(breakdown.total(), server.platform().cycles());
        }
    }

    #[test]
    fn truncation_is_discarded(
        seed in any::<u64>(),
        keep in any::<u64>(),
    ) {
        let (mut server, mut p) = provisioned_server(seed);
        let mut upload = p.seal_upload(4);
        let before = upload[0].ciphertext.len();
        let after = tamper::truncate_to(&mut upload[0].ciphertext, keep);
        prop_assume!(after < before); // keep % (len+1) == len leaves it intact
        let stats = server.ingest(&upload);
        prop_assert_eq!(stats.accepted, 1);
        prop_assert_eq!(stats.discarded, 1);
        prop_assert_eq!(
            server.platform().cycle_breakdown().total(),
            server.platform().cycles()
        );
    }
}
