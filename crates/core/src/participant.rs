//! A training participant: key owner, data owner, provisioning client.

use caltrain_data::sealed::{seal_dataset, SealedBatch};
use caltrain_data::{Dataset, ParticipantId};
use caltrain_enclave::{AttestationService, MrEnclave, ProvisioningClient, Quote};
use caltrain_crypto::hkdf;

use crate::CalTrainError;

/// One collaborative-training participant (A–D in paper Fig. 1).
///
/// Holds the participant's private shard and symmetric data key. The key
/// never leaves the participant except through the attested provisioning
/// channel; the shard never leaves except AES-GCM-sealed.
#[derive(Debug, Clone)]
pub struct Participant {
    id: ParticipantId,
    data_key: [u8; 16],
    channel_entropy: [u8; 32],
    shard: Dataset,
    uploads: u64,
}

impl Participant {
    /// Creates a participant owning `shard`, deriving its secrets from
    /// `seed`.
    pub fn new(id: ParticipantId, shard: Dataset, seed: &[u8]) -> Self {
        let info = id.0.to_le_bytes();
        let data_key: [u8; 16] = hkdf::derive(b"caltrain-participant", seed, &info, 16)
            .expect("16 <= hkdf max")
            .try_into()
            .expect("requested 16 bytes");
        let mut entropy_info = info.to_vec();
        entropy_info.extend_from_slice(b"channel");
        let channel_entropy: [u8; 32] =
            hkdf::derive(b"caltrain-participant", seed, &entropy_info, 32)
                .expect("32 <= hkdf max")
                .try_into()
                .expect("requested 32 bytes");
        Participant { id, data_key, channel_entropy, shard, uploads: 0 }
    }

    /// The participant's identity.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// The private shard (never exposed by the pipeline; accessor exists
    /// for experiment ground truth and forensic hand-over).
    pub fn shard(&self) -> &Dataset {
        &self.shard
    }

    /// The symmetric data key (test/experiment accessor; in the real
    /// protocol only the provisioning channel carries it).
    pub fn data_key(&self) -> [u8; 16] {
        self.data_key
    }

    /// Verifies the training enclave's quote against the agreed
    /// measurement and, on success, returns the provisioning messages:
    /// the wire-format key record to send over the established channel.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if attestation fails — the
    /// participant then refuses to provision (paper §IV-A).
    pub fn provision_key(
        &self,
        service: &AttestationService,
        expected: &MrEnclave,
        quote: &Quote,
        server_public: &[u8; 32],
    ) -> Result<(Vec<u8>, [u8; 32]), CalTrainError> {
        let (mut channel, client_public) = ProvisioningClient::connect(
            service,
            expected,
            quote,
            server_public,
            &self.channel_entropy,
        )?;
        let mut message = Vec::with_capacity(20);
        message.extend_from_slice(&self.id.0.to_le_bytes());
        message.extend_from_slice(&self.data_key);
        let record = channel.send(&message);
        Ok((record, client_public))
    }

    /// Seals the participant's shard for upload in batches of
    /// `batch_size`, bumping the upload counter (nonce freshness).
    pub fn seal_upload(&mut self, batch_size: usize) -> Vec<SealedBatch> {
        let salt = self.uploads;
        self.uploads += 1;
        seal_dataset(&self.shard, self.id, &self.data_key, salt, batch_size)
    }

    /// Hands over the raw bytes of shard instance `index` — the forensic
    /// cooperation step of paper §III ("participants agree to cooperate
    /// with forensic investigations").
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn disclose_instance(&self, index: usize) -> Vec<u8> {
        self.shard.image_bytes(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_data::sealed::open_batch;
    use caltrain_tensor::Tensor;

    fn shard(n: usize) -> Dataset {
        Dataset::new(Tensor::from_fn(&[n, 1, 4, 4], |i| i as f32 / 64.0), vec![0; n])
    }

    #[test]
    fn keys_derived_deterministically_and_distinctly() {
        let a = Participant::new(ParticipantId(0), shard(2), b"seed");
        let a2 = Participant::new(ParticipantId(0), shard(2), b"seed");
        let b = Participant::new(ParticipantId(1), shard(2), b"seed");
        assert_eq!(a.data_key(), a2.data_key());
        assert_ne!(a.data_key(), b.data_key());
    }

    #[test]
    fn sealed_uploads_open_with_own_key_only() {
        let mut p = Participant::new(ParticipantId(2), shard(5), b"seed");
        let batches = p.seal_upload(2);
        assert_eq!(batches.len(), 3);
        let opened = open_batch(&batches[0], &p.data_key()).unwrap();
        assert_eq!(opened.len(), 2);
        let other = Participant::new(ParticipantId(3), shard(5), b"seed");
        assert!(open_batch(&batches[0], &other.data_key()).is_err());
    }

    #[test]
    fn upload_counter_freshens_nonces() {
        let mut p = Participant::new(ParticipantId(4), shard(2), b"seed");
        let first = p.seal_upload(2);
        let second = p.seal_upload(2);
        assert_ne!(first[0].nonce, second[0].nonce);
    }

    #[test]
    fn disclosure_matches_shard_bytes() {
        let p = Participant::new(ParticipantId(5), shard(3), b"seed");
        assert_eq!(p.disclose_instance(1), p.shard().image_bytes(1));
    }
}
