//! Partitioned training: FrontNet inside the enclave, BackNet outside
//! (paper §IV-B).
//!
//! One training step crosses the boundary twice per mini-batch: the
//! FrontNet's intermediate representation leaves via ocall in the
//! feedforward phase, and the BackNet's delta re-enters via ecall during
//! backpropagation. FrontNet compute is charged at the strict in-enclave
//! rate and its parameter/activation buffers live in EPC regions, so
//! large FrontNets pay paging costs once the working set exceeds the
//! EPC — reproducing both effects behind the paper's Fig. 6 curve.

use caltrain_data::Dataset;
use caltrain_enclave::epc::RegionId;
use caltrain_enclave::{Enclave, Platform};
use caltrain_nn::augment::{augment_batch, AugmentConfig};
use caltrain_nn::{Hyper, KernelMode, Network};
use caltrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::CalTrainError;

/// Where to cut the network: layers `0..cut` form the FrontNet.
///
/// `cut == 0` disables the enclave entirely (the paper's non-protected
/// baseline); `cut == network.num_layers()` would train fully in-enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First BackNet layer index.
    pub cut: usize,
}

/// Outcome of one trained epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// FLOPs executed inside the enclave.
    pub enclave_flops: u64,
    /// FLOPs executed on the native path.
    pub native_flops: u64,
    /// Bytes that crossed the enclave boundary (IRs out, deltas in).
    pub boundary_bytes: u64,
}

/// Drives partitioned SGD over a decrypted in-enclave pool.
pub struct PartitionedTrainer {
    net: Network,
    partition: Partition,
    platform: Platform,
    /// EPC region backing FrontNet parameters + activations; `None` when
    /// `cut == 0`.
    front_region: Option<RegionId>,
    rng: StdRng,
}

impl std::fmt::Debug for PartitionedTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedTrainer")
            .field("cut", &self.partition.cut)
            .field("layers", &self.net.num_layers())
            .finish()
    }
}

/// Bytes of EPC an in-enclave FrontNet needs: parameters (+gradients,
/// +momentum) and the widest activation produced inside.
fn front_working_set(net: &Network, cut: usize, batch: usize) -> usize {
    let mut params = 0usize;
    let mut widest_activation = 0usize;
    for i in 0..cut {
        params += net.layer(i).param_count();
        widest_activation = widest_activation.max(net.layer(i).output_shape().volume());
    }
    // weights + weight_updates (Darknet keeps both) + per-batch activations
    // and deltas (x2).
    params * 2 * 4 + widest_activation * batch * 2 * 4
}

impl PartitionedTrainer {
    /// Creates a trainer for `net` cut at `partition`, reserving the
    /// FrontNet's EPC working set in `enclave`.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if the FrontNet cannot fit the
    /// EPC, and [`CalTrainError::StateViolation`] for cuts beyond the
    /// last layer.
    pub fn new(
        net: Network,
        partition: Partition,
        platform: Platform,
        enclave: &Enclave,
        batch_size: usize,
        seed: u64,
    ) -> Result<Self, CalTrainError> {
        if partition.cut > net.num_layers() {
            return Err(CalTrainError::StateViolation("cut beyond network depth"));
        }
        let front_region = if partition.cut == 0 {
            None
        } else {
            let bytes = front_working_set(&net, partition.cut, batch_size);
            Some(enclave.alloc(bytes.max(1))?)
        };
        Ok(PartitionedTrainer {
            net,
            partition,
            platform,
            front_region,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The wrapped network (e.g. for snapshots and evaluation).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network (evaluation between epochs).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The partition in force.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Re-cuts the network (the dynamic re-assessment adjustment of
    /// §IV-B), reallocating the EPC region.
    ///
    /// # Errors
    ///
    /// Same as [`PartitionedTrainer::new`].
    pub fn repartition(
        &mut self,
        partition: Partition,
        enclave: &Enclave,
        batch_size: usize,
    ) -> Result<(), CalTrainError> {
        if partition.cut > self.net.num_layers() {
            return Err(CalTrainError::StateViolation("cut beyond network depth"));
        }
        if let Some(region) = self.front_region.take() {
            enclave.free(region)?;
        }
        if partition.cut > 0 {
            let bytes = front_working_set(&self.net, partition.cut, batch_size);
            self.front_region = Some(enclave.alloc(bytes.max(1))?);
        }
        self.partition = partition;
        Ok(())
    }

    /// Trains one epoch over `pool`, with in-enclave augmentation
    /// (seeded from the enclave RDRAND) and full cost accounting.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn train_epoch(
        &mut self,
        pool: &Dataset,
        enclave: &Enclave,
        hyper: &Hyper,
        batch_size: usize,
        augment: Option<&AugmentConfig>,
    ) -> Result<EpochOutcome, CalTrainError> {
        let cut = self.partition.cut;
        let n_layers = self.net.num_layers();
        let shuffled = pool.shuffled(&mut self.rng);

        let mut loss_acc = 0.0f32;
        let mut batches = 0usize;
        let mut enclave_flops = 0u64;
        let mut native_flops = 0u64;
        let mut boundary_bytes = 0u64;

        for (start, end) in shuffled.batch_bounds(batch_size) {
            let idx: Vec<usize> = (start..end).collect();
            let chunk = shuffled.subset(&idx);
            let batch_n = chunk.len();

            // Augmentation happens inside the enclave, after decryption
            // (paper §IV-A), using the on-chip RNG.
            let images = match augment {
                Some(cfg) => {
                    let mut aug_rng = StdRng::seed_from_u64(enclave.rdrand_u64());
                    let out = augment_batch(chunk.images(), cfg, &mut aug_rng);
                    enclave.charge_flops(out.volume() as u64 * 8);
                    out
                }
                None => chunk.images().clone(),
            };

            self.net.set_targets(chunk.labels())?;

            let (probs, delta_bytes) = if cut == 0 {
                // Non-protected baseline: everything native.
                let (probs, flops) =
                    self.net.forward_range(&images, 0, n_layers, KernelMode::Native, true)?;
                self.platform.charge_native_flops(flops);
                native_flops += flops;
                (probs, 0u64)
            } else {
                // FrontNet (strict kernels, EPC-resident buffers).
                if let Some(region) = self.front_region {
                    enclave.touch(region);
                }
                let (ir, f_front) =
                    self.net.forward_range(&images, 0, cut, KernelMode::Strict, true)?;
                enclave.charge_flops(f_front);
                enclave_flops += f_front;

                // IR leaves the enclave.
                let ir_bytes = ir.volume() * 4;
                enclave.charge_ocall(ir_bytes);
                boundary_bytes += ir_bytes as u64;

                // BackNet (native kernels).
                let (probs, f_back) =
                    self.net.forward_range(&ir, cut, n_layers, KernelMode::Native, true)?;
                self.platform.charge_native_flops(f_back);
                native_flops += f_back;
                (probs, 0u64)
            };
            let _ = probs;
            loss_acc += self.net.loss().unwrap_or(f32::NAN);
            batches += 1;

            // Backward.
            let classes = self.net.layer(n_layers - 1).output_shape().dim(0);
            let seed_delta = Tensor::zeros(&[batch_n, classes]);
            if cut == 0 {
                let (_, f) = self.net.backward_range(&seed_delta, 0, n_layers, KernelMode::Native)?;
                self.platform.charge_native_flops(f);
                native_flops += f;
                self.net.update_range(0, n_layers, hyper, batch_n)?;
            } else {
                let (delta_at_cut, f_back) =
                    self.net.backward_range(&seed_delta, cut, n_layers, KernelMode::Native)?;
                self.platform.charge_native_flops(f_back);
                native_flops += f_back;

                // Delta re-enters the enclave.
                let db = delta_at_cut.volume() * 4;
                enclave.charge_ecall(db);
                boundary_bytes += db as u64;

                if let Some(region) = self.front_region {
                    enclave.touch(region);
                }
                let (_, f_front) =
                    self.net.backward_range(&delta_at_cut, 0, cut, KernelMode::Strict)?;
                enclave.charge_flops(f_front);
                enclave_flops += f_front;

                self.net.update_range(0, cut, hyper, batch_n)?;
                self.net.update_range(cut, n_layers, hyper, batch_n)?;
            }
            let _ = delta_bytes;
        }

        Ok(EpochOutcome {
            mean_loss: loss_acc / batches.max(1) as f32,
            enclave_flops,
            native_flops,
            boundary_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_enclave::EnclaveConfig;
    use caltrain_nn::{Activation, NetworkBuilder};

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new(&[1, 6, 6])
            .conv(4, 3, 1, 1, Activation::Leaky)
            .maxpool(2, 2)
            .conv(3, 1, 1, 0, Activation::Linear)
            .global_avgpool()
            .softmax()
            .cost()
            .build(seed)
            .unwrap()
    }

    fn pool(n: usize) -> Dataset {
        let mut images = Tensor::zeros(&[n, 1, 6, 6]);
        let mut labels = Vec::new();
        for s in 0..n {
            let class = s % 3;
            labels.push(class);
            let (oy, ox) = [(0, 0), (0, 3), (3, 0)][class];
            for y in 0..3 {
                for x in 0..3 {
                    images.set(&[s, 0, oy + y, ox + x], 1.0).unwrap();
                }
            }
        }
        Dataset::new(images, labels)
    }

    fn setup(cut: usize, seed: u64) -> (Platform, Enclave, PartitionedTrainer) {
        let platform = Platform::with_seed(b"partition-test");
        let enclave = platform
            .create_enclave(&EnclaveConfig {
                name: "trainer".into(),
                code_identity: b"code".to_vec(),
                heap_bytes: 1 << 16,
            })
            .unwrap();
        let trainer = PartitionedTrainer::new(
            tiny_net(seed),
            Partition { cut },
            platform.clone(),
            &enclave,
            4,
            99,
        )
        .unwrap();
        (platform, enclave, trainer)
    }

    #[test]
    fn partitioned_equals_monolithic_training() {
        // Same seed, same data, no augmentation: cut=0 and cut=2 runs
        // must produce bit-identical weights (the paper's accuracy-parity
        // claim, mechanically).
        let (_p0, e0, mut mono) = setup(0, 7);
        let (_p1, e1, mut part) = setup(2, 7);
        let data = pool(12);
        let hyper = Hyper::default();
        for _ in 0..3 {
            mono.train_epoch(&data, &e0, &hyper, 4, None).unwrap();
            part.train_epoch(&data, &e1, &hyper, 4, None).unwrap();
        }
        assert_eq!(
            mono.network().export_params(),
            part.network().export_params(),
            "partitioning must not change the math"
        );
    }

    #[test]
    fn enclave_costs_charged_only_when_partitioned() {
        let (p, e, mut part) = setup(2, 1);
        p.reset_clock();
        let out = part.train_epoch(&pool(8), &e, &Hyper::default(), 4, None).unwrap();
        assert!(out.enclave_flops > 0);
        assert!(out.native_flops > 0);
        assert!(out.boundary_bytes > 0);
        let breakdown = p.cycle_breakdown();
        assert!(breakdown.enclave_compute_cycles > 0);
        assert!(breakdown.transition_cycles > 0);

        let (p2, e2, mut mono) = setup(0, 1);
        p2.reset_clock();
        let out2 = mono.train_epoch(&pool(8), &e2, &Hyper::default(), 4, None).unwrap();
        assert_eq!(out2.enclave_flops, 0);
        assert_eq!(out2.boundary_bytes, 0);
        assert_eq!(p2.cycle_breakdown().enclave_compute_cycles, 0);
    }

    #[test]
    fn deeper_cut_charges_more_enclave_flops() {
        let (_pa, ea, mut shallow) = setup(1, 2);
        let (_pb, eb, mut deep) = setup(3, 2);
        let data = pool(8);
        let a = shallow.train_epoch(&data, &ea, &Hyper::default(), 4, None).unwrap();
        let b = deep.train_epoch(&data, &eb, &Hyper::default(), 4, None).unwrap();
        assert!(b.enclave_flops > a.enclave_flops);
        assert!(b.native_flops < a.native_flops);
    }

    #[test]
    fn repartition_moves_the_cut() {
        let (_p, e, mut t) = setup(1, 3);
        t.repartition(Partition { cut: 3 }, &e, 4).unwrap();
        assert_eq!(t.partition().cut, 3);
        let out = t.train_epoch(&pool(4), &e, &Hyper::default(), 4, None).unwrap();
        assert!(out.enclave_flops > 0);
        assert!(t.repartition(Partition { cut: 99 }, &e, 4).is_err());
    }

    #[test]
    fn augmentation_trains_and_stays_finite() {
        let (_p, e, mut t) = setup(2, 4);
        let out = t
            .train_epoch(&pool(8), &e, &Hyper::default(), 4, Some(&AugmentConfig::default()))
            .unwrap();
        assert!(out.mean_loss.is_finite());
    }
}
