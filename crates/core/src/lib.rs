//! CalTrain: confidential and accountable collaborative training
//! (the paper's primary contribution, assembled from the substrate
//! crates).
//!
//! The pipeline follows paper Fig. 2 exactly — three stages over the
//! training data:
//!
//! 1. **Training stage** ([`pipeline`], [`partition`]): participants
//!    attest the training enclave, provision their AES-GCM keys over the
//!    attested channel, and upload sealed batches. Inside the enclave the
//!    server authenticates each batch (discarding forgeries), decrypts,
//!    augments, and trains the partitioned network — FrontNet layers on
//!    the strict in-enclave path with EPC accounting, BackNet layers on
//!    the native path, IRs and deltas crossing the boundary with
//!    marshalling costs.
//! 2. **Fingerprinting stage** ([`accountability`]): a second enclave
//!    loads the completed model, replays every training instance, and
//!    records the linkage structure Ω = [F, Y, S, H] into a database.
//! Scale-out via multiple enclave-backed learning hubs with federated
//! aggregation (paper §IV-B "Performance") lives in [`hubs`].
//!
//! 3. **Query stage** ([`accountability::QueryService`]): model users
//!    submit mispredicted inputs; the service returns the nearest
//!    class-mates in fingerprint space, the participants to demand data
//!    from, and verifies submissions against the recorded hashes.
//!
//! # Example
//!
//! ```no_run
//! use caltrain_core::pipeline::{CalTrain, PipelineConfig};
//! use caltrain_data::synthcifar;
//! use caltrain_nn::zoo;
//!
//! let (train, _test) = synthcifar::generate(100, 20, 1);
//! let net = zoo::cifar10_10layer_scaled(16, 1)?;
//! let mut system = CalTrain::new(net, PipelineConfig::default(), b"demo")?;
//! system.enroll_and_ingest(&train, 4, 42)?;
//! let outcome = system.train(2)?;
//! println!("epoch losses: {:?}", outcome.epoch_losses);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod accountability;
pub mod hubs;
pub mod participant;
pub mod partition;
pub mod pipeline;
pub mod server;

pub use error::CalTrainError;

// The worker-pool knob appears throughout the public API (pipeline
// config, hub cluster, training server); re-export it so downstream
// crates don't need a direct `caltrain-runtime` dependency.
pub use caltrain_runtime::Parallelism;
