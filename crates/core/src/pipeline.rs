//! The end-to-end CalTrain pipeline: enrol → ingest → train → release →
//! fingerprint (paper Fig. 2).

use caltrain_crypto::gcm::AesGcm;
use caltrain_data::{shard, Dataset, ParticipantId};
use caltrain_enclave::Platform;
use caltrain_fingerprint::{LinkageDb, QueryStrategy};
use caltrain_nn::augment::AugmentConfig;
use caltrain_nn::serialize::{range_weights_from_bytes, range_weights_to_bytes, weights_to_bytes};
use caltrain_nn::{Hyper, Network, NnError};
use caltrain_runtime::Parallelism;

use crate::accountability::FingerprintingStage;
use crate::participant::Participant;
use crate::partition::{EpochOutcome, Partition, PartitionedTrainer};
use crate::server::{IngestStats, TrainingServer};
use crate::CalTrainError;

/// Pipeline knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// FrontNet cut (paper Experiment I loads "the first two layers" into
    /// the enclave).
    pub partition: Partition,
    /// SGD hyperparameters.
    pub hyper: Hyper,
    /// Mini-batch size.
    pub batch_size: usize,
    /// In-enclave augmentation policy (`None` disables).
    pub augment: Option<AugmentConfig>,
    /// Training-enclave heap reservation in bytes.
    pub heap_bytes: usize,
    /// Keep a model snapshot per epoch (needed for Fig. 5 re-assessment).
    pub snapshots: bool,
    /// Worker-pool knob for the parallel paths (batch ingestion; hub
    /// training and fingerprint scans when wired through this config).
    /// Sequential by default so every run is single-threaded
    /// deterministic; `CALTRAIN_WORKERS` overrides the default.
    ///
    /// The config owns the persistent runtime pool's lifecycle for the
    /// pipeline it configures: [`CalTrain::new`] pre-spawns
    /// (`caltrain_runtime::pool::warm`) the pool for this budget, and
    /// every component the config is handed to (server, linkage DB)
    /// re-warms idempotently. Worker threads are created once per
    /// process and reused — never per call.
    pub parallelism: Parallelism,
    /// How the accountability [`QueryService`](crate::accountability)
    /// built by [`CalTrain::build_query_service`] answers fingerprint
    /// k-NN queries: the exact oracle scan (default), or the sharded
    /// LSH index with exact SIMD rerank for sub-linear serving at
    /// large record counts.
    pub query_strategy: QueryStrategy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            partition: Partition { cut: 2 },
            hyper: Hyper::default(),
            batch_size: 16,
            augment: Some(AugmentConfig::default()),
            heap_bytes: 1 << 22,
            snapshots: true,
            parallelism: Parallelism::default(),
            query_strategy: QueryStrategy::default(),
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Cost accounting per epoch.
    pub epoch_outcomes: Vec<EpochOutcome>,
    /// Per-epoch model snapshots (empty unless configured).
    pub snapshots: Vec<Network>,
}

/// A released model: BackNet in the clear, FrontNet sealed to one
/// participant's provisioned key (paper §IV-B: "the FrontNet encrypted
/// with symmetric keys provisioned by different training participants").
#[derive(Debug, Clone)]
pub struct ReleasedModel {
    /// The partition cut the release was built with.
    pub cut: usize,
    /// `nonce ‖ AES-GCM(front-net weight bytes)` under the recipient's key.
    pub front_sealed: Vec<u8>,
    /// Clear-text BackNet weight bytes.
    pub back_bytes: Vec<u8>,
}

/// Decrypts and assembles a released model into `template` (the agreed
/// architecture every participant already knows).
///
/// # Errors
///
/// Returns [`CalTrainError::Crypto`] for wrong keys/tampering and
/// [`CalTrainError::Nn`] for malformed weight payloads.
pub fn open_released(
    template: &mut Network,
    released: &ReleasedModel,
    key: &[u8; 16],
) -> Result<(), CalTrainError> {
    if released.front_sealed.len() < 12 {
        return Err(CalTrainError::Nn(NnError::BadWeightBlob("truncated front seal")));
    }
    let nonce: [u8; 12] = released.front_sealed[..12].try_into().expect("length checked");
    let front =
        AesGcm::new_128(key).open(&nonce, &released.front_sealed[12..], b"caltrain-release")?;
    let n = template.num_layers();
    if released.cut > 0 {
        range_weights_from_bytes(template, 0, released.cut, &front)?;
    }
    range_weights_from_bytes(template, released.cut, n, &released.back_bytes)?;
    Ok(())
}

/// The assembled CalTrain system.
pub struct CalTrain {
    server: TrainingServer,
    trainer: PartitionedTrainer,
    config: PipelineConfig,
    participants: Vec<Participant>,
}

impl std::fmt::Debug for CalTrain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalTrain")
            .field("participants", &self.participants.len())
            .field("partition", &self.trainer.partition())
            .finish()
    }
}

impl CalTrain {
    /// Boots a CalTrain deployment: simulated SGX platform, training
    /// enclave, partitioned trainer around `net`.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if launch or EPC reservation
    /// fails.
    pub fn new(net: Network, config: PipelineConfig, seed: &[u8]) -> Result<Self, CalTrainError> {
        // The pipeline config owns the pool lifecycle: spawn the worker
        // threads for its budget once, up front, so no training step or
        // ingest ever pays thread creation.
        caltrain_runtime::pool::warm(config.parallelism.workers());
        let platform = Platform::with_seed(seed);
        let mut server = TrainingServer::launch(platform.clone(), config.heap_bytes)?;
        server.set_parallelism(config.parallelism);
        let trainer = PartitionedTrainer::new(
            net,
            config.partition,
            platform,
            server.enclave(),
            config.batch_size,
            0xCA17_7A19,
        )?;
        Ok(CalTrain { server, trainer, config, participants: Vec::new() })
    }

    /// The hosting platform (clock, EPC stats, attestation service).
    pub fn platform(&self) -> &Platform {
        self.server.platform()
    }

    /// The training server.
    pub fn server(&self) -> &TrainingServer {
        &self.server
    }

    /// The current model.
    pub fn network(&self) -> &Network {
        self.trainer.network()
    }

    /// Mutable model access (evaluation between stages).
    pub fn network_mut(&mut self) -> &mut Network {
        self.trainer.network_mut()
    }

    /// Enrolled participants.
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Enrols a participant: runs the attested provisioning handshake and
    /// registers their data key inside the enclave.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if attestation or the channel
    /// fails — an unenrolled participant uploads nothing.
    pub fn enroll(&mut self, participant: Participant) -> Result<(), CalTrainError> {
        let (chan, quote, server_pub) = self.server.begin_provisioning();
        let service = self.server.platform().attestation_service();
        let expected = self.server.enclave().measurement();
        let (record, client_pub) =
            participant.provision_key(&service, &expected, &quote, &server_pub)?;
        self.server.finish_provisioning(chan, &client_pub, &record)?;
        self.participants.push(participant);
        Ok(())
    }

    /// Ingests sealed batches into the enclave pool.
    pub fn ingest(&mut self, batches: &[caltrain_data::sealed::SealedBatch]) -> IngestStats {
        self.server.ingest(batches)
    }

    /// Convenience for experiments: shards `dataset` across `count`
    /// participants, enrols each, and ingests their sealed uploads.
    ///
    /// # Errors
    ///
    /// Propagates enrolment failures.
    pub fn enroll_and_ingest(
        &mut self,
        dataset: &Dataset,
        count: usize,
        seed: u64,
    ) -> Result<IngestStats, CalTrainError> {
        let shards = shard::split(dataset, count, seed);
        let mut stats = IngestStats::default();
        for (i, shard) in shards.into_iter().enumerate() {
            let id = ParticipantId(i as u32);
            let mut p = Participant::new(id, shard, &seed.to_le_bytes());
            self.enroll(p.clone())?;
            let batches = p.seal_upload(self.config.batch_size);
            let s = self.ingest(&batches);
            stats.accepted += s.accepted;
            stats.discarded += s.discarded;
            stats.duplicates += s.duplicates;
            stats.instances += s.instances;
            // Keep the participant's upload counter in sync.
            if let Some(last) = self.participants.last_mut() {
                *last = p;
            }
        }
        Ok(stats)
    }

    /// Trains for `epochs` epochs over the ingested pool.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::StateViolation`] before ingestion;
    /// propagates training failures.
    pub fn train(&mut self, epochs: usize) -> Result<TrainOutcome, CalTrainError> {
        let pool = self.server.pool()?.clone();
        let mut outcome = TrainOutcome {
            epoch_losses: Vec::with_capacity(epochs),
            epoch_outcomes: Vec::with_capacity(epochs),
            snapshots: Vec::new(),
        };
        for _ in 0..epochs {
            let e = self.trainer.train_epoch(
                &pool,
                self.server.enclave(),
                &self.config.hyper,
                self.config.batch_size,
                self.config.augment.as_ref(),
            )?;
            outcome.epoch_losses.push(e.mean_loss);
            outcome.epoch_outcomes.push(e);
            if self.config.snapshots {
                outcome.snapshots.push(self.trainer.network().clone());
            }
        }
        Ok(outcome)
    }

    /// Adjusts the FrontNet/BackNet cut between epochs (dynamic
    /// re-assessment, §IV-B).
    ///
    /// # Errors
    ///
    /// Propagates EPC/partition failures.
    pub fn repartition(&mut self, partition: Partition) -> Result<(), CalTrainError> {
        self.trainer.repartition(partition, self.server.enclave(), self.config.batch_size)
    }

    /// Releases the trained model to one enrolled participant: BackNet in
    /// the clear, FrontNet sealed under that participant's key.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::UnknownParticipant`] for unenrolled ids.
    pub fn release_model(&self, to: ParticipantId) -> Result<ReleasedModel, CalTrainError> {
        let participant = self
            .participants
            .iter()
            .find(|p| p.id() == to)
            .ok_or(CalTrainError::UnknownParticipant(to.0))?;
        let net = self.trainer.network();
        let cut = self.trainer.partition().cut;
        let n = net.num_layers();

        let front_bytes = if cut > 0 {
            range_weights_to_bytes(net, 0, cut)?
        } else {
            weights_to_bytes(net)[..8].to_vec() // empty CTW1 header
        };
        let nonce_bytes = self.server.platform().random_bytes(12);
        let nonce: [u8; 12] = nonce_bytes.try_into().expect("random_bytes(12)");
        let cipher = AesGcm::new_128(&participant.data_key());
        let mut front_sealed = nonce.to_vec();
        front_sealed.extend_from_slice(&cipher.seal(&nonce, &front_bytes, b"caltrain-release"));

        let back_bytes = range_weights_to_bytes(net, cut, n)?;
        Ok(ReleasedModel { cut, front_sealed, back_bytes })
    }

    /// Runs the fingerprinting stage over the ingested pool with the
    /// current model, producing the linkage database.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::StateViolation`] before ingestion.
    pub fn build_linkage_db(&mut self) -> Result<LinkageDb, CalTrainError> {
        let pool = self.server.pool()?.clone();
        let stage = FingerprintingStage::launch(
            self.server.platform(),
            (self.trainer.network().param_count() * 4).max(1 << 16),
        )?;
        let batch = self.config.batch_size;
        let mut db = stage.build_db(self.trainer.network_mut(), &pool, batch)?;
        // Large accountability scans inherit the pipeline's worker knob.
        db.set_parallelism(self.config.parallelism);
        Ok(db)
    }

    /// Builds the online accountability service: the linkage database
    /// wrapped with the configured
    /// [`query_strategy`](PipelineConfig::query_strategy) (index built
    /// up front for [`QueryStrategy::Indexed`], its code fan-out riding
    /// the pipeline's worker pool).
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::StateViolation`] before ingestion.
    pub fn build_query_service(
        &mut self,
    ) -> Result<crate::accountability::QueryService, CalTrainError> {
        let db = self.build_linkage_db()?;
        Ok(crate::accountability::QueryService::with_strategy(db, self.config.query_strategy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_nn::{Activation, KernelMode, NetworkBuilder};
    use caltrain_tensor::Tensor;

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new(&[1, 6, 6])
            .conv(4, 3, 1, 1, Activation::Leaky)
            .maxpool(2, 2)
            .conv(3, 1, 1, 0, Activation::Linear)
            .global_avgpool()
            .softmax()
            .cost()
            .build(seed)
            .unwrap()
    }

    fn dataset(n: usize) -> Dataset {
        let mut images = Tensor::zeros(&[n, 1, 6, 6]);
        let mut labels = Vec::new();
        for s in 0..n {
            let class = s % 3;
            labels.push(class);
            let (oy, ox) = [(0, 0), (0, 3), (3, 0)][class];
            for y in 0..3 {
                for x in 0..3 {
                    images.set(&[s, 0, oy + y, ox + x], 1.0).unwrap();
                }
            }
        }
        Dataset::new(images, labels)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            partition: Partition { cut: 2 },
            hyper: Hyper { learning_rate: 0.2, momentum: 0.9, decay: 0.0 },
            batch_size: 4,
            augment: None,
            heap_bytes: 1 << 18,
            snapshots: true,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_pipeline_end_to_end() {
        let mut sys = CalTrain::new(tiny_net(1), config(), b"pipeline-test").unwrap();
        let stats = sys.enroll_and_ingest(&dataset(12), 3, 5).unwrap();
        assert_eq!(stats.instances, 12);
        assert_eq!(stats.discarded, 0);
        assert_eq!(sys.participants().len(), 3);

        let outcome = sys.train(3).unwrap();
        assert_eq!(outcome.epoch_losses.len(), 3);
        assert_eq!(outcome.snapshots.len(), 3);
        assert!(
            outcome.epoch_losses[2] < outcome.epoch_losses[0],
            "losses: {:?}",
            outcome.epoch_losses
        );

        let db = sys.build_linkage_db().unwrap();
        assert_eq!(db.len(), 12);
    }

    #[test]
    fn query_service_honours_configured_strategy() {
        use caltrain_fingerprint::{IndexParams, QueryStrategy};

        let mut cfg = config();
        cfg.query_strategy = QueryStrategy::Indexed(IndexParams {
            target_bucket: 2, // tiny corpus still exercises real sharding
            probes: usize::MAX,
            ..IndexParams::default()
        });
        let mut sys = CalTrain::new(tiny_net(5), cfg, b"pipeline-test-qs").unwrap();
        sys.enroll_and_ingest(&dataset(12), 3, 5).unwrap();
        sys.train(1).unwrap();

        let service = sys.build_query_service().unwrap();
        assert!(matches!(service.strategy(), QueryStrategy::Indexed(_)));
        assert_eq!(service.db().len(), 12);

        // Default config stays on the oracle — existing call sites are
        // unchanged by the new knob.
        assert_eq!(PipelineConfig::default().query_strategy, QueryStrategy::Oracle);
    }

    #[test]
    fn release_and_open_roundtrip() {
        let mut sys = CalTrain::new(tiny_net(2), config(), b"pipeline-test-2").unwrap();
        sys.enroll_and_ingest(&dataset(6), 2, 6).unwrap();
        sys.train(1).unwrap();

        let released = sys.release_model(ParticipantId(0)).unwrap();
        assert_eq!(released.cut, 2);

        let key = sys.participants()[0].data_key();
        let mut template = tiny_net(99);
        open_released(&mut template, &released, &key).unwrap();
        assert_eq!(template.export_params(), sys.network().export_params());

        // The other participant's key cannot open this release.
        let other_key = sys.participants()[1].data_key();
        let mut template2 = tiny_net(98);
        assert!(open_released(&mut template2, &released, &other_key).is_err());
    }

    #[test]
    fn release_without_enrollment_fails() {
        let sys = CalTrain::new(tiny_net(3), config(), b"pipeline-test-3").unwrap();
        assert_eq!(
            sys.release_model(ParticipantId(7)).err(),
            Some(CalTrainError::UnknownParticipant(7))
        );
    }

    #[test]
    fn train_before_ingest_is_a_state_violation() {
        let mut sys = CalTrain::new(tiny_net(4), config(), b"pipeline-test-4").unwrap();
        assert!(matches!(sys.train(1), Err(CalTrainError::StateViolation(_))));
    }

    #[test]
    fn backnet_release_is_usable_but_frontnet_stays_sealed() {
        // An adversary holding the release without the key can read the
        // BackNet but not the FrontNet — the property that blocks input
        // reconstruction (paper §IV-C security argument).
        let mut sys = CalTrain::new(tiny_net(5), config(), b"pipeline-test-5").unwrap();
        sys.enroll_and_ingest(&dataset(6), 1, 7).unwrap();
        sys.train(1).unwrap();
        let released = sys.release_model(ParticipantId(0)).unwrap();

        let mut adversary = tiny_net(77);
        let n = adversary.num_layers();
        // BackNet loads fine from the clear bytes...
        range_weights_from_bytes(&mut adversary, released.cut, n, &released.back_bytes).unwrap();
        // ...but without the participant key the FrontNet bytes are
        // AES-GCM ciphertext; the adversary's FrontNet stays random.
        let mut probe = Tensor::zeros(&[1, 1, 6, 6]);
        probe.set(&[0, 0, 0, 0], 1.0).unwrap();
        let theirs = adversary.predict_probs(&probe, KernelMode::Native).unwrap();
        let mut full = tiny_net(77);
        open_released(&mut full, &released, &sys.participants()[0].data_key()).unwrap();
        let truth = full.predict_probs(&probe, KernelMode::Native).unwrap();
        assert_ne!(theirs.as_slice(), truth.as_slice());
    }

    #[test]
    fn repartition_between_epochs() {
        let mut sys = CalTrain::new(tiny_net(6), config(), b"pipeline-test-6").unwrap();
        sys.enroll_and_ingest(&dataset(6), 1, 8).unwrap();
        sys.train(1).unwrap();
        sys.repartition(Partition { cut: 3 }).unwrap();
        let out = sys.train(1).unwrap();
        assert_eq!(out.epoch_losses.len(), 1);
    }
}
