use std::error::Error;
use std::fmt;

use caltrain_crypto::CryptoError;
use caltrain_enclave::EnclaveError;
use caltrain_nn::NnError;
use caltrain_tensor::TensorError;

/// Top-level errors of the CalTrain pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CalTrainError {
    /// Enclave/attestation/channel failure.
    Enclave(EnclaveError),
    /// Network training/inference failure.
    Nn(NnError),
    /// Cryptographic failure outside the enclave layer.
    Crypto(CryptoError),
    /// Tensor-level failure.
    Tensor(TensorError),
    /// A participant referenced by id is not enrolled.
    UnknownParticipant(u32),
    /// The pipeline was driven out of order (e.g. training before
    /// ingestion).
    StateViolation(&'static str),
    /// A fingerprint query failed.
    Query(&'static str),
}

impl fmt::Display for CalTrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalTrainError::Enclave(e) => write!(f, "enclave failure: {e}"),
            CalTrainError::Nn(e) => write!(f, "network failure: {e}"),
            CalTrainError::Crypto(e) => write!(f, "crypto failure: {e}"),
            CalTrainError::Tensor(e) => write!(f, "tensor failure: {e}"),
            CalTrainError::UnknownParticipant(id) => write!(f, "unknown participant {id}"),
            CalTrainError::StateViolation(why) => write!(f, "pipeline state violation: {why}"),
            CalTrainError::Query(why) => write!(f, "query failure: {why}"),
        }
    }
}

impl Error for CalTrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CalTrainError::Enclave(e) => Some(e),
            CalTrainError::Nn(e) => Some(e),
            CalTrainError::Crypto(e) => Some(e),
            CalTrainError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<EnclaveError> for CalTrainError {
    fn from(e: EnclaveError) -> Self {
        CalTrainError::Enclave(e)
    }
}

#[doc(hidden)]
impl From<NnError> for CalTrainError {
    fn from(e: NnError) -> Self {
        CalTrainError::Nn(e)
    }
}

#[doc(hidden)]
impl From<CryptoError> for CalTrainError {
    fn from(e: CryptoError) -> Self {
        CalTrainError::Crypto(e)
    }
}

#[doc(hidden)]
impl From<TensorError> for CalTrainError {
    fn from(e: TensorError) -> Self {
        CalTrainError::Tensor(e)
    }
}
