//! Learning hubs: the paper's scale-out design (§IV-B "Performance").
//!
//! "To further scale up in-enclave training to exploit SGD's parallelism,
//! we can also form multiple learning hubs. Each hub can be built upon a
//! single enclave along with a subgroup of downstream training
//! participants. Sub-models can be trained independently … We can build a
//! hierarchical tree model by setting up a model aggregation server at
//! root and periodically merge model updates from different enclaves as
//! alike in Federated Learning."
//!
//! [`HubCluster`] implements exactly that: each hub owns its own simulated
//! platform, enclave and partitioned trainer over its participants' pool;
//! [`HubCluster::train_round`] trains every hub locally for some epochs —
//! genuinely concurrently, one OS thread per hub on the
//! [`caltrain_runtime`] worker pool — and then federated-averages the
//! weights at the root, redistributing the merged model to all hubs.
//! Because every hub owns its own platform, enclave and RNG, the round is
//! bit-identical at any worker count; the [`Parallelism`] knob only
//! changes how much host hardware the round uses.

use caltrain_data::Dataset;
use caltrain_enclave::{Enclave, EnclaveConfig, Platform, SimTime};
use caltrain_nn::augment::AugmentConfig;
use caltrain_nn::{Hyper, Network};
use caltrain_runtime::{par_map_mut, Parallelism};

use crate::partition::{Partition, PartitionedTrainer};
use crate::server::TRAINING_ENCLAVE_CODE;
use crate::CalTrainError;

/// One learning hub: an enclave-backed trainer over a participant
/// subgroup's pool.
pub struct Hub {
    platform: Platform,
    enclave: Enclave,
    trainer: PartitionedTrainer,
    pool: Dataset,
}

// `train_round` moves exclusive hub references onto worker threads;
// this audit pins the whole ownership chain — trainer (network + RNG),
// enclave, platform clock/EPC/DRBG, dataset — as thread-mobile.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Hub>();
};

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hub")
            .field("pool", &self.pool.len())
            .field("cut", &self.trainer.partition().cut)
            .finish()
    }
}

/// Outcome of one federated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Mean training loss per hub, in hub order, averaged across the
    /// round's local epochs.
    pub hub_losses: Vec<f32>,
    /// Per-hub simulated time for the round, in hub order.
    pub hub_times: Vec<SimTime>,
    /// Slowest hub's simulated time for the round — the wall-clock the
    /// parallel cluster would take.
    pub round_time: SimTime,
}

/// A root aggregation server over several hubs.
pub struct HubCluster {
    hubs: Vec<Hub>,
    hyper: Hyper,
    batch_size: usize,
    augment: Option<AugmentConfig>,
    parallelism: Parallelism,
}

impl std::fmt::Debug for HubCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubCluster")
            .field("hubs", &self.hubs.len())
            .field("workers", &self.parallelism.workers())
            .finish()
    }
}

impl HubCluster {
    /// Builds a cluster: one hub (own platform + enclave + trainer clone
    /// of `net`) per pool in `pools`.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if any hub's enclave or EPC
    /// reservation fails, and [`CalTrainError::StateViolation`] for an
    /// empty pool list.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: &Network,
        pools: Vec<Dataset>,
        partition: Partition,
        hyper: Hyper,
        batch_size: usize,
        augment: Option<AugmentConfig>,
        seed: u64,
    ) -> Result<Self, CalTrainError> {
        if pools.is_empty() {
            return Err(CalTrainError::StateViolation("a cluster needs at least one hub"));
        }
        let mut hubs = Vec::with_capacity(pools.len());
        for (i, pool) in pools.into_iter().enumerate() {
            let platform = Platform::with_seed(format!("hub-{i}-{seed}").as_bytes());
            let enclave = platform.create_enclave(&EnclaveConfig {
                name: format!("caltrain-hub-{i}"),
                code_identity: TRAINING_ENCLAVE_CODE.to_vec(),
                heap_bytes: 1 << 22,
            })?;
            let trainer = PartitionedTrainer::new(
                net.clone(),
                partition,
                platform.clone(),
                &enclave,
                batch_size,
                seed ^ (i as u64 + 1),
            )?;
            hubs.push(Hub { platform, enclave, trainer, pool });
        }
        Ok(HubCluster { hubs, hyper, batch_size, augment, parallelism: Parallelism::default() })
    }

    /// Sets the worker-pool knob: how many hubs train on concurrent OS
    /// threads during [`HubCluster::train_round`]. Defaults to
    /// [`Parallelism::default`] (sequential unless `CALTRAIN_WORKERS`
    /// is set). Round results are bit-identical at any worker count.
    ///
    /// The cluster owns its share of the persistent runtime pool's
    /// lifecycle: a parallel budget pre-spawns the pool threads here, so
    /// the first round trains on warm workers instead of paying thread
    /// creation mid-round.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        caltrain_runtime::pool::warm(parallelism.workers());
        self.parallelism = parallelism;
    }

    /// Builder-style variant of [`HubCluster::set_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.set_parallelism(parallelism);
        self
    }

    /// The worker-pool knob in force.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// True if the cluster has no hubs (never constructible; for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// The current global model (all hubs hold identical weights between
    /// rounds).
    pub fn global_model(&self) -> &Network {
        self.hubs[0].trainer.network()
    }

    /// Mutable access to the global model for evaluation. Only valid
    /// between rounds (after aggregation).
    pub fn global_model_mut(&mut self) -> &mut Network {
        self.hubs[0].trainer.network_mut()
    }

    /// One federated round: every hub trains `local_epochs` on its own
    /// pool — each hub on its own OS worker thread, charging its own
    /// simulated platform clock — then the root averages all hub weights
    /// and pushes the merged model back.
    ///
    /// Hubs are fully independent (own platform, enclave, trainer, RNG),
    /// so the outcome is bit-identical whether the round runs on one
    /// thread or [`Parallelism::workers`] threads.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn train_round(&mut self, local_epochs: usize) -> Result<RoundOutcome, CalTrainError> {
        let Self { hubs, hyper, batch_size, augment, parallelism } = self;
        let batch_size = *batch_size;
        let results = par_map_mut(*parallelism, hubs, |_, hub| {
            hub.platform.reset_clock();
            let mut loss_sum = 0.0f32;
            for _ in 0..local_epochs {
                let out = hub.trainer.train_epoch(
                    &hub.pool,
                    &hub.enclave,
                    hyper,
                    batch_size,
                    augment.as_ref(),
                )?;
                loss_sum += out.mean_loss;
            }
            let mean = loss_sum / local_epochs.max(1) as f32;
            Ok::<(f32, SimTime), CalTrainError>((mean, hub.platform.elapsed()))
        });

        let mut hub_losses = Vec::with_capacity(results.len());
        let mut hub_times = Vec::with_capacity(results.len());
        let mut round_time = SimTime::default();
        for result in results {
            let (loss, t) = result?;
            hub_losses.push(loss);
            hub_times.push(t);
            if t.seconds > round_time.seconds {
                round_time = t; // the slowest hub gates the round
            }
        }
        self.aggregate()?;
        Ok(RoundOutcome { hub_losses, hub_times, round_time })
    }

    /// Federated averaging, weighted by hub pool size.
    fn aggregate(&mut self) -> Result<(), CalTrainError> {
        let total: usize = self.hubs.iter().map(|h| h.pool.len()).sum();
        let mut merged: Vec<Vec<f32>> = self.hubs[0]
            .trainer
            .network()
            .export_params()
            .iter()
            .map(|layer| vec![0.0; layer.len()])
            .collect();
        for hub in &self.hubs {
            let weight = hub.pool.len() as f32 / total as f32;
            for (acc, layer) in merged.iter_mut().zip(hub.trainer.network().export_params()) {
                for (a, v) in acc.iter_mut().zip(&layer) {
                    *a += weight * v;
                }
            }
        }
        for hub in &mut self.hubs {
            hub.trainer.network_mut().import_params(&merged)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_data::shard;
    use caltrain_nn::{zoo, KernelMode};
    use caltrain_data::synthcifar;
    use caltrain_nn::metrics::evaluate;

    fn cluster(hub_count: usize, n: usize, seed: u64) -> (HubCluster, Dataset) {
        let (train, test) = synthcifar::generate(n, 40, seed);
        let pools = shard::split(&train, hub_count, seed);
        let net = zoo::cifar10_10layer_scaled(32, seed).unwrap();
        let cluster = HubCluster::new(
            &net,
            pools,
            Partition { cut: 2 },
            Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
            16,
            None,
            seed,
        )
        .unwrap();
        (cluster, test)
    }

    #[test]
    fn hubs_start_from_identical_weights_and_stay_merged() {
        let (mut cluster, _) = cluster(3, 60, 1);
        assert_eq!(cluster.len(), 3);
        let out = cluster.train_round(1).unwrap();
        assert_eq!(out.hub_losses.len(), 3);
        // After aggregation every hub holds the merged model.
        let reference = cluster.hubs[0].trainer.network().export_params();
        for hub in &cluster.hubs[1..] {
            assert_eq!(hub.trainer.network().export_params(), reference);
        }
        assert!(out.round_time.seconds > 0.0);
    }

    #[test]
    fn federated_rounds_learn_the_task() {
        let (mut cluster, test) = cluster(2, 200, 2);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        // Enough rounds to separate the merged model from chance with
        // margin; fewer leaves it hovering at the 0.2 threshold.
        for round in 0..8 {
            let out = cluster.train_round(1).unwrap();
            let mean = out.hub_losses.iter().sum::<f32>() / out.hub_losses.len() as f32;
            if round == 0 {
                first = mean;
            }
            last = mean;
        }
        assert!(last < first, "federated loss must fall: {first} -> {last}");
        let acc = evaluate(
            cluster.global_model_mut(),
            test.images(),
            test.labels(),
            64,
            KernelMode::Native,
        )
        .unwrap();
        assert!(acc.top1 > 0.2, "merged model must beat chance, got {}", acc.top1);
    }

    #[test]
    fn single_hub_cluster_equals_plain_training() {
        // With one hub, aggregation is the identity: the cluster must
        // match a lone PartitionedTrainer bit for bit.
        let (train, _) = synthcifar::generate(40, 10, 3);
        let net = zoo::cifar10_10layer_scaled(32, 3).unwrap();
        let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };

        let mut single = HubCluster::new(
            &net,
            vec![train.clone()],
            Partition { cut: 2 },
            hyper,
            16,
            None,
            7,
        )
        .unwrap();
        single.train_round(2).unwrap();

        let platform = Platform::with_seed(b"hub-0-7");
        let enclave = platform
            .create_enclave(&EnclaveConfig {
                name: "x".into(),
                code_identity: TRAINING_ENCLAVE_CODE.to_vec(),
                heap_bytes: 1 << 22,
            })
            .unwrap();
        let mut lone = PartitionedTrainer::new(
            net,
            Partition { cut: 2 },
            platform,
            &enclave,
            16,
            7 ^ 1,
        )
        .unwrap();
        for _ in 0..2 {
            lone.train_epoch(&train, &enclave, &hyper, 16, None).unwrap();
        }
        assert_eq!(
            single.global_model().export_params(),
            lone.network().export_params(),
        );
    }

    #[test]
    fn parallel_round_bit_identical_to_sequential() {
        // The determinism guarantee: same seed, same data => the same
        // aggregated weights, losses and simulated times whether hubs
        // run on one thread or four.
        let (mut sequential, _) = cluster(4, 80, 9);
        sequential.set_parallelism(Parallelism::sequential());
        let (mut parallel, _) = cluster(4, 80, 9);
        parallel.set_parallelism(Parallelism::new(4));

        for round in 0..2 {
            let a = sequential.train_round(2).unwrap();
            let b = parallel.train_round(2).unwrap();
            assert_eq!(a, b, "round {round} outcomes must match bit for bit");
        }
        assert_eq!(
            sequential.global_model().export_params(),
            parallel.global_model().export_params(),
            "aggregated weights must be identical under parallel execution"
        );
    }

    #[test]
    fn hub_losses_are_means_over_local_epochs() {
        // `RoundOutcome::hub_losses` documents a mean per hub; replicate
        // three local epochs by hand on an identical cluster and compare.
        let (mut round_cluster, _) = cluster(2, 40, 11);
        round_cluster.set_parallelism(Parallelism::sequential());
        let (mut manual_cluster, _) = cluster(2, 40, 11);
        manual_cluster.set_parallelism(Parallelism::sequential());

        let HubCluster { hubs, hyper, batch_size, .. } = &mut manual_cluster;
        let mut expected = Vec::new();
        for hub in hubs.iter_mut() {
            let mut sum = 0.0f32;
            for _ in 0..3 {
                sum += hub
                    .trainer
                    .train_epoch(&hub.pool, &hub.enclave, hyper, *batch_size, None)
                    .unwrap()
                    .mean_loss;
            }
            expected.push(sum / 3.0);
        }
        let out = round_cluster.train_round(3).unwrap();
        assert_eq!(out.hub_losses, expected, "losses must average across local epochs");
    }

    #[test]
    fn empty_cluster_rejected() {
        let net = zoo::cifar10_10layer_scaled(32, 4).unwrap();
        assert!(matches!(
            HubCluster::new(
                &net,
                vec![],
                Partition { cut: 2 },
                Hyper::default(),
                16,
                None,
                0
            ),
            Err(CalTrainError::StateViolation(_))
        ));
    }
}
