//! Learning hubs: the paper's scale-out design (§IV-B "Performance").
//!
//! "To further scale up in-enclave training to exploit SGD's parallelism,
//! we can also form multiple learning hubs. Each hub can be built upon a
//! single enclave along with a subgroup of downstream training
//! participants. Sub-models can be trained independently … We can build a
//! hierarchical tree model by setting up a model aggregation server at
//! root and periodically merge model updates from different enclaves as
//! alike in Federated Learning."
//!
//! [`HubCluster`] implements exactly that: each hub owns its own simulated
//! platform, enclave and partitioned trainer over its participants' pool;
//! [`HubCluster::train_round`] trains every hub locally for some epochs —
//! genuinely concurrently, one OS thread per hub on the
//! [`caltrain_runtime`] worker pool — and then federated-averages the
//! weights at the root, redistributing the merged model to all hubs.
//! Because every hub owns its own platform, enclave and RNG, the round is
//! bit-identical at any worker count; the [`Parallelism`] knob only
//! changes how much host hardware the round uses.

use caltrain_data::Dataset;
use caltrain_enclave::{Enclave, EnclaveConfig, Platform, SimTime};
use caltrain_nn::augment::AugmentConfig;
use caltrain_nn::{Hyper, Network};
use caltrain_runtime::{par_map_mut, Parallelism};

use crate::partition::{Partition, PartitionedTrainer};
use crate::server::TRAINING_ENCLAVE_CODE;
use crate::CalTrainError;

/// One learning hub: an enclave-backed trainer over a participant
/// subgroup's pool.
pub struct Hub {
    platform: Platform,
    enclave: Enclave,
    trainer: PartitionedTrainer,
    pool: Dataset,
}

// `train_round` moves exclusive hub references onto worker threads;
// this audit pins the whole ownership chain — trainer (network + RNG),
// enclave, platform clock/EPC/DRBG, dataset — as thread-mobile.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Hub>();
};

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hub")
            .field("pool", &self.pool.len())
            .field("cut", &self.trainer.partition().cut)
            .finish()
    }
}

/// Outcome of one federated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Mean training loss per hub, in hub order, averaged across the
    /// round's local epochs.
    pub hub_losses: Vec<f32>,
    /// Per-hub simulated time for the round, in hub order.
    pub hub_times: Vec<SimTime>,
    /// Slowest hub's simulated time for the round — the wall-clock the
    /// parallel cluster would take.
    pub round_time: SimTime,
    /// Hubs (by index, ascending) that crashed this round: their local
    /// work was discarded and they restarted from the merged global
    /// model. Empty under [`HonestTransport`].
    pub crashed: Vec<usize>,
}

/// What one hub hands the root aggregator at the end of a round.
///
/// This is the seam the fault-injection harness (`caltrain-sim`) drives:
/// the round loop itself never forks — a [`RoundTransport`] decides, per
/// `(round, hub)`, whether the submission is honest, lost to a crash,
/// stale, or byzantine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HubSubmission {
    /// The hub's locally trained weights — the honest case.
    Trained,
    /// The hub crashed mid-round: its local work is lost, it submits
    /// nothing, it is excluded from the weighted average, and it
    /// restarts from the freshly merged global model.
    Crashed,
    /// The hub re-submits the pre-round global weights — a stale replica
    /// whose round of work never arrives.
    Stale,
    /// Byzantine: the hub submits `global + scale·(trained − global)`.
    /// `scale > 1` boosts the hub's update (gradient-scaling attack);
    /// `scale < 0` sign-flips the round's progress; `scale = 0` degrades
    /// to [`HubSubmission::Stale`] semantics.
    Scaled(f32),
}

impl HubSubmission {
    /// True when the hub contributes weights to the aggregation.
    pub fn submits(self) -> bool {
        !matches!(self, HubSubmission::Crashed)
    }
}

/// Decides what every hub submits each round (see [`HubSubmission`]).
///
/// [`HubCluster::train_round_via`] calls [`RoundTransport::submission`]
/// once per hub, **in hub order, from the sequential aggregation fold**
/// — never from a worker thread — so any deterministic implementation
/// is worker-count invariant by construction.
pub trait RoundTransport {
    /// The submission for `hub` in `round` (both zero-based; rounds
    /// count [`HubCluster::train_round_via`] calls over the cluster's
    /// lifetime).
    fn submission(&mut self, round: usize, hub: usize) -> HubSubmission;

    /// Called once at the top of every [`HubCluster::train_round_via`],
    /// before any hub trains, with every hub's platform handle in hub
    /// order — from the sequential control path, never a worker thread,
    /// so any deterministic implementation stays worker-count invariant.
    ///
    /// This is the environment-fault seam: implementations may perturb
    /// per-round platform conditions (EPC capacity via
    /// [`Platform::set_epc_capacity_pages`], clock rate via
    /// [`Platform::set_clock_hz`]) before the round's work is charged.
    /// The default does nothing.
    fn before_round(&mut self, round: usize, platforms: &[&Platform]) {
        let _ = (round, platforms);
    }
}

/// The default transport: every hub honestly submits its trained
/// weights. [`HubCluster::train_round`] is exactly
/// [`HubCluster::train_round_via`] with this transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct HonestTransport;

impl RoundTransport for HonestTransport {
    fn submission(&mut self, _round: usize, _hub: usize) -> HubSubmission {
        HubSubmission::Trained
    }
}

/// A transport that replays a fixed fault plan: decisions keyed by
/// `(round, hub)`, everything absent from the plan submitting honestly.
/// The scenario harness pre-computes its plan from a seeded RNG and
/// hands it over as one of these, which keeps every injected fault
/// replayable from the seed alone.
#[derive(Debug, Clone, Default)]
pub struct PlannedTransport {
    plan: std::collections::BTreeMap<(usize, usize), HubSubmission>,
}

impl PlannedTransport {
    /// An empty (all-honest) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `submission` for `(round, hub)`, replacing any earlier
    /// decision for that slot.
    pub fn set(&mut self, round: usize, hub: usize, submission: HubSubmission) -> &mut Self {
        self.plan.insert((round, hub), submission);
        self
    }

    /// The planned decisions, in `(round, hub)` order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, HubSubmission)> + '_ {
        self.plan.iter().map(|(&(round, hub), &s)| (round, hub, s))
    }
}

impl RoundTransport for PlannedTransport {
    fn submission(&mut self, round: usize, hub: usize) -> HubSubmission {
        self.plan.get(&(round, hub)).copied().unwrap_or(HubSubmission::Trained)
    }
}

/// A root aggregation server over several hubs.
pub struct HubCluster {
    hubs: Vec<Hub>,
    hyper: Hyper,
    batch_size: usize,
    augment: Option<AugmentConfig>,
    parallelism: Parallelism,
    round: usize,
}

impl std::fmt::Debug for HubCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubCluster")
            .field("hubs", &self.hubs.len())
            .field("workers", &self.parallelism.workers())
            .finish()
    }
}

impl HubCluster {
    /// Builds a cluster: one hub (own platform + enclave + trainer clone
    /// of `net`) per pool in `pools`.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if any hub's enclave or EPC
    /// reservation fails, and [`CalTrainError::StateViolation`] for an
    /// empty pool list.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: &Network,
        pools: Vec<Dataset>,
        partition: Partition,
        hyper: Hyper,
        batch_size: usize,
        augment: Option<AugmentConfig>,
        seed: u64,
    ) -> Result<Self, CalTrainError> {
        if pools.is_empty() {
            return Err(CalTrainError::StateViolation("a cluster needs at least one hub"));
        }
        let mut hubs = Vec::with_capacity(pools.len());
        for (i, pool) in pools.into_iter().enumerate() {
            let platform = Platform::with_seed(format!("hub-{i}-{seed}").as_bytes());
            let enclave = platform.create_enclave(&EnclaveConfig {
                name: format!("caltrain-hub-{i}"),
                code_identity: TRAINING_ENCLAVE_CODE.to_vec(),
                heap_bytes: 1 << 22,
            })?;
            let trainer = PartitionedTrainer::new(
                net.clone(),
                partition,
                platform.clone(),
                &enclave,
                batch_size,
                seed ^ (i as u64 + 1),
            )?;
            hubs.push(Hub { platform, enclave, trainer, pool });
        }
        Ok(HubCluster {
            hubs,
            hyper,
            batch_size,
            augment,
            parallelism: Parallelism::default(),
            round: 0,
        })
    }

    /// Sets the worker-pool knob: how many hubs train on concurrent OS
    /// threads during [`HubCluster::train_round`]. Defaults to
    /// [`Parallelism::default`] (sequential unless `CALTRAIN_WORKERS`
    /// is set). Round results are bit-identical at any worker count.
    ///
    /// The cluster owns its share of the persistent runtime pool's
    /// lifecycle: a parallel budget pre-spawns the pool threads here, so
    /// the first round trains on warm workers instead of paying thread
    /// creation mid-round.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        caltrain_runtime::pool::warm(parallelism.workers());
        self.parallelism = parallelism;
    }

    /// Builder-style variant of [`HubCluster::set_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.set_parallelism(parallelism);
        self
    }

    /// The worker-pool knob in force.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// True if the cluster has no hubs (never constructible; for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// The current global model (all hubs hold identical weights between
    /// rounds).
    pub fn global_model(&self) -> &Network {
        self.hubs[0].trainer.network()
    }

    /// Mutable access to the global model for evaluation. Only valid
    /// between rounds (after aggregation).
    pub fn global_model_mut(&mut self) -> &mut Network {
        self.hubs[0].trainer.network_mut()
    }

    /// One hub's local model — between rounds, bit-identical to
    /// [`HubCluster::global_model`] for every hub (the convergence
    /// invariant fault harnesses check after injected submissions).
    pub fn hub_model(&self, hub: usize) -> Option<&Network> {
        self.hubs.get(hub).map(|h| h.trainer.network())
    }

    /// One hub's platform — for inspecting per-hub simulated-clock
    /// charges and cycle breakdowns.
    pub fn hub_platform(&self, hub: usize) -> Option<&Platform> {
        self.hubs.get(hub).map(|h| &h.platform)
    }

    /// One federated round: every hub trains `local_epochs` on its own
    /// pool — each hub on its own OS worker thread, charging its own
    /// simulated platform clock — then the root averages all hub weights
    /// and pushes the merged model back.
    ///
    /// Hubs are fully independent (own platform, enclave, trainer, RNG),
    /// so the outcome is bit-identical whether the round runs on one
    /// thread or [`Parallelism::workers`] threads.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn train_round(&mut self, local_epochs: usize) -> Result<RoundOutcome, CalTrainError> {
        self.train_round_via(local_epochs, &mut HonestTransport)
    }

    /// Rounds completed so far (the `round` index the transport sees).
    pub fn round(&self) -> usize {
        self.round
    }

    /// [`HubCluster::train_round`] with an explicit [`RoundTransport`]
    /// deciding what each hub submits — the fault-injection seam.
    ///
    /// Local training always runs (a crash is modelled at submission
    /// time: the work happened, then was lost), so `hub_losses` and
    /// `hub_times` report every hub. The transport is consulted in hub
    /// order from the sequential fold, and aggregation weights only the
    /// submitting hubs by pool size; if *every* hub crashes the round is
    /// lost and the pre-round global model survives unchanged. Crashed
    /// hubs are restored from the merged model along with everyone else
    /// — the restart-from-global-model recovery path.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn train_round_via(
        &mut self,
        local_epochs: usize,
        transport: &mut dyn RoundTransport,
    ) -> Result<RoundOutcome, CalTrainError> {
        let round = self.round;
        {
            // Environment faults (EPC pressure, clock skew) land before
            // the round's work, from the sequential control path.
            let platforms: Vec<&Platform> = self.hubs.iter().map(|h| &h.platform).collect();
            transport.before_round(round, &platforms);
        }
        // Pre-round global weights: the restore point for stale and
        // byzantine submissions (every hub starts the round from them).
        let pre_round = self.hubs[0].trainer.network().export_params();
        let Self { hubs, hyper, batch_size, augment, parallelism, .. } = self;
        let batch_size = *batch_size;
        let results = par_map_mut(*parallelism, hubs, |_, hub| {
            hub.platform.reset_clock();
            let mut loss_sum = 0.0f32;
            for _ in 0..local_epochs {
                let out = hub.trainer.train_epoch(
                    &hub.pool,
                    &hub.enclave,
                    hyper,
                    batch_size,
                    augment.as_ref(),
                )?;
                loss_sum += out.mean_loss;
            }
            let mean = loss_sum / local_epochs.max(1) as f32;
            Ok::<(f32, SimTime), CalTrainError>((mean, hub.platform.elapsed()))
        });

        let mut hub_losses = Vec::with_capacity(results.len());
        let mut hub_times = Vec::with_capacity(results.len());
        let mut round_time = SimTime::default();
        let mut decisions = Vec::with_capacity(results.len());
        for (hub, result) in results.into_iter().enumerate() {
            let (loss, t) = result?;
            hub_losses.push(loss);
            hub_times.push(t);
            if t.seconds > round_time.seconds {
                round_time = t; // the slowest hub gates the round
            }
            decisions.push(transport.submission(round, hub));
        }
        let crashed: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.submits())
            .map(|(i, _)| i)
            .collect();
        self.aggregate(&decisions, &pre_round)?;
        self.round += 1;
        Ok(RoundOutcome { hub_losses, hub_times, round_time, crashed })
    }

    /// Federated averaging over the round's submissions, weighted by hub
    /// pool size across the hubs that actually submitted. Under the
    /// all-[`HubSubmission::Trained`] honest plan this is bit-identical
    /// to classic weighted averaging over every hub.
    fn aggregate(
        &mut self,
        decisions: &[HubSubmission],
        pre_round: &[Vec<f32>],
    ) -> Result<(), CalTrainError> {
        let total: usize = self
            .hubs
            .iter()
            .zip(decisions)
            .filter(|(_, d)| d.submits())
            .map(|(h, _)| h.pool.len())
            .sum();
        let merged: Vec<Vec<f32>> = if total == 0 {
            // Every hub crashed: the round is lost, the global model
            // survives as it was.
            pre_round.to_vec()
        } else {
            let mut merged: Vec<Vec<f32>> =
                pre_round.iter().map(|layer| vec![0.0; layer.len()]).collect();
            for (hub, decision) in self.hubs.iter().zip(decisions) {
                if !decision.submits() {
                    continue;
                }
                let weight = hub.pool.len() as f32 / total as f32;
                let trained = hub.trainer.network().export_params();
                for ((acc, layer), pre) in merged.iter_mut().zip(&trained).zip(pre_round) {
                    match *decision {
                        HubSubmission::Crashed => unreachable!("filtered above"),
                        HubSubmission::Trained => {
                            for (a, v) in acc.iter_mut().zip(layer) {
                                *a += weight * v;
                            }
                        }
                        HubSubmission::Stale => {
                            for (a, p) in acc.iter_mut().zip(pre) {
                                *a += weight * p;
                            }
                        }
                        HubSubmission::Scaled(scale) => {
                            for ((a, v), p) in acc.iter_mut().zip(layer).zip(pre) {
                                *a += weight * (p + scale * (v - p));
                            }
                        }
                    }
                }
            }
            merged
        };
        for hub in &mut self.hubs {
            hub.trainer.network_mut().import_params(&merged)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_data::shard;
    use caltrain_nn::{zoo, KernelMode};
    use caltrain_data::synthcifar;
    use caltrain_nn::metrics::evaluate;

    fn cluster(hub_count: usize, n: usize, seed: u64) -> (HubCluster, Dataset) {
        let (train, test) = synthcifar::generate(n, 40, seed);
        let pools = shard::split(&train, hub_count, seed);
        let net = zoo::cifar10_10layer_scaled(32, seed).unwrap();
        let cluster = HubCluster::new(
            &net,
            pools,
            Partition { cut: 2 },
            Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
            16,
            None,
            seed,
        )
        .unwrap();
        (cluster, test)
    }

    #[test]
    fn hubs_start_from_identical_weights_and_stay_merged() {
        let (mut cluster, _) = cluster(3, 60, 1);
        assert_eq!(cluster.len(), 3);
        let out = cluster.train_round(1).unwrap();
        assert_eq!(out.hub_losses.len(), 3);
        // After aggregation every hub holds the merged model.
        let reference = cluster.hubs[0].trainer.network().export_params();
        for hub in &cluster.hubs[1..] {
            assert_eq!(hub.trainer.network().export_params(), reference);
        }
        assert!(out.round_time.seconds > 0.0);
    }

    #[test]
    fn federated_rounds_learn_the_task() {
        let (mut cluster, test) = cluster(2, 200, 2);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        // Enough rounds to separate the merged model from chance with
        // margin; fewer leaves it hovering at the 0.2 threshold.
        for round in 0..8 {
            let out = cluster.train_round(1).unwrap();
            let mean = out.hub_losses.iter().sum::<f32>() / out.hub_losses.len() as f32;
            if round == 0 {
                first = mean;
            }
            last = mean;
        }
        assert!(last < first, "federated loss must fall: {first} -> {last}");
        let acc = evaluate(
            cluster.global_model_mut(),
            test.images(),
            test.labels(),
            64,
            KernelMode::Native,
        )
        .unwrap();
        assert!(acc.top1 > 0.2, "merged model must beat chance, got {}", acc.top1);
    }

    #[test]
    fn single_hub_cluster_equals_plain_training() {
        // With one hub, aggregation is the identity: the cluster must
        // match a lone PartitionedTrainer bit for bit.
        let (train, _) = synthcifar::generate(40, 10, 3);
        let net = zoo::cifar10_10layer_scaled(32, 3).unwrap();
        let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };

        let mut single = HubCluster::new(
            &net,
            vec![train.clone()],
            Partition { cut: 2 },
            hyper,
            16,
            None,
            7,
        )
        .unwrap();
        single.train_round(2).unwrap();

        let platform = Platform::with_seed(b"hub-0-7");
        let enclave = platform
            .create_enclave(&EnclaveConfig {
                name: "x".into(),
                code_identity: TRAINING_ENCLAVE_CODE.to_vec(),
                heap_bytes: 1 << 22,
            })
            .unwrap();
        let mut lone = PartitionedTrainer::new(
            net,
            Partition { cut: 2 },
            platform,
            &enclave,
            16,
            7 ^ 1,
        )
        .unwrap();
        for _ in 0..2 {
            lone.train_epoch(&train, &enclave, &hyper, 16, None).unwrap();
        }
        assert_eq!(
            single.global_model().export_params(),
            lone.network().export_params(),
        );
    }

    #[test]
    fn parallel_round_bit_identical_to_sequential() {
        // The determinism guarantee: same seed, same data => the same
        // aggregated weights, losses and simulated times whether hubs
        // run on one thread or four.
        let (mut sequential, _) = cluster(4, 80, 9);
        sequential.set_parallelism(Parallelism::sequential());
        let (mut parallel, _) = cluster(4, 80, 9);
        parallel.set_parallelism(Parallelism::new(4));

        for round in 0..2 {
            let a = sequential.train_round(2).unwrap();
            let b = parallel.train_round(2).unwrap();
            assert_eq!(a, b, "round {round} outcomes must match bit for bit");
        }
        assert_eq!(
            sequential.global_model().export_params(),
            parallel.global_model().export_params(),
            "aggregated weights must be identical under parallel execution"
        );
    }

    #[test]
    fn hub_losses_are_means_over_local_epochs() {
        // `RoundOutcome::hub_losses` documents a mean per hub; replicate
        // three local epochs by hand on an identical cluster and compare.
        let (mut round_cluster, _) = cluster(2, 40, 11);
        round_cluster.set_parallelism(Parallelism::sequential());
        let (mut manual_cluster, _) = cluster(2, 40, 11);
        manual_cluster.set_parallelism(Parallelism::sequential());

        let HubCluster { hubs, hyper, batch_size, .. } = &mut manual_cluster;
        let mut expected = Vec::new();
        for hub in hubs.iter_mut() {
            let mut sum = 0.0f32;
            for _ in 0..3 {
                sum += hub
                    .trainer
                    .train_epoch(&hub.pool, &hub.enclave, hyper, *batch_size, None)
                    .unwrap()
                    .mean_loss;
            }
            expected.push(sum / 3.0);
        }
        let out = round_cluster.train_round(3).unwrap();
        assert_eq!(out.hub_losses, expected, "losses must average across local epochs");
    }

    fn params_bits(net: &Network) -> Vec<Vec<u32>> {
        net.export_params().iter().map(|l| l.iter().map(|v| v.to_bits()).collect()).collect()
    }

    #[test]
    fn planned_transport_defaults_to_trained() {
        let mut plan = PlannedTransport::new();
        plan.set(1, 0, HubSubmission::Crashed).set(2, 1, HubSubmission::Stale);
        assert_eq!(plan.submission(0, 0), HubSubmission::Trained);
        assert_eq!(plan.submission(1, 0), HubSubmission::Crashed);
        assert_eq!(plan.submission(2, 1), HubSubmission::Stale);
        assert_eq!(plan.entries().count(), 2);
        assert!(!HubSubmission::Crashed.submits());
        assert!(HubSubmission::Scaled(-1.0).submits());
    }

    #[test]
    fn honest_transport_round_matches_train_round() {
        let (mut a, _) = cluster(2, 40, 21);
        let (mut b, _) = cluster(2, 40, 21);
        let out_a = a.train_round(1).unwrap();
        let out_b = b.train_round_via(1, &mut HonestTransport).unwrap();
        assert_eq!(out_a, out_b);
        assert!(out_a.crashed.is_empty());
        assert_eq!(a.round(), 1);
        assert_eq!(
            params_bits(a.global_model()),
            params_bits(b.global_model()),
            "the explicit honest transport must be the default path, bit for bit"
        );
    }

    #[test]
    fn crashed_hub_is_excluded_then_restored_from_global_model() {
        // Two hubs with equal pools; hub 1 crashes. The merged model must
        // be exactly hub 0's submission (weight 1.0), which a single-hub
        // cluster over the same pool reproduces independently — and the
        // crashed hub must come back holding that merged model.
        let (train, _) = synthcifar::generate(40, 10, 31);
        let pools = shard::split(&train, 2, 31);
        let net = zoo::cifar10_10layer_scaled(32, 31).unwrap();
        let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };

        let mut pair = HubCluster::new(
            &net,
            pools.clone(),
            Partition { cut: 2 },
            hyper,
            16,
            None,
            5,
        )
        .unwrap();
        let mut plan = PlannedTransport::new();
        plan.set(0, 1, HubSubmission::Crashed);
        let out = pair.train_round_via(1, &mut plan).unwrap();
        assert_eq!(out.crashed, vec![1]);
        assert_eq!(out.hub_losses.len(), 2, "the crashed hub still trained locally");

        // Hub 0 of a cluster shares its platform/trainer seeds with hub 0
        // of any cluster built from the same cluster seed.
        let mut lone = HubCluster::new(
            &net,
            vec![pools[0].clone()],
            Partition { cut: 2 },
            hyper,
            16,
            None,
            5,
        )
        .unwrap();
        lone.train_round(1).unwrap();
        assert_eq!(
            params_bits(pair.global_model()),
            params_bits(lone.global_model()),
            "surviving hub's submission must carry the whole round"
        );
        // Restart-from-global-model: the crashed hub holds the merged model.
        assert_eq!(
            params_bits(pair.hubs[1].trainer.network()),
            params_bits(pair.global_model()),
        );
    }

    #[test]
    fn all_crashed_round_is_lost_and_model_survives() {
        let (mut cluster, _) = cluster(2, 40, 41);
        let before = params_bits(cluster.global_model());
        let mut plan = PlannedTransport::new();
        plan.set(0, 0, HubSubmission::Crashed).set(0, 1, HubSubmission::Crashed);
        let out = cluster.train_round_via(1, &mut plan).unwrap();
        assert_eq!(out.crashed, vec![0, 1]);
        assert_eq!(
            params_bits(cluster.global_model()),
            before,
            "a fully-crashed round must leave the global model untouched"
        );
        assert_eq!(cluster.round(), 1, "the lost round still advances the counter");
    }

    #[test]
    fn stale_submission_equals_zero_scaled() {
        let (mut stale, _) = cluster(2, 40, 51);
        let (mut scaled, _) = cluster(2, 40, 51);
        let mut stale_plan = PlannedTransport::new();
        stale_plan.set(0, 1, HubSubmission::Stale);
        let mut scaled_plan = PlannedTransport::new();
        scaled_plan.set(0, 1, HubSubmission::Scaled(0.0));
        stale.train_round_via(1, &mut stale_plan).unwrap();
        scaled.train_round_via(1, &mut scaled_plan).unwrap();
        assert_eq!(
            stale.global_model().export_params(),
            scaled.global_model().export_params(),
            "Scaled(0.0) must degenerate to a stale pre-round submission"
        );
    }

    #[test]
    fn byzantine_submission_changes_the_merge_but_hubs_stay_synced() {
        let (mut honest, _) = cluster(2, 40, 61);
        let (mut byzantine, _) = cluster(2, 40, 61);
        honest.train_round(1).unwrap();
        let mut plan = PlannedTransport::new();
        plan.set(0, 1, HubSubmission::Scaled(-1.0)); // sign-flipped update
        byzantine.train_round_via(1, &mut plan).unwrap();
        assert_ne!(
            honest.global_model().export_params(),
            byzantine.global_model().export_params(),
            "a sign-flipped submission must perturb the merged model"
        );
        let reference = byzantine.hubs[0].trainer.network().export_params();
        for hub in &byzantine.hubs[1..] {
            assert_eq!(
                hub.trainer.network().export_params(),
                reference,
                "every hub still receives the (perturbed) merged model"
            );
        }
    }

    #[test]
    fn crash_restart_bitwise_identical_across_worker_counts() {
        // The determinism guarantee extended to faults: the same crash /
        // stale / byzantine plan yields bit-identical trajectories whether
        // hubs run on one thread or four.
        let plan_for = || {
            let mut plan = PlannedTransport::new();
            plan.set(0, 2, HubSubmission::Crashed)
                .set(1, 1, HubSubmission::Stale)
                .set(1, 3, HubSubmission::Scaled(-1.0));
            plan
        };
        let (mut sequential, _) = cluster(4, 80, 71);
        sequential.set_parallelism(Parallelism::sequential());
        let (mut parallel, _) = cluster(4, 80, 71);
        parallel.set_parallelism(Parallelism::new(4));

        let mut seq_plan = plan_for();
        let mut par_plan = plan_for();
        for round in 0..2 {
            let a = sequential.train_round_via(2, &mut seq_plan).unwrap();
            let b = parallel.train_round_via(2, &mut par_plan).unwrap();
            assert_eq!(a, b, "faulted round {round} outcomes must match bit for bit");
        }
        assert_eq!(
            params_bits(sequential.global_model()),
            params_bits(parallel.global_model()),
            "crashed-then-restored trajectory must be worker-count invariant"
        );
    }

    #[test]
    fn before_round_runs_sequentially_with_every_platform() {
        // The environment-fault seam: before_round sees all hub platforms
        // in hub order, once per round, and perturbations it applies
        // (clock skew here) are visible in the round outcome.
        struct SkewTransport {
            calls: Vec<(usize, usize)>, // (round, platform count)
        }
        impl RoundTransport for SkewTransport {
            fn submission(&mut self, _round: usize, _hub: usize) -> HubSubmission {
                HubSubmission::Trained
            }
            fn before_round(&mut self, round: usize, platforms: &[&Platform]) {
                self.calls.push((round, platforms.len()));
                // Halve hub 1's clock: its simulated round time doubles.
                let base = platforms[1].clock_hz();
                platforms[1].set_clock_hz(base / 2.0);
            }
        }

        let (mut skewed, _) = cluster(2, 40, 81);
        let (mut honest, _) = cluster(2, 40, 81);
        let mut transport = SkewTransport { calls: Vec::new() };
        let out_skewed = skewed.train_round_via(1, &mut transport).unwrap();
        let out_honest = honest.train_round(1).unwrap();

        assert_eq!(transport.calls, vec![(0, 2)]);
        // Identical work (cycles), dilated time on the skewed hub only.
        assert_eq!(out_skewed.hub_losses, out_honest.hub_losses);
        assert_eq!(
            out_skewed.hub_times[0].seconds.to_bits(),
            out_honest.hub_times[0].seconds.to_bits()
        );
        assert_eq!(
            out_skewed.hub_times[1].seconds.to_bits(),
            (out_honest.hub_times[1].seconds * 2.0).to_bits()
        );
        // Skew never touches numerics: the merged models stay bitwise equal.
        assert_eq!(
            params_bits(skewed.global_model()),
            params_bits(honest.global_model())
        );
        // The default transport keeps the no-op behavior.
        HonestTransport.before_round(0, &[]);
    }

    #[test]
    fn empty_cluster_rejected() {
        let net = zoo::cifar10_10layer_scaled(32, 4).unwrap();
        assert!(matches!(
            HubCluster::new(
                &net,
                vec![],
                Partition { cut: 2 },
                Hyper::default(),
                16,
                None,
                0
            ),
            Err(CalTrainError::StateViolation(_))
        ));
    }
}
