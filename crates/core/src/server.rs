//! The training server: hosts the training enclave, receives provisioned
//! keys, authenticates sealed uploads and assembles the decrypted pool.

use std::collections::{HashMap, HashSet};

use caltrain_data::sealed::{open_batch, SealedBatch};
use caltrain_data::Dataset;
use caltrain_enclave::{ChannelServer, Enclave, EnclaveConfig, Platform, Quote};
use caltrain_runtime::{par_map, Parallelism};

use crate::CalTrainError;

/// Statistics of one ingestion pass — the paper's authenticity/integrity
/// checking outcome (§IV-A): how many batches were accepted into the
/// pipeline and how many were discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Batches whose GCM tag verified under the claimed source's key.
    pub accepted: usize,
    /// Batches discarded: bad tag, unknown source, malformed payload,
    /// or replayed. Duplicates are included here, so
    /// `accepted + discarded` always equals the number of batches seen.
    pub discarded: usize,
    /// Replayed batches: authenticated fine but their `(source, nonce)`
    /// pair was already accepted — the replay-defense sub-category of
    /// [`IngestStats::discarded`].
    pub duplicates: usize,
    /// Training instances accepted in total.
    pub instances: usize,
}

/// A stream of sealed uploads headed for [`TrainingServer::ingest_from`].
///
/// The honest implementation just hands over each participant's upload
/// once, in order; a fault-injecting implementation (the `caltrain-sim`
/// crate's channel) may drop, duplicate, reorder or corrupt batches in
/// transit. The server cannot tell the difference — that is the point of
/// the seam.
pub trait BatchSource {
    /// The next upload to deliver, or `None` when the stream is drained.
    fn next_upload(&mut self) -> Option<Vec<SealedBatch>>;
}

/// The trivial [`BatchSource`]: yields each queued upload once, in order.
#[derive(Debug, Default)]
pub struct QueuedUploads {
    uploads: std::collections::VecDeque<Vec<SealedBatch>>,
}

impl QueuedUploads {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one upload to the back of the queue.
    pub fn push(&mut self, upload: Vec<SealedBatch>) -> &mut Self {
        self.uploads.push_back(upload);
        self
    }
}

impl BatchSource for QueuedUploads {
    fn next_upload(&mut self) -> Option<Vec<SealedBatch>> {
        self.uploads.pop_front()
    }
}

/// The CalTrain training server.
///
/// Owns the simulated platform and the training enclave. Provisioned
/// participant keys live logically *inside* the enclave — nothing outside
/// this struct can read them, mirroring the paper's trust boundary.
pub struct TrainingServer {
    platform: Platform,
    enclave: Enclave,
    /// Participant id → provisioned AES-128 key (enclave-resident state).
    keys: HashMap<u32, [u8; 16]>,
    /// `(source, nonce)` pairs of every batch accepted so far — the
    /// replay ledger. A batch whose pair is already here authenticated
    /// once before; re-accepting it would double-weight its instances.
    accepted_nonces: HashSet<(u32, [u8; 12])>,
    pool: Option<Dataset>,
    stats: IngestStats,
    parallelism: Parallelism,
}

impl std::fmt::Debug for TrainingServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingServer")
            .field("enclave", &self.enclave.name())
            .field("provisioned_keys", &self.keys.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// The code identity every participant agrees on for the training
/// enclave (paper §III "Consensus and Cooperation"); changing the trainer
/// changes the measurement and participants will refuse to provision.
pub const TRAINING_ENCLAVE_CODE: &[u8] = b"caltrain-training-enclave-v1";

impl TrainingServer {
    /// Launches the training enclave on `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] if the enclave cannot launch.
    pub fn launch(platform: Platform, heap_bytes: usize) -> Result<Self, CalTrainError> {
        let enclave = platform.create_enclave(&EnclaveConfig {
            name: "caltrain-trainer".into(),
            code_identity: TRAINING_ENCLAVE_CODE.to_vec(),
            heap_bytes,
        })?;
        Ok(TrainingServer {
            platform,
            enclave,
            keys: HashMap::new(),
            accepted_nonces: HashSet::new(),
            pool: None,
            stats: IngestStats::default(),
            parallelism: Parallelism::default(),
        })
    }

    /// Sets the worker-pool knob for batch ingestion (defaults to
    /// [`Parallelism::default`]: sequential unless `CALTRAIN_WORKERS`
    /// is set). Ingestion results — pool contents, order, statistics
    /// and simulated-clock charges — are identical at any worker count.
    ///
    /// Setting a parallel budget pre-spawns the persistent runtime pool
    /// so the first ingest does not pay thread creation.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        caltrain_runtime::pool::warm(parallelism.workers());
        self.parallelism = parallelism;
    }

    /// The worker-pool knob in force.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The hosting platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The training enclave.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Begins a provisioning handshake: the enclave generates an
    /// ephemeral key pair and a binding quote for the participant to
    /// verify.
    pub fn begin_provisioning(&self) -> (ChannelServer, Quote, [u8; 32]) {
        let server = ChannelServer::new(&self.enclave);
        let (quote, public) = server.hello();
        (server, quote, public)
    }

    /// Completes a provisioning handshake: accepts the participant's
    /// channel key, opens the first record and installs the provisioned
    /// data key inside the enclave.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] on channel violations and
    /// [`CalTrainError::StateViolation`] on malformed key records.
    pub fn finish_provisioning(
        &mut self,
        server: ChannelServer,
        client_public: &[u8; 32],
        key_record: &[u8],
    ) -> Result<(), CalTrainError> {
        let mut channel = server.accept(client_public)?;
        self.enclave.charge_ecall(key_record.len());
        let message = channel.recv(key_record)?;
        if message.len() != 20 {
            return Err(CalTrainError::StateViolation("malformed key record"));
        }
        let id = u32::from_le_bytes(message[..4].try_into().expect("length checked"));
        let key: [u8; 16] = message[4..].try_into().expect("length checked");
        self.keys.insert(id, key);
        Ok(())
    }

    /// Number of provisioned participants.
    pub fn provisioned(&self) -> usize {
        self.keys.len()
    }

    /// Ingests sealed batches: authenticates each under its claimed
    /// source's provisioned key, decrypts inside the enclave, and
    /// appends to the training pool. Batches from unknown sources or
    /// failing authentication are **discarded**, not errors — exactly
    /// the paper's behaviour for illegitimate channels. An authenticated
    /// batch whose `(source, nonce)` pair was already accepted is a
    /// **replay**: discarded and counted in [`IngestStats::duplicates`],
    /// so a network-level duplicator cannot double-weight a
    /// participant's data.
    pub fn ingest(&mut self, batches: &[SealedBatch]) -> IngestStats {
        // GCM-verify + decrypt is pure per batch (keyed only by the
        // claimed source), so it fans out across the worker pool. All
        // stateful work — ecall charging, pool assembly, statistics —
        // happens in the sequential fold, in batch order, so the outcome
        // is identical at any worker count. `None` marks an unknown
        // source. Work proceeds chunk by chunk to bound how much
        // decrypted-but-not-yet-pooled plaintext is alive at once.
        let chunk_len = (self.parallelism.workers() * 8).max(1);
        let mut pass = IngestStats::default();
        for chunk in batches.chunks(chunk_len) {
            let keys = &self.keys;
            let opened = par_map(self.parallelism, chunk, |_, batch| {
                keys.get(&batch.source.0).map(|key| open_batch(batch, key))
            });
            for (batch, outcome) in chunk.iter().zip(opened) {
                self.enclave.charge_ecall(batch.ciphertext.len());
                match outcome {
                    Some(Ok(opened)) => {
                        // The replay ledger is consulted here in the
                        // sequential fold (a duplicate inside one chunk
                        // may decrypt twice in parallel — wasted work,
                        // never wrong results).
                        if self.accepted_nonces.insert((batch.source.0, batch.nonce)) {
                            pass.instances += opened.len();
                            pass.accepted += 1;
                            self.pool = Some(match self.pool.take() {
                                None => opened,
                                Some(pool) => pool.concat(&opened),
                            });
                        } else {
                            pass.duplicates += 1;
                            pass.discarded += 1;
                        }
                    }
                    Some(Err(_)) | None => pass.discarded += 1,
                }
            }
        }
        self.stats.accepted += pass.accepted;
        self.stats.discarded += pass.discarded;
        self.stats.duplicates += pass.duplicates;
        self.stats.instances += pass.instances;
        pass
    }

    /// Drains a [`BatchSource`] upload by upload through
    /// [`TrainingServer::ingest`], returning the combined statistics.
    /// This is the seam a fault-injecting channel plugs into: the
    /// server's behaviour is exactly as if each upload arrived over the
    /// network in the order the source yields them.
    pub fn ingest_from(&mut self, source: &mut dyn BatchSource) -> IngestStats {
        let mut combined = IngestStats::default();
        while let Some(upload) = source.next_upload() {
            let pass = self.ingest(&upload);
            combined.accepted += pass.accepted;
            combined.discarded += pass.discarded;
            combined.duplicates += pass.duplicates;
            combined.instances += pass.instances;
        }
        combined
    }

    /// Cumulative ingestion statistics.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The decrypted training pool (enclave-resident).
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::StateViolation`] before any successful
    /// ingestion.
    pub fn pool(&self) -> Result<&Dataset, CalTrainError> {
        self.pool
            .as_ref()
            .ok_or(CalTrainError::StateViolation("no training data ingested"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::Participant;
    use caltrain_data::{Dataset, ParticipantId};
    use caltrain_tensor::Tensor;

    fn shard(n: usize, label: usize) -> Dataset {
        Dataset::new(Tensor::from_fn(&[n, 1, 4, 4], |i| i as f32 / 100.0), vec![label; n])
    }

    fn provision(server: &mut TrainingServer, p: &Participant) {
        let (chan, quote, server_pub) = server.begin_provisioning();
        let service = server.platform().attestation_service();
        let expected = server.enclave().measurement();
        let (record, client_pub) =
            p.provision_key(&service, &expected, &quote, &server_pub).unwrap();
        server.finish_provisioning(chan, &client_pub, &record).unwrap();
    }

    #[test]
    fn provisioning_and_ingestion_happy_path() {
        let platform = Platform::with_seed(b"server-test");
        let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
        let mut alice = Participant::new(ParticipantId(0), shard(4, 0), b"alice");
        let mut bob = Participant::new(ParticipantId(1), shard(6, 1), b"bob");
        provision(&mut server, &alice);
        provision(&mut server, &bob);
        assert_eq!(server.provisioned(), 2);

        let mut batches = alice.seal_upload(4);
        batches.extend(bob.seal_upload(3));
        let stats = server.ingest(&batches);
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.discarded, 0);
        assert_eq!(stats.instances, 10);
        let pool = server.pool().unwrap();
        assert_eq!(pool.len(), 10);
        // Provenance survived the encrypted round trip.
        assert_eq!(pool.sources().iter().filter(|s| s.0 == 0).count(), 4);
        assert_eq!(pool.sources().iter().filter(|s| s.0 == 1).count(), 6);
    }

    #[test]
    fn parallel_ingest_bit_identical_to_sequential() {
        // Same platform seed, same sealed uploads (including a tampered
        // batch and an unregistered source): stats, pool contents, pool
        // order and simulated-clock charges must not depend on the
        // worker count.
        let build = || {
            let platform = Platform::with_seed(b"server-par-test");
            let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
            let alice = Participant::new(ParticipantId(0), shard(8, 0), b"alice");
            let bob = Participant::new(ParticipantId(1), shard(6, 1), b"bob");
            provision(&mut server, &alice);
            provision(&mut server, &bob);
            (server, alice, bob)
        };

        let (mut sequential, mut alice, mut bob) = build();
        sequential.set_parallelism(Parallelism::sequential());
        let (mut parallel, _, _) = build();
        parallel.set_parallelism(Parallelism::new(4));

        let mut batches = alice.seal_upload(4);
        batches.extend(bob.seal_upload(3));
        let mid = batches[1].ciphertext.len() / 2;
        batches[1].ciphertext[mid] ^= 1; // fails authentication
        let mut mallory = Participant::new(ParticipantId(9), shard(4, 0), b"mallory");
        batches.extend(mallory.seal_upload(4)); // unknown source

        let a = sequential.ingest(&batches);
        let b = parallel.ingest(&batches);
        assert_eq!(a, b, "IngestStats must be identical under parallel ingestion");
        assert_eq!(a.accepted, 3);
        assert_eq!(a.discarded, 2);

        let pool_a = sequential.pool().unwrap();
        let pool_b = parallel.pool().unwrap();
        assert_eq!(pool_a.images().as_slice(), pool_b.images().as_slice());
        assert_eq!(pool_a.labels(), pool_b.labels());
        assert_eq!(pool_a.sources(), pool_b.sources());
        assert_eq!(
            sequential.platform().cycles(),
            parallel.platform().cycles(),
            "clock charging must not depend on the worker count"
        );
    }

    #[test]
    fn unregistered_source_discarded() {
        let platform = Platform::with_seed(b"server-test-2");
        let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
        let mut mallory = Participant::new(ParticipantId(9), shard(4, 0), b"mallory");
        // Mallory never provisioned a key.
        let stats = server.ingest(&mallory.seal_upload(4));
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.discarded, 1);
        assert!(server.pool().is_err());
    }

    #[test]
    fn tampered_batch_discarded() {
        let platform = Platform::with_seed(b"server-test-3");
        let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
        let mut alice = Participant::new(ParticipantId(0), shard(4, 0), b"alice");
        provision(&mut server, &alice);
        let mut batches = alice.seal_upload(4);
        let mid = batches[0].ciphertext.len() / 2;
        batches[0].ciphertext[mid] ^= 1;
        let stats = server.ingest(&batches);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.discarded, 1);
    }

    #[test]
    fn replayed_batches_are_detected_and_discarded() {
        let platform = Platform::with_seed(b"server-test-5");
        let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
        let mut alice = Participant::new(ParticipantId(0), shard(8, 0), b"alice");
        provision(&mut server, &alice);

        let upload = alice.seal_upload(4); // 2 batches
        let first = server.ingest(&upload);
        assert_eq!(first.accepted, 2);
        assert_eq!(first.duplicates, 0);

        // A network adversary replays the whole upload verbatim.
        let replay = server.ingest(&upload);
        assert_eq!(replay.accepted, 0);
        assert_eq!(replay.duplicates, 2);
        assert_eq!(replay.discarded, 2, "duplicates count as discarded");
        assert_eq!(replay.instances, 0);
        assert_eq!(server.pool().unwrap().len(), 8, "the pool must not double");

        // Duplicates inside a single upload are caught too.
        let mut doubled = alice.seal_upload(4);
        doubled.push(doubled[0].clone());
        let stats = server.ingest(&doubled);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(server.stats().duplicates, 3, "cumulative stats track duplicates");

        // A fresh upload (new nonces via the upload counter) still passes.
        let fresh = server.ingest(&alice.seal_upload(4));
        assert_eq!(fresh.accepted, 2);
        assert_eq!(fresh.duplicates, 0);
    }

    #[test]
    fn queued_uploads_match_direct_ingest() {
        let build = || {
            let platform = Platform::with_seed(b"server-test-6");
            let mut server = TrainingServer::launch(platform, 1 << 20).unwrap();
            let alice = Participant::new(ParticipantId(0), shard(6, 0), b"alice");
            let bob = Participant::new(ParticipantId(1), shard(4, 1), b"bob");
            provision(&mut server, &alice);
            provision(&mut server, &bob);
            (server, alice, bob)
        };

        let (mut direct, mut alice, mut bob) = build();
        let upload_a = alice.seal_upload(3);
        let upload_b = bob.seal_upload(2);
        let mut all = upload_a.clone();
        all.extend(upload_b.clone());
        let direct_stats = direct.ingest(&all);

        let (mut streamed, _, _) = build();
        let mut queue = QueuedUploads::new();
        queue.push(upload_a).push(upload_b);
        let streamed_stats = streamed.ingest_from(&mut queue);

        assert_eq!(direct_stats, streamed_stats);
        assert_eq!(
            direct.pool().unwrap().labels(),
            streamed.pool().unwrap().labels(),
            "the seam must be behaviour-preserving for honest streams"
        );
        assert_eq!(direct.platform().cycles(), streamed.platform().cycles());
    }

    #[test]
    fn wrong_enclave_blocks_provisioning() {
        let platform = Platform::with_seed(b"server-test-4");
        // A malicious server launches a different trainer...
        let rogue = platform
            .create_enclave(&EnclaveConfig {
                name: "rogue".into(),
                code_identity: b"rogue-trainer".to_vec(),
                heap_bytes: 4096,
            })
            .unwrap();
        let rogue_server = ChannelServer::new(&rogue);
        let (quote, server_pub) = rogue_server.hello();
        let alice = Participant::new(ParticipantId(0), shard(2, 0), b"alice");
        // ...and Alice, expecting the agreed measurement, refuses.
        let expected = caltrain_enclave::MrEnclave::build(TRAINING_ENCLAVE_CODE, 1 << 20);
        assert!(alice
            .provision_key(&platform.attestation_service(), &expected, &quote, &server_pub)
            .is_err());
    }
}
