//! The fingerprinting and query stages (paper Fig. 2, §IV-C).

use caltrain_data::Dataset;
use caltrain_enclave::{Enclave, EnclaveConfig, Platform};
use caltrain_fingerprint::{
    Fingerprint, IndexedDb, LinkageDb, LinkageRecord, QueryMatch, QueryStrategy,
};
use caltrain_nn::{KernelMode, Network};
use caltrain_tensor::Tensor;

use crate::CalTrainError;

/// Agreed code identity of the fingerprinting enclave.
pub const FINGERPRINT_ENCLAVE_CODE: &[u8] = b"caltrain-fingerprint-enclave-v1";

/// The fingerprinting stage: a dedicated enclave that encloses the
/// *entire* trained network (linkage generation is a one-time pass, so
/// the paper accepts the full-model enclave cost here) and derives the
/// linkage record of every training instance.
pub struct FingerprintingStage {
    enclave: Enclave,
}

impl std::fmt::Debug for FingerprintingStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FingerprintingStage").field("enclave", &self.enclave.name()).finish()
    }
}

impl FingerprintingStage {
    /// Launches the fingerprinting enclave.
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Enclave`] on launch failure.
    pub fn launch(platform: &Platform, heap_bytes: usize) -> Result<Self, CalTrainError> {
        let enclave = platform.create_enclave(&EnclaveConfig {
            name: "caltrain-fingerprinter".into(),
            code_identity: FINGERPRINT_ENCLAVE_CODE.to_vec(),
            heap_bytes,
        })?;
        Ok(FingerprintingStage { enclave })
    }

    /// The stage's enclave (e.g. for attestation by participants).
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Builds the linkage database for `pool` under `net`: for every
    /// instance, Ω = [fingerprint, label, source, hash]. All compute is
    /// charged at the in-enclave rate.
    ///
    /// # Errors
    ///
    /// Propagates embedding failures.
    pub fn build_db(
        &self,
        net: &mut Network,
        pool: &Dataset,
        batch_size: usize,
    ) -> Result<LinkageDb, CalTrainError> {
        let mut db = LinkageDb::new();
        let region = self.enclave.alloc((net.param_count() * 4).max(1))?;
        for (start, end) in pool.batch_bounds(batch_size) {
            let idx: Vec<usize> = (start..end).collect();
            let chunk = pool.subset(&idx);
            self.enclave.charge_ecall(chunk.images().volume() * 4);
            self.enclave.touch(region);

            let embeddings = net.embed(chunk.images(), KernelMode::Strict)?;
            let flops: u64 = net.layer_flops().iter().sum::<u64>() * chunk.len() as u64;
            self.enclave.charge_flops(flops);

            let fingerprints = Fingerprint::from_embedding_rows(&embeddings)?;
            for (offset, fp) in fingerprints.into_iter().enumerate() {
                let i = start + offset;
                db.insert(LinkageRecord::new(
                    fp,
                    pool.labels()[i],
                    pool.sources()[i].0,
                    &pool.image_bytes(i),
                ));
            }
        }
        self.enclave.free(region)?;
        Ok(db)
    }
}

/// One neighbour in an investigation report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Linkage-record index.
    pub record: usize,
    /// L2 fingerprint distance to the mispredicted input.
    pub distance: f32,
    /// Contributing participant.
    pub source: u32,
    /// Training label of the neighbour.
    pub label: usize,
}

/// The outcome of querying one misprediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Investigation {
    /// The model's (mis)prediction for the submitted input.
    pub predicted: usize,
    /// Nearest class-mates, ascending by distance (Fig. 8 rows).
    pub neighbors: Vec<Neighbor>,
    /// Distinct participants to demand original data from.
    pub demand_from: Vec<u32>,
}

/// The online query service over a released linkage database.
///
/// Queries dispatch by [`QueryStrategy`]: the exact oracle scan
/// (default) or the sharded LSH index with exact SIMD rerank
/// ([`IndexedDb`]) for sub-linear serving at large record counts. The
/// indexed path returns bitwise-identical matches whenever its
/// candidate set covers the true top-k; the oracle stays reachable via
/// [`QueryService::db`] for verification.
#[derive(Debug, Clone)]
pub struct QueryService {
    db: IndexedDb,
}

impl QueryService {
    /// Wraps a linkage database with the exact-scan oracle strategy.
    pub fn new(db: LinkageDb) -> Self {
        QueryService { db: IndexedDb::new(db) }
    }

    /// Wraps a linkage database with an explicit query strategy,
    /// building the serving index up front for
    /// [`QueryStrategy::Indexed`].
    pub fn with_strategy(db: LinkageDb, strategy: QueryStrategy) -> Self {
        QueryService { db: IndexedDb::with_strategy(db, strategy) }
    }

    /// The underlying exact database (the verification oracle).
    pub fn db(&self) -> &LinkageDb {
        self.db.db()
    }

    /// The strategy answering [`QueryService::investigate`] queries.
    pub fn strategy(&self) -> QueryStrategy {
        self.db.strategy()
    }

    /// Investigates a runtime misprediction: passes the input through the
    /// model, extracts its fingerprint, and returns the `k` nearest
    /// training fingerprints with the same (mis)predicted label.
    ///
    /// # Errors
    ///
    /// Propagates model failures; returns [`CalTrainError::Query`] if the
    /// predicted class has no linkage records.
    pub fn investigate(
        &self,
        net: &mut Network,
        input: &Tensor,
        k: usize,
    ) -> Result<Investigation, CalTrainError> {
        let d = input.dims();
        let batch = if d.len() == 3 {
            let mut nd = vec![1usize];
            nd.extend_from_slice(d);
            input.reshaped(&nd)?
        } else {
            input.clone()
        };
        let predicted = net.predict(&batch, KernelMode::Native)?[0];
        let embedding = net.embed(&batch, KernelMode::Native)?;
        let probe = Fingerprint::from_embedding(embedding.as_slice());

        let matches = self.db.query(&probe, predicted, k);
        if matches.is_empty() {
            return Err(CalTrainError::Query("predicted class has no linkage records"));
        }
        Ok(self.report(predicted, &matches))
    }

    fn report(&self, predicted: usize, matches: &[QueryMatch]) -> Investigation {
        let neighbors: Vec<Neighbor> = matches
            .iter()
            .filter_map(|m| {
                self.db().record(m.record).map(|r| Neighbor {
                    record: m.record,
                    distance: m.distance,
                    source: r.source,
                    label: r.label,
                })
            })
            .collect();
        let demand_from = self.db().sources_of(matches);
        Investigation { predicted, neighbors, demand_from }
    }

    /// Verifies that data handed over by a participant is byte-identical
    /// to the training instance committed in record `record` (the `H`
    /// check of §IV-C).
    ///
    /// # Errors
    ///
    /// Returns [`CalTrainError::Query`] for unknown records.
    pub fn verify_submission(&self, record: usize, submitted: &[u8]) -> Result<bool, CalTrainError> {
        let r = self.db().record(record).ok_or(CalTrainError::Query("unknown record"))?;
        Ok(r.verify_instance(submitted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_nn::{Activation, NetworkBuilder};

    fn net(seed: u64) -> Network {
        NetworkBuilder::new(&[1, 6, 6])
            .conv(4, 3, 1, 1, Activation::Leaky)
            .global_avgpool()
            .softmax()
            .cost()
            .build(seed)
            .unwrap()
    }

    fn pool(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 6, 6], |i| ((i * 13) % 29) as f32 / 28.0);
        Dataset::new(images, (0..n).map(|i| i % 4).collect())
    }

    #[test]
    fn db_built_with_full_provenance() {
        let platform = Platform::with_seed(b"fp-test");
        let stage = FingerprintingStage::launch(&platform, 1 << 16).unwrap();
        let mut model = net(1);
        let data = pool(10);
        let db = stage.build_db(&mut model, &data, 4).unwrap();
        assert_eq!(db.len(), 10);
        for (i, r) in db.records().iter().enumerate() {
            assert_eq!(r.label, data.labels()[i]);
            assert!(r.verify_instance(&data.image_bytes(i)));
            let norm: f32 = r.fingerprint.values().iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "fingerprints are normalised");
        }
        assert!(platform.cycles() > 0, "fingerprinting charges enclave time");
    }

    #[test]
    fn investigation_returns_class_pruned_neighbors() {
        let platform = Platform::with_seed(b"fp-test-2");
        let stage = FingerprintingStage::launch(&platform, 1 << 16).unwrap();
        let mut model = net(2);
        let data = pool(20);
        let db = stage.build_db(&mut model, &data, 8).unwrap();
        let service = QueryService::new(db);

        let probe = data.image(3);
        let inv = service.investigate(&mut model, &probe, 5).unwrap();
        assert!(!inv.neighbors.is_empty());
        assert!(inv.neighbors.len() <= 5);
        for n in &inv.neighbors {
            assert_eq!(n.label, inv.predicted, "Y-pruning");
        }
        for pair in inv.neighbors.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        assert!(!inv.demand_from.is_empty());
    }

    #[test]
    fn training_instance_is_its_own_nearest_neighbor() {
        use caltrain_fingerprint::Fingerprint;
        use caltrain_nn::KernelMode;

        let platform = Platform::with_seed(b"fp-test-3");
        let stage = FingerprintingStage::launch(&platform, 1 << 16).unwrap();
        let mut model = net(3);
        let data = pool(12);
        let db = stage.build_db(&mut model, &data, 12).unwrap();

        // Probe with instance 5's own fingerprint in its own class: the
        // instance itself must come back at distance ~0.
        let batch = data.image(5).reshaped(&[1, 1, 6, 6]).unwrap();
        let embedding = model.embed(&batch, KernelMode::Native).unwrap();
        let probe = Fingerprint::from_embedding(embedding.as_slice());
        let hits = db.query(&probe, data.labels()[5], 1);
        assert_eq!(hits[0].record, 5);
        assert!(hits[0].distance < 1e-5);
    }

    #[test]
    fn indexed_strategy_matches_oracle_investigations() {
        use caltrain_fingerprint::{IndexParams, QueryStrategy};

        let platform = Platform::with_seed(b"fp-test-5");
        let stage = FingerprintingStage::launch(&platform, 1 << 16).unwrap();
        let mut model = net(5);
        let data = pool(24);
        let db = stage.build_db(&mut model, &data, 8).unwrap();

        let oracle = QueryService::new(db.clone());
        assert_eq!(oracle.strategy(), QueryStrategy::Oracle);
        let indexed = QueryService::with_strategy(
            db,
            QueryStrategy::Indexed(IndexParams {
                target_bucket: 4, // force sharding even at 24 records
                probes: usize::MAX,
                ..IndexParams::default()
            }),
        );
        assert!(matches!(indexed.strategy(), QueryStrategy::Indexed(_)));

        for i in [0usize, 7, 23] {
            let input = data.image(i);
            let want = oracle.investigate(&mut model, &input, 5).unwrap();
            let got = indexed.investigate(&mut model, &input, 5).unwrap();
            assert_eq!(got, want, "indexed investigation diverged for input {i}");
        }
    }

    #[test]
    fn submission_verification() {
        let platform = Platform::with_seed(b"fp-test-4");
        let stage = FingerprintingStage::launch(&platform, 1 << 16).unwrap();
        let mut model = net(4);
        let data = pool(6);
        let db = stage.build_db(&mut model, &data, 6).unwrap();
        let service = QueryService::new(db);
        assert!(service.verify_submission(2, &data.image_bytes(2)).unwrap());
        assert!(!service.verify_submission(2, &data.image_bytes(3)).unwrap());
        assert!(service.verify_submission(99, b"x").is_err());
    }
}
