//! Property-based tests for the SGX simulator.

use caltrain_enclave::epc::{Epc, PAGE_SIZE};
use caltrain_enclave::{EnclaveConfig, Platform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Residency never exceeds capacity and stats stay consistent under
    /// arbitrary alloc/touch/free sequences.
    #[test]
    fn epc_invariants_hold_under_arbitrary_workloads(
        capacity_pages in 2usize..32,
        ops in proptest::collection::vec((0u8..3, 1usize..16), 1..60),
    ) {
        let mut epc = Epc::new(capacity_pages * PAGE_SIZE);
        let mut regions = Vec::new();
        for (op, size) in ops {
            match op {
                0 => {
                    if let Ok(r) = epc.alloc(size * PAGE_SIZE) {
                        regions.push(r);
                    }
                }
                1 => {
                    if let Some(&r) = regions.last() {
                        let _ = epc.touch(r);
                    }
                }
                _ => {
                    if let Some(r) = regions.pop() {
                        let _ = epc.free(r);
                    }
                }
            }
            prop_assert!(epc.resident_pages() <= epc.capacity_pages());
        }
        let s = epc.stats();
        // Every eviction corresponds to a page that was added or loaded.
        prop_assert!(s.pages_evicted <= s.pages_added + s.pages_loaded);
    }

    /// Working sets within capacity never page after the first sweep.
    #[test]
    fn fitting_working_set_never_thrashes(pages in 1usize..16) {
        let mut epc = Epc::new(32 * PAGE_SIZE);
        let r = epc.alloc(pages * PAGE_SIZE).unwrap();
        let first = epc.touch(r);
        prop_assert_eq!(first.pages_added as usize, pages);
        for _ in 0..5 {
            let again = epc.touch(r);
            prop_assert_eq!(again.pages_added + again.pages_loaded + again.pages_evicted, 0);
        }
    }

    /// Sealing round-trips for arbitrary payloads and AAD, and every
    /// corruption is rejected.
    #[test]
    fn sealing_roundtrip_and_tamper(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        flip in 0usize..128,
    ) {
        let platform = Platform::with_seed(b"prop-seal");
        let enclave = platform
            .create_enclave(&EnclaveConfig {
                name: "t".into(),
                code_identity: b"code".to_vec(),
                heap_bytes: 4096,
            })
            .unwrap();
        let blob = enclave.seal(&payload, &aad);
        prop_assert_eq!(enclave.unseal(&blob, &aad).unwrap(), payload);

        let mut bad = blob.clone();
        let bit = flip % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(enclave.unseal(&bad, &aad).is_err());
    }

    /// Quotes verify iff untampered and on the issuing platform.
    #[test]
    fn quote_verification_sound(
        report in proptest::array::uniform32(any::<u8>()),
        code in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let platform = Platform::with_seed(b"prop-quote");
        let enclave = platform
            .create_enclave(&EnclaveConfig {
                name: "t".into(),
                code_identity: code,
                heap_bytes: 4096,
            })
            .unwrap();
        let mut rd = [0u8; 64];
        rd[..32].copy_from_slice(&report);
        let quote = enclave.quote(rd);
        prop_assert!(platform.attestation_service().verify(&quote).is_ok());

        let mut other_rd = rd;
        other_rd[0] ^= 1;
        let forged = quote.forged_with_report_data(other_rd);
        prop_assert!(platform.attestation_service().verify(&forged).is_err());

        let other = Platform::with_seed(b"prop-quote-other");
        prop_assert!(other.attestation_service().verify(&quote).is_err());
    }
}
