//! The attested secure channel for secret provisioning.
//!
//! Models the paper's mbedtls-SGX TLS channel (§V): after remote
//! attestation, "the secret provisioning clients run by different
//! participants create TLS channels directly to the enclave and provision
//! their symmetric keys". The handshake here is the same shape TLS 1.3
//! would give them:
//!
//! 1. the enclave generates an ephemeral X25519 key pair and issues a
//!    [`crate::Quote`] whose `report_data` is the SHA-256 hash of its
//!    ephemeral public key (binding the channel to the attested enclave —
//!    no man-in-the-middle can splice its own key in);
//! 2. the client verifies the quote against the **expected measurement**,
//!    checks the binding, and replies with its own ephemeral public key;
//! 3. both sides derive direction-separated AES-GCM session keys with
//!    HKDF over the X25519 shared secret and the handshake transcript.
//!
//! Records carry implicit sequence numbers in their nonces, so replayed,
//! reordered or dropped records fail authentication.

use caltrain_crypto::gcm::AesGcm;
use caltrain_crypto::sha256::Sha256;
use caltrain_crypto::{hkdf, x25519};

use crate::attest::{AttestationService, Quote};
use crate::enclave::Enclave;
use crate::measurement::MrEnclave;
use crate::EnclaveError;

/// Direction tag baked into record nonces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToEnclave,
    EnclaveToClient,
}

impl Direction {
    fn tag(self) -> [u8; 4] {
        match self {
            Direction::ClientToEnclave => *b"c2e\0",
            Direction::EnclaveToClient => *b"e2c\0",
        }
    }
}

/// One endpoint of an established channel.
#[derive(Debug)]
pub struct SecureChannel {
    send_cipher: AesGcm,
    recv_cipher: AesGcm,
    send_dir: Direction,
    recv_dir: Direction,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    fn nonce(dir: Direction, seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..4].copy_from_slice(&dir.tag());
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Encrypts and authenticates `plaintext` as the next record.
    pub fn send(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Self::nonce(self.send_dir, self.send_seq);
        self.send_seq += 1;
        self.send_cipher.seal(&nonce, plaintext, b"caltrain-record")
    }

    /// Authenticates and decrypts the next incoming record.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::ChannelViolation`] if the record is not the
    /// next in sequence (replay/reorder/drop) or fails authentication.
    pub fn recv(&mut self, record: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        let nonce = Self::nonce(self.recv_dir, self.recv_seq);
        let plaintext = self
            .recv_cipher
            .open(&nonce, record, b"caltrain-record")
            .map_err(|_| EnclaveError::ChannelViolation("record authentication failed"))?;
        self.recv_seq += 1;
        Ok(plaintext)
    }

    /// Records sent so far on this endpoint.
    pub fn sent_count(&self) -> u64 {
        self.send_seq
    }

    /// Records received so far on this endpoint.
    pub fn received_count(&self) -> u64 {
        self.recv_seq
    }
}

/// The enclave-side half of a pending handshake.
#[derive(Debug)]
pub struct ChannelServer {
    secret: [u8; 32],
    public: [u8; 32],
    quote: Quote,
}

impl ChannelServer {
    /// Starts a handshake inside `enclave`: generates the ephemeral key
    /// and issues the binding quote.
    pub fn new(enclave: &Enclave) -> Self {
        let secret: [u8; 32] = enclave
            .rdrand_bytes(32)
            .try_into()
            .expect("rdrand_bytes(32) returns 32");
        let public = x25519::public_key(&secret);
        let mut report_data = [0u8; 64];
        report_data[..32].copy_from_slice(Sha256::digest(&public).as_bytes());
        let quote = enclave.quote(report_data);
        ChannelServer { secret, public, quote }
    }

    /// The handshake message to ship to the client: quote + ephemeral
    /// public key.
    pub fn hello(&self) -> (Quote, [u8; 32]) {
        (self.quote.clone(), self.public)
    }

    /// Completes the handshake with the client's ephemeral public key.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::Crypto`] if the client key is degenerate.
    pub fn accept(self, client_public: &[u8; 32]) -> Result<SecureChannel, EnclaveError> {
        let shared = x25519::shared_secret(&self.secret, client_public)?;
        let (c2e, e2c) = derive_keys(&shared, &self.public, client_public)?;
        Ok(SecureChannel {
            send_cipher: AesGcm::new_128(&e2c),
            recv_cipher: AesGcm::new_128(&c2e),
            send_dir: Direction::EnclaveToClient,
            recv_dir: Direction::ClientToEnclave,
            send_seq: 0,
            recv_seq: 0,
        })
    }
}

/// The participant-side provisioning client.
#[derive(Debug)]
pub struct ProvisioningClient;

impl ProvisioningClient {
    /// Runs the client side of the handshake.
    ///
    /// Verifies the quote against `expected` (the training code all
    /// participants agreed on), checks that `report_data` binds the
    /// server's ephemeral key, and derives the session keys.
    ///
    /// Returns the established channel and the client public key that must
    /// be sent to [`ChannelServer::accept`].
    ///
    /// # Errors
    ///
    /// * [`EnclaveError::AttestationFailed`] if the quote does not verify,
    ///   attests different code, or does not bind `server_public`.
    /// * [`EnclaveError::Crypto`] if key agreement degenerates.
    pub fn connect(
        service: &AttestationService,
        expected: &MrEnclave,
        quote: &Quote,
        server_public: &[u8; 32],
        client_entropy: &[u8; 32],
    ) -> Result<(SecureChannel, [u8; 32]), EnclaveError> {
        service.verify_measurement(quote, expected)?;
        let binding = Sha256::digest(server_public);
        if quote.report_data()[..32] != binding.as_bytes()[..] {
            return Err(EnclaveError::AttestationFailed("channel binding mismatch"));
        }
        let secret = x25519::clamp_scalar(*client_entropy);
        let public = x25519::public_key(&secret);
        let shared = x25519::shared_secret(&secret, server_public)?;
        let (c2e, e2c) = derive_keys(&shared, server_public, &public)?;
        Ok((
            SecureChannel {
                send_cipher: AesGcm::new_128(&c2e),
                recv_cipher: AesGcm::new_128(&e2c),
                send_dir: Direction::ClientToEnclave,
                recv_dir: Direction::EnclaveToClient,
                send_seq: 0,
                recv_seq: 0,
            },
            public,
        ))
    }
}

/// Derives (client→enclave, enclave→client) AES-128 keys from the shared
/// secret and the handshake transcript.
fn derive_keys(
    shared: &[u8; 32],
    server_public: &[u8; 32],
    client_public: &[u8; 32],
) -> Result<([u8; 16], [u8; 16]), EnclaveError> {
    let mut transcript = Sha256::new();
    transcript.update(b"caltrain-handshake-v1");
    transcript.update(server_public);
    transcript.update(client_public);
    let salt = transcript.finalize();

    let okm = hkdf::derive(salt.as_bytes(), shared, b"caltrain-channel-keys", 32)?;
    let c2e: [u8; 16] = okm[..16].try_into().expect("requested 32 bytes");
    let e2c: [u8; 16] = okm[16..].try_into().expect("requested 32 bytes");
    Ok((c2e, e2c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnclaveConfig, Platform};

    fn handshake() -> (SecureChannel, SecureChannel) {
        let p = Platform::with_seed(b"channel-tests");
        let e = p
            .create_enclave(&EnclaveConfig {
                name: "trainer".into(),
                code_identity: b"trainer-code".to_vec(),
                heap_bytes: 4096,
            })
            .unwrap();
        let server = ChannelServer::new(&e);
        let (quote, server_pub) = server.hello();
        let (client_chan, client_pub) = ProvisioningClient::connect(
            &p.attestation_service(),
            &e.measurement(),
            &quote,
            &server_pub,
            &[0x11; 32],
        )
        .unwrap();
        let server_chan = server.accept(&client_pub).unwrap();
        (client_chan, server_chan)
    }

    #[test]
    fn end_to_end_provisioning() {
        let (mut client, mut server) = handshake();
        let record = client.send(b"participant-0 AES key: 0123456789abcdef");
        let got = server.recv(&record).unwrap();
        assert_eq!(got, b"participant-0 AES key: 0123456789abcdef");

        let reply = server.send(b"ack");
        assert_eq!(client.recv(&reply).unwrap(), b"ack");
        assert_eq!(client.sent_count(), 1);
        assert_eq!(client.received_count(), 1);
    }

    #[test]
    fn replay_rejected() {
        let (mut client, mut server) = handshake();
        let record = client.send(b"key material");
        server.recv(&record).unwrap();
        assert!(matches!(
            server.recv(&record),
            Err(EnclaveError::ChannelViolation(_))
        ));
    }

    #[test]
    fn reorder_rejected() {
        let (mut client, mut server) = handshake();
        let r1 = client.send(b"first");
        let r2 = client.send(b"second");
        assert!(matches!(server.recv(&r2), Err(EnclaveError::ChannelViolation(_))));
        // The in-order record still works after the failed attempt.
        assert_eq!(server.recv(&r1).unwrap(), b"first");
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut client, mut server) = handshake();
        let mut record = client.send(b"key material");
        record[3] ^= 0x40;
        assert!(matches!(
            server.recv(&record),
            Err(EnclaveError::ChannelViolation(_))
        ));
    }

    #[test]
    fn wrong_measurement_blocks_provisioning() {
        let p = Platform::with_seed(b"channel-tests-2");
        let e = p
            .create_enclave(&EnclaveConfig {
                name: "trainer".into(),
                code_identity: b"malicious-code".to_vec(),
                heap_bytes: 4096,
            })
            .unwrap();
        let server = ChannelServer::new(&e);
        let (quote, server_pub) = server.hello();
        let agreed = MrEnclave::build(b"trainer-code", 4096);
        assert!(matches!(
            ProvisioningClient::connect(
                &p.attestation_service(),
                &agreed,
                &quote,
                &server_pub,
                &[0x22; 32],
            ),
            Err(EnclaveError::AttestationFailed(_))
        ));
    }

    #[test]
    fn mitm_key_substitution_detected() {
        // An attacker intercepts the hello and substitutes its own key;
        // the quote's report_data no longer matches.
        let p = Platform::with_seed(b"channel-tests-3");
        let e = p
            .create_enclave(&EnclaveConfig {
                name: "trainer".into(),
                code_identity: b"trainer-code".to_vec(),
                heap_bytes: 4096,
            })
            .unwrap();
        let server = ChannelServer::new(&e);
        let (quote, _server_pub) = server.hello();
        let attacker_secret = [0x99u8; 32];
        let attacker_pub = x25519::public_key(&attacker_secret);
        assert_eq!(
            ProvisioningClient::connect(
                &p.attestation_service(),
                &e.measurement(),
                &quote,
                &attacker_pub,
                &[0x33; 32],
            )
            .err(),
            Some(EnclaveError::AttestationFailed("channel binding mismatch"))
        );
    }
}
