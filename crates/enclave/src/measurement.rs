//! Enclave measurement: the simulated `MRENCLAVE`.
//!
//! Real SGX builds `MRENCLAVE` by hashing an `ECREATE` record, then an
//! `EADD`/`EEXTEND` record for every page loaded at initialisation. The
//! simulation reproduces that structure over the enclave's code identity
//! and configuration, so two enclaves have equal measurements iff they
//! were launched from identical code and configuration — the property
//! CalTrain's consensus step relies on ("participants … validate the
//! in-enclave code … via remote attestation", paper §III).

use std::fmt;

use caltrain_crypto::sha256::{Digest, Sha256};

/// A 256-bit enclave measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MrEnclave(pub Digest);

impl MrEnclave {
    /// Builds a measurement from code bytes and configuration, mimicking
    /// the `ECREATE` → `EADD`/`EEXTEND` page-hash chain.
    pub fn build(code_identity: &[u8], heap_bytes: usize) -> Self {
        let mut h = Sha256::new();
        // ECREATE record: size + attributes.
        h.update(b"ECREATE");
        h.update(&(heap_bytes as u64).to_le_bytes());
        // EADD/EEXTEND per 4 KiB "page" of code identity.
        for (i, page) in code_identity.chunks(4096).enumerate() {
            h.update(b"EADD");
            h.update(&(i as u64).to_le_bytes());
            h.update(Sha256::digest(page).as_bytes());
        }
        MrEnclave(h.finalize())
    }

    /// The measurement digest.
    pub fn digest(&self) -> &Digest {
        &self.0
    }
}

impl fmt::Display for MrEnclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_identical_measurement() {
        let a = MrEnclave::build(b"trainer-v1", 4096);
        let b = MrEnclave::build(b"trainer-v1", 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn code_change_changes_measurement() {
        let a = MrEnclave::build(b"trainer-v1", 4096);
        let b = MrEnclave::build(b"trainer-v2", 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn config_change_changes_measurement() {
        let a = MrEnclave::build(b"trainer-v1", 4096);
        let b = MrEnclave::build(b"trainer-v1", 8192);
        assert_ne!(a, b);
    }

    #[test]
    fn page_order_matters() {
        // Two pages swapped must not collide (the per-page index is bound).
        let mut code_a = vec![0u8; 8192];
        code_a[0] = 1; // page 0 tagged 1
        let mut code_b = vec![0u8; 8192];
        code_b[4096] = 1; // page 1 tagged 1
        assert_ne!(MrEnclave::build(&code_a, 0), MrEnclave::build(&code_b, 0));
    }
}
