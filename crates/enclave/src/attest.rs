//! Remote attestation: quotes and their verification.
//!
//! The paper's workflow (§III "Consensus and Cooperation", §IV-A
//! "Establishing a Training Enclave") requires each participant to verify,
//! *before provisioning any key*, that (a) it is talking to a genuine
//! enclave on a trusted processor and (b) the enclave is running exactly
//! the agreed training code. A [`Quote`] carries the enclave measurement
//! and 64 bytes of `report_data` (used by the secure channel to bind its
//! ephemeral key), authenticated under a per-platform key; the
//! [`AttestationService`] plays the Intel Attestation Service role of
//! checking that authentication.

use caltrain_crypto::ct::ct_eq;
use caltrain_crypto::hmac::HmacSha256;

use crate::measurement::MrEnclave;
use crate::EnclaveError;

/// An attestation quote for one enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    platform_id: [u8; 16],
    measurement: MrEnclave,
    report_data: [u8; 64],
    mac: [u8; 32],
}

impl Quote {
    pub(crate) fn issue(
        platform_id: [u8; 16],
        attestation_key: &[u8; 32],
        measurement: MrEnclave,
        report_data: [u8; 64],
    ) -> Self {
        let mac = Self::mac(attestation_key, &platform_id, &measurement, &report_data);
        Quote { platform_id, measurement, report_data, mac }
    }

    fn mac(
        key: &[u8; 32],
        platform_id: &[u8; 16],
        measurement: &MrEnclave,
        report_data: &[u8; 64],
    ) -> [u8; 32] {
        let mut h = HmacSha256::new(key);
        h.update(b"caltrain-quote-v1");
        h.update(platform_id);
        h.update(measurement.digest().as_bytes());
        h.update(report_data);
        *h.finalize().as_bytes()
    }

    /// The measurement of the quoted enclave.
    pub fn measurement(&self) -> MrEnclave {
        self.measurement
    }

    /// The caller-chosen 64 bytes bound into the quote.
    pub fn report_data(&self) -> &[u8; 64] {
        &self.report_data
    }

    /// The issuing platform's identity.
    pub fn platform_id(&self) -> [u8; 16] {
        self.platform_id
    }

    /// Returns a copy with different report data (and therefore an
    /// invalid MAC) — test helper for forgery scenarios.
    pub fn forged_with_report_data(&self, report_data: [u8; 64]) -> Quote {
        Quote { report_data, ..self.clone() }
    }
}

/// Verifies quotes issued by one platform.
#[derive(Debug, Clone)]
pub struct AttestationService {
    platform_id: [u8; 16],
    attestation_key: [u8; 32],
}

impl AttestationService {
    pub(crate) fn new(platform_id: [u8; 16], attestation_key: [u8; 32]) -> Self {
        AttestationService { platform_id, attestation_key }
    }

    /// Verifies the quote's platform identity and MAC.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] for foreign platforms
    /// or forged/modified quotes.
    pub fn verify(&self, quote: &Quote) -> Result<(), EnclaveError> {
        if quote.platform_id != self.platform_id {
            return Err(EnclaveError::AttestationFailed("unknown platform"));
        }
        let expected = Quote::mac(
            &self.attestation_key,
            &quote.platform_id,
            &quote.measurement,
            &quote.report_data,
        );
        if !ct_eq(&expected, &quote.mac) {
            return Err(EnclaveError::AttestationFailed("bad quote MAC"));
        }
        Ok(())
    }

    /// Verifies the quote *and* that it attests the expected enclave code
    /// — the check participants perform before provisioning their data
    /// keys.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] if verification fails
    /// or the measurement differs from `expected`.
    pub fn verify_measurement(
        &self,
        quote: &Quote,
        expected: &MrEnclave,
    ) -> Result<(), EnclaveError> {
        self.verify(quote)?;
        if quote.measurement != *expected {
            return Err(EnclaveError::AttestationFailed("unexpected measurement"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnclaveConfig, Platform};

    fn setup() -> (Platform, crate::Enclave) {
        let p = Platform::with_seed(b"attest-tests");
        let e = p
            .create_enclave(&EnclaveConfig {
                name: "trainer".into(),
                code_identity: b"trainer-code".to_vec(),
                heap_bytes: 4096,
            })
            .unwrap();
        (p, e)
    }

    #[test]
    fn valid_quote_verifies() {
        let (p, e) = setup();
        let q = e.quote([7u8; 64]);
        p.attestation_service().verify(&q).unwrap();
        p.attestation_service()
            .verify_measurement(&q, &e.measurement())
            .unwrap();
    }

    #[test]
    fn forged_report_data_rejected() {
        let (p, e) = setup();
        let q = e.quote([7u8; 64]).forged_with_report_data([8u8; 64]);
        assert_eq!(
            p.attestation_service().verify(&q),
            Err(EnclaveError::AttestationFailed("bad quote MAC"))
        );
    }

    #[test]
    fn foreign_platform_rejected() {
        let (_, e) = setup();
        let other = Platform::with_seed(b"other-platform");
        let q = e.quote([0u8; 64]);
        assert!(matches!(
            other.attestation_service().verify(&q),
            Err(EnclaveError::AttestationFailed(_))
        ));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (p, e) = setup();
        let q = e.quote([0u8; 64]);
        let wrong = MrEnclave::build(b"different-code", 4096);
        assert_eq!(
            p.attestation_service().verify_measurement(&q, &wrong),
            Err(EnclaveError::AttestationFailed("unexpected measurement"))
        );
    }
}
