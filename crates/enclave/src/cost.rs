//! The simulated-time cost model.
//!
//! Experiments I–III of the paper ran on an SGX-enabled i7-6700 at
//! 3.40 GHz. Rather than measuring whatever machine this reproduction
//! happens to run on, every enclave operation *charges cycles* to a
//! [`SimClock`] according to a [`CostModel`]; simulated time is then
//! `cycles / clock_hz`. This makes Fig. 6 deterministic and lets the
//! enclave/native throughput asymmetry be calibrated to the paper's
//! measurement (§VI-C: 6 %–22 % overhead, attributed to `-ffast-math`
//! being unavailable in enclave code).

/// Simulated elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime {
    /// Elapsed seconds of simulated wall-clock time.
    pub seconds: f64,
}

impl SimTime {
    /// Simulated milliseconds.
    pub fn millis(&self) -> f64 {
        self.seconds * 1e3
    }
}

/// Cycle costs for every operation class the simulator charges.
///
/// Defaults are calibrated so the 18-layer CIFAR-10 network of paper
/// Table II reproduces the Fig. 6 overhead curve: ~6 % with two
/// convolutional layers in-enclave rising to ~22 % with all ten. The
/// dominant term is the enclave/native FLOP-cost ratio of 1.22; boundary
/// crossings add a size-dependent term that is largest for shallow
/// partitions (early-layer IRs are the biggest tensors).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Core clock in Hz (default: the paper's 3.40 GHz i7-6700).
    pub clock_hz: f64,
    /// Cycles per floating-point operation executed *inside* an enclave
    /// (scalar code, no `-ffast-math`, no SIMD).
    pub enclave_flop_cycles: f64,
    /// Cycles per floating-point operation on the native path.
    pub native_flop_cycles: f64,
    /// Fixed cost of entering an enclave (`EENTER` + TLB shootdown).
    pub ecall_cycles: u64,
    /// Fixed cost of leaving an enclave (`EEXIT`).
    pub ocall_cycles: u64,
    /// Cycles per byte copied across the enclave boundary.
    pub boundary_byte_cycles: f64,
    /// Cycles to evict one EPC page (`EWB`: encrypt + MAC + writeback).
    pub page_evict_cycles: u64,
    /// Cycles to load one evicted page back (`ELDU`: read + decrypt +
    /// verify).
    pub page_load_cycles: u64,
    /// Cycles to add one zeroed page (`EAUG`-style growth).
    pub page_add_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_hz: 3.4e9,
            // Ratio 1.22 reproduces the paper's 22% worst-case compute
            // overhead when every convolutional layer runs in-enclave.
            enclave_flop_cycles: 0.61,
            native_flop_cycles: 0.50,
            ecall_cycles: 8_000,
            ocall_cycles: 8_000,
            boundary_byte_cycles: 0.4,
            page_evict_cycles: 35_000,
            page_load_cycles: 35_000,
            page_add_cycles: 1_500,
        }
    }
}

/// Measured steady-state throughput of the **strict** GEMM kernel (the
/// in-enclave shape: scalar, fixed order, no `-ffast-math`) on
/// conv-sized workloads, in GFLOP/s — from `cargo bench --bench
/// enclave_kernels` on the reference host. This is the constant the
/// kernel-calibrated cost model derives its strict-mode cycles-per-flop
/// from.
pub const MEASURED_STRICT_GFLOPS: f64 = 2.6;

/// Measured steady-state throughput of the **native** GEMM path on the
/// same workloads, in GFLOP/s — the native-mode counterpart of
/// [`MEASURED_STRICT_GFLOPS`]. Since the explicit SIMD backend landed
/// the native dispatcher's top rung is the AVX2/NEON microkernel
/// (`caltrain_tensor::simd`), so this is its steady-state figure; the
/// scalar blocked/packed rung it replaced measured ~13 GFLOP/s.
pub const MEASURED_NATIVE_GFLOPS: f64 = 36.0;

impl CostModel {
    /// The in-enclave / native FLOP cost ratio (≥ 1 in any sane model).
    pub fn slowdown_ratio(&self) -> f64 {
        self.enclave_flop_cycles / self.native_flop_cycles
    }

    /// A cost model whose per-kernel-mode cycles-per-flop are calibrated
    /// from the *measured* strict/native GEMM throughputs
    /// ([`MEASURED_STRICT_GFLOPS`] / [`MEASURED_NATIVE_GFLOPS`]) instead
    /// of charging every flop at a mode-independent rate scaled to the
    /// paper's 1.22 target.
    ///
    /// `cycles_per_flop(mode) = clock_hz / (measured_gflops(mode) · 1e9)`:
    /// the enclave (strict-kernel) rate and the native rate each map to
    /// what this codebase's kernels actually sustain — worked example at
    /// the model's 3.4 GHz clock: 3.4 / 2.6 ≈ 1.31 cycles per strict
    /// flop, 3.4 / 36 ≈ 0.094 per native (SIMD) flop. Simulated
    /// partition sweeps (Fig. 6) therefore reflect the real
    /// strict/native asymmetry (~13.8× with the AVX2 rung) rather than
    /// the paper's SGX-hardware one (1.22×, which
    /// [`CostModel::default`] keeps for fidelity to the published
    /// curve). Boundary/paging costs are unchanged.
    pub fn kernel_calibrated() -> Self {
        let base = CostModel::default();
        CostModel {
            enclave_flop_cycles: base.clock_hz / (MEASURED_STRICT_GFLOPS * 1e9),
            native_flop_cycles: base.clock_hz / (MEASURED_NATIVE_GFLOPS * 1e9),
            ..base
        }
    }
}

/// An accumulating cycle counter with per-category breakdown.
///
/// # Example
///
/// ```
/// use caltrain_enclave::{CostModel, SimClock};
///
/// let mut clock = SimClock::new(CostModel::default());
/// clock.charge_native_flops(1_000_000);
/// clock.charge_enclave_flops(1_000_000);
/// assert!(clock.breakdown().enclave_compute_cycles
///     > clock.breakdown().native_compute_cycles);
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    model: CostModel,
    breakdown: CycleBreakdown,
}

/// Cycles accumulated per operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// FLOP cycles charged on the native path.
    pub native_compute_cycles: u64,
    /// FLOP cycles charged inside enclaves.
    pub enclave_compute_cycles: u64,
    /// ecall/ocall entry/exit cycles.
    pub transition_cycles: u64,
    /// Byte-marshalling cycles for boundary crossings.
    pub marshalling_cycles: u64,
    /// EPC paging cycles (EWB + ELDU + EAUG).
    pub paging_cycles: u64,
}

impl CycleBreakdown {
    /// Sum over every category.
    pub fn total(&self) -> u64 {
        self.native_compute_cycles
            + self.enclave_compute_cycles
            + self.transition_cycles
            + self.marshalling_cycles
            + self.paging_cycles
    }
}

impl SimClock {
    /// Creates a clock at cycle zero under the given cost model.
    pub fn new(model: CostModel) -> Self {
        SimClock { model, breakdown: CycleBreakdown::default() }
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The core clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.model.clock_hz
    }

    /// Re-rates the simulated core clock — the clock-skew fault knob.
    ///
    /// Accumulated cycles are untouched: skew dilates simulated *time*
    /// (`elapsed = cycles / clock_hz`), never the work ledger, so the
    /// cycle breakdown keeps reconciling after any perturbation.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive rate — such a clock has no
    /// consistent simulated-time reading.
    pub fn set_clock_hz(&mut self, hz: f64) {
        assert!(hz.is_finite() && hz > 0.0, "clock rate must be positive and finite, got {hz}");
        self.model.clock_hz = hz;
    }

    /// Total cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.breakdown.total()
    }

    /// Per-category cycle counts.
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Simulated elapsed time.
    pub fn elapsed(&self) -> SimTime {
        SimTime { seconds: self.cycles() as f64 / self.model.clock_hz }
    }

    /// Resets the accumulator to zero, keeping the model.
    pub fn reset(&mut self) {
        self.breakdown = CycleBreakdown::default();
    }

    /// Charges `flops` on the native (out-of-enclave) path.
    pub fn charge_native_flops(&mut self, flops: u64) {
        self.breakdown.native_compute_cycles +=
            (flops as f64 * self.model.native_flop_cycles) as u64;
    }

    /// Charges `flops` on the in-enclave path.
    pub fn charge_enclave_flops(&mut self, flops: u64) {
        self.breakdown.enclave_compute_cycles +=
            (flops as f64 * self.model.enclave_flop_cycles) as u64;
    }

    /// Charges one enclave entry carrying `bytes` of arguments.
    pub fn charge_ecall(&mut self, bytes: usize) {
        self.breakdown.transition_cycles += self.model.ecall_cycles;
        self.breakdown.marshalling_cycles +=
            (bytes as f64 * self.model.boundary_byte_cycles) as u64;
    }

    /// Charges one enclave exit carrying `bytes` of results.
    pub fn charge_ocall(&mut self, bytes: usize) {
        self.breakdown.transition_cycles += self.model.ocall_cycles;
        self.breakdown.marshalling_cycles +=
            (bytes as f64 * self.model.boundary_byte_cycles) as u64;
    }

    /// Charges `count` page evictions (EWB).
    pub fn charge_page_evictions(&mut self, count: u64) {
        self.breakdown.paging_cycles += count * self.model.page_evict_cycles;
    }

    /// Charges `count` page re-loads (ELDU).
    pub fn charge_page_loads(&mut self, count: u64) {
        self.breakdown.paging_cycles += count * self.model.page_load_cycles;
    }

    /// Charges `count` fresh page additions (EAUG).
    pub fn charge_page_adds(&mut self, count: u64) {
        self.breakdown.paging_cycles += count * self.model.page_add_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_calibrated() {
        let m = CostModel::default();
        assert!((m.slowdown_ratio() - 1.22).abs() < 1e-9);
        assert_eq!(m.clock_hz, 3.4e9);
    }

    #[test]
    fn kernel_calibrated_model_matches_measured_ratio() {
        let m = CostModel::kernel_calibrated();
        // Cycles-per-flop per kernel mode derive from the measured
        // GFLOP/s at the model's clock: 3.4 GHz / 2.6 GFLOP/s ≈ 1.31
        // cycles per strict flop, 3.4 / 36 ≈ 0.094 per native (SIMD)
        // flop.
        assert!((m.enclave_flop_cycles - 3.4 / 2.6).abs() < 1e-9);
        assert!((m.native_flop_cycles - 3.4 / 36.0).abs() < 1e-9);
        let measured_ratio = MEASURED_NATIVE_GFLOPS / MEASURED_STRICT_GFLOPS;
        assert!((m.slowdown_ratio() - measured_ratio).abs() < 1e-9);
        // Non-compute costs are untouched by the calibration.
        let d = CostModel::default();
        assert_eq!(m.ecall_cycles, d.ecall_cycles);
        assert_eq!(m.page_evict_cycles, d.page_evict_cycles);
    }

    #[test]
    fn charges_accumulate_by_category() {
        let mut c = SimClock::new(CostModel::default());
        c.charge_native_flops(100);
        c.charge_enclave_flops(100);
        c.charge_ecall(1000);
        c.charge_ocall(0);
        c.charge_page_evictions(2);
        c.charge_page_loads(1);
        c.charge_page_adds(3);
        let b = c.breakdown();
        assert_eq!(b.native_compute_cycles, 50);
        assert_eq!(b.enclave_compute_cycles, 61);
        assert_eq!(b.transition_cycles, 16_000);
        assert_eq!(b.marshalling_cycles, 400);
        assert_eq!(b.paging_cycles, 2 * 35_000 + 35_000 + 3 * 1_500);
        assert_eq!(c.cycles(), b.total());
    }

    #[test]
    fn elapsed_time_uses_clock_rate() {
        let mut c = SimClock::new(CostModel { clock_hz: 1e9, ..CostModel::default() });
        c.charge_native_flops(2_000_000_000);
        assert!((c.elapsed().seconds - 1.0).abs() < 1e-9);
        assert!((c.elapsed().millis() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn clock_skew_rerates_time_only() {
        let mut c = SimClock::new(CostModel::default());
        c.charge_enclave_flops(1_000_000);
        let cycles = c.cycles();
        let base = c.clock_hz();

        c.set_clock_hz(base / 4.0);
        assert_eq!(c.cycles(), cycles);
        assert_eq!(c.breakdown().total(), cycles);
        assert_eq!(c.elapsed().seconds.to_bits(), (cycles as f64 / (base / 4.0)).to_bits());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn clock_skew_rejects_zero_rate() {
        let mut c = SimClock::new(CostModel::default());
        c.set_clock_hz(0.0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut c = SimClock::new(CostModel::default());
        c.charge_enclave_flops(123);
        c.reset();
        assert_eq!(c.cycles(), 0);
    }

    #[test]
    fn enclave_flops_cost_more() {
        let mut native = SimClock::new(CostModel::default());
        let mut enclave = SimClock::new(CostModel::default());
        native.charge_native_flops(1_000_000);
        enclave.charge_enclave_flops(1_000_000);
        assert!(enclave.cycles() > native.cycles());
        let ratio = enclave.cycles() as f64 / native.cycles() as f64;
        assert!((ratio - 1.22).abs() < 0.01);
    }
}
