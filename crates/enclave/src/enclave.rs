//! A launched enclave instance: isolated memory, measurement, quoting,
//! sealing, and cost accounting for the code that runs "inside" it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use caltrain_crypto::gcm::AesGcm;
use caltrain_crypto::hkdf;

use crate::attest::Quote;
use crate::epc::{RegionId, TouchOutcome};
use crate::measurement::MrEnclave;
use crate::platform::PlatformInner;
use crate::EnclaveError;

/// Launch-time configuration; all of it is measured into `MRENCLAVE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveConfig {
    /// Human-readable name (diagnostics only, not measured).
    pub name: String,
    /// Bytes standing in for the enclave's code pages. Two enclaves get
    /// the same measurement iff these (and `heap_bytes`) are identical.
    pub code_identity: Vec<u8>,
    /// Heap reservation in bytes.
    pub heap_bytes: usize,
}

/// A running enclave on a [`crate::Platform`].
///
/// All compute performed "inside" the enclave must be reported through
/// [`Enclave::charge_flops`] / [`Enclave::touch`] so the simulated clock
/// reflects the SGX execution penalty.
pub struct Enclave {
    platform: Arc<PlatformInner>,
    id: u64,
    name: String,
    measurement: MrEnclave,
    image_region: RegionId,
    destroyed: AtomicBool,
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enclave")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("measurement", &self.measurement.digest())
            .finish()
    }
}

impl Enclave {
    pub(crate) fn launch(
        platform: Arc<PlatformInner>,
        id: u64,
        config: &EnclaveConfig,
    ) -> Result<Self, EnclaveError> {
        let measurement = MrEnclave::build(&config.code_identity, config.heap_bytes);
        let image_bytes = config.code_identity.len() + config.heap_bytes;
        let image_region = platform.epc.lock().alloc(image_bytes.max(1))?;
        // Loading the image touches every page once (EADD).
        let outcome = platform.epc.lock().touch(image_region);
        Self::charge_outcome(&platform, outcome);
        Ok(Enclave {
            platform,
            id,
            name: config.name.clone(),
            measurement,
            image_region,
            destroyed: AtomicBool::new(false),
        })
    }

    /// The platform-unique enclave id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The diagnostic name given at launch.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclave measurement (simulated `MRENCLAVE`).
    pub fn measurement(&self) -> MrEnclave {
        self.measurement
    }

    /// Produces an attestation quote binding `report_data` to this
    /// enclave's measurement under the platform key.
    pub fn quote(&self, report_data: [u8; 64]) -> Quote {
        Quote::issue(
            self.platform.platform_id,
            &self.platform.attestation_key,
            self.measurement,
            report_data,
        )
    }

    /// Seals `plaintext` under this enclave's identity (MRENCLAVE
    /// policy): only an enclave with the same measurement on the same
    /// platform can unseal it.
    pub fn seal(&self, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let cipher = self.sealing_cipher();
        let nonce_bytes = self.platform.drbg.lock().generate(12);
        let nonce: [u8; 12] = nonce_bytes.try_into().expect("generate(12) returns 12");
        let mut blob = nonce.to_vec();
        blob.extend_from_slice(&cipher.seal(&nonce, plaintext, aad));
        blob
    }

    /// Unseals a blob produced by [`Enclave::seal`] on an enclave with the
    /// same measurement.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::UnsealFailed`] for truncated blobs, foreign
    /// measurements, or tampering.
    pub fn unseal(&self, blob: &[u8], aad: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        if blob.len() < 12 {
            return Err(EnclaveError::UnsealFailed);
        }
        let nonce: [u8; 12] = blob[..12].try_into().expect("length checked");
        self.sealing_cipher()
            .open(&nonce, &blob[12..], aad)
            .map_err(|_| EnclaveError::UnsealFailed)
    }

    fn sealing_cipher(&self) -> AesGcm {
        let key: [u8; 16] = hkdf::derive(
            self.measurement.digest().as_bytes(),
            &self.platform.sealing_secret,
            b"caltrain-sealing-v1",
            16,
        )
        .expect("16 <= hkdf max")
        .try_into()
        .expect("requested 16 bytes");
        AesGcm::new_128(&key)
    }

    /// Allocates an EPC region for in-enclave data.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::EpcExhausted`] if the region cannot fit, or
    /// [`EnclaveError::EnclaveDestroyed`] after [`Enclave::destroy`].
    pub fn alloc(&self, bytes: usize) -> Result<RegionId, EnclaveError> {
        self.check_live()?;
        self.platform.epc.lock().alloc(bytes)
    }

    /// Frees an EPC region.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::InvalidRegion`] for unknown handles.
    pub fn free(&self, region: RegionId) -> Result<(), EnclaveError> {
        self.platform.epc.lock().free(region)
    }

    /// Simulates a full sweep over `region`, charging any paging work.
    /// Returns the paging outcome for inspection.
    pub fn touch(&self, region: RegionId) -> TouchOutcome {
        let outcome = self.platform.epc.lock().touch(region);
        Self::charge_outcome(&self.platform, outcome);
        outcome
    }

    /// Simulates access to a byte range of `region`.
    pub fn touch_range(&self, region: RegionId, offset: usize, len: usize) -> TouchOutcome {
        let outcome = self.platform.epc.lock().touch_range(region, offset, len);
        Self::charge_outcome(&self.platform, outcome);
        outcome
    }

    /// Charges floating-point work performed inside the enclave.
    pub fn charge_flops(&self, flops: u64) {
        self.platform.clock.lock().charge_enclave_flops(flops);
    }

    /// Charges one enclave entry marshalling `bytes` of arguments.
    pub fn charge_ecall(&self, bytes: usize) {
        self.platform.clock.lock().charge_ecall(bytes);
    }

    /// Charges one enclave exit marshalling `bytes` of results.
    pub fn charge_ocall(&self, bytes: usize) {
        self.platform.clock.lock().charge_ocall(bytes);
    }

    /// Draws `n` bytes from the in-enclave RDRAND source (paper §IV-A uses
    /// it for data augmentation randomness).
    pub fn rdrand_bytes(&self, n: usize) -> Vec<u8> {
        self.platform.drbg.lock().generate(n)
    }

    /// Draws a uniform `u64` from RDRAND.
    pub fn rdrand_u64(&self) -> u64 {
        self.platform.drbg.lock().next_u64()
    }

    /// Tears the enclave down, freeing its image pages. Further `alloc`
    /// calls fail with [`EnclaveError::EnclaveDestroyed`].
    pub fn destroy(&self) {
        if !self.destroyed.swap(true, Ordering::SeqCst) {
            let _ = self.platform.epc.lock().free(self.image_region);
        }
    }

    fn check_live(&self) -> Result<(), EnclaveError> {
        if self.destroyed.load(Ordering::SeqCst) {
            Err(EnclaveError::EnclaveDestroyed)
        } else {
            Ok(())
        }
    }

    fn charge_outcome(platform: &PlatformInner, outcome: TouchOutcome) {
        let mut clock = platform.clock.lock();
        if outcome.pages_added > 0 {
            clock.charge_page_adds(outcome.pages_added);
        }
        if outcome.pages_loaded > 0 {
            clock.charge_page_loads(outcome.pages_loaded);
        }
        if outcome.pages_evicted > 0 {
            clock.charge_page_evictions(outcome.pages_evicted);
        }
    }
}

impl Drop for Enclave {
    fn drop(&mut self) {
        self.destroy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    fn platform() -> Platform {
        Platform::with_seed(b"enclave-tests")
    }

    fn launch(p: &Platform, code: &[u8]) -> Enclave {
        p.create_enclave(&EnclaveConfig {
            name: "t".into(),
            code_identity: code.to_vec(),
            heap_bytes: 1 << 16,
        })
        .unwrap()
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let p = platform();
        let e = launch(&p, b"code-v1");
        let blob = e.seal(b"model weights", b"epoch-3");
        assert_eq!(e.unseal(&blob, b"epoch-3").unwrap(), b"model weights");
    }

    #[test]
    fn seal_bound_to_measurement() {
        let p = platform();
        let e1 = launch(&p, b"code-v1");
        let e2 = launch(&p, b"code-v2");
        let blob = e1.seal(b"secret", b"");
        assert_eq!(e2.unseal(&blob, b""), Err(EnclaveError::UnsealFailed));

        // Same measurement on the same platform unseals fine.
        let e3 = launch(&p, b"code-v1");
        assert_eq!(e3.unseal(&blob, b"").unwrap(), b"secret");
    }

    #[test]
    fn seal_bound_to_platform() {
        let p1 = platform();
        let p2 = Platform::with_seed(b"other-machine");
        let e1 = launch(&p1, b"code-v1");
        let e2 = launch(&p2, b"code-v1");
        let blob = e1.seal(b"secret", b"");
        assert_eq!(e2.unseal(&blob, b""), Err(EnclaveError::UnsealFailed));
    }

    #[test]
    fn seal_detects_tamper() {
        let p = platform();
        let e = launch(&p, b"code-v1");
        let mut blob = e.seal(b"secret", b"");
        let mid = blob.len() / 2;
        blob[mid] ^= 1;
        assert_eq!(e.unseal(&blob, b""), Err(EnclaveError::UnsealFailed));
        assert_eq!(e.unseal(&blob[..4], b""), Err(EnclaveError::UnsealFailed));
    }

    #[test]
    fn quote_binds_report_data() {
        let p = platform();
        let e = launch(&p, b"code-v1");
        let mut rd = [0u8; 64];
        rd[0] = 42;
        let q = e.quote(rd);
        assert_eq!(q.report_data(), &rd);
        assert_eq!(q.measurement(), e.measurement());
        p.attestation_service().verify(&q).unwrap();
    }

    #[test]
    fn compute_and_paging_charged() {
        let p = platform();
        let e = launch(&p, b"code");
        let c0 = p.cycles();
        e.charge_flops(1_000_000);
        let c1 = p.cycles();
        assert!(c1 > c0);
        let r = e.alloc(1 << 20).unwrap();
        let o = e.touch(r);
        assert!(o.pages_added > 0);
        assert!(p.cycles() > c1);
    }

    #[test]
    fn destroyed_enclave_rejects_alloc() {
        let p = platform();
        let e = launch(&p, b"code");
        e.destroy();
        assert_eq!(e.alloc(4096), Err(EnclaveError::EnclaveDestroyed));
        // Idempotent destroy (also exercised by Drop).
        e.destroy();
    }

    #[test]
    fn rdrand_streams_draw_from_platform() {
        let p1 = Platform::with_seed(b"same");
        let p2 = Platform::with_seed(b"same");
        let e1 = launch(&p1, b"code");
        let e2 = launch(&p2, b"code");
        assert_eq!(e1.rdrand_bytes(8), e2.rdrand_bytes(8));
    }
}
