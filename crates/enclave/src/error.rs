use std::error::Error;
use std::fmt;

use caltrain_crypto::CryptoError;

/// Errors produced by the simulated SGX platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnclaveError {
    /// The EPC cannot satisfy an allocation even after evicting every
    /// evictable page (the requested region alone exceeds capacity).
    EpcExhausted {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Total EPC capacity in bytes.
        capacity: usize,
    },
    /// A region handle did not refer to a live allocation.
    InvalidRegion,
    /// A quote failed verification: bad MAC, unknown platform, or a
    /// measurement that is not in the verifier's expected set.
    AttestationFailed(&'static str),
    /// A secure-channel record failed authentication or arrived out of
    /// order (sequence mismatch ⇒ replay or truncation).
    ChannelViolation(&'static str),
    /// Sealed data failed to unseal (wrong enclave measurement or
    /// tampering).
    UnsealFailed,
    /// The enclave was destroyed and can no longer be used.
    EnclaveDestroyed,
    /// An underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::EpcExhausted { requested, capacity } => {
                write!(f, "EPC exhausted: requested {requested} bytes of {capacity} capacity")
            }
            EnclaveError::InvalidRegion => write!(f, "invalid EPC region handle"),
            EnclaveError::AttestationFailed(why) => write!(f, "attestation failed: {why}"),
            EnclaveError::ChannelViolation(why) => write!(f, "secure channel violation: {why}"),
            EnclaveError::UnsealFailed => write!(f, "sealed blob failed to unseal"),
            EnclaveError::EnclaveDestroyed => write!(f, "enclave has been destroyed"),
            EnclaveError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl Error for EnclaveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnclaveError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<CryptoError> for EnclaveError {
    fn from(e: CryptoError) -> Self {
        EnclaveError::Crypto(e)
    }
}
