//! A cycle-accounted Intel SGX simulator for the CalTrain reproduction.
//!
//! The paper (§II "Intel SGX", §IV-A, §IV-B) depends on five properties of
//! SGX that this crate models explicitly, because no SGX hardware (or a
//! usable EDP toolchain for in-enclave ML) is available in this
//! environment:
//!
//! 1. **Isolated launch with measurement** — an enclave's identity is the
//!    hash of the code/configuration loaded into it ([`MrEnclave`], built
//!    the way `ECREATE`/`EADD`/`EEXTEND` build a real `MRENCLAVE`).
//! 2. **Remote attestation** — a quote binds `report_data` to the enclave
//!    measurement under a platform key; participants verify quotes against
//!    an expected measurement before provisioning secrets
//!    ([`attest::Quote`], [`attest::AttestationService`]).
//! 3. **Limited protected memory** — the Enclave Page Cache holds ~93 MiB
//!    of usable pages on the paper's hardware; exceeding it triggers
//!    encrypted page swapping (`EWB`/`ELDU`), charged by the cost model
//!    ([`epc::Epc`]).
//! 4. **No hardware acceleration inside** — in-enclave FLOPs are charged
//!    at a slower rate than native FLOPs ([`cost::CostModel`]), and
//!    crossing the boundary (ecall/ocall + data marshalling) has a cost.
//! 5. **Sealing** — data can be encrypted under a key derived from the
//!    platform secret and the enclave measurement ([`Enclave::seal`]).
//!
//! Time is *simulated*: kernels run at native speed, but every operation
//! reports its cost in cycles to a [`cost::SimClock`]. This keeps the
//! experiments deterministic and lets Fig. 6 be regenerated with the
//! paper's calibration instead of whatever CPU this happens to run on.
//!
//! # Example
//!
//! ```
//! use caltrain_enclave::{Platform, EnclaveConfig};
//!
//! let platform = Platform::with_seed(b"example");
//! let enclave = platform.create_enclave(&EnclaveConfig {
//!     name: "training".into(),
//!     code_identity: b"trainer-v1".to_vec(),
//!     heap_bytes: 1 << 20,
//! })?;
//! let quote = enclave.quote([0u8; 64]);
//! platform.attestation_service().verify(&quote)?;
//! # Ok::<(), caltrain_enclave::EnclaveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod attest;
pub mod channel;
pub mod cost;
pub mod enclave;
pub mod epc;
pub mod measurement;
pub mod platform;

pub use attest::{AttestationService, Quote};
pub use channel::{ChannelServer, ProvisioningClient, SecureChannel};
pub use cost::{CostModel, SimClock, SimTime};
pub use enclave::{Enclave, EnclaveConfig};
pub use error::EnclaveError;
pub use measurement::MrEnclave;
pub use platform::Platform;
