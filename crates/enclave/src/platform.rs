//! The simulated SGX-capable machine: CPU package secrets, the EPC, the
//! cycle clock, and the RDRAND entropy source.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use caltrain_crypto::hkdf;
use caltrain_crypto::rng::HmacDrbg;
use parking_lot::Mutex;

use crate::attest::AttestationService;
use crate::cost::{CostModel, CycleBreakdown, SimClock, SimTime};
use crate::enclave::{Enclave, EnclaveConfig};
use crate::epc::{Epc, EpcStats, TouchOutcome, DEFAULT_EPC_BYTES};
use crate::EnclaveError;

pub(crate) struct PlatformInner {
    pub(crate) clock: Mutex<SimClock>,
    pub(crate) epc: Mutex<Epc>,
    pub(crate) drbg: Mutex<HmacDrbg>,
    pub(crate) attestation_key: [u8; 32],
    pub(crate) sealing_secret: [u8; 32],
    pub(crate) platform_id: [u8; 16],
    pub(crate) next_enclave: AtomicU64,
}

/// A simulated SGX-enabled training server.
///
/// Clones share the same underlying machine (clock, EPC, secrets), so a
/// handle can be passed to each component that needs to charge simulated
/// time.
///
/// # Example
///
/// ```
/// use caltrain_enclave::Platform;
///
/// let p = Platform::with_seed(b"server-1");
/// p.charge_native_flops(1_000);
/// assert!(p.cycles() > 0);
/// ```
#[derive(Clone)]
pub struct Platform {
    inner: Arc<PlatformInner>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("platform_id", &self.inner.platform_id)
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl Platform {
    /// Creates a platform with explicit cost model and EPC capacity.
    ///
    /// `seed` derives the CPU package secrets (fuse key equivalent) and
    /// the RDRAND stream, keeping every experiment replayable.
    pub fn new(model: CostModel, epc_bytes: usize, seed: &[u8]) -> Self {
        let attestation_key: [u8; 32] = hkdf::derive(b"caltrain-platform", seed, b"attest", 32)
            .expect("32 <= hkdf max")
            .try_into()
            .expect("requested 32 bytes");
        let sealing_secret: [u8; 32] = hkdf::derive(b"caltrain-platform", seed, b"seal", 32)
            .expect("32 <= hkdf max")
            .try_into()
            .expect("requested 32 bytes");
        let platform_id: [u8; 16] = hkdf::derive(b"caltrain-platform", seed, b"id", 16)
            .expect("16 <= hkdf max")
            .try_into()
            .expect("requested 16 bytes");
        Platform {
            inner: Arc::new(PlatformInner {
                clock: Mutex::new(SimClock::new(model)),
                epc: Mutex::new(Epc::new(epc_bytes)),
                drbg: Mutex::new(HmacDrbg::new(seed, b"rdrand")),
                attestation_key,
                sealing_secret,
                platform_id,
                next_enclave: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a platform with the paper-calibrated defaults
    /// ([`CostModel::default`], ≈93 MiB EPC).
    pub fn with_seed(seed: &[u8]) -> Self {
        Self::new(CostModel::default(), DEFAULT_EPC_BYTES, seed)
    }

    /// The 128-bit platform identity included in quotes.
    pub fn platform_id(&self) -> [u8; 16] {
        self.inner.platform_id
    }

    /// Launches an enclave, measuring its code and charging the page-add
    /// cost of loading it into the EPC.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::EpcExhausted`] if code plus heap cannot fit
    /// in the EPC under any eviction schedule.
    pub fn create_enclave(&self, config: &EnclaveConfig) -> Result<Enclave, EnclaveError> {
        let id = self.inner.next_enclave.fetch_add(1, Ordering::Relaxed);
        Enclave::launch(Arc::clone(&self.inner), id, config)
    }

    /// The verification service for quotes from this platform (models the
    /// Intel Attestation Service role for this machine's EPID group).
    pub fn attestation_service(&self) -> AttestationService {
        AttestationService::new(self.inner.platform_id, self.inner.attestation_key)
    }

    /// Charges floating-point work executed *outside* any enclave.
    pub fn charge_native_flops(&self, flops: u64) {
        self.inner.clock.lock().charge_native_flops(flops);
    }

    /// Total simulated cycles so far.
    pub fn cycles(&self) -> u64 {
        self.inner.clock.lock().cycles()
    }

    /// Simulated elapsed time so far.
    pub fn elapsed(&self) -> SimTime {
        self.inner.clock.lock().elapsed()
    }

    /// Per-category cycle breakdown.
    pub fn cycle_breakdown(&self) -> CycleBreakdown {
        self.inner.clock.lock().breakdown()
    }

    /// Resets the simulated clock (EPC state is kept).
    pub fn reset_clock(&self) {
        self.inner.clock.lock().reset();
    }

    /// Cumulative EPC paging statistics.
    pub fn epc_stats(&self) -> EpcStats {
        self.inner.epc.lock().stats()
    }

    /// EPC capacity in pages.
    pub fn epc_capacity_pages(&self) -> usize {
        self.inner.epc.lock().capacity_pages()
    }

    /// Resizes the EPC to `pages` (minimum one) — the EPC-pressure fault
    /// knob. Shrinking evicts the surplus working set through the CLOCK
    /// policy and charges the `EWB` work to this platform's clock, exactly
    /// like demand-paging evictions. Returns the eviction work performed.
    pub fn set_epc_capacity_pages(&self, pages: usize) -> TouchOutcome {
        let outcome = self.inner.epc.lock().set_capacity_pages(pages);
        if outcome.pages_evicted > 0 {
            self.inner.clock.lock().charge_page_evictions(outcome.pages_evicted);
        }
        outcome
    }

    /// The simulated core clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.inner.clock.lock().clock_hz()
    }

    /// Re-rates the simulated core clock — the clock-skew fault knob.
    /// Accumulated cycles are untouched; only the cycles→seconds
    /// conversion changes. See [`SimClock::set_clock_hz`].
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive rate.
    pub fn set_clock_hz(&self, hz: f64) {
        self.inner.clock.lock().set_clock_hz(hz);
    }

    /// Draws `n` bytes from the platform RDRAND stream.
    pub fn random_bytes(&self, n: usize) -> Vec<u8> {
        self.inner.drbg.lock().generate(n)
    }
}

// Hubs train concurrently, each charging its own platform clock from a
// worker thread; the clock/EPC/DRBG state behind a platform handle is
// mutex-protected, making both handles fully thread-safe. Compile-time
// audit: a non-Sync field here would break the parallel runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Platform>();
    assert_send_sync::<Enclave>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveConfig;

    fn config() -> EnclaveConfig {
        EnclaveConfig {
            name: "test".into(),
            code_identity: b"code-v1".to_vec(),
            heap_bytes: 1 << 16,
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Platform::with_seed(b"seed-1");
        let b = Platform::with_seed(b"seed-1");
        assert_eq!(a.platform_id(), b.platform_id());
        assert_eq!(a.random_bytes(16), b.random_bytes(16));
        let c = Platform::with_seed(b"seed-2");
        assert_ne!(a.platform_id(), c.platform_id());
    }

    #[test]
    fn clones_share_state() {
        let a = Platform::with_seed(b"seed");
        let b = a.clone();
        a.charge_native_flops(1000);
        assert_eq!(a.cycles(), b.cycles());
        assert!(b.cycles() > 0);
    }

    #[test]
    fn enclave_ids_unique() {
        let p = Platform::with_seed(b"seed");
        let e1 = p.create_enclave(&config()).unwrap();
        let e2 = p.create_enclave(&config()).unwrap();
        assert_ne!(e1.id(), e2.id());
        // Same code/config => same measurement even with different ids.
        assert_eq!(e1.measurement(), e2.measurement());
    }

    #[test]
    fn launching_charges_cycles() {
        let p = Platform::with_seed(b"seed");
        let before = p.cycles();
        let _e = p.create_enclave(&config()).unwrap();
        assert!(p.cycles() > before, "EADD work must be charged");
    }

    #[test]
    fn epc_shrink_charges_eviction_cycles() {
        let p = Platform::with_seed(b"seed");
        let e = p.create_enclave(&config()).unwrap();
        let r = e.alloc(1 << 14).unwrap();
        e.touch(r);
        p.reset_clock();

        let resident_before = p.epc_stats().pages_added;
        assert!(resident_before > 0);
        let o = p.set_epc_capacity_pages(2);
        assert_eq!(p.epc_capacity_pages(), 2);
        assert!(o.pages_evicted > 0, "shrink below working set must evict: {o:?}");
        let breakdown = p.cycle_breakdown();
        assert!(breakdown.paging_cycles > 0, "evictions must be charged");
        assert_eq!(breakdown.total(), p.cycles(), "ledger stays consistent");
    }

    #[test]
    fn clock_skew_dilates_time_not_cycles() {
        let p = Platform::with_seed(b"seed");
        p.charge_native_flops(1_000_000);
        let cycles = p.cycles();
        let honest = p.elapsed().seconds;

        let base = p.clock_hz();
        p.set_clock_hz(base / 2.0);
        assert_eq!(p.cycles(), cycles, "skew must not touch the work ledger");
        let skewed = p.elapsed().seconds;
        assert_eq!(skewed.to_bits(), (honest * 2.0).to_bits());
        assert_eq!(p.clock_hz(), base / 2.0);

        p.set_clock_hz(base);
        assert_eq!(p.elapsed().seconds.to_bits(), honest.to_bits());
    }

    #[test]
    fn reset_clock_keeps_epc() {
        let p = Platform::with_seed(b"seed");
        let e = p.create_enclave(&config()).unwrap();
        let r = e.alloc(1 << 14).unwrap();
        e.touch(r);
        p.reset_clock();
        assert_eq!(p.cycles(), 0);
        assert!(p.epc_stats().pages_added > 0);
    }
}
