//! The Enclave Page Cache: SGX's scarce, encrypted physical memory.
//!
//! SGX1 reserves 128 MiB of Processor Reserved Memory, of which roughly
//! 93 MiB is usable as EPC (paper §II, §IV-B). When enclave working sets
//! exceed it, the kernel driver swaps pages with `EWB` (encrypt + MAC +
//! write back) and `ELDU` (load + decrypt + verify) — "swapping on the
//! encrypted memory may significantly affect the performance" (§IV-B).
//!
//! This module models the EPC as a page table with CLOCK (second-chance)
//! eviction. Callers allocate [`RegionId`]s and *touch* them to simulate
//! access; misses charge eviction/load cycles to the enclave's clock via
//! the returned [`TouchOutcome`].

use std::collections::HashMap;

use crate::EnclaveError;

/// EPC page size in bytes (standard 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Usable EPC capacity of the paper's SGX1 hardware (≈ 93 MiB of the
/// 128 MiB PRM after metadata overhead).
pub const DEFAULT_EPC_BYTES: usize = 93 * 1024 * 1024;

/// Identifies an allocated EPC region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(u64);

/// Paging work a touch operation triggered; the caller charges it to the
/// owning enclave's [`crate::SimClock`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages newly added to the EPC (first touch, `EAUG`-like).
    pub pages_added: u64,
    /// Previously evicted pages reloaded (`ELDU`).
    pub pages_loaded: u64,
    /// Victim pages evicted to make room (`EWB`).
    pub pages_evicted: u64,
}

/// Cumulative EPC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpcStats {
    /// Total first-touch page additions.
    pub pages_added: u64,
    /// Total `ELDU` reloads.
    pub pages_loaded: u64,
    /// Total `EWB` evictions.
    pub pages_evicted: u64,
    /// Touches satisfied without paging.
    pub hits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Never materialised in the EPC yet.
    Untouched,
    /// Resident; `bool` is the CLOCK referenced bit.
    Resident { referenced: bool },
    /// Evicted to (encrypted) regular memory.
    Evicted,
}

#[derive(Debug)]
struct Region {
    pages: Vec<PageState>,
}

/// The simulated Enclave Page Cache.
///
/// # Example
///
/// ```
/// use caltrain_enclave::epc::{Epc, PAGE_SIZE};
///
/// let mut epc = Epc::new(8 * PAGE_SIZE);
/// let region = epc.alloc(4 * PAGE_SIZE)?;
/// let outcome = epc.touch(region);
/// assert_eq!(outcome.pages_added, 4);
/// # Ok::<(), caltrain_enclave::EnclaveError>(())
/// ```
#[derive(Debug)]
pub struct Epc {
    capacity_pages: usize,
    resident_pages: usize,
    regions: HashMap<u64, Region>,
    /// CLOCK hand: (region, page index) entries in residency order.
    clock_queue: Vec<(u64, usize)>,
    clock_hand: usize,
    next_region: u64,
    stats: EpcStats,
}

impl Epc {
    /// Creates an EPC with the given byte capacity (rounded down to whole
    /// pages; minimum one page).
    pub fn new(capacity_bytes: usize) -> Self {
        Epc {
            capacity_pages: (capacity_bytes / PAGE_SIZE).max(1),
            resident_pages: 0,
            regions: HashMap::new(),
            clock_queue: Vec::new(),
            clock_hand: 0,
            next_region: 0,
            stats: EpcStats::default(),
        }
    }

    /// Creates an EPC with the paper's default capacity.
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_EPC_BYTES)
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Currently resident pages across all regions.
    pub fn resident_pages(&self) -> usize {
        self.resident_pages
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> EpcStats {
        self.stats
    }

    /// Allocates a region of `bytes` (rounded up to whole pages). Pages
    /// are materialised lazily on first touch, like `EAUG`-grown heap.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::EpcExhausted`] if the region alone could
    /// never fit in the EPC — such an allocation would thrash forever.
    pub fn alloc(&mut self, bytes: usize) -> Result<RegionId, EnclaveError> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        if pages > self.capacity_pages {
            return Err(EnclaveError::EpcExhausted {
                requested: bytes,
                capacity: self.capacity_pages * PAGE_SIZE,
            });
        }
        let id = self.next_region;
        self.next_region += 1;
        self.regions.insert(id, Region { pages: vec![PageState::Untouched; pages] });
        Ok(RegionId(id))
    }

    /// Frees a region, releasing its resident pages.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::InvalidRegion`] for unknown or already-freed
    /// handles.
    pub fn free(&mut self, region: RegionId) -> Result<(), EnclaveError> {
        let r = self.regions.remove(&region.0).ok_or(EnclaveError::InvalidRegion)?;
        let freed = r
            .pages
            .iter()
            .filter(|p| matches!(p, PageState::Resident { .. }))
            .count();
        self.resident_pages -= freed;
        self.clock_queue.retain(|&(rid, _)| rid != region.0);
        if self.clock_hand >= self.clock_queue.len() {
            self.clock_hand = 0;
        }
        Ok(())
    }

    /// Size of a region in pages.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::InvalidRegion`] for unknown handles.
    pub fn region_pages(&self, region: RegionId) -> Result<usize, EnclaveError> {
        Ok(self
            .regions
            .get(&region.0)
            .ok_or(EnclaveError::InvalidRegion)?
            .pages
            .len())
    }

    /// Touches every page of `region` (a full read/write sweep, which is
    /// what a training kernel does to a weight or activation buffer).
    ///
    /// Returns the paging work performed. Unknown regions report no work —
    /// touch is on the hot path and the caller owns the handle lifecycle.
    pub fn touch(&mut self, region: RegionId) -> TouchOutcome {
        let page_count = match self.regions.get(&region.0) {
            Some(r) => r.pages.len(),
            None => return TouchOutcome::default(),
        };
        let mut outcome = TouchOutcome::default();
        for page in 0..page_count {
            self.touch_page(region.0, page, &mut outcome);
        }
        outcome
    }

    /// Touches a byte range within a region.
    pub fn touch_range(&mut self, region: RegionId, offset: usize, len: usize) -> TouchOutcome {
        let page_count = match self.regions.get(&region.0) {
            Some(r) => r.pages.len(),
            None => return TouchOutcome::default(),
        };
        let first = offset / PAGE_SIZE;
        let last = (offset + len.max(1) - 1) / PAGE_SIZE;
        let mut outcome = TouchOutcome::default();
        for page in first..=last.min(page_count.saturating_sub(1)) {
            self.touch_page(region.0, page, &mut outcome);
        }
        outcome
    }

    fn touch_page(&mut self, region_id: u64, page: usize, outcome: &mut TouchOutcome) {
        let state = self.regions.get(&region_id).expect("caller checked region")
            .pages[page];
        match state {
            PageState::Resident { .. } => {
                self.stats.hits += 1;
                self.set_state(region_id, page, PageState::Resident { referenced: true });
            }
            PageState::Untouched => {
                self.make_room(outcome);
                self.set_state(region_id, page, PageState::Resident { referenced: true });
                self.resident_pages += 1;
                self.clock_queue.push((region_id, page));
                outcome.pages_added += 1;
                self.stats.pages_added += 1;
            }
            PageState::Evicted => {
                self.make_room(outcome);
                self.set_state(region_id, page, PageState::Resident { referenced: true });
                self.resident_pages += 1;
                self.clock_queue.push((region_id, page));
                outcome.pages_loaded += 1;
                self.stats.pages_loaded += 1;
            }
        }
    }

    fn set_state(&mut self, region_id: u64, page: usize, state: PageState) {
        if let Some(r) = self.regions.get_mut(&region_id) {
            r.pages[page] = state;
        }
    }

    /// Resizes the EPC to `pages` (minimum one) — the EPC-pressure fault
    /// knob. Shrinking below the current working set evicts the surplus
    /// through the same CLOCK policy as demand paging; growing frees no
    /// work. Returns the eviction work performed so the caller can charge
    /// it to the owning enclave's [`crate::SimClock`].
    pub fn set_capacity_pages(&mut self, pages: usize) -> TouchOutcome {
        self.capacity_pages = pages.max(1);
        let mut outcome = TouchOutcome::default();
        while self.resident_pages > self.capacity_pages {
            self.evict_one(&mut outcome);
        }
        outcome
    }

    /// Evicts pages via CLOCK until at least one slot is free.
    fn make_room(&mut self, outcome: &mut TouchOutcome) {
        while self.resident_pages >= self.capacity_pages {
            self.evict_one(outcome);
        }
    }

    /// Runs the CLOCK hand until exactly one resident page is evicted.
    /// Callers must ensure `resident_pages > 0` (implied by the pressure
    /// conditions in [`Self::make_room`] / [`Self::set_capacity_pages`]).
    fn evict_one(&mut self, outcome: &mut TouchOutcome) {
        loop {
            debug_assert!(!self.clock_queue.is_empty(), "resident pages imply queue entries");
            if self.clock_hand >= self.clock_queue.len() {
                self.clock_hand = 0;
            }
            let (rid, page) = self.clock_queue[self.clock_hand];
            let state = self
                .regions
                .get(&rid)
                .map(|r| r.pages[page])
                .unwrap_or(PageState::Untouched);
            match state {
                PageState::Resident { referenced: true } => {
                    // Second chance: clear the bit and advance.
                    self.set_state(rid, page, PageState::Resident { referenced: false });
                    self.clock_hand = (self.clock_hand + 1) % self.clock_queue.len();
                }
                PageState::Resident { referenced: false } => {
                    self.set_state(rid, page, PageState::Evicted);
                    self.resident_pages -= 1;
                    self.clock_queue.remove(self.clock_hand);
                    if self.clock_hand >= self.clock_queue.len() {
                        self.clock_hand = 0;
                    }
                    outcome.pages_evicted += 1;
                    self.stats.pages_evicted += 1;
                    return;
                }
                PageState::Untouched | PageState::Evicted => {
                    // Stale queue entry (region freed or already evicted);
                    // drop it.
                    self.clock_queue.remove(self.clock_hand);
                    if self.clock_hand >= self.clock_queue.len() {
                        self.clock_hand = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_without_paging() {
        let mut epc = Epc::new(16 * PAGE_SIZE);
        let a = epc.alloc(4 * PAGE_SIZE).unwrap();
        let o1 = epc.touch(a);
        assert_eq!(o1, TouchOutcome { pages_added: 4, pages_loaded: 0, pages_evicted: 0 });
        let o2 = epc.touch(a);
        assert_eq!(o2, TouchOutcome::default());
        assert_eq!(epc.stats().hits, 4);
        assert_eq!(epc.resident_pages(), 4);
    }

    #[test]
    fn rejects_oversized_allocation() {
        let mut epc = Epc::new(4 * PAGE_SIZE);
        assert!(matches!(
            epc.alloc(5 * PAGE_SIZE),
            Err(EnclaveError::EpcExhausted { .. })
        ));
        assert!(epc.alloc(4 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn working_set_larger_than_epc_thrashes() {
        // Two 3-page regions in a 4-page EPC: alternating sweeps must page.
        let mut epc = Epc::new(4 * PAGE_SIZE);
        let a = epc.alloc(3 * PAGE_SIZE).unwrap();
        let b = epc.alloc(3 * PAGE_SIZE).unwrap();
        epc.touch(a);
        let ob = epc.touch(b);
        assert!(ob.pages_evicted >= 2, "loading B must evict A pages: {ob:?}");
        let oa = epc.touch(a);
        assert!(oa.pages_loaded >= 1, "A pages must reload: {oa:?}");
        assert!(epc.resident_pages() <= 4);
    }

    #[test]
    fn free_releases_residency() {
        let mut epc = Epc::new(8 * PAGE_SIZE);
        let a = epc.alloc(8 * PAGE_SIZE).unwrap();
        epc.touch(a);
        assert_eq!(epc.resident_pages(), 8);
        epc.free(a).unwrap();
        assert_eq!(epc.resident_pages(), 0);
        assert_eq!(epc.free(a), Err(EnclaveError::InvalidRegion));

        // Space is actually reusable.
        let b = epc.alloc(8 * PAGE_SIZE).unwrap();
        let o = epc.touch(b);
        assert_eq!(o.pages_evicted, 0);
    }

    #[test]
    fn touch_range_only_pages_touched_pages() {
        let mut epc = Epc::new(64 * PAGE_SIZE);
        let a = epc.alloc(10 * PAGE_SIZE).unwrap();
        let o = epc.touch_range(a, PAGE_SIZE + 10, PAGE_SIZE);
        // Bytes [4106, 8202) span pages 1 and 2.
        assert_eq!(o.pages_added, 2);
        assert_eq!(epc.resident_pages(), 2);
    }

    #[test]
    fn clock_gives_second_chances() {
        // One hot page touched between sweeps of a cold region should
        // survive eviction pressure more often than FIFO would allow.
        let mut epc = Epc::new(4 * PAGE_SIZE);
        let hot = epc.alloc(PAGE_SIZE).unwrap();
        let cold = epc.alloc(4 * PAGE_SIZE).unwrap();
        epc.touch(hot);
        let before = epc.stats();
        epc.touch_range(cold, 0, 2 * PAGE_SIZE);
        epc.touch(hot); // re-reference
        epc.touch_range(cold, 2 * PAGE_SIZE, 2 * PAGE_SIZE);
        let o = epc.touch(hot);
        let after = epc.stats();
        // The hot page was re-referenced constantly; it should mostly hit.
        assert!(after.hits > before.hits);
        assert!(o.pages_loaded <= 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut epc = Epc::new(2 * PAGE_SIZE);
        let a = epc.alloc(2 * PAGE_SIZE).unwrap();
        let b = epc.alloc(2 * PAGE_SIZE).unwrap();
        epc.touch(a);
        epc.touch(b);
        epc.touch(a);
        let s = epc.stats();
        assert_eq!(s.pages_added, 4);
        assert!(s.pages_evicted >= 4);
        assert!(s.pages_loaded >= 2);
    }

    #[test]
    fn shrinking_capacity_evicts_surplus_via_clock() {
        let mut epc = Epc::new(8 * PAGE_SIZE);
        let a = epc.alloc(6 * PAGE_SIZE).unwrap();
        epc.touch(a);
        assert_eq!(epc.resident_pages(), 6);

        let o = epc.set_capacity_pages(2);
        assert_eq!(epc.capacity_pages(), 2);
        assert_eq!(o.pages_evicted, 4);
        assert_eq!(o.pages_added, 0);
        assert_eq!(o.pages_loaded, 0);
        assert_eq!(epc.resident_pages(), 2);

        // The next full sweep thrashes through the shrunken cache.
        let o = epc.touch(a);
        assert!(o.pages_loaded >= 4, "sweep must reload evicted pages: {o:?}");
        assert!(epc.resident_pages() <= 2);
    }

    #[test]
    fn growing_capacity_is_free_and_floor_is_one_page() {
        let mut epc = Epc::new(2 * PAGE_SIZE);
        let a = epc.alloc(2 * PAGE_SIZE).unwrap();
        epc.touch(a);

        let o = epc.set_capacity_pages(16);
        assert_eq!(o, TouchOutcome::default());
        assert_eq!(epc.capacity_pages(), 16);
        assert_eq!(epc.resident_pages(), 2);

        let o = epc.set_capacity_pages(0);
        assert_eq!(epc.capacity_pages(), 1);
        assert_eq!(o.pages_evicted, 1);
        assert_eq!(epc.resident_pages(), 1);
    }

    #[test]
    fn capacity_shrink_accumulates_into_stats() {
        let mut epc = Epc::new(4 * PAGE_SIZE);
        let a = epc.alloc(4 * PAGE_SIZE).unwrap();
        epc.touch(a);
        let before = epc.stats().pages_evicted;
        epc.set_capacity_pages(1);
        assert_eq!(epc.stats().pages_evicted, before + 3);
    }

    #[test]
    fn region_pages_reports_size() {
        let mut epc = Epc::new(100 * PAGE_SIZE);
        let a = epc.alloc(PAGE_SIZE * 3 + 1).unwrap();
        assert_eq!(epc.region_pages(a).unwrap(), 4);
        assert!(epc.region_pages(RegionId(999)).is_err());
    }
}
