//! Property-based tests for the crypto substrate.

use caltrain_crypto::gcm::AesGcm;
use caltrain_crypto::hkdf;
use caltrain_crypto::hmac::hmac_sha256;
use caltrain_crypto::rng::HmacDrbg;
use caltrain_crypto::sha256::Sha256;
use caltrain_crypto::x25519;
use caltrain_crypto::CryptoError;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gcm_roundtrip(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        plaintext in proptest::collection::vec(any::<u8>(), 0..256),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let cipher = AesGcm::new_128(&key);
        let sealed = cipher.seal(&nonce, &plaintext, &aad);
        prop_assert_eq!(sealed.len(), plaintext.len() + 16);
        let opened = cipher.open(&nonce, &sealed, &aad).unwrap();
        prop_assert_eq!(opened, plaintext);
    }

    #[test]
    fn gcm_detects_any_single_bitflip(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        plaintext in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..64,
    ) {
        let cipher = AesGcm::new_128(&key);
        let mut sealed = cipher.seal(&nonce, &plaintext, b"");
        let bit = flip_bit % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(
            cipher.open(&nonce, &sealed, b""),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn gcm_wrong_key_rejected(
        k1 in proptest::array::uniform16(any::<u8>()),
        k2 in proptest::array::uniform16(any::<u8>()),
        plaintext in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(k1 != k2);
        let nonce = [0u8; 12];
        let sealed = AesGcm::new_128(&k1).seal(&nonce, &plaintext, b"");
        prop_assert!(AesGcm::new_128(&k2).open(&nonce, &sealed, b"").is_err());
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        idx in 0usize..512,
    ) {
        let d1 = Sha256::digest(&data);
        prop_assert_eq!(d1, Sha256::digest(&data));
        let mut mutated = data.clone();
        let i = idx % mutated.len();
        mutated[i] ^= 0xff;
        prop_assert_ne!(d1, Sha256::digest(&mutated));
    }

    #[test]
    fn hmac_keyed_separation(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    #[test]
    fn hkdf_deterministic_and_info_separated(
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        salt in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let a = hkdf::derive(&salt, &ikm, b"info-a", 32).unwrap();
        let b = hkdf::derive(&salt, &ikm, b"info-a", 32).unwrap();
        prop_assert_eq!(&a, &b);
        let c = hkdf::derive(&salt, &ikm, b"info-b", 32).unwrap();
        prop_assert_ne!(a, c);
    }

    #[test]
    fn x25519_dh_agreement(
        sk_a in proptest::array::uniform32(any::<u8>()),
        sk_b in proptest::array::uniform32(any::<u8>()),
    ) {
        let pk_a = x25519::public_key(&sk_a);
        let pk_b = x25519::public_key(&sk_b);
        let s1 = x25519::shared_secret(&sk_a, &pk_b).unwrap();
        let s2 = x25519::shared_secret(&sk_b, &pk_a).unwrap();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn drbg_streams_reproducible(
        seed in proptest::collection::vec(any::<u8>(), 1..64),
        n in 1usize..256,
    ) {
        let mut a = HmacDrbg::new(&seed, b"");
        let mut b = HmacDrbg::new(&seed, b"");
        prop_assert_eq!(a.generate(n), b.generate(n));
    }
}
