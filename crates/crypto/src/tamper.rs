//! Deterministic tamper helpers for fault-injection tests.
//!
//! The scenario harness (`caltrain-sim`) and the GCM property tests need
//! to corrupt sealed payloads *reproducibly*: the same seed must flip the
//! same bit on every run, at any worker count. These helpers take explicit
//! indices — the caller derives them from its own seeded RNG — and wrap
//! them modulo the buffer length, so any `u64` is a valid injection site
//! and an empty buffer is a no-op rather than a panic.
//!
//! GCM's guarantee (and the paper's §IV-A integrity argument) is that
//! *every* such corruption — any bit of ciphertext, tag or AAD — makes
//! authentication fail. The property tests drive these helpers over
//! random sites to check exactly that.

/// Flips one bit of `bytes`, selected by `bit` modulo the total bit
/// length. Returns the `(byte_index, mask)` actually flipped, or `None`
/// (no-op) if the buffer is empty.
pub fn flip_bit(bytes: &mut [u8], bit: u64) -> Option<(usize, u8)> {
    if bytes.is_empty() {
        return None;
    }
    let bit = (bit % (bytes.len() as u64 * 8)) as usize;
    let mask = 1u8 << (bit % 8);
    bytes[bit / 8] ^= mask;
    Some((bit / 8, mask))
}

/// XORs `mask` into one byte of `bytes`, selected by `index` modulo the
/// length. A zero `mask` is promoted to `0x01` so the call always
/// corrupts. Returns the `(byte_index, mask)` applied, or `None` (no-op)
/// if the buffer is empty.
pub fn flip_byte(bytes: &mut [u8], index: u64, mask: u8) -> Option<(usize, u8)> {
    if bytes.is_empty() {
        return None;
    }
    let index = (index % bytes.len() as u64) as usize;
    let mask = if mask == 0 { 1 } else { mask };
    bytes[index] ^= mask;
    Some((index, mask))
}

/// Truncates `bytes` to `keep` elements modulo `len + 1` — covering both
/// "cut the tag off" and "cut to nothing". Returns the new length.
pub fn truncate_to(bytes: &mut Vec<u8>, keep: u64) -> usize {
    let keep = (keep % (bytes.len() as u64 + 1)) as usize;
    bytes.truncate(keep);
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_is_a_self_inverse_single_bit_change() {
        let original = vec![0xABu8, 0xCD, 0xEF];
        for bit in [0u64, 7, 8, 23, 24, 1_000_003] {
            let mut corrupted = original.clone();
            let (idx, mask) = flip_bit(&mut corrupted, bit).unwrap();
            assert_ne!(corrupted, original);
            assert_eq!(corrupted[idx] ^ original[idx], mask);
            assert_eq!(mask.count_ones(), 1);
            flip_bit(&mut corrupted, bit);
            assert_eq!(corrupted, original, "flipping twice must restore");
        }
    }

    #[test]
    fn flip_byte_always_corrupts() {
        let original = vec![1u8, 2, 3, 4];
        for (index, mask) in [(0u64, 0u8), (3, 0xFF), (4, 0x10), (u64::MAX, 0)] {
            let mut corrupted = original.clone();
            let (idx, applied) = flip_byte(&mut corrupted, index, mask).unwrap();
            assert_ne!(corrupted, original, "index {index} mask {mask:#x}");
            assert_eq!(corrupted[idx], original[idx] ^ applied);
        }
    }

    #[test]
    fn empty_buffers_are_no_ops() {
        let mut empty: Vec<u8> = Vec::new();
        assert!(flip_bit(&mut empty, 5).is_none());
        assert!(flip_byte(&mut empty, 5, 0xFF).is_none());
        assert_eq!(truncate_to(&mut empty, 9), 0);
    }

    #[test]
    fn injection_sites_wrap_modulo_buffer_length() {
        // A site index beyond the buffer is the same injection as its
        // modular reduction — any u64 from a seeded RNG is valid.
        let mut a = vec![0u8; 4];
        let mut b = vec![0u8; 4];
        assert_eq!(flip_bit(&mut a, 3), flip_bit(&mut b, 3 + 32));
        assert_eq!(a, b);
        assert_eq!(flip_byte(&mut a, 1, 0x80), flip_byte(&mut b, 1 + 4, 0x80));
        assert_eq!(a, b);
        assert_eq!(flip_bit(&mut a, u64::MAX).unwrap(), (3, 0x80));
    }

    #[test]
    fn truncate_keep_at_or_beyond_len_never_grows() {
        let mut b = vec![7u8; 5];
        // keep == len keeps everything (len is inside the modulus range).
        assert_eq!(truncate_to(&mut b, 5), 5);
        assert_eq!(b, vec![7u8; 5]);
        // keep == len + 1 wraps to zero.
        assert_eq!(truncate_to(&mut b, 6), 0);
        let mut c = vec![7u8; 5];
        assert_eq!(truncate_to(&mut c, u64::MAX), (u64::MAX % 6) as usize);
        assert!(c.len() <= 5);
    }

    #[test]
    fn truncate_wraps_over_full_range() {
        let mut b = vec![0u8; 10];
        assert_eq!(truncate_to(&mut b, 7), 7);
        // 11 % (7 + 1) = 3.
        assert_eq!(truncate_to(&mut b, 11), 3);
        assert_eq!(truncate_to(&mut b, 0), 0);
    }
}
