//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! Provides the key-agreement half of the attested secret-provisioning
//! channel: each training participant runs an ECDH handshake with the
//! training enclave and derives AES-GCM session keys from the shared
//! secret via [`crate::hkdf`], mirroring the TLS channel the paper builds
//! with mbedtls-SGX.
//!
//! Field arithmetic uses the standard five 51-bit-limb radix with `u128`
//! intermediate products; the scalar multiplication is the RFC 7748
//! Montgomery ladder with constant-time conditional swaps.

use crate::CryptoError;

/// Byte length of X25519 scalars, public keys and shared secrets.
pub const KEY_LEN: usize = 32;

const MASK51: u64 = (1 << 51) - 1;

/// An element of GF(2^255 − 19) in radix-2^51 representation.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load8 = |b: &[u8]| -> u64 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(b);
            u64::from_le_bytes(buf)
        };
        Fe([
            load8(&bytes[0..8]) & MASK51,
            (load8(&bytes[6..14]) >> 3) & MASK51,
            (load8(&bytes[12..20]) >> 6) & MASK51,
            (load8(&bytes[19..27]) >> 1) & MASK51,
            (load8(&bytes[24..32]) >> 12) & MASK51,
        ])
    }

    /// Serializes a fully-reduced canonical encoding.
    fn to_bytes(self) -> [u8; 32] {
        let mut l = self.weak_reduce().0;
        // Compute the quotient of (value + 19) / 2^255 to decide whether a
        // final subtraction of p is needed, then apply it.
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        l[1] += l[0] >> 51;
        l[0] &= MASK51;
        l[2] += l[1] >> 51;
        l[1] &= MASK51;
        l[3] += l[2] >> 51;
        l[2] &= MASK51;
        l[4] += l[3] >> 51;
        l[3] &= MASK51;
        l[4] &= MASK51;

        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for (i, &limb) in l.iter().enumerate() {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            // Bit 255 never set after reduction; last limb flushes 32 bytes.
            let flush = if i == 4 { acc_bits.div_ceil(8) } else { acc_bits / 8 };
            for _ in 0..flush.min((32 - idx) as u32) {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits = acc_bits.saturating_sub(8);
                idx += 1;
            }
        }
        out
    }

    /// One carry-propagation pass; limbs end below 2^52.
    fn weak_reduce(self) -> Fe {
        let mut l = self.0;
        let c0 = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c0;
        let c1 = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c1;
        let c2 = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c2;
        let c3 = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c3;
        let c4 = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += 19 * c4;
        let c0b = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c0b;
        Fe(l)
    }

    fn add(&self, rhs: &Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .weak_reduce()
    }

    fn sub(&self, rhs: &Fe) -> Fe {
        // Add 2p before subtracting so limbs never underflow.
        const TWO_P0: u64 = 0x0FFFFFFFFFFFDA * 4; // 2 * (2^51 - 19) * 2
        const TWO_PI: u64 = 0x0FFFFFFFFFFFFE * 4; // 2 * (2^51 - 1) * 2
        Fe([
            self.0[0] + TWO_P0 - rhs.0[0],
            self.0[1] + TWO_PI - rhs.0[1],
            self.0[2] + TWO_PI - rhs.0[2],
            self.0[3] + TWO_PI - rhs.0[3],
            self.0[4] + TWO_PI - rhs.0[4],
        ])
        .weak_reduce()
    }

    fn mul(&self, rhs: &Fe) -> Fe {
        let a: [u128; 5] = [
            self.0[0] as u128,
            self.0[1] as u128,
            self.0[2] as u128,
            self.0[3] as u128,
            self.0[4] as u128,
        ];
        let b: [u128; 5] = [
            rhs.0[0] as u128,
            rhs.0[1] as u128,
            rhs.0[2] as u128,
            rhs.0[3] as u128,
            rhs.0[4] as u128,
        ];
        let b19: [u128; 5] = [b[0] * 19, b[1] * 19, b[2] * 19, b[3] * 19, b[4] * 19];

        let mut c = [0u128; 5];
        c[0] = a[0] * b[0] + a[1] * b19[4] + a[2] * b19[3] + a[3] * b19[2] + a[4] * b19[1];
        c[1] = a[0] * b[1] + a[1] * b[0] + a[2] * b19[4] + a[3] * b19[3] + a[4] * b19[2];
        c[2] = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + a[3] * b19[4] + a[4] * b19[3];
        c[3] = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + a[4] * b19[4];
        c[4] = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];

        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = c[i] + carry;
            out[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        out[0] += (carry as u64) * 19;
        Fe(out).weak_reduce()
    }

    fn square(&self) -> Fe {
        self.mul(self)
    }

    fn mul_small(&self, k: u64) -> Fe {
        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = self.0[i] as u128 * k as u128 + carry;
            out[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        out[0] += (carry as u64) * 19;
        Fe(out).weak_reduce()
    }

    /// Inversion via Fermat: z^(p−2) with p−2 = 2^255 − 21.
    fn invert(&self) -> Fe {
        // Exponent bytes little-endian: 0xeb, 0xff × 30, 0x7f.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;

        let mut acc = Fe::ONE;
        for bit in (0..255).rev() {
            acc = acc.square();
            if (exp[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }
}

/// Constant-time swap of two field elements when `swap == 1`.
fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
    let mask = 0u64.wrapping_sub(swap);
    for i in 0..5 {
        let t = mask & (a.0[i] ^ b.0[i]);
        a.0[i] ^= t;
        b.0[i] ^= t;
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// The X25519 base point `u = 9`.
pub fn base_point() -> [u8; 32] {
    let mut p = [0u8; 32];
    p[0] = 9;
    p
}

/// Raw X25519 scalar multiplication: `scalar · point` on the Montgomery
/// curve, with the scalar clamped internally.
pub fn x25519(scalar: &[u8; 32], point: &[u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(*scalar);
    let x1 = Fe::from_bytes(point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        cswap(swap, &mut x2, &mut x3);
        cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&e.mul_small(121665)));
    }
    cswap(swap, &mut x2, &mut x3);
    cswap(swap, &mut z2, &mut z3);

    x2.mul(&z2.invert()).to_bytes()
}

/// Derives the public key for a secret scalar.
pub fn public_key(scalar: &[u8; 32]) -> [u8; 32] {
    x25519(scalar, &base_point())
}

/// Computes the shared secret between `scalar` and a peer public key.
///
/// # Errors
///
/// Returns [`CryptoError::DegenerateSharedSecret`] if the result is the
/// all-zero point (the peer supplied a low-order public key), as RFC 7748
/// §6.1 requires.
pub fn shared_secret(scalar: &[u8; 32], peer_public: &[u8; 32]) -> Result<[u8; 32], CryptoError> {
    let secret = x25519(scalar, peer_public);
    if secret.iter().all(|&b| b == 0) {
        return Err(CryptoError::DegenerateSharedSecret);
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let mut k = [0u8; 32];
        k[0] = 9;
        let u = k;
        let out = x25519(&k, &u);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        k = out;
        let _ = k;
    }

    // RFC 7748 §6.1 Diffie-Hellman vectors.
    #[test]
    fn rfc7748_dh() {
        let alice_sk =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

        let alice_pk = public_key(&alice_sk);
        assert_eq!(
            hex(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_pk = public_key(&bob_sk);
        assert_eq!(
            hex(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );

        let s1 = shared_secret(&alice_sk, &bob_pk).unwrap();
        let s2 = shared_secret(&bob_sk, &alice_pk).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            hex(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn rejects_low_order_point() {
        let sk = [0x42u8; 32];
        let zero_point = [0u8; 32];
        assert_eq!(
            shared_secret(&sk, &zero_point),
            Err(CryptoError::DegenerateSharedSecret)
        );
    }

    #[test]
    fn clamping_is_idempotent() {
        let s = [0xffu8; 32];
        let once = clamp_scalar(s);
        assert_eq!(clamp_scalar(once), once);
        assert_eq!(once[0] & 7, 0);
        assert_eq!(once[31] & 0x80, 0);
        assert_eq!(once[31] & 0x40, 0x40);
    }

    #[test]
    fn field_roundtrip() {
        // Encode/decode a handful of canonical values.
        for seed in 0u8..8 {
            let mut bytes = [0u8; 32];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = seed.wrapping_mul(31).wrapping_add(i as u8);
            }
            bytes[31] &= 0x3f; // stay safely below p
            let fe = Fe::from_bytes(&bytes);
            assert_eq!(fe.to_bytes(), bytes, "seed {seed}");
        }
    }

    #[test]
    fn field_inversion() {
        let mut bytes = [0u8; 32];
        bytes[0] = 5;
        let fe = Fe::from_bytes(&bytes);
        let inv = fe.invert();
        let prod = fe.mul(&inv).to_bytes();
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(prod, one);
    }
}
