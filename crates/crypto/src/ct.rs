//! Constant-time byte comparison.

/// Compares two byte slices without early exit on mismatch.
///
/// Returns `false` immediately only for *length* mismatch (lengths are
/// public in every protocol here). Content comparison accumulates the XOR
/// of every byte pair so timing does not reveal the first differing index.
///
/// # Example
///
/// ```
/// use caltrain_crypto::ct::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tat"));
/// assert!(!ct_eq(b"tag", b"tags"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_and_unequal() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(!ct_eq(&[0x80], &[0x00]));
    }
}
