use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An AES-GCM tag check failed: the ciphertext or its associated data
    /// was tampered with, or the wrong key was used. CalTrain's training
    /// enclave *discards* such batches (paper §IV-A, "Authenticity and
    /// Integrity Checking").
    AuthenticationFailed,
    /// An input had an invalid length for the requested primitive.
    InvalidLength {
        /// Name of the offending input.
        what: &'static str,
        /// Length supplied by the caller.
        len: usize,
        /// Length (or minimum length) required.
        expected: usize,
    },
    /// A ciphertext was shorter than the mandatory authentication tag.
    TruncatedCiphertext,
    /// An X25519 exchange produced the all-zero shared secret (low-order
    /// peer point); RFC 7748 requires rejecting it.
    DegenerateSharedSecret,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication tag mismatch"),
            CryptoError::InvalidLength { what, len, expected } => {
                write!(f, "invalid {what} length {len}, expected {expected}")
            }
            CryptoError::TruncatedCiphertext => {
                write!(f, "ciphertext shorter than authentication tag")
            }
            CryptoError::DegenerateSharedSecret => {
                write!(f, "x25519 produced an all-zero shared secret")
            }
        }
    }
}

impl Error for CryptoError {}
