//! HMAC-DRBG with SHA-256 (NIST SP 800-90A §10.1.2).
//!
//! The paper leans on "Intel's on-chip hardware random number generator"
//! for the randomness data augmentation needs *inside* the enclave
//! (§IV-A). The simulated platform exposes this DRBG in its place: a
//! deterministic, seedable generator with the same security structure,
//! which also makes every experiment in this reproduction replayable.

use crate::hmac::hmac_sha256;

/// A deterministic random bit generator (HMAC-DRBG / SHA-256).
///
/// # Example
///
/// ```
/// use caltrain_crypto::rng::HmacDrbg;
///
/// let mut a = HmacDrbg::new(b"seed", b"enclave-0");
/// let mut b = HmacDrbg::new(b"seed", b"enclave-0");
/// assert_eq!(a.generate(16), b.generate(16));
/// ```
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from entropy input and a personalization
    /// string (NIST "Instantiate" with the nonce folded into `entropy`).
    pub fn new(entropy: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = HmacDrbg { k: [0u8; 32], v: [1u8; 32], reseed_counter: 1 };
        let mut seed = Vec::with_capacity(entropy.len() + personalization.len());
        seed.extend_from_slice(entropy);
        seed.extend_from_slice(personalization);
        drbg.update(Some(&seed));
        drbg
    }

    /// Mixes fresh entropy into the state (NIST "Reseed").
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    /// Produces `n` pseudorandom bytes.
    pub fn generate(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            self.v = *hmac_sha256(&self.k, &self.v).as_bytes();
            out.extend_from_slice(&self.v);
        }
        out.truncate(n);
        self.update(None);
        self.reseed_counter += 1;
        out
    }

    /// Produces a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let bytes = self.generate(8);
        u64::from_le_bytes(bytes.try_into().expect("generate(8) returns 8 bytes"))
    }

    /// Produces a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// How many `generate` calls since instantiation or the last reseed.
    pub fn reseed_counter(&self) -> u64 {
        self.reseed_counter
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut data = Vec::with_capacity(33 + provided.map_or(0, <[u8]>::len));
        data.extend_from_slice(&self.v);
        data.push(0x00);
        if let Some(p) = provided {
            data.extend_from_slice(p);
        }
        self.k = *hmac_sha256(&self.k, &data).as_bytes();
        self.v = *hmac_sha256(&self.k, &self.v).as_bytes();

        if let Some(p) = provided {
            let mut data = Vec::with_capacity(33 + p.len());
            data.extend_from_slice(&self.v);
            data.push(0x01);
            data.extend_from_slice(p);
            self.k = *hmac_sha256(&self.k, &data).as_bytes();
            self.v = *hmac_sha256(&self.k, &self.v).as_bytes();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"entropy", b"p13n");
        let mut b = HmacDrbg::new(b"entropy", b"p13n");
        assert_eq!(a.generate(100), b.generate(100));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"entropy-a", b"");
        let mut b = HmacDrbg::new(b"entropy-b", b"");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn personalization_separates_streams() {
        let mut a = HmacDrbg::new(b"entropy", b"enclave-0");
        let mut b = HmacDrbg::new(b"entropy", b"enclave-1");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"entropy", b"");
        let mut b = HmacDrbg::new(b"entropy", b"");
        let _ = a.generate(16);
        let _ = b.generate(16);
        b.reseed(b"fresh");
        assert_ne!(a.generate(16), b.generate(16));
        assert_eq!(b.reseed_counter(), 2);
    }

    #[test]
    fn sequential_outputs_differ() {
        let mut a = HmacDrbg::new(b"entropy", b"");
        let x = a.generate(32);
        let y = a.generate(32);
        assert_ne!(x, y);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut a = HmacDrbg::new(b"f32", b"");
        for _ in 0..1000 {
            let v = a.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn rough_uniformity() {
        // Mean of 4096 u8 draws should be near 127.5; this catches gross
        // bias bugs, not statistical subtleties.
        let mut a = HmacDrbg::new(b"uniformity", b"");
        let bytes = a.generate(4096);
        let mean: f64 = bytes.iter().map(|&b| b as f64).sum::<f64>() / 4096.0;
        assert!((mean - 127.5).abs() < 8.0, "mean {mean}");
    }
}
