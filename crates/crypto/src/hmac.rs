//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are pre-hashed, shorter keys are
/// zero-padded, per the RFC.
///
/// # Example
///
/// ```
/// use caltrain_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.as_bytes().len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Incremental HMAC-SHA256 for multi-part messages.
///
/// # Example
///
/// ```
/// use caltrain_crypto::hmac::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"mess");
/// mac.update(b"age");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates an incremental MAC keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the tag, consuming the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Digest) -> String {
        d.to_hex()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"some key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"some key", b"hello world"));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k1", b"msg1"), hmac_sha256(b"k1", b"msg2"));
    }
}
