//! HKDF with SHA-256 (RFC 5869).
//!
//! The attested secure channel derives its AES-GCM session keys from the
//! X25519 shared secret with HKDF, binding the channel transcript into the
//! `info` parameter — the same construction TLS 1.3 uses, standing in for
//! the paper's mbedtls-SGX channel.

use crate::hmac::hmac_sha256;
use crate::CryptoError;

/// `HKDF-Extract(salt, ikm)` — returns a 32-byte pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    *hmac_sha256(salt, ikm).as_bytes()
}

/// `HKDF-Expand(prk, info, out_len)` — expands a pseudorandom key into
/// `out_len` bytes of output keying material.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `out_len > 255 * 32`, the RFC
/// 5869 ceiling.
pub fn expand(prk: &[u8; 32], info: &[u8], out_len: usize) -> Result<Vec<u8>, CryptoError> {
    if out_len > 255 * 32 {
        return Err(CryptoError::InvalidLength {
            what: "hkdf output",
            len: out_len,
            expected: 255 * 32,
        });
    }
    let blocks = out_len.div_ceil(32);
    let mut okm = Vec::with_capacity(blocks * 32);
    let mut t: Vec<u8> = Vec::new();
    for counter in 1..=blocks as u8 {
        let mut block_input = Vec::with_capacity(t.len() + info.len() + 1);
        block_input.extend_from_slice(&t);
        block_input.extend_from_slice(info);
        block_input.push(counter);
        let block = hmac_sha256(prk, &block_input);
        t = block.as_bytes().to_vec();
        okm.extend_from_slice(&t);
    }
    okm.truncate(out_len);
    Ok(okm)
}

/// One-shot `HKDF(salt, ikm, info) -> out_len` bytes.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `out_len` exceeds the RFC 5869
/// ceiling of `255 * 32` bytes.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Result<Vec<u8>, CryptoError> {
    expand(&extract(salt, ikm), info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42).unwrap();
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn rejects_oversized_output() {
        let prk = [0u8; 32];
        assert!(expand(&prk, b"", 255 * 32).is_ok());
        assert!(expand(&prk, b"", 255 * 32 + 1).is_err());
    }

    #[test]
    fn info_separates_keys() {
        let ikm = b"shared secret";
        let k1 = derive(b"salt", ikm, b"client->server", 32).unwrap();
        let k2 = derive(b"salt", ikm, b"server->client", 32).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn output_is_prefix_consistent() {
        // Expanding to 64 bytes then truncating equals expanding to 16.
        let prk = extract(b"s", b"ikm");
        let long = expand(&prk, b"info", 64).unwrap();
        let short = expand(&prk, b"info", 16).unwrap();
        assert_eq!(&long[..16], &short[..]);
    }
}
