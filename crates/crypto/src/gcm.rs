//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the primitive CalTrain participants use to seal training data
//! before upload and that the training enclave uses to *authenticate the
//! data source* (paper §IV-A "Authenticating Participants"): a valid tag
//! under participant *i*'s key proves the batch came from a registered
//! participant and survived transit unmodified. Forged or corrupted batches
//! fail [`AesGcm::open`] and are discarded.

use crate::aes::Aes;
use crate::ct::ct_eq;
use crate::CryptoError;

/// Length in bytes of the GCM authentication tag (full 128-bit tags only).
pub const TAG_LEN: usize = 16;

/// Length in bytes of the GCM nonce (the 96-bit fast path only).
pub const NONCE_LEN: usize = 12;

/// GF(2^128) multiplication for GHASH, bit-reflected per the GCM spec.
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(buf)
}

/// An AES-GCM AEAD cipher with a fixed key.
///
/// # Example
///
/// ```
/// use caltrain_crypto::gcm::AesGcm;
///
/// let cipher = AesGcm::new_128(&[0x42; 16]);
/// let sealed = cipher.seal(&[0; 12], b"secret", b"header");
/// assert_eq!(cipher.open(&[0; 12], &sealed, b"header")?, b"secret");
/// assert!(cipher.open(&[0; 12], &sealed, b"tampered").is_err());
/// # Ok::<(), caltrain_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    /// GHASH subkey `H = E_K(0^128)`.
    h: u128,
}

impl AesGcm {
    /// Creates a GCM cipher over AES-128.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::from_aes(Aes::new_128(key))
    }

    /// Creates a GCM cipher over AES-256.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::from_aes(Aes::new_256(key))
    }

    fn from_aes(aes: Aes) -> Self {
        let mut zero = [0u8; 16];
        aes.encrypt_block(&mut zero);
        AesGcm { aes, h: u128::from_be_bytes(zero) }
    }

    /// Encrypts `plaintext`, authenticating it together with `aad`.
    ///
    /// Returns `ciphertext || tag`; the tag is the final [`TAG_LEN`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `nonce` is not [`NONCE_LEN`] bytes — nonce length is a
    /// protocol constant, never attacker-controlled input.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr_xor(nonce, 2, &mut out);
        let tag = self.compute_tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies the tag of `ciphertext || tag` against `aad`, returning the
    /// plaintext only if authentication succeeds.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::TruncatedCiphertext`] if the input is shorter than
    ///   the tag.
    /// * [`CryptoError::AuthenticationFailed`] if the tag does not verify;
    ///   no plaintext is released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        ciphertext_and_tag: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext);
        }
        let split = ciphertext_and_tag.len() - TAG_LEN;
        let (ciphertext, tag) = ciphertext_and_tag.split_at(split);
        let expected = self.compute_tag(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut plaintext = ciphertext.to_vec();
        self.ctr_xor(nonce, 2, &mut plaintext);
        Ok(plaintext)
    }

    /// CTR-mode keystream XOR starting at block counter `start`.
    fn ctr_xor(&self, nonce: &[u8; NONCE_LEN], start: u32, data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        let mut counter = start;
        for chunk in data.chunks_mut(16) {
            counter_block[12..].copy_from_slice(&counter.to_be_bytes());
            let mut keystream = counter_block;
            self.aes.encrypt_block(&mut keystream);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> u128 {
        let mut y = 0u128;
        for chunk in aad.chunks(16) {
            y = gf_mul(y ^ block_to_u128(chunk), self.h);
        }
        for chunk in ciphertext.chunks(16) {
            y = gf_mul(y ^ block_to_u128(chunk), self.h);
        }
        let lengths =
            ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        gf_mul(y ^ lengths, self.h)
    }

    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let s = self.ghash(aad, ciphertext);
        // E_K(J0) where J0 = nonce || 0x00000001 for 96-bit nonces.
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        self.aes.encrypt_block(&mut j0);
        (s ^ u128::from_be_bytes(j0)).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn nonce12(s: &str) -> [u8; 12] {
        let v = unhex(s);
        let mut n = [0u8; 12];
        n.copy_from_slice(&v);
        n
    }

    // McGrew & Viega GCM spec test case 1: empty everything.
    #[test]
    fn gcm_test_case_1() {
        let cipher = AesGcm::new_128(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed, unhex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    // Test case 2: single zero block.
    #[test]
    fn gcm_test_case_2() {
        let cipher = AesGcm::new_128(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(
            sealed,
            unhex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
    }

    // Test case 3: 64-byte plaintext, no AAD.
    #[test]
    fn gcm_test_case_3() {
        let key = unhex("feffe9928665731c6d6a8f9467308308");
        let mut k = [0u8; 16];
        k.copy_from_slice(&key);
        let cipher = AesGcm::new_128(&k);
        let nonce = nonce12("cafebabefacedbaddecaf888");
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = cipher.seal(&nonce, &pt, b"");
        let expect_ct = unhex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        assert_eq!(&sealed[..64], &expect_ct[..]);
        assert_eq!(&sealed[64..], &unhex("4d5c2af327cd64a62cf35abd2ba6fab4")[..]);
        assert_eq!(cipher.open(&nonce, &sealed, b"").unwrap(), pt);
    }

    // Test case 4: 60-byte plaintext with AAD.
    #[test]
    fn gcm_test_case_4() {
        let key = unhex("feffe9928665731c6d6a8f9467308308");
        let mut k = [0u8; 16];
        k.copy_from_slice(&key);
        let cipher = AesGcm::new_128(&k);
        let nonce = nonce12("cafebabefacedbaddecaf888");
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let sealed = cipher.seal(&nonce, &pt, &aad);
        let expect_ct = unhex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
        );
        assert_eq!(&sealed[..60], &expect_ct[..]);
        assert_eq!(&sealed[60..], &unhex("5bc94fbc3221a5db94fae95ae7121a47")[..]);
        assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), pt);
    }

    #[test]
    fn tamper_detection() {
        let cipher = AesGcm::new_128(&[9u8; 16]);
        let nonce = [3u8; 12];
        let mut sealed = cipher.seal(&nonce, b"poisoned batch payload", b"participant-7");

        // Flip one ciphertext bit.
        sealed[4] ^= 0x01;
        assert_eq!(
            cipher.open(&nonce, &sealed, b"participant-7"),
            Err(CryptoError::AuthenticationFailed)
        );
        sealed[4] ^= 0x01;

        // Flip one tag bit.
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(
            cipher.open(&nonce, &sealed, b"participant-7"),
            Err(CryptoError::AuthenticationFailed)
        );
        sealed[last] ^= 0x80;

        // Wrong AAD (spoofed source identity).
        assert_eq!(
            cipher.open(&nonce, &sealed, b"participant-8"),
            Err(CryptoError::AuthenticationFailed)
        );

        // Wrong key (unregistered participant).
        let other = AesGcm::new_128(&[10u8; 16]);
        assert_eq!(
            other.open(&nonce, &sealed, b"participant-7"),
            Err(CryptoError::AuthenticationFailed)
        );

        // Untouched still opens.
        assert!(cipher.open(&nonce, &sealed, b"participant-7").is_ok());
    }

    #[test]
    fn truncated_input_rejected() {
        let cipher = AesGcm::new_128(&[1u8; 16]);
        assert_eq!(
            cipher.open(&[0u8; 12], &[0u8; 15], b""),
            Err(CryptoError::TruncatedCiphertext)
        );
    }

    #[test]
    fn aes256_roundtrip() {
        let cipher = AesGcm::new_256(&[0x55u8; 32]);
        let nonce = [7u8; 12];
        let msg: Vec<u8> = (0..1000u32).map(|v| v as u8).collect();
        let sealed = cipher.seal(&nonce, &msg, b"ctx");
        assert_eq!(cipher.open(&nonce, &sealed, b"ctx").unwrap(), msg);
    }

    #[test]
    fn gf_mul_commutes() {
        let a = 0x0123456789abcdef0123456789abcdefu128;
        let b = 0xfedcba9876543210fedcba9876543210u128;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
        assert_eq!(gf_mul(a, 0), 0);
    }
}
