//! AES-128 / AES-256 block encryption (FIPS 197).
//!
//! Only the forward cipher is implemented: AES-GCM (the only mode CalTrain
//! uses) needs block *encryption* exclusively, for both directions of the
//! CTR keystream and for deriving the GHASH subkey.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ if b & 0x80 != 0 { 0x1b } else { 0x00 }
}

/// An expanded AES key schedule for 128- or 256-bit keys.
///
/// # Example
///
/// ```
/// use caltrain_crypto::aes::Aes;
///
/// let aes = Aes::new_128(&[0u8; 16]);
/// let mut block = [0u8; 16];
/// aes.encrypt_block(&mut block);
/// assert_ne!(block, [0u8; 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
}

impl Aes {
    /// Expands a 128-bit key (10 rounds).
    pub fn new_128(key: &[u8; 16]) -> Self {
        Aes { round_keys: expand_key(key, 4, 10) }
    }

    /// Expands a 256-bit key (14 rounds).
    pub fn new_256(key: &[u8; 32]) -> Self {
        Aes { round_keys: expand_key(key, 8, 14) }
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let rounds = self.rounds();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[rounds]);
    }
}

fn expand_key(key: &[u8], nk: usize, rounds: usize) -> Vec<[u8; 16]> {
    let total_words = 4 * (rounds + 1);
    let mut words: Vec<[u8; 4]> = Vec::with_capacity(total_words);
    for i in 0..nk {
        words.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    for i in nk..total_words {
        let mut temp = words[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / nk];
        } else if nk > 6 && i % nk == 4 {
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
        }
        let prev = words[i - nk];
        words.push([
            prev[0] ^ temp[0],
            prev[1] ^ temp[1],
            prev[2] ^ temp[2],
            prev[3] ^ temp[3],
        ]);
    }
    words
        .chunks_exact(4)
        .map(|quad| {
            let mut rk = [0u8; 16];
            for (i, w) in quad.iter().enumerate() {
                rk[4 * i..4 * i + 4].copy_from_slice(w);
            }
            rk
        })
        .collect()
}

fn add_round_key(block: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        block[i] ^= rk[i];
    }
}

fn sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(block: &mut [u8; 16]) {
    // State is column-major: byte (row r, col c) lives at index 4c + r.
    let orig = *block;
    for r in 1..4 {
        for c in 0..4 {
            block[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(block: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [block[4 * c], block[4 * c + 1], block[4 * c + 2], block[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        block[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        block[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        block[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        block[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_aes128() {
        let key = unhex16("000102030405060708090a0b0c0d0e0f");
        let mut block = unhex16("00112233445566778899aabbccddeeff");
        Aes::new_128(&key).encrypt_block(&mut block);
        assert_eq!(block, unhex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_aes256() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut block = unhex16("00112233445566778899aabbccddeeff");
        Aes::new_256(&key).encrypt_block(&mut block);
        assert_eq!(block, unhex16("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    fn nist_sp800_38a_ecb128_first_block() {
        let key = unhex16("2b7e151628aed2a6abf7158809cf4f3c");
        let mut block = unhex16("6bc1bee22e409f96e93d7e117393172a");
        Aes::new_128(&key).encrypt_block(&mut block);
        assert_eq!(block, unhex16("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes::new_128(&[0; 16]).rounds(), 10);
        assert_eq!(Aes::new_256(&[0; 32]).rounds(), 14);
    }

    #[test]
    fn different_keys_differ() {
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        Aes::new_128(&[1u8; 16]).encrypt_block(&mut b1);
        Aes::new_128(&[2u8; 16]).encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }
}
