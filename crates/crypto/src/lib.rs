//! From-scratch cryptographic primitives for the CalTrain reproduction.
//!
//! The paper's pipeline needs four things from its crypto layer
//! (paper §IV-A, §V):
//!
//! 1. **AES-GCM** — participants seal their training data under their own
//!    symmetric keys; the training enclave authenticates *and* decrypts
//!    with those provisioned keys (tampered or unregistered batches are
//!    discarded).
//! 2. **A key-agreement + KDF** for the TLS-like secret-provisioning
//!    channel into the enclave ([`x25519`] + [`hkdf`]).
//! 3. **Hash digests** for the `H` component of the linkage structure
//!    Ω = [F, Y, S, H] and for enclave measurement ([`sha256`]).
//! 4. **A deterministic random bit generator** standing in for Intel's
//!    on-chip RDRAND/RDSEED, which the paper uses for in-enclave data
//!    augmentation ([`rng::HmacDrbg`]).
//!
//! No crypto crate is available in this build environment, so the
//! primitives are implemented here directly, each validated against the
//! official FIPS / NIST / RFC test vectors in its module tests.
//!
//! **This code favours clarity over side-channel hardening.** It is a
//! research artefact for a *simulated* enclave; do not reuse it as a
//! general-purpose crypto library.
//!
//! # Example
//!
//! ```
//! use caltrain_crypto::gcm::AesGcm;
//!
//! let key = [7u8; 16];
//! let cipher = AesGcm::new_128(&key);
//! let nonce = [1u8; 12];
//! let sealed = cipher.seal(&nonce, b"participant-0 batch", b"aad");
//! let opened = cipher.open(&nonce, &sealed, b"aad")?;
//! assert_eq!(opened, b"participant-0 batch");
//! # Ok::<(), caltrain_crypto::CryptoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod aes;
pub mod ct;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod rng;
pub mod sha256;
pub mod tamper;
pub mod x25519;

pub use error::CryptoError;
pub use sha256::Digest;
