//! Training-throughput gate for the zero-allocation, batch-parallel
//! layer kernels: steps/sec and per-step heap-allocation counts for
//!
//! * the **reference path** — buffer reuse disabled, i.e. the historical
//!   allocate-per-step behaviour, retained exactly for this comparison;
//! * the **reused path** — scratch arenas warm, single worker;
//! * the **parallel path** — scratch arenas warm, 4 workers.
//!
//! All three train the same zoo model on the same batches; the bench
//! asserts their final weights are bit-identical (the worker-count and
//! reuse-knob invariants), asserts **zero thread spawns per step** after
//! warm-up (the persistent-pool invariant), then reports throughput and
//! the modeled cluster speedup, and writes `BENCH_training.json` so the
//! perf trajectory is tracked across PRs (`bench_diff` consumes it).
//!
//! Since PR 5 the bench also gates the **fused epilogue** (exactly ONE
//! write pass over each conv output after its GEMM on the optimized
//! path, vs two on the reference path) and measures **batch-1 forward
//! latency** at 1 vs 4 workers — the shape the row-tiled shared wide
//! GEMM exists to parallelise — asserting the outputs are bit-identical
//! across worker counts.
//!
//! Since PR 7 it also gates the **per-layer job graph**: one conv call
//! (forward or backward) crosses the worker pool at most once — phases
//! chain through dependency edges instead of full-pool barriers — pinned
//! by the `pool::phase_handoffs()` counter and reported as
//! `phase_handoffs_per_conv` / `phase_handoffs_per_conv_backward`.
//!
//! Run modes:
//! * `cargo bench --bench training_throughput` — full run; also asserts
//!   the reused path is ≥ 1.15× the reference path in steps/sec.
//! * `… -- --smoke` — a few steps only: exercises every path, checks
//!   determinism and the JSON emitter, skips the wall-clock-dependent
//!   speedup gate (CI runs this).
//! * `… -- --smoke --batch1-only` — just the batch-1 inference section
//!   (CI runs this a second time under `CALTRAIN_WORKERS=4`); skips the
//!   JSON write so the committed full-run metrics aren't clobbered.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use caltrain_bench::report::BenchReport;
use caltrain_bench::Args;
use caltrain_nn::{zoo, Hyper, KernelMode, Network, Parallelism};
use caltrain_tensor::Tensor;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const BATCH: usize = 16;
const WARMUP_STEPS: usize = 3;

fn training_batches(batches: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..batches)
        .map(|b| {
            let images = Tensor::from_fn(&[BATCH, 3, 28, 28], |i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(b as u64 * 97)) % 251) as f32
                    / 125.0
                    - 1.0
            });
            let labels = (0..BATCH).map(|s| (s * 7 + b) % 10).collect();
            (images, labels)
        })
        .collect()
}

struct RunStats {
    steps_per_sec: f64,
    allocs_per_step: f64,
    mbytes_per_step: f64,
    /// OS threads spawned during the measured (post-warm-up) steps —
    /// must be zero for every path now that the worker pool persists.
    spawns_per_step: f64,
    params: Vec<Vec<f32>>,
    losses: Vec<u32>,
}

/// Trains a fresh copy of the zoo model for `WARMUP_STEPS + steps`
/// batches; measures wall-clock and allocator traffic over the last
/// `steps` only (steady state).
fn run(label: &str, scale: usize, reuse: bool, workers: usize, steps: usize) -> RunStats {
    let mut net: Network = zoo::cifar10_10layer_scaled(scale, 42).expect("fixed architecture");
    net.set_buffer_reuse(reuse);
    net.set_parallelism(Parallelism::new(workers));
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
    let data = training_batches(4);

    let mut losses = Vec::with_capacity(WARMUP_STEPS + steps);
    for step in 0..WARMUP_STEPS {
        let (images, labels) = &data[step % data.len()];
        let (loss, _) = net.train_batch(images, labels, &hyper, KernelMode::Native).unwrap();
        losses.push(loss.to_bits());
    }

    let alloc_start = ALLOCS.load(Ordering::Relaxed);
    let bytes_start = BYTES.load(Ordering::Relaxed);
    let spawn_start = caltrain_runtime::pool::thread_spawns();
    let clock = Instant::now();
    for step in WARMUP_STEPS..WARMUP_STEPS + steps {
        let (images, labels) = &data[step % data.len()];
        let (loss, _) = net.train_batch(images, labels, &hyper, KernelMode::Native).unwrap();
        losses.push(loss.to_bits());
    }
    let secs = clock.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - alloc_start;
    let bytes = BYTES.load(Ordering::Relaxed) - bytes_start;
    let spawns = caltrain_runtime::pool::thread_spawns() - spawn_start;

    let stats = RunStats {
        steps_per_sec: steps as f64 / secs,
        allocs_per_step: allocs as f64 / steps as f64,
        mbytes_per_step: bytes as f64 / steps as f64 / (1024.0 * 1024.0),
        spawns_per_step: spawns as f64 / steps as f64,
        params: net.export_params(),
        losses,
    };
    println!(
        "{label:<22} {:>8.2} steps/s  {:>9.1} allocs/step  {:>8.2} MiB/step  \
         {:>5.1} spawns/step",
        stats.steps_per_sec, stats.allocs_per_step, stats.mbytes_per_step,
        stats.spawns_per_step
    );
    stats
}

/// Modeled cluster speedup of the static per-sample partition: `n`
/// equal-cost samples over `w` workers finish in `ceil(n/w)` sample
/// times (the same list-scheduling model `parallel_scaling` uses).
fn modeled_speedup(n: usize, w: usize) -> f64 {
    n as f64 / (n as f64 / w as f64).ceil()
}

struct Batch1Stats {
    ms_per_forward: f64,
    output_bits: Vec<u32>,
    spawns: usize,
}

/// Measures warm batch-1 forward latency (`predict_probs`, eval mode)
/// on the scale-4 zoo model — big enough that a single sample crosses
/// the conv fan-out threshold, so the row-tiled shared wide GEMM (and
/// the plane-chunked pooling) genuinely engage at `workers > 1`.
fn run_batch1(workers: usize, iters: usize) -> Batch1Stats {
    let mut net: Network = zoo::cifar10_10layer_scaled(4, 42).expect("fixed architecture");
    net.set_parallelism(Parallelism::new(workers));
    assert!(
        net.layer_flops()[0] >= caltrain_nn::layers::PAR_MIN_BATCH_FLOPS,
        "batch-1 model must cross the conv fan-out threshold \
         (row-tiled GEMM engaged), got {} flops",
        net.layer_flops()[0]
    );
    let image = Tensor::from_fn(&[1, 3, 28, 28], |i| {
        (((i as u64).wrapping_mul(2654435761)) % 251) as f32 / 125.0 - 1.0
    });
    for _ in 0..2 {
        let _ = net.predict_probs(&image, KernelMode::Native).unwrap();
    }
    let spawn_start = caltrain_runtime::pool::thread_spawns();
    let clock = Instant::now();
    let mut probs = net.predict_probs(&image, KernelMode::Native).unwrap();
    for _ in 1..iters {
        probs = net.predict_probs(&image, KernelMode::Native).unwrap();
    }
    let secs = clock.elapsed().as_secs_f64();
    Batch1Stats {
        ms_per_forward: secs * 1000.0 / iters as f64,
        output_bits: probs.as_slice().iter().map(|v| v.to_bits()).collect(),
        spawns: caltrain_runtime::pool::thread_spawns() - spawn_start,
    }
}

/// Write passes over conv output buffers per conv-layer forward, over
/// one eval forward of `net` — the fused-epilogue gate (optimized path:
/// exactly 1; reference path: 2).
fn epilogue_passes_per_conv(net: &mut Network, image: &Tensor) -> f64 {
    let convs = net.conv_layer_indices().len() as f64;
    let before = caltrain_nn::layers::output_write_passes();
    let _ = net.predict_probs(image, KernelMode::Native).unwrap();
    (caltrain_nn::layers::output_write_passes() - before) as f64 / convs
}

/// Full-pool phase handoffs per conv call — the job-graph gate.
///
/// Through PR 6 one conv forward paid three pool fan-outs (im2col,
/// GEMM row tiles, epilogue scatter) with a full-pool barrier between
/// each; the per-layer job graph chains all phases of a call through
/// exactly ONE `pool::broadcast`, and the backward pass (delta
/// epilogue, BN sums, tree-reduced dw/db, input delta) likewise.
/// Measured on an isolated [`Conv2d`] in batch-norm training mode — the
/// deepest graph shape — so fan-outs from pooling or softmax layers
/// cannot pollute the counter. Returns `(forward, backward)` handoffs.
fn conv_phase_handoffs() -> (f64, f64) {
    use caltrain_nn::layers::{Conv2d, Layer};
    use caltrain_nn::Activation;
    use caltrain_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(7);
    let shape = Shape::new(&[16, 28, 28]).expect("fixed shape");
    let mut conv =
        Conv2d::with_batch_norm(&mut rng, &shape, 32, 3, 1, 1, Activation::Leaky, true);
    conv.set_parallelism(Parallelism::new(4));
    assert!(
        conv.flops_per_sample() * BATCH as u64
            >= caltrain_nn::layers::PAR_MIN_BATCH_FLOPS,
        "handoff-gate conv must cross the fan-out threshold"
    );
    let input = Tensor::from_fn(&[BATCH, 16, 28, 28], |i| {
        (((i as u64).wrapping_mul(2654435761)) % 251) as f32 / 125.0 - 1.0
    });
    // Warm the pool and the scratch arenas first.
    for _ in 0..2 {
        let (out, _) = conv.forward(&input, KernelMode::Native, true).unwrap();
        let _ = conv.backward(&out, KernelMode::Native).unwrap();
    }
    let before = caltrain_runtime::pool::phase_handoffs();
    let (out, _) = conv.forward(&input, KernelMode::Native, true).unwrap();
    let fwd = caltrain_runtime::pool::phase_handoffs() - before;
    let before = caltrain_runtime::pool::phase_handoffs();
    let _ = conv.backward(&out, KernelMode::Native).unwrap();
    let bwd = caltrain_runtime::pool::phase_handoffs() - before;
    (fwd as f64, bwd as f64)
}

/// The batch-1 inference section: latency at 1 vs 4 workers with
/// bit-identity and zero-spawn gates. Returns
/// `(ms_w1, ms_w4, w4_speedup_ratio)`.
fn batch1_section(iters: usize) -> (f64, f64, f64) {
    let w1 = run_batch1(1, iters);
    let w4 = run_batch1(4, iters);
    assert_eq!(
        w1.output_bits, w4.output_bits,
        "batch-1 inference must be bit-identical at 1 and 4 workers"
    );
    assert_eq!(w4.spawns, 0, "warm batch-1 forwards must spawn zero threads");
    let ratio = w1.ms_per_forward / w4.ms_per_forward;
    println!(
        "batch-1 forward (scale-4 zoo): {:>7.3} ms @ w=1, {:>7.3} ms @ w=4 \
         ({ratio:.2}x; row-tiled wide GEMM engaged, outputs bitwise-equal, \
         zero spawns)",
        w1.ms_per_forward, w4.ms_per_forward
    );
    (w1.ms_per_forward, w4.ms_per_forward, ratio)
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let steps = args.get("steps", if smoke { 3 } else { 30 });
    let scale = args.get("scale", 16usize);
    // Batch-1 latency is a few-ms measurement; on noisy shared runners
    // raise the iteration count to tighten it (`--batch1-iters 30`).
    let batch1_iters = args.get("batch1-iters", if smoke { 3 } else { 20 });

    if args.flag("batch1-only") {
        // The CI batch-1 smoke (run under CALTRAIN_WORKERS=4): gates
        // bit-identity and zero spawns, prints latency, writes no JSON.
        println!("== batch-1 inference smoke ==");
        let _ = batch1_section(batch1_iters);
        println!("training_throughput: batch-1 gates held.");
        return;
    }

    println!(
        "== training throughput: 10-layer zoo @ scale {scale}, batch {BATCH}, {steps} steps\
         {} ==",
        if smoke { " (smoke)" } else { "" }
    );

    let reference = run("reference (no reuse)", scale, false, 1, steps);
    let reused = run("reused scratch, w=1", scale, true, 1, steps);
    let parallel = run("reused scratch, w=4", scale, true, 4, steps);

    // Determinism gates: the reuse knob and the worker count must not
    // change one bit of the training trajectory.
    assert_eq!(
        reference.losses, reused.losses,
        "reference vs reused: losses must be bit-identical"
    );
    assert_eq!(
        reference.params, reused.params,
        "reference vs reused: weights must be bit-identical"
    );
    assert_eq!(
        reused.losses, parallel.losses,
        "1 vs 4 workers: losses must be bit-identical"
    );
    assert_eq!(
        reused.params, parallel.params,
        "1 vs 4 workers: weights must be bit-identical"
    );
    println!("determinism: reference == reused == 4-worker weights, bitwise");

    // Persistent-pool gate: after the warm-up steps, no path may spawn
    // a single OS thread — the worker pool's threads are reused across
    // every layer call of every step. (The old scoped design spawned ~4
    // threads per conv call here.)
    for (label, stats) in [
        ("reference", &reference),
        ("reused", &reused),
        ("workers=4", &parallel),
    ] {
        assert_eq!(
            stats.spawns_per_step, 0.0,
            "{label}: steady-state steps must spawn zero threads, \
             got {:.2}/step",
            stats.spawns_per_step
        );
    }
    println!("thread reuse: zero spawns per step on all three paths after warm-up");

    // Fused-epilogue gate: the optimized path writes each conv output
    // exactly ONCE after its GEMM; the reference path keeps its
    // historical two write sweeps (bias-or-normalise, then activation).
    let ep_image = Tensor::from_fn(&[2, 3, 28, 28], |i| ((i * 13) % 23) as f32 / 11.0 - 1.0);
    let mut ep_net: Network = zoo::cifar10_10layer_scaled(scale, 42).unwrap();
    let passes_reused = epilogue_passes_per_conv(&mut ep_net, &ep_image);
    ep_net.set_buffer_reuse(false);
    let passes_reference = epilogue_passes_per_conv(&mut ep_net, &ep_image);
    assert_eq!(
        passes_reused, 1.0,
        "fused epilogue must write each conv output exactly once per forward"
    );
    assert_eq!(passes_reference, 2.0, "reference path keeps its two historical sweeps");
    println!(
        "epilogue: {passes_reused:.0} output write pass/conv forward (reference: \
         {passes_reference:.0})"
    );

    // Job-graph gate: every conv call — forward AND backward — crosses
    // the pool at most once, down from three full-pool barriers per
    // forward through PR 6.
    let (handoffs_fwd, handoffs_bwd) = conv_phase_handoffs();
    assert_eq!(
        handoffs_fwd, 1.0,
        "a conv forward must cross the pool exactly once (one job-graph \
         broadcast), got {handoffs_fwd}"
    );
    assert!(
        handoffs_bwd <= 1.0,
        "a conv backward must cross the pool at most once, got {handoffs_bwd}"
    );
    println!(
        "job graph: {handoffs_fwd:.0} phase handoff/conv forward, \
         {handoffs_bwd:.0}/backward (was 3+ full-pool barriers)"
    );

    let (batch1_ms_w1, batch1_ms_w4, batch1_ratio) = batch1_section(batch1_iters);

    let speedup = reused.steps_per_sec / reference.steps_per_sec;
    let measured_w4 = parallel.steps_per_sec / reused.steps_per_sec;
    let cluster = modeled_speedup(BATCH, 4);
    println!(
        "headline: reuse speedup {speedup:.2}x (gate >= 1.15x, {}); \
         4 workers measured {measured_w4:.2}x host wall-clock \
         (modeled {cluster:.2}x on a 4-core cluster — a static-partition \
         model, not a measurement; 1-core hosts stay ~1x by physics)",
        if smoke { "skipped in smoke" } else { "enforced" }
    );

    let mut report = BenchReport::new("training");
    report
        .text("model", &format!("cifar10_10layer_scaled({scale})"))
        .int("batch", BATCH as u64)
        .int("steps", steps as u64)
        .flag("smoke", smoke)
        .metric("steps_per_sec_reference", reference.steps_per_sec)
        .metric("steps_per_sec_reused", reused.steps_per_sec)
        .metric("steps_per_sec_workers4", parallel.steps_per_sec)
        .metric("reuse_speedup", speedup)
        .metric("measured_w4_ratio", measured_w4)
        .metric("allocs_per_step_reference", reference.allocs_per_step)
        .metric("allocs_per_step_reused", reused.allocs_per_step)
        .metric("spawns_per_step_workers4", parallel.spawns_per_step)
        .int("pool_threads_spawned_total", caltrain_runtime::pool::thread_spawns() as u64)
        .metric("mbytes_per_step_reference", reference.mbytes_per_step)
        .metric("mbytes_per_step_reused", reused.mbytes_per_step)
        .metric("modeled_cluster_speedup_w4", cluster)
        .metric("epilogue_passes_per_conv_forward", passes_reused)
        .metric("epilogue_passes_per_conv_forward_reference", passes_reference)
        .metric("phase_handoffs_per_conv", handoffs_fwd)
        .metric("phase_handoffs_per_conv_backward", handoffs_bwd)
        .metric("batch1_forward_ms_w1", batch1_ms_w1)
        .metric("batch1_forward_ms_w4", batch1_ms_w4)
        .metric("batch1_w4_speedup", batch1_ratio)
        .flag("deterministic", true);
    report.emit().expect("write BENCH_training.json");

    // The reused path's steady-state allocations are layer outputs and
    // step bookkeeping only — a small constant, orders of magnitude
    // below the reference path's per-step buffer churn.
    assert!(
        reused.allocs_per_step < reference.allocs_per_step,
        "scratch reuse must strictly reduce per-step allocations \
         ({:.1} vs {:.1})",
        reused.allocs_per_step,
        reference.allocs_per_step
    );
    assert!(
        reused.allocs_per_step <= 128.0,
        "steady-state step performed {:.1} allocations — scratch reuse regressed",
        reused.allocs_per_step
    );
    if !smoke {
        assert!(
            speedup >= 1.15,
            "reused path must be >= 1.15x the no-reuse reference, got {speedup:.2}x"
        );
        // The batch-1 headline is the w=4 latency ratio. Wall-clock on
        // a shared 1-core runner cannot be gated hard (by physics the
        // overlap win is small there), but a pathological slowdown of
        // the row-tiled path must fail the bench.
        assert!(
            batch1_ratio >= 0.75,
            "4-worker batch-1 inference regressed pathologically \
             ({batch1_ratio:.2}x vs w=1)"
        );
    }
    println!("training_throughput: all gates held.");
}
