//! Accountability-serving scaling: class-pruned oracle scan vs full
//! scan vs the sharded LSH index + SIMD SoA rerank
//! (`caltrain_fingerprint::index`), swept across record counts.
//!
//! The paper's query (§IV-C) prunes by predicted label but still scans
//! the whole class — O(n). The ROADMAP's "millions of users" item asks
//! for sub-linear serving with the exact scan kept as the verification
//! oracle. This bench gates both halves:
//!
//! * **speed** — per-family timing rows over a 10k → 1M sweep, plus a
//!   fitted log-log slope (`scaling_exponent_*`: ~1.0 for the scans,
//!   near-flat for the index) and the last-decade growth ratio
//!   (`decade_growth_*`: full scan ~10×, indexed gated < 3×);
//! * **exactness** — recall@10 ≥ 0.95 under the default probe budget,
//!   and bitwise equality with the oracle under exhaustive probing at
//!   1 and 4 workers.
//!
//! `cargo bench --bench fingerprint_query` — full sweep (the committed
//! `BENCH_fingerprint_query.json`). `-- --smoke` shrinks the sweep and
//! the measurement window for CI; the sub-linearity gate is skipped
//! there (tiny classes shard into so few buckets that the default
//! probe budget covers all of them — coverage is total, not pruned).

use caltrain_bench::report::BenchReport;
use caltrain_bench::Args;
use caltrain_fingerprint::{
    Fingerprint, IndexParams, IndexedDb, LinkageDb, LinkageRecord, QueryMatch, QueryStrategy,
};
use caltrain_runtime::Parallelism;
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const CLASSES: usize = 10;
const DIM: usize = 32;
const K: usize = 10;
const MODES_PER_CLASS: usize = 1024;

/// Deterministic clustered corpus shaped like penultimate-layer
/// fingerprints (§VI-D): a class is not a point but a *mixture* —
/// many tight modes (poses/identities) spread broadly around the
/// class centre. A query's true neighbours live inside its mode
/// (tight, so they share LSH code bits ⇒ recall), while the modes
/// themselves scatter across the hyperplane cells (so probing a few
/// buckets prunes the class ⇒ sub-linear candidates).
fn clustered_db(records: usize, seed: u64) -> LinkageDb {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    };
    let centres: Vec<Vec<f32>> =
        (0..CLASSES).map(|_| (0..DIM).map(|_| next()).collect()).collect();
    let modes: Vec<Vec<f32>> = (0..CLASSES * MODES_PER_CLASS)
        .map(|m| centres[m / MODES_PER_CLASS].iter().map(|c| c + next()).collect())
        .collect();
    let mut db = LinkageDb::new();
    for i in 0..records {
        let label = i % CLASSES;
        let mode = &modes[label * MODES_PER_CLASS + (i / CLASSES) % MODES_PER_CLASS];
        let v: Vec<f32> = mode.iter().map(|c| c + next() * 0.15).collect();
        db.insert(LinkageRecord::new(
            Fingerprint::from_embedding(&v),
            label,
            (i % 7) as u32,
            &i.to_le_bytes(),
        ));
    }
    db
}

/// Fresh query probes from the same distribution (a mispredicted input
/// lands *near* training points, it is not one of them).
fn sample_probes(db: &LinkageDb, count: usize, seed: u64) -> Vec<(Fingerprint, usize)> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    };
    (0..count)
        .map(|j| {
            let anchor = &db.records()[(j * 7919) % db.len()];
            let v: Vec<f32> = anchor.fingerprint.values().iter().map(|c| c + next() * 0.1).collect();
            (Fingerprint::from_embedding(&v), anchor.label)
        })
        .collect()
}

/// Recall@k of the indexed path against the oracle over `probes`.
fn recall_at_k(indexed: &IndexedDb, probes: &[(Fingerprint, usize)], k: usize) -> f64 {
    let (mut hit, mut total) = (0usize, 0usize);
    for (probe, label) in probes {
        let want: Vec<usize> =
            indexed.db().query(probe, *label, k).iter().map(|m| m.record).collect();
        let got: Vec<usize> = indexed.query(probe, *label, k).iter().map(|m| m.record).collect();
        total += want.len();
        hit += want.iter().filter(|r| got.contains(r)).count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// Least-squares slope of `ln(secs)` over `ln(records)` — the fitted
/// scaling exponent (1.0 = linear, 0.0 = flat).
fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(records, secs) in points {
        let (x, y) = (records.ln(), secs.ln());
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn bits(matches: &[QueryMatch]) -> Vec<(usize, u32)> {
    matches.iter().map(|m| (m.record, m.distance.to_bits())).collect()
}

/// The exact-oracle contract, gated in-bench: with `probes =
/// usize::MAX` every bucket is probed, so the indexed answer must be
/// bitwise identical to the oracle scan — at 1 worker and at 4.
fn assert_bitwise_oracle_contract() {
    let base = clustered_db(3_000, 0xB17);
    let probes = sample_probes(&base, 8, 0xB17F);
    for workers in [1usize, 4] {
        let mut db = base.clone();
        db.set_parallelism(Parallelism::new(workers));
        let indexed = IndexedDb::with_strategy(
            db,
            QueryStrategy::Indexed(IndexParams {
                target_bucket: 32, // force real sharding at 3k records
                probes: usize::MAX,
                ..IndexParams::default()
            }),
        );
        for (probe, label) in &probes {
            assert_eq!(
                bits(&indexed.query(probe, *label, K)),
                bits(&indexed.db().query(probe, *label, K)),
                "indexed != oracle under total coverage (workers={workers})"
            );
            assert_eq!(
                bits(&indexed.query_all_classes(probe, K)),
                bits(&indexed.db().query_all_classes(probe, K)),
                "all-classes indexed != oracle under total coverage (workers={workers})"
            );
        }
    }
    println!("exact-oracle contract: bitwise-identical under total coverage at 1 and 4 workers");
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let sizes: &[usize] = if smoke { &[2_000, 20_000] } else { &[10_000, 100_000, 1_000_000] };

    assert_bitwise_oracle_contract();

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("fingerprint_query");
    if smoke {
        group.measurement_time(Duration::from_millis(150));
    }

    let mut recall = 1.0f64;
    for &records in sizes {
        let db = clustered_db(records, 0xF00D ^ records as u64);
        let probes = sample_probes(&db, 32, 0x5EED ^ records as u64);
        let indexed = IndexedDb::with_strategy(db, QueryStrategy::Indexed(IndexParams::default()));

        // Recall@10 under the default probe budget, gated at every
        // size (the largest size's value is the one reported).
        recall = recall_at_k(&indexed, &probes, K);
        println!("recall@{K} at {records} records: {recall:.4}");
        assert!(recall >= 0.95, "recall@{K} {recall:.4} below 0.95 at {records} records");

        let (probe, label) = probes[0].clone();
        group.bench_with_input(BenchmarkId::new("class_pruned", records), &records, |b, _| {
            b.iter(|| black_box(indexed.db().query(black_box(&probe), label, K)))
        });
        group.bench_with_input(BenchmarkId::new("full_scan", records), &records, |b, _| {
            b.iter(|| black_box(indexed.db().query_all_classes(black_box(&probe), K)))
        });
        group.bench_with_input(BenchmarkId::new("indexed", records), &records, |b, _| {
            b.iter(|| black_box(indexed.query(black_box(&probe), label, K)))
        });
    }
    group.finish();

    // Per-family (records, mean secs) points, recovered from the
    // sample names ("fingerprint_query/<family>/<records>").
    let samples = criterion::take_samples();
    let family_points = |family: &str| -> Vec<(f64, f64)> {
        let prefix = format!("fingerprint_query/{family}/");
        let mut pts: Vec<(f64, f64)> = samples
            .iter()
            .filter_map(|s| {
                let records: f64 = s.name.strip_prefix(&prefix)?.parse().ok()?;
                Some((records, s.mean_secs))
            })
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts
    };

    let mut report = BenchReport::new("fingerprint_query");
    report
        .flag("smoke", smoke)
        .int("max_records", *sizes.last().expect("non-empty sweep") as u64)
        .int("classes", CLASSES as u64)
        .int("dim", DIM as u64)
        .metric("recall_at_10", recall)
        .flag("bitwise_oracle_at_total_coverage", true);

    for family in ["class_pruned", "full_scan", "indexed"] {
        let pts = family_points(family);
        let exponent = fitted_exponent(&pts);
        // Growth across the last decade of the sweep (100k → 1M in the
        // full run; the scans grow ~10×, the index must stay < 3×).
        let growth = match pts.len() {
            0 | 1 => f64::NAN,
            n => pts[n - 1].1 / pts[n - 2].1,
        };
        println!(
            "{family}: scaling exponent {exponent:.3}, last-decade growth {growth:.2}x"
        );
        report.metric(&format!("scaling_exponent_{family}"), exponent);
        report.metric(&format!("decade_growth_{family}"), growth);
        if family == "indexed" && !smoke {
            assert!(
                growth < 3.0,
                "indexed query time grew {growth:.2}x across the last decade (gate < 3x)"
            );
        }
    }
    for s in &samples {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }
    report.emit().expect("write BENCH_fingerprint_query.json");
}
