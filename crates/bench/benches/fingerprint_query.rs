//! Ablation for the paper's "use Y to reduce the search space" claim:
//! class-pruned k-NN vs a full scan over the linkage database.

use caltrain_fingerprint::{Fingerprint, LinkageDb, LinkageRecord};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

fn build_db(records: usize, classes: usize, dim: usize) -> LinkageDb {
    let mut db = LinkageDb::new();
    for i in 0..records {
        let values: Vec<f32> = (0..dim)
            .map(|d| (((i * 31 + d * 17) % 97) as f32 / 97.0) - 0.5)
            .collect();
        db.insert(LinkageRecord::new(
            Fingerprint::from_embedding(&values),
            i % classes,
            (i % 7) as u32,
            &i.to_le_bytes(),
        ));
    }
    db
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("fingerprint_query");
    for records in [1000usize, 10_000, 50_000] {
        let db = build_db(records, 10, 10);
        let probe = Fingerprint::from_embedding(&[0.3f32; 10]);
        group.bench_with_input(
            BenchmarkId::new("class_pruned", records),
            &records,
            |b, _| b.iter(|| black_box(db.query(black_box(&probe), 3, 9))),
        );
        group.bench_with_input(BenchmarkId::new("full_scan", records), &records, |b, _| {
            b.iter(|| black_box(db.query_all_classes(black_box(&probe), 9)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);

fn main() {
    benches();
    let mut report = caltrain_bench::report::BenchReport::new("fingerprint_query");
    for s in criterion::take_samples() {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }
    report.emit().expect("write BENCH_fingerprint_query.json");
}
