//! Ablation: the strict (in-enclave) GEMM path vs the blocked native
//! path vs the SIMD native path on conv-shaped workloads — the
//! microscopic cause of the paper's Fig. 6 overhead, now with the
//! explicit AVX2/NEON rung of the kernel ladder measured alongside.
//!
//! Besides the raw timing samples, the report carries per-shape
//! `*_gflops` metrics (2·m·n·k / mean_secs) so `bench_diff` tracks the
//! kernels in higher-is-better units, plus a drift check: when the
//! freshly measured steady-state strict/native GFLOP/s diverge more
//! than 25 % from the committed calibration constants in
//! `caltrain_enclave::cost`, the bench prints a loud warning telling
//! the maintainer to re-run the calibration sweep. `ci.sh` surfaces
//! the warning in non-smoke runs; it never fails the build, because a
//! noisy host must not turn jitter into red.

use caltrain_enclave::cost::{MEASURED_NATIVE_GFLOPS, MEASURED_STRICT_GFLOPS};
use caltrain_tensor::gemm::{gemm_blocked, gemm_packed, gemm_strict};
use caltrain_tensor::simd;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

fn conv_shapes() -> Vec<(usize, usize, usize)> {
    // (filters, out_h*out_w, c*k*k) for Table II layers at 1/8 width.
    vec![(16, 784, 27), (16, 784, 144), (32, 196, 288), (64, 49, 576)]
}

/// FLOPs of one `m×n×k` GEMM (multiply + add per inner-product step).
fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for (m, n, k) in conv_shapes() {
        let a = vec![0.5f32; m * k];
        let b = vec![0.25f32; k * n];
        group.bench_with_input(
            BenchmarkId::new("strict_enclave", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    gemm_strict(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked_native", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    gemm_blocked(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("packed_native", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    gemm_packed(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
        // The SIMD rung: on hosts without AVX2/NEON (or with
        // CALTRAIN_SIMD=0) `gemm_simd` falls back to the scalar ladder,
        // so the row still exists — the `simd_enabled` flag in the
        // report says which kernel actually ran.
        group.bench_with_input(
            BenchmarkId::new("simd_native", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    simd::gemm_simd(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);

/// Warns (to stderr) when a freshly measured GFLOP/s figure diverges
/// more than 25 % from its committed calibration constant.
fn drift_check(label: &str, constant: f64, measured: f64) {
    if measured <= 0.0 {
        return;
    }
    let drift = (measured - constant) / constant;
    if drift.abs() > 0.25 {
        eprintln!(
            "WARNING: {label} drift {:+.0}%: committed constant {constant:.1} GFLOP/s vs \
             measured {measured:.1} GFLOP/s — re-calibrate crates/enclave/src/cost.rs",
            drift * 100.0
        );
    } else {
        eprintln!(
            "{label}: committed {constant:.1} GFLOP/s vs measured {measured:.1} GFLOP/s \
             ({:+.0}%, within 25% band)",
            drift * 100.0
        );
    }
}

fn main() {
    benches();
    let mut report = caltrain_bench::report::BenchReport::new("enclave_kernels");
    let samples = criterion::take_samples();
    for s in &samples {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }

    // Derived GFLOP/s metrics (higher-is-better, tracked by bench_diff)
    // and the steady-state figures for the drift check. "Steady state"
    // = the two largest shapes, where per-call overhead is amortised —
    // the same shapes the calibration constants were read from.
    let mut strict_steady = Vec::new();
    let mut native_steady = Vec::new();
    let steady = ["32x196x288", "64x49x576"];
    for (m, n, k) in conv_shapes() {
        let shape = format!("{m}x{n}x{k}");
        let flops = gemm_flops(m, n, k);
        for family in ["strict_enclave", "blocked_native", "packed_native", "simd_native"] {
            let name = format!("gemm/{family}/{shape}");
            let Some(s) = samples.iter().find(|s| s.name == name) else {
                continue;
            };
            let gflops = flops / s.mean_secs / 1e9;
            report.metric(&format!("gflops/{family}/{shape}"), gflops);
            if steady.contains(&shape.as_str()) {
                match family {
                    "strict_enclave" => strict_steady.push(gflops),
                    // The native constant tracks the best native kernel
                    // the dispatcher would actually pick.
                    "simd_native" if simd::enabled() => native_steady.push(gflops),
                    "blocked_native" if !simd::enabled() => native_steady.push(gflops),
                    _ => {}
                }
            }
        }
    }
    report.flag("simd_enabled", simd::enabled());

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if !strict_steady.is_empty() {
        drift_check("MEASURED_STRICT_GFLOPS", MEASURED_STRICT_GFLOPS, mean(&strict_steady));
    }
    if !native_steady.is_empty() {
        drift_check("MEASURED_NATIVE_GFLOPS", MEASURED_NATIVE_GFLOPS, mean(&native_steady));
    }

    report.emit().expect("write BENCH_enclave_kernels.json");
}
