//! Ablation: the strict (in-enclave) GEMM path vs the blocked native
//! path on conv-shaped workloads — the microscopic cause of the paper's
//! Fig. 6 overhead.

use caltrain_tensor::gemm::{gemm_blocked, gemm_packed, gemm_strict};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

fn conv_shapes() -> Vec<(usize, usize, usize)> {
    // (filters, out_h*out_w, c*k*k) for Table II layers at 1/8 width.
    vec![(16, 784, 27), (16, 784, 144), (32, 196, 288), (64, 49, 576)]
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for (m, n, k) in conv_shapes() {
        let a = vec![0.5f32; m * k];
        let b = vec![0.25f32; k * n];
        group.bench_with_input(
            BenchmarkId::new("strict_enclave", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    gemm_strict(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked_native", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    gemm_blocked(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("packed_native", format!("{m}x{n}x{k}")),
            &(m, n, k),
            |bench, &(m, n, k)| {
                bench.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    gemm_packed(m, n, k, black_box(&a), black_box(&b), &mut out);
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);

fn main() {
    benches();
    let mut report = caltrain_bench::report::BenchReport::new("enclave_kernels");
    for s in criterion::take_samples() {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }
    report.emit().expect("write BENCH_enclave_kernels.json");
}
