//! End-to-end training-step cost on the Table I network (scaled), strict
//! vs native kernel paths — the wall-clock companion to the simulated
//! Fig. 6 numbers.

use caltrain_nn::{zoo, Hyper, KernelMode};
use caltrain_tensor::Tensor;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_batch_10layer_scale16");
    group.sample_size(10);
    let images = Tensor::from_fn(&[8, 3, 28, 28], |i| ((i * 13) % 251) as f32 / 250.0);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let hyper = Hyper::default();
    for (name, mode) in [("strict_enclave", KernelMode::Strict), ("blocked_native", KernelMode::Native)] {
        group.bench_with_input(BenchmarkId::new(name, "batch8"), &mode, |b, &mode| {
            let mut net = zoo::cifar10_10layer_scaled(16, 1).unwrap();
            b.iter(|| {
                black_box(
                    net.train_batch(black_box(&images), black_box(&labels), &hyper, mode)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);

fn main() {
    benches();
    let mut report = caltrain_bench::report::BenchReport::new("training_step");
    for s in criterion::take_samples() {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }
    report.emit().expect("write BENCH_training_step.json");
}
