//! Crypto-layer costs: sealing throughput (what participants pay per
//! upload), hashing (linkage H), and the channel handshake primitives.

use caltrain_crypto::gcm::AesGcm;
use caltrain_crypto::sha256::Sha256;
use caltrain_crypto::x25519;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    for size in [1024usize, 16 * 1024, 256 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("aes_gcm_seal", size), &size, |b, _| {
            let cipher = AesGcm::new_128(&[7u8; 16]);
            b.iter(|| black_box(cipher.seal(&[1u8; 12], black_box(&data), b"aad")))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| black_box(Sha256::digest(black_box(&data))))
        });
    }
    group.finish();

    c.bench_function("x25519_shared_secret", |b| {
        let sk = [0x42u8; 32];
        let pk = x25519::public_key(&[0x24u8; 32]);
        b.iter(|| black_box(x25519::shared_secret(black_box(&sk), black_box(&pk)).unwrap()))
    });
}

criterion_group!(benches, bench_crypto);

fn main() {
    benches();
    let mut report = caltrain_bench::report::BenchReport::new("crypto_throughput");
    for s in criterion::take_samples() {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }
    report.emit().expect("write BENCH_crypto_throughput.json");
}
