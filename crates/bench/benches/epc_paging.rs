//! EPC paging cost sweep: sweeping a working set against EPC capacities,
//! the "memory constrained" half of the paper's Fig. 6 story.

use caltrain_enclave::epc::{Epc, PAGE_SIZE};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_paging(c: &mut Criterion) {
    let mut group = c.benchmark_group("epc_paging");
    // Working set 64 pages; EPC from comfortable to thrashing.
    for epc_pages in [128usize, 64, 48, 32] {
        group.bench_with_input(
            BenchmarkId::new("sweep_64_page_ws", epc_pages),
            &epc_pages,
            |b, &pages| {
                b.iter(|| {
                    let mut epc = Epc::new(pages * PAGE_SIZE);
                    let a = epc.alloc(32 * PAGE_SIZE).unwrap();
                    let w = epc.alloc(32 * PAGE_SIZE).unwrap();
                    for _ in 0..8 {
                        black_box(epc.touch(a));
                        black_box(epc.touch(w));
                    }
                    black_box(epc.stats())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paging);

fn main() {
    benches();
    let mut report = caltrain_bench::report::BenchReport::new("epc_paging");
    for s in criterion::take_samples() {
        report.sample(&s.name, s.mean_secs, s.min_secs, s.max_secs);
    }
    report.emit().expect("write BENCH_epc_paging.json");
}
