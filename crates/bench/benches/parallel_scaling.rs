//! Scaling of the parallel runtime: a 4-hub federated round, sealed-batch
//! ingestion and the linkage-database scan at 1/2/4/8 workers.
//!
//! Two clocks are reported, because they answer different questions:
//!
//! * **Cluster wall-clock (simulated).** Every hub charges its own
//!   platform clock, so a round yields per-hub simulated times. A
//!   sequential deployment (one machine hosting all hubs back to back)
//!   takes their *sum*; a parallel deployment at W workers takes the
//!   *makespan* of scheduling those hub times onto W workers — exactly
//!   what the worker pool does. This is the paper's §IV-B scalability
//!   quantity and is deterministic on any host.
//! * **Host wall-clock (measured).** `Instant`-timed execution of the
//!   same round/ingest/scan on this machine. Threads only beat
//!   sequential here when physical cores exist; on a single-core CI
//!   runner this column stays flat at ~1× by physics, which is why the
//!   simulated column is the headline.
//!
//! The bench also re-asserts the determinism guarantee: outcomes at every
//! worker count must be bit-identical to the sequential baseline.
//!
//! Run with `cargo bench --bench parallel_scaling`.

use std::time::Instant;

use caltrain_bench::report::BenchReport;
use caltrain_core::hubs::{HubCluster, RoundOutcome};
use caltrain_core::participant::Participant;
use caltrain_core::partition::Partition;
use caltrain_core::server::TrainingServer;
use caltrain_core::Parallelism;
use caltrain_data::sealed::SealedBatch;
use caltrain_data::{shard, synthcifar, ParticipantId};
use caltrain_enclave::Platform;
use caltrain_fingerprint::{Fingerprint, LinkageDb, LinkageRecord};
use caltrain_nn::{zoo, Hyper};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const HUBS: usize = 4;

fn build_cluster(workers: usize) -> HubCluster {
    let (train, _) = synthcifar::generate(240, 40, 13);
    let pools = shard::split(&train, HUBS, 13);
    let net = zoo::cifar10_10layer_scaled(32, 13).expect("fixed architecture");
    HubCluster::new(
        &net,
        pools,
        Partition { cut: 2 },
        Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        16,
        None,
        13,
    )
    .expect("cluster boot")
    .with_parallelism(Parallelism::new(workers))
}

/// In-order list scheduling of `job_secs` onto `workers` — the schedule
/// the worker pool produces (each worker claims the next unclaimed job).
fn makespan(job_secs: &[f64], workers: usize) -> f64 {
    let mut loads = vec![0.0f64; workers.max(1)];
    for &job in job_secs {
        let min = loads
            .iter_mut()
            .reduce(|a, b| if *b < *a { b } else { a })
            .expect("at least one worker");
        *min += job;
    }
    loads.into_iter().fold(0.0, f64::max)
}

fn bench_hub_round(report: &mut BenchReport) {
    println!("== 4-hub federated round (1 local epoch) ==");
    // Untimed warmup so the workers=1 baseline doesn't absorb one-time
    // costs (page faults, allocator growth, cache fill) that would
    // inflate every later speedup ratio.
    build_cluster(1).train_round(1).expect("warmup round");
    let mut baseline: Option<(RoundOutcome, f64)> = None;
    for workers in WORKER_COUNTS {
        let mut cluster = build_cluster(workers);
        let start = Instant::now();
        let outcome = cluster.train_round(1).expect("round");
        let host_secs = start.elapsed().as_secs_f64();

        let hub_secs: Vec<f64> = outcome.hub_times.iter().map(|t| t.seconds).collect();
        let sequential_cluster_secs: f64 = hub_secs.iter().sum();
        let cluster_secs = makespan(&hub_secs, workers);
        let cluster_speedup = sequential_cluster_secs / cluster_secs;

        let host_speedup = match &baseline {
            None => 1.0,
            Some((base, base_host)) => {
                assert_eq!(
                    base, &outcome,
                    "worker count must not change the round outcome"
                );
                base_host / host_secs
            }
        };
        println!(
            "workers={workers}: cluster {:.2}s -> {:.2}s sim ({cluster_speedup:.2}x), \
             host {host_secs:.2}s ({host_speedup:.2}x)",
            sequential_cluster_secs, cluster_secs,
        );
        report.metric(&format!("hub_round_cluster_speedup_w{workers}"), cluster_speedup);
        report.metric(&format!("hub_round_host_secs_w{workers}"), host_secs);
        if workers == 4 {
            assert!(
                cluster_speedup >= 1.5,
                "4-hub round at 4 workers must model >= 1.5x, got {cluster_speedup:.2}x"
            );
            println!(
                "  -> headline: 4-hub round @ 4 workers: {cluster_speedup:.2}x modeled \
                 cluster speedup (required >= 1.5x)"
            );
            // On hardware that can host four workers, report the
            // wall-clock speedup too — loudly when it falls short, but
            // without failing the gate: available_parallelism() ignores
            // CPU quotas and noisy neighbours, so a hard assert here
            // turns shared-runner contention into spurious CI red. The
            // hard gates are the modeled speedup above and the
            // pool-concurrency proof, which a silently-serialized pool
            // cannot pass.
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            if cores >= 4 && host_speedup < 1.5 {
                println!(
                    "  WARNING: host reports {cores} cores but the 4-worker round only \
                     reached {host_speedup:.2}x wall-clock (contention or CPU quota?)"
                );
            } else if cores < 4 {
                println!(
                    "  (host exposes {cores} core(s): wall-clock speedup not measurable)"
                );
            }
        }
        if baseline.is_none() {
            baseline = Some((outcome, host_secs));
        }
    }
}

fn provision(server: &mut TrainingServer, p: &Participant) {
    let (chan, quote, server_pub) = server.begin_provisioning();
    let service = server.platform().attestation_service();
    let expected = server.enclave().measurement();
    let (record, client_pub) =
        p.provision_key(&service, &expected, &quote, &server_pub).expect("provision");
    server.finish_provisioning(chan, &client_pub, &record).expect("finish provisioning");
}

fn bench_ingest(report: &mut BenchReport) {
    println!("== sealed-batch ingestion (64 batches, GCM verify + decrypt) ==");
    let (data, _) = synthcifar::generate(512, 10, 7);
    let batches: Vec<SealedBatch> = {
        let mut sealer = Participant::new(ParticipantId(0), data.clone(), b"bench-ingest");
        sealer.seal_upload(8)
    };

    let mut base_host = None;
    let mut base_stats = None;
    for workers in WORKER_COUNTS {
        let platform = Platform::with_seed(b"bench-ingest-server");
        let mut server = TrainingServer::launch(platform, 1 << 24).expect("server boot");
        server.set_parallelism(Parallelism::new(workers));
        let uploader = Participant::new(ParticipantId(0), data.clone(), b"bench-ingest");
        provision(&mut server, &uploader);

        let start = Instant::now();
        let stats = server.ingest(&batches);
        let host_secs = start.elapsed().as_secs_f64();
        report.metric(&format!("ingest_host_secs_w{workers}"), host_secs);

        match (&base_host, &base_stats) {
            (Some(base), Some(expected)) => {
                assert_eq!(expected, &stats, "stats must not depend on workers");
                println!(
                    "workers={workers}: host {host_secs:.3}s ({:.2}x)",
                    base / host_secs
                );
            }
            _ => {
                println!(
                    "workers={workers}: host {host_secs:.3}s (1.00x), \
                     {} batches / {} instances accepted",
                    stats.accepted, stats.instances
                );
                base_host = Some(host_secs);
                base_stats = Some(stats);
            }
        }
    }
}

fn bench_linkage_scan(report: &mut BenchReport) {
    println!("== linkage-db full scan (50k records, k=10) ==");
    let mut db = LinkageDb::new();
    for i in 0..50_000usize {
        let dir: Vec<f32> =
            (0..16).map(|d| (((i * 31 + d * 17) % 97) as f32 / 97.0) - 0.5).collect();
        db.insert(LinkageRecord::new(
            Fingerprint::from_embedding(&dir),
            i % 10,
            (i % 7) as u32,
            &i.to_le_bytes(),
        ));
    }
    let probe = Fingerprint::from_embedding(&[0.3f32; 16]);
    let mut base_host = None;
    let mut base_hits = None;
    for workers in WORKER_COUNTS {
        db.set_parallelism(Parallelism::new(workers));
        let start = Instant::now();
        let mut hits = Vec::new();
        for _ in 0..20 {
            hits = db.query_all_classes(&probe, 10);
        }
        let host_secs = start.elapsed().as_secs_f64();
        report.metric(&format!("linkage_scan_host_secs_w{workers}"), host_secs);
        match (&base_host, &base_hits) {
            (Some(base), Some(expected)) => {
                assert_eq!(expected, &hits, "hits must not depend on workers");
                println!(
                    "workers={workers}: host {host_secs:.3}s ({:.2}x)",
                    base / host_secs
                );
            }
            _ => {
                println!("workers={workers}: host {host_secs:.3}s (1.00x)");
                base_host = Some(host_secs);
                base_hits = Some(hits);
            }
        }
    }
}

/// Proves the pool really overlaps work even on a single-core host:
/// sleeping threads release the CPU, so four concurrent 20 ms sleeps
/// finish in ~20 ms while the sequential pool takes the full 80 ms.
/// The bound is relative to a measured sequential baseline so a loaded
/// or throttled host inflates both sides instead of tripping a fixed
/// threshold. This keeps the modeled speedup numbers honest: they
/// assume the concurrency this check enforces.
fn assert_pool_concurrency() {
    let sleep_20ms =
        |_: usize, _: &mut ()| std::thread::sleep(std::time::Duration::from_millis(20));
    let mut slots = [(); 4];

    let start = Instant::now();
    caltrain_runtime::par_map_mut(Parallelism::sequential(), &mut slots, sleep_20ms);
    let sequential_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    caltrain_runtime::par_map_mut(Parallelism::new(4), &mut slots, sleep_20ms);
    let parallel_secs = start.elapsed().as_secs_f64();

    assert!(
        parallel_secs < sequential_secs * 0.75,
        "worker pool did not overlap its jobs: 4x20ms sleeps took {parallel_secs:.3}s \
         vs {sequential_secs:.3}s sequential"
    );
    println!(
        "pool concurrency proof: 4x20ms sleeps finished in {:.0}ms vs {:.0}ms sequential",
        parallel_secs * 1e3,
        sequential_secs * 1e3
    );
}

fn main() {
    let mut report = BenchReport::new("parallel_scaling");
    assert_pool_concurrency();
    // Warm the persistent pool to the widest demand exercised below,
    // then require the whole suite — hub rounds, ingestion, linkage
    // scans at 1/2/4/8 workers — to run on those same threads. Hub
    // workers nest layer-level fan-out when CALTRAIN_WORKERS sets a
    // default layer budget, so the warm budget multiplies the two.
    let max_workers = *WORKER_COUNTS.iter().max().expect("non-empty");
    let nested_layer_budget = Parallelism::default().workers();
    caltrain_runtime::pool::warm(max_workers * nested_layer_budget);
    let spawned_at_warm = caltrain_runtime::pool::thread_spawns();
    bench_hub_round(&mut report);
    bench_ingest(&mut report);
    bench_linkage_scan(&mut report);
    let spawned_during_benches =
        caltrain_runtime::pool::thread_spawns() - spawned_at_warm;
    println!(
        "pool: {} thread(s) spawned at warm-up, {} during the benches \
         (persistent pool: must be 0)",
        spawned_at_warm, spawned_during_benches
    );
    assert_eq!(
        spawned_during_benches, 0,
        "a warmed pool must not spawn threads mid-bench"
    );
    report.int("pool_threads_spawned_warmup", spawned_at_warm as u64);
    report.int("pool_threads_spawned_during_benches", spawned_during_benches as u64);
    report.flag("determinism_held", true);
    report.emit().expect("write BENCH_parallel_scaling.json");
    println!("parallel_scaling: all determinism assertions held.");
}
