//! Shared utilities for the CalTrain experiment harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (§VI); see `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// A minimal `--key value` / `--flag` command-line parser (the harness
/// has no CLI dependency budget).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` after the binary name.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { values, flags }
    }

    /// A `--key value` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// The raw string value of `--key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Formats a fraction as `"12.34%"` (the paper's axis style).
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

pub mod report {
    //! Machine-readable benchmark output: every bench target emits one
    //! JSON line to stdout *and* writes it to `BENCH_<name>.json` at the
    //! workspace root, so successive PRs can diff the perf trajectory
    //! instead of eyeballing human tables.
    //!
    //! Hand-rolled writer — the workspace has a zero-third-party-crate
    //! budget, and the value grammar here (numbers, strings, booleans,
    //! one flat object plus an optional `samples` array) doesn't need
    //! serde.

    use std::io::Write;
    use std::path::PathBuf;

    /// Builder for one bench's JSON line / `BENCH_<name>.json` file.
    #[derive(Debug, Clone)]
    pub struct BenchReport {
        bench: String,
        fields: Vec<(String, String)>, // key -> pre-rendered JSON value
        samples: Vec<String>,          // pre-rendered sample objects
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn render_f64(v: f64) -> String {
        // JSON has no NaN/Infinity; null keeps the line parseable and
        // makes the breakage visible in a diff.
        if v.is_finite() { format!("{v}") } else { "null".to_string() }
    }

    impl BenchReport {
        /// Starts a report for the bench target `bench` (used as the
        /// `BENCH_<bench>.json` filename).
        pub fn new(bench: &str) -> Self {
            BenchReport { bench: bench.to_string(), fields: Vec::new(), samples: Vec::new() }
        }

        /// Records a floating-point metric.
        pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
            self.fields.push((key.to_string(), render_f64(value)));
            self
        }

        /// Records an integer metric.
        pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        /// Records a string annotation.
        pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
            self.fields.push((key.to_string(), format!("\"{}\"", escape(value))));
            self
        }

        /// Records a boolean flag.
        pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        /// Appends one timing sample (the criterion-shim measurements).
        pub fn sample(
            &mut self,
            name: &str,
            mean_secs: f64,
            min_secs: f64,
            max_secs: f64,
        ) -> &mut Self {
            self.samples.push(format!(
                "{{\"name\":\"{}\",\"mean_secs\":{},\"min_secs\":{},\"max_secs\":{}}}",
                escape(name),
                render_f64(mean_secs),
                render_f64(min_secs),
                render_f64(max_secs)
            ));
            self
        }

        /// Renders the single-line JSON document.
        pub fn render(&self) -> String {
            let mut out = format!("{{\"bench\":\"{}\"", escape(&self.bench));
            for (k, v) in &self.fields {
                out.push_str(&format!(",\"{}\":{v}", escape(k)));
            }
            if !self.samples.is_empty() {
                out.push_str(",\"samples\":[");
                out.push_str(&self.samples.join(","));
                out.push(']');
            }
            out.push('}');
            out
        }

        /// Prints the JSON line (prefixed so log scrapers can grep it)
        /// and writes `BENCH_<bench>.json`; returns the file path.
        ///
        /// The output directory is the workspace root, overridable with
        /// `CALTRAIN_BENCH_DIR` (CI sandboxes, comparisons side by side).
        ///
        /// # Errors
        ///
        /// Propagates filesystem errors from the JSON file write.
        pub fn emit(&self) -> std::io::Result<PathBuf> {
            let line = self.render();
            println!("BENCH_JSON {line}");
            let dir = std::env::var_os("CALTRAIN_BENCH_DIR").map(PathBuf::from).unwrap_or_else(
                || {
                    // crates/bench/../.. == workspace root.
                    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
                },
            );
            let path = dir.join(format!("BENCH_{}.json", self.bench));
            let mut file = std::fs::File::create(&path)?;
            writeln!(file, "{line}")?;
            Ok(path)
        }
    }

    /// A parsed JSON value — the read-side counterpart of
    /// [`BenchReport`], used by the `bench_diff` binary to load the
    /// `BENCH_*.json` files this module writes. Hand-rolled for the same
    /// reason the writer is: zero third-party crates.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null` (how the writer encodes non-finite metrics).
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Parses one JSON document (the whole input, ignoring
        /// surrounding whitespace).
        ///
        /// # Errors
        ///
        /// Returns a human-readable description of the first syntax
        /// error. The grammar is full JSON minus `\uXXXX` surrogate
        /// pairs (the writer never emits them).
        pub fn parse(text: &str) -> Result<Value, String> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let value = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing bytes at offset {pos}"));
            }
            Ok(value)
        }

        /// Flattens the document into `(dotted.path, number)` pairs —
        /// the shape `bench_diff` compares. Objects nest by key; array
        /// elements nest by a `name` field when present (the writer's
        /// `samples` convention) or by index otherwise. Booleans count
        /// as 0/1; strings and nulls are skipped.
        pub fn flatten_numbers(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
            match self {
                Value::Num(v) => out.push((prefix.to_string(), *v)),
                Value::Bool(b) => out.push((prefix.to_string(), f64::from(u8::from(*b)))),
                Value::Obj(fields) => {
                    for (k, v) in fields {
                        let path =
                            if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                        v.flatten_numbers(&path, out);
                    }
                }
                Value::Arr(items) => {
                    for (i, v) in items.iter().enumerate() {
                        let label = match v {
                            Value::Obj(fields) => fields.iter().find_map(|(k, v)| match v {
                                Value::Str(s) if k == "name" => Some(s.clone()),
                                _ => None,
                            }),
                            _ => None,
                        };
                        let label = label.unwrap_or_else(|| i.to_string());
                        v.flatten_numbers(&format!("{prefix}[{label}]"), out);
                    }
                }
                Value::Str(_) | Value::Null => {}
            }
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "bad UTF-8".into());
                }
                Some(b'\\') => {
                    *pos += 1;
                    let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(*esc),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            let ch = char::from_u32(hex).ok_or("bad \\u code point")?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", *other as char)),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    *pos += 1;
                }
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_flat_json() {
            let mut r = BenchReport::new("demo");
            r.metric("steps_per_sec", 12.5)
                .int("steps", 40)
                .flag("deterministic", true)
                .text("mode", "smoke");
            assert_eq!(
                r.render(),
                "{\"bench\":\"demo\",\"steps_per_sec\":12.5,\"steps\":40,\
                 \"deterministic\":true,\"mode\":\"smoke\"}"
            );
        }

        #[test]
        fn renders_samples_array_and_escapes() {
            let mut r = BenchReport::new("kernels");
            r.sample("gemm/strict \"hot\"", 0.5, 0.25, 1.0);
            let line = r.render();
            assert!(line.contains("\"samples\":[{\"name\":\"gemm/strict \\\"hot\\\"\""));
            assert!(line.ends_with("]}"));
        }

        #[test]
        fn non_finite_metrics_become_null() {
            let mut r = BenchReport::new("x");
            r.metric("bad", f64::NAN);
            assert!(r.render().contains("\"bad\":null"));
        }

        #[test]
        fn parse_roundtrips_writer_output() {
            let mut r = BenchReport::new("demo");
            r.metric("steps_per_sec", 12.5)
                .int("steps", 40)
                .flag("deterministic", true)
                .text("mode", "smoke \"q\"");
            r.sample("gemm/strict", 0.5, 0.25, 1.0);
            let v = Value::parse(&r.render()).expect("writer output must parse");
            let mut flat = Vec::new();
            v.flatten_numbers("", &mut flat);
            assert!(flat.contains(&("steps_per_sec".into(), 12.5)));
            assert!(flat.contains(&("steps".into(), 40.0)));
            assert!(flat.contains(&("deterministic".into(), 1.0)));
            assert!(flat.contains(&("samples[gemm/strict].mean_secs".into(), 0.5)));
            // Strings don't flatten to numbers.
            assert!(!flat.iter().any(|(k, _)| k == "mode" || k == "bench"));
        }

        #[test]
        fn parse_rejects_garbage() {
            assert!(Value::parse("{\"a\":}").is_err());
            assert!(Value::parse("{\"a\":1} trailing").is_err());
            assert!(Value::parse("").is_err());
        }

        #[test]
        fn parse_handles_null_and_nesting() {
            let v = Value::parse("{\"a\":null,\"b\":[1,2,{\"c\":-3.5e2}],\"d\":false}").unwrap();
            let mut flat = Vec::new();
            v.flatten_numbers("", &mut flat);
            assert_eq!(
                flat,
                vec![
                    ("b[0]".to_string(), 1.0),
                    ("b[1]".to_string(), 2.0),
                    ("b[2].c".to_string(), -350.0),
                    ("d".to_string(), 0.0),
                ]
            );
        }
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|v| v.to_string()))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args(&["--epochs", "12", "--paper", "--scale", "8"]);
        assert_eq!(a.get("epochs", 0usize), 12);
        assert_eq!(a.get("scale", 1usize), 8);
        assert!(a.flag("paper"));
        assert!(!a.flag("full"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn value_then_flag_disambiguation() {
        let a = args(&["--stage", "lle", "--verbose"]);
        assert_eq!(a.get_str("stage"), Some("lle"));
        assert!(a.flag("verbose"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
