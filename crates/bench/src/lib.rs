//! Shared utilities for the CalTrain experiment harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (§VI); see `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// A minimal `--key value` / `--flag` command-line parser (the harness
/// has no CLI dependency budget).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` after the binary name.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { values, flags }
    }

    /// A `--key value` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// The raw string value of `--key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Formats a fraction as `"12.34%"` (the paper's axis style).
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|v| v.to_string()))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args(&["--epochs", "12", "--paper", "--scale", "8"]);
        assert_eq!(a.get("epochs", 0usize), 12);
        assert_eq!(a.get("scale", 1usize), 8);
        assert!(a.flag("paper"));
        assert!(!a.flag("full"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn value_then_flag_disambiguation() {
        let a = args(&["--stage", "lle", "--verbose"]);
        assert_eq!(a.get_str("stage"), Some("lle"));
        assert!(a.flag("verbose"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
