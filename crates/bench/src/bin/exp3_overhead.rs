//! Experiment III (paper Fig. 6): normalized training-performance
//! overhead as a function of how many convolutional layers run inside
//! the enclave.
//!
//! For each point on the paper's x-axis (0, 2, 3, …, 10 in-enclave conv
//! layers) the harness trains the 18-layer network for a fixed workload
//! with the cut placed immediately after the k-th convolutional layer,
//! and reports **simulated time** from the platform's cycle-accounted
//! cost model (in-enclave FLOPs at the strict rate, boundary crossings,
//! EPC paging). Overhead is normalised to the all-outside (k = 0) run —
//! the paper's 6 %→22 % curve.
//!
//! Usage:
//!   cargo run --release -p caltrain-bench --bin exp3_overhead -- \
//!     [--scale 8] [--train 128] [--batch 32] [--paper] [--kernel-calibrated]
//!
//! `--kernel-calibrated` swaps the paper-fidelity cost model (1.22×
//! enclave/native flop ratio, the published Fig. 6 curve) for
//! [`caltrain_enclave::CostModel::kernel_calibrated`], whose per-mode
//! cycles-per-flop derive from this codebase's *measured* strict/native
//! GEMM throughputs (~13.8× with the AVX2/NEON SIMD rung as the native
//! kernel) — the overhead curve an all-software strict kernel would
//! actually produce.

use caltrain_bench::{pct, rule, Args};
use caltrain_core::partition::{Partition, PartitionedTrainer};
use caltrain_data::synthcifar;
use caltrain_enclave::epc::DEFAULT_EPC_BYTES;
use caltrain_enclave::{CostModel, EnclaveConfig, Platform};
use caltrain_nn::{zoo, Hyper};

fn main() {
    let args = Args::parse();
    let paper = args.flag("paper");
    let kernel_calibrated = args.flag("kernel-calibrated");
    let scale: usize = if paper { 1 } else { args.get("scale", 8) };
    let n_train: usize = if paper { 1024 } else { args.get("train", 128) };
    let batch: usize = args.get("batch", 32);
    let seed: u64 = args.get("seed", 6);

    println!(
        "Experiment III — Fig. 6: per-epoch overhead vs in-enclave conv layers \
         (18-layer net, 1/{scale} width, {n_train} instances, batch {batch}{})",
        if kernel_calibrated { ", measured-kernel cost model" } else { "" }
    );

    let (train, _) = synthcifar::generate(n_train, 16, seed);
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };

    // Paper x-axis: 0, 2, 3, ..., 10 in-enclave convolutional layers.
    let conv_counts: Vec<usize> = std::iter::once(0).chain(2..=10).collect();
    let mut results: Vec<(usize, f64, u64)> = Vec::new();

    for &k in &conv_counts {
        // Fresh platform per point so clocks/EPC don't bleed across runs.
        let cost_model = if kernel_calibrated {
            CostModel::kernel_calibrated()
        } else {
            CostModel::default()
        };
        let platform = Platform::new(cost_model, DEFAULT_EPC_BYTES, format!("exp3-{k}").as_bytes());
        let enclave = platform
            .create_enclave(&EnclaveConfig {
                name: "trainer".into(),
                code_identity: b"caltrain-training-enclave-v1".to_vec(),
                heap_bytes: 1 << 22,
            })
            .expect("enclave launch");
        let net = zoo::cifar10_18layer_scaled(scale, seed).expect("fixed architecture");
        let conv_idx = net.conv_layer_indices();
        let cut = if k == 0 { 0 } else { conv_idx[k - 1] + 1 };

        let mut trainer = PartitionedTrainer::new(
            net,
            Partition { cut },
            platform.clone(),
            &enclave,
            batch,
            seed,
        )
        .expect("trainer");

        platform.reset_clock();
        trainer
            .train_epoch(&train, &enclave, &hyper, batch, None)
            .expect("epoch");
        let elapsed = platform.elapsed().seconds;
        let paging = platform.cycle_breakdown().paging_cycles;
        results.push((k, elapsed, paging));
    }

    let base = results[0].1;
    rule(72);
    println!(
        "{:<22} {:>14} {:>12} {:>14}",
        "in-enclave conv layers", "sim time (s)", "overhead", "paging cycles"
    );
    rule(72);
    for &(k, t, paging) in &results {
        let overhead = (t - base) / base;
        println!("{k:<22} {t:>14.4} {:>12} {paging:>14}", pct(overhead as f32));
    }
    rule(72);
    let last = results.last().expect("non-empty sweep");
    println!(
        "shape check: overhead grows monotonically {} | k=10 overhead {} (paper: 6% → 22%)",
        results.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9),
        pct(((last.1 - base) / base) as f32),
    );
}
