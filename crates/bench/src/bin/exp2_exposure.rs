//! Experiment II (paper Fig. 5): KL-divergence information-exposure
//! analysis of intermediate representations across a full training cycle.
//!
//! Trains the 18-layer net for `--epochs` epochs keeping the per-epoch
//! semi-trained snapshots (IRGenNets), trains an independent IRValNet
//! oracle, and prints one row per layer per epoch: the [min, max] KL
//! range over all IR images vs the original input, plus the uniform
//! baseline δµ and the recommended partition cut.
//!
//! Usage:
//!   cargo run --release -p caltrain-bench --bin exp2_exposure -- \
//!     [--epochs 12] [--scale 16] [--train 400] [--probes 3]

use caltrain_assess::{assess_training_run, ExposureConfig};
use caltrain_bench::{rule, Args};
use caltrain_core::partition::Partition;
use caltrain_core::pipeline::{CalTrain, PipelineConfig};
use caltrain_data::synthcifar;
use caltrain_nn::augment::AugmentConfig;
use caltrain_nn::{zoo, Hyper, KernelMode};
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let epochs: usize = args.get("epochs", 12);
    let scale: usize = args.get("scale", 16);
    let n_train: usize = args.get("train", 400);
    let probes: usize = args.get("probes", 3);
    let seed: u64 = args.get("seed", 5);

    println!(
        "Experiment II — Fig. 5: exposure assessment, 18-layer net (1/{scale} width), \
         {epochs} epochs, {probes} probes"
    );

    let (train, test) = synthcifar::generate(n_train, 64, seed);

    // Train the target model inside CalTrain, snapshotting every epoch.
    let config = PipelineConfig {
        partition: Partition { cut: 2 },
        hyper: Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
        batch_size: 32,
        augment: Some(AugmentConfig::default()),
        heap_bytes: 1 << 22,
        snapshots: true,
        ..PipelineConfig::default()
    };
    let net = zoo::cifar10_18layer_scaled(scale, seed).expect("fixed architecture");
    let mut sys = CalTrain::new(net, config, b"exp2").expect("pipeline boot");
    sys.enroll_and_ingest(&train, 4, seed).expect("ingest");
    let outcome = sys.train(epochs).expect("training");
    let mut snapshots = outcome.snapshots;

    // Train the IRValNet oracle independently ("a different well-trained
    // deep learning model", §IV-B). The oracle must be *calibrated*, not
    // merely accurate: augmentation-heavy training plus early stopping
    // keeps its confidence tied to visual similarity, so an IR image only
    // scores a low KL when it actually resembles the input. An
    // overconfident oracle would assign near-one-hot outputs to abstract
    // deep-layer IRs, and chance same-class hits would poison the min
    // statistic.
    let mut irval = zoo::irvalnet(scale, seed).expect("fixed architecture");
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    let aug = AugmentConfig::default();
    let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x07AC1E);
    'oracle: for _ in 0..epochs.max(6) {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for (start, end) in train.batch_bounds(32) {
            let idx: Vec<usize> = (start..end).collect();
            let chunk = train.subset(&idx);
            let images =
                caltrain_nn::augment::augment_batch(chunk.images(), &aug, &mut oracle_rng);
            let (l, _) = irval
                .train_batch(&images, chunk.labels(), &hyper, KernelMode::Native)
                .expect("oracle training");
            epoch_loss += l;
            batches += 1;
        }
        if epoch_loss / (batches as f32) < 0.4 {
            break 'oracle; // well-trained but not degenerate-confident
        }
    }

    // threshold_factor relaxes the uniform bound (paper §IV-B: "end users
    // can also relax the constraints"). With 10 classes a confident
    // oracle's chance same-class matches put a floor of ~0.1·δµ under
    // deep-layer minima, so the tight factor 1.0 is unattainable; 0.5
    // separates the >1000× gap between leaking and safe layers cleanly.
    let exposure_cfg = ExposureConfig {
        probes,
        max_channels: Some(12),
        threshold_factor: args.get("threshold", 0.5),
    };
    let per_epoch =
        assess_training_run(&mut snapshots, &mut irval, test.images(), &exposure_cfg)
            .expect("assessment");

    for e in &per_epoch {
        println!("\n(e{}) Epoch {}", e.epoch, e.epoch);
        rule(56);
        println!("{:<7} {:>12} {:>12}   (δµ = {:.3})", "layer", "min KL", "max KL", e.uniform_baseline);
        rule(56);
        for l in &e.layers {
            let marker = if l.min_kl >= e.uniform_baseline { " " } else { "*" };
            println!("{:<7} {:>12.4} {:>12.4} {marker}", l.layer + 1, l.min_kl, l.max_kl);
        }
        match e.recommended_cut {
            Some(cut) => println!("=> enclose layers 1..={} in the enclave", cut.max(1)),
            None => println!("=> no safe cut at this epoch (every layer leaks)"),
        }
    }

    rule(56);
    println!("\nsummary: recommended cut per epoch (paper: layer 4 for all epochs)");
    for e in &per_epoch {
        println!(
            "  epoch {:>2}: cut after layer {}",
            e.epoch,
            e.recommended_cut.map_or("—".to_string(), |c| c.to_string())
        );
    }
}
