//! Regenerates paper Tables I and II: the 10- and 18-layer CIFAR-10
//! architectures, row by row (layer kind, filters, size/stride, input and
//! output shapes).
//!
//! Usage: `cargo run -p caltrain-bench --bin tables`

use caltrain_nn::zoo;
use caltrain_nn::Network;

fn print_table(title: &str, net: &Network) {
    println!("\n{title}");
    caltrain_bench::rule(68);
    println!(
        "{:<4} {:<8} {:>7} {:>9} {:>16} {:>16}",
        "#", "Layer", "Filter", "Size", "Input", "Output"
    );
    caltrain_bench::rule(68);
    // The paper prints shapes W x H x C; we store [C, H, W].
    let fmt_shape = |dims: &[usize]| -> String {
        match dims.len() {
            3 => format!("{}x{}x{}", dims[2], dims[1], dims[0]),
            _ => dims.iter().map(ToString::to_string).collect::<Vec<_>>().join("x"),
        }
    };
    for (i, row) in net.describe().iter().enumerate() {
        println!(
            "{:<4} {:<8} {:>7} {:>9} {:>16} {:>16}",
            i + 1,
            row.kind.to_string(),
            row.filters.map_or(String::new(), |f| f.to_string()),
            row.size,
            fmt_shape(&row.input),
            fmt_shape(&row.output),
        );
    }
    caltrain_bench::rule(68);
    println!("trainable parameters: {}", net.param_count());
}

fn main() {
    let net10 = zoo::cifar10_10layer(0).expect("fixed architecture");
    print_table("TABLE I: 10-Layer Deep Neural Network Architecture for CIFAR-10", &net10);

    let net18 = zoo::cifar10_18layer(0).expect("fixed architecture");
    print_table("TABLE II: 18-Layer Deep Neural Network Architecture for CIFAR-10", &net18);
}
