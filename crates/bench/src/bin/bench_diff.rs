//! Diffs two sets of `BENCH_*.json` files and prints a regression table
//! — the trajectory-tracking loop-closer for the committed bench
//! reports.
//!
//! Usage:
//!   `cargo run -p caltrain-bench --bin bench_diff -- \`
//!     `<baseline-dir> <candidate-dir> [--threshold 0.10] [--fail-on-regression]`
//!   `cargo run -p caltrain-bench --bin bench_diff -- \`
//!     `--trend [<history.jsonl>] [--threshold 0.10] [--fail-on-regression]`
//!
//! Every numeric field of every `BENCH_*.json` present in *both*
//! directories is compared. Fields whose names classify as
//! lower-is-better (`*_secs`, `*allocs*`, `*cycles*`, `*spawns*`, …) or
//! higher-is-better (`*per_sec*`, `*speedup*`, `*gflops*`, …) get a
//! regression/improvement verdict when they move more than the
//! threshold (default 10 %); unclassified fields are reported
//! informationally. Exit status is 0 unless `--fail-on-regression` is
//! passed and at least one classified regression exceeded the
//! threshold — `ci.sh` runs it in warning mode so a noisy host cannot
//! turn wall-clock jitter into spurious red.
//!
//! `--trend` closes the gap single-PR diffing leaves open: a metric
//! that loses 5 % every PR never trips the 10 % threshold yet halves in
//! ten PRs. It reads the committed `BENCH_history.jsonl` (one JSON line
//! per PR, appended at PR time), tracks every numeric field across
//! lines, and flags **SLOW DRIFT** when the first→last movement of a
//! classified metric exceeds the threshold while every single-PR step
//! stayed under it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use caltrain_bench::report::Value;
use caltrain_bench::Args;

/// Which direction of movement counts as a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Informational,
}

/// Classifies a flattened metric path by naming convention — the same
/// conventions `BenchReport` call sites already follow.
///
/// Higher-is-better names win over lower-is-better ones: a derived
/// rate such as `gflops/simd_native/64x49x576` stays higher-is-better
/// even when the surrounding path also matches a lower-is-better
/// substring (e.g. a per-kernel `*_secs` component it was derived
/// from), because a rate name is always a deliberate unit choice while
/// the lower list is mostly incidental path vocabulary.
fn classify(path: &str) -> Direction {
    let lower = [
        "secs", "_ms_", "allocs", "bytes_per", "mbytes", "cycles", "overhead", "spawn",
        "handoff", "scaling_exponent", "decade_growth",
    ];
    let higher = ["per_sec", "speedup", "gflops", "throughput", "accuracy", "hit_rate", "recall"];
    let p = path.to_ascii_lowercase();
    if higher.iter().any(|n| p.contains(n)) {
        Direction::HigherIsBetter
    } else if lower.iter().any(|n| p.contains(n)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

fn load_dir(dir: &Path) -> BTreeMap<String, Vec<(String, f64)>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("bench_diff: cannot read directory {}", dir.display());
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            eprintln!("bench_diff: cannot read {}", entry.path().display());
            continue;
        };
        match Value::parse(text.trim()) {
            Ok(value) => {
                let mut flat = Vec::new();
                value.flatten_numbers("", &mut flat);
                out.insert(name, flat);
            }
            Err(e) => eprintln!("bench_diff: {name}: {e}"),
        }
    }
    out
}

struct Row {
    file: String,
    metric: String,
    old: f64,
    new: f64,
    verdict: &'static str,
}

/// Relative change from `old` to `new`, with the zero-baseline
/// convention the single-PR diff uses (any appearance from zero counts
/// as a full-scale ±100 % move).
fn rel_change(old: f64, new: f64) -> f64 {
    if old.abs() < 1e-9 {
        new.signum()
    } else {
        (new - old) / old.abs()
    }
}

/// The `--trend` mode: per-metric series over the committed history
/// lines, flagging classified metrics whose cumulative movement beats
/// the threshold without any single step doing so.
fn run_trend(history_path: &Path, threshold: f64, fail_on_regression: bool) -> ExitCode {
    let Ok(text) = std::fs::read_to_string(history_path) else {
        eprintln!("bench_diff: cannot read history {}", history_path.display());
        return ExitCode::from(2);
    };
    let mut labels: Vec<String> = Vec::new();
    // Metric path -> (per-line values, in line order, None where absent).
    let mut series: BTreeMap<String, Vec<Option<f64>>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = match Value::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_diff: history line {}: {e}", lineno + 1);
                continue;
            }
        };
        let mut flat = Vec::new();
        value.flatten_numbers("", &mut flat);
        let label = flat
            .iter()
            .find(|(k, _)| k == "pr")
            .map(|(_, v)| format!("PR {v}"))
            .unwrap_or_else(|| format!("line {}", lineno + 1));
        let idx = labels.len();
        labels.push(label);
        for (k, v) in flat {
            if k == "pr" {
                continue;
            }
            let entry = series.entry(k).or_default();
            entry.resize(idx, None);
            entry.push(Some(v));
        }
    }
    for values in series.values_mut() {
        values.resize(labels.len(), None);
    }
    if labels.len() < 2 {
        println!(
            "bench_diff --trend: {} history line(s) in {} — need at least 2 to trend.",
            labels.len(),
            history_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut drifts = 0usize;
    let mut jumps = 0usize;
    let mut improvements = 0usize;
    println!(
        "{:<52} {:>12} {:>12} {:>8}  verdict ({} -> {})",
        "metric",
        "first",
        "last",
        "drift",
        labels.first().expect("≥2 labels"),
        labels.last().expect("≥2 labels"),
    );
    println!("{}", "-".repeat(110));
    for (metric, values) in &series {
        let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
        if present.len() < 2 {
            continue;
        }
        // A PR that records no new perf metrics (a robustness or docs
        // PR) leaves gaps; trend over the values that do exist and say
        // which lines they came from when that span isn't the global one.
        let first_idx = values.iter().position(Option::is_some).expect("present >= 2");
        let last_idx = values.iter().rposition(Option::is_some).expect("present >= 2");
        let span = if first_idx != 0 || last_idx + 1 != labels.len() {
            format!(" ({} -> {})", labels[first_idx], labels[last_idx])
        } else {
            String::new()
        };
        let (first, last) = (present[0], present[present.len() - 1]);
        if first.abs() < 1e-9 && last.abs() < 1e-9 {
            continue;
        }
        let total = rel_change(first, last);
        if total.abs() < threshold {
            continue;
        }
        let regressed = match classify(metric) {
            Direction::Informational => continue,
            Direction::LowerIsBetter => last > first,
            Direction::HigherIsBetter => last < first,
        };
        let max_step = present
            .windows(2)
            .map(|w| rel_change(w[0], w[1]).abs())
            .fold(0.0f64, f64::max);
        let verdict = if !regressed {
            improvements += 1;
            "improved"
        } else if max_step < threshold {
            drifts += 1;
            "SLOW DRIFT"
        } else {
            jumps += 1;
            "REGRESSION"
        };
        println!(
            "{metric:<52} {first:>12.5} {last:>12.5} {:>+7.1}%  {verdict}{span}",
            total * 100.0
        );
    }
    println!(
        "bench_diff --trend: {drifts} slow drift(s), {jumps} step regression(s), \
         {improvements} improvement(s) beyond {:.0}% across {} PRs.",
        threshold * 100.0,
        labels.len()
    );
    if drifts > 0 {
        println!(
            "WARNING: slow drift — cumulative movement beat {:.0}% while every \
             single-PR step stayed under it; inspect the trajectory.",
            threshold * 100.0
        );
    }
    if fail_on_regression && (drifts > 0 || jumps > 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> =
        raw.iter().take_while(|a| !a.starts_with("--")).collect();
    let args = Args::from_args(raw.iter().skip(positional.len()).cloned());
    if args.flag("trend") || args.get_str("trend").is_some() {
        // `--trend` optionally takes the history path as its value
        // (`--trend FILE` parses as a keyed value, bare `--trend` as a
        // flag with an optional positional path).
        let path = args
            .get_str("trend")
            .map(str::to_string)
            .or_else(|| positional.first().map(|s| s.to_string()))
            .unwrap_or_else(|| "BENCH_history.jsonl".to_string());
        return run_trend(
            &PathBuf::from(path),
            args.get("threshold", 0.10),
            args.flag("fail-on-regression"),
        );
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline-dir> <candidate-dir> \
             [--threshold 0.10] [--fail-on-regression]\n\
             \x20      bench_diff --trend [<history.jsonl>] \
             [--threshold 0.10] [--fail-on-regression]"
        );
        return ExitCode::from(2);
    }
    let threshold: f64 = args.get("threshold", 0.10);
    let fail_on_regression = args.flag("fail-on-regression");

    let baseline = load_dir(&PathBuf::from(positional[0]));
    let candidate = load_dir(&PathBuf::from(positional[1]));

    let mut rows: Vec<Row> = Vec::new();
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for (file, old_metrics) in &baseline {
        let Some(new_metrics) = candidate.get(file) else {
            println!("~ {file}: present in baseline only (bench removed?)");
            continue;
        };
        let new_map: BTreeMap<&str, f64> =
            new_metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (metric, old) in old_metrics {
            let Some(&new) = new_map.get(metric.as_str()) else { continue };
            if old.abs() < 1e-9 && new.abs() < 1e-9 {
                continue;
            }
            let change = rel_change(*old, new);
            if change.abs() < threshold {
                continue;
            }
            let verdict = match classify(metric) {
                Direction::Informational => "info",
                Direction::LowerIsBetter if new > *old => "REGRESSION",
                Direction::HigherIsBetter if new < *old => "REGRESSION",
                _ => "improved",
            };
            match verdict {
                "REGRESSION" => regressions += 1,
                "improved" => improvements += 1,
                _ => {}
            }
            rows.push(Row { file: file.clone(), metric: metric.clone(), old: *old, new, verdict });
        }
    }
    for file in candidate.keys() {
        if !baseline.contains_key(file) {
            println!("+ {file}: new bench (no baseline)");
        }
    }

    if rows.is_empty() {
        println!(
            "bench_diff: no metric moved more than {:.0}% across {} bench file(s).",
            threshold * 100.0,
            baseline.len()
        );
    } else {
        println!(
            "{:<28} {:<44} {:>14} {:>14} {:>8}  verdict",
            "file", "metric", "baseline", "candidate", "delta"
        );
        println!("{}", "-".repeat(120));
        rows.sort_by(|a, b| {
            (a.verdict != "REGRESSION").cmp(&(b.verdict != "REGRESSION"))
        });
        for r in &rows {
            let change = rel_change(r.old, r.new);
            println!(
                "{:<28} {:<44} {:>14.5} {:>14.5} {:>+7.1}%  {}",
                r.file,
                r.metric,
                r.old,
                r.new,
                change * 100.0,
                r.verdict
            );
        }
    }
    println!(
        "bench_diff: {regressions} regression(s), {improvements} improvement(s) \
         beyond {:.0}% (threshold).",
        threshold * 100.0
    );
    if regressions > 0 {
        println!(
            "WARNING: {regressions} metric(s) regressed by more than {:.0}% — \
             inspect before merging.",
            threshold * 100.0
        );
    }
    if fail_on_regression && regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_gives_rate_names_precedence() {
        // Plain timing samples stay lower-is-better …
        assert_eq!(
            classify("samples[gemm/simd_native/64x49x576].mean_secs"),
            Direction::LowerIsBetter
        );
        assert_eq!(classify("alloc_steady_state.allocs_per_step"), Direction::LowerIsBetter);
        // … but derived rates win even when the path also matches a
        // lower-is-better substring.
        assert_eq!(classify("gflops/simd_native/64x49x576"), Direction::HigherIsBetter);
        assert_eq!(classify("gflops_from_mean_secs"), Direction::HigherIsBetter);
        assert_eq!(classify("steps_per_sec"), Direction::HigherIsBetter);
        assert_eq!(classify("spawn_overhead_speedup"), Direction::HigherIsBetter);
        // Unknown names remain informational.
        assert_eq!(classify("workers"), Direction::Informational);
    }

    #[test]
    fn classify_serving_index_metrics() {
        // Fitted log-log slopes and decade growth ratios shrink as the
        // index gets better — lower-is-better.
        assert_eq!(classify("scaling_exponent_indexed"), Direction::LowerIsBetter);
        assert_eq!(classify("decade_growth_full_scan"), Direction::LowerIsBetter);
        // Recall is a hit fraction — higher-is-better, and the rate
        // precedence keeps it so even inside a timing-flavoured path.
        assert_eq!(classify("recall_at_10"), Direction::HigherIsBetter);
        assert_eq!(classify("samples[query].recall_mean_secs_path"), Direction::HigherIsBetter);
    }

    #[test]
    fn rel_change_zero_baseline_is_full_scale() {
        assert_eq!(rel_change(0.0, 5.0), 1.0);
        assert_eq!(rel_change(4.0, 2.0), -0.5);
    }
}
