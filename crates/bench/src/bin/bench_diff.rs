//! Diffs two sets of `BENCH_*.json` files and prints a regression table
//! — the trajectory-tracking loop-closer for the committed bench
//! reports.
//!
//! Usage:
//!   `cargo run -p caltrain-bench --bin bench_diff -- \`
//!     `<baseline-dir> <candidate-dir> [--threshold 0.10] [--fail-on-regression]`
//!
//! Every numeric field of every `BENCH_*.json` present in *both*
//! directories is compared. Fields whose names classify as
//! lower-is-better (`*_secs`, `*allocs*`, `*cycles*`, `*spawns*`, …) or
//! higher-is-better (`*per_sec*`, `*speedup*`, `*gflops*`, …) get a
//! regression/improvement verdict when they move more than the
//! threshold (default 10 %); unclassified fields are reported
//! informationally. Exit status is 0 unless `--fail-on-regression` is
//! passed and at least one classified regression exceeded the
//! threshold — `ci.sh` runs it in warning mode so a noisy host cannot
//! turn wall-clock jitter into spurious red.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use caltrain_bench::report::Value;
use caltrain_bench::Args;

/// Which direction of movement counts as a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Informational,
}

/// Classifies a flattened metric path by naming convention — the same
/// conventions `BenchReport` call sites already follow.
fn classify(path: &str) -> Direction {
    let lower = ["secs", "allocs", "bytes_per", "mbytes", "cycles", "overhead", "spawn"];
    let higher = ["per_sec", "speedup", "gflops", "throughput", "accuracy", "hit_rate"];
    let p = path.to_ascii_lowercase();
    if lower.iter().any(|n| p.contains(n)) {
        Direction::LowerIsBetter
    } else if higher.iter().any(|n| p.contains(n)) {
        Direction::HigherIsBetter
    } else {
        Direction::Informational
    }
}

fn load_dir(dir: &Path) -> BTreeMap<String, Vec<(String, f64)>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("bench_diff: cannot read directory {}", dir.display());
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            eprintln!("bench_diff: cannot read {}", entry.path().display());
            continue;
        };
        match Value::parse(text.trim()) {
            Ok(value) => {
                let mut flat = Vec::new();
                value.flatten_numbers("", &mut flat);
                out.insert(name, flat);
            }
            Err(e) => eprintln!("bench_diff: {name}: {e}"),
        }
    }
    out
}

struct Row {
    file: String,
    metric: String,
    old: f64,
    new: f64,
    verdict: &'static str,
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> =
        raw.iter().take_while(|a| !a.starts_with("--")).collect();
    let args = Args::from_args(raw.iter().skip(positional.len()).cloned());
    if positional.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline-dir> <candidate-dir> \
             [--threshold 0.10] [--fail-on-regression]"
        );
        return ExitCode::from(2);
    }
    let threshold: f64 = args.get("threshold", 0.10);
    let fail_on_regression = args.flag("fail-on-regression");

    let baseline = load_dir(&PathBuf::from(positional[0]));
    let candidate = load_dir(&PathBuf::from(positional[1]));

    let mut rows: Vec<Row> = Vec::new();
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for (file, old_metrics) in &baseline {
        let Some(new_metrics) = candidate.get(file) else {
            println!("~ {file}: present in baseline only (bench removed?)");
            continue;
        };
        let new_map: BTreeMap<&str, f64> =
            new_metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (metric, old) in old_metrics {
            let Some(&new) = new_map.get(metric.as_str()) else { continue };
            if old.abs() < 1e-9 && new.abs() < 1e-9 {
                continue;
            }
            // A zero baseline has no meaningful relative change; treat
            // any appearance from zero as a full-scale move (±100%) so
            // it shows up once without a nonsense percentage.
            let change = if old.abs() < 1e-9 {
                new.signum()
            } else {
                (new - old) / old.abs()
            };
            if change.abs() < threshold {
                continue;
            }
            let verdict = match classify(metric) {
                Direction::Informational => "info",
                Direction::LowerIsBetter if new > *old => "REGRESSION",
                Direction::HigherIsBetter if new < *old => "REGRESSION",
                _ => "improved",
            };
            match verdict {
                "REGRESSION" => regressions += 1,
                "improved" => improvements += 1,
                _ => {}
            }
            rows.push(Row { file: file.clone(), metric: metric.clone(), old: *old, new, verdict });
        }
    }
    for file in candidate.keys() {
        if !baseline.contains_key(file) {
            println!("+ {file}: new bench (no baseline)");
        }
    }

    if rows.is_empty() {
        println!(
            "bench_diff: no metric moved more than {:.0}% across {} bench file(s).",
            threshold * 100.0,
            baseline.len()
        );
    } else {
        println!(
            "{:<28} {:<44} {:>14} {:>14} {:>8}  verdict",
            "file", "metric", "baseline", "candidate", "delta"
        );
        println!("{}", "-".repeat(120));
        rows.sort_by(|a, b| {
            (a.verdict != "REGRESSION").cmp(&(b.verdict != "REGRESSION"))
        });
        for r in &rows {
            let change = if r.old.abs() < 1e-9 {
                r.new.signum()
            } else {
                (r.new - r.old) / r.old.abs()
            };
            println!(
                "{:<28} {:<44} {:>14.5} {:>14.5} {:>+7.1}%  {}",
                r.file,
                r.metric,
                r.old,
                r.new,
                change * 100.0,
                r.verdict
            );
        }
    }
    println!(
        "bench_diff: {regressions} regression(s), {improvements} improvement(s) \
         beyond {:.0}% (threshold).",
        threshold * 100.0
    );
    if regressions > 0 {
        println!(
            "WARNING: {regressions} metric(s) regressed by more than {:.0}% — \
             inspect before merging.",
            threshold * 100.0
        );
    }
    if fail_on_regression && regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
