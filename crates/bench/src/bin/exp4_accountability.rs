//! Experiment IV (paper Fig. 7, Fig. 8 and the §VI-D statistics): model
//! accountability against the Trojaning Attack.
//!
//! Reproduction flow (substitutions documented in DESIGN.md §2):
//!  1. build a synthetic face population; corrupt class 0's label quality
//!     to the paper's measured VGG-Face composition (49.7 % correct,
//!     24.3 % mislabeled, 26 % inaccessible);
//!  2. train the victim face model, then implant a trojan backdoor by
//!     retraining with trigger-stamped foreign faces labelled class 0
//!     (contributed by a malicious participant);
//!  3. fingerprint every training instance into the linkage DB;
//!  4. `--stage lle`    → Fig. 7: LLE 2-D embedding of class-0
//!     fingerprints, with cluster-separation statistics;
//!  5. `--stage knn`    → Fig. 8: 9-NN queries for representative
//!     trojaned test images, with L2 distances and provenance classes;
//!  6. `--stage metrics`→ §VI-D: attack success rate, label-quality
//!     composition, attribution precision/recall.
//!
//! Default runs all stages.

use caltrain_attack::metrics::{evaluate_attack, score_attribution};
use caltrain_attack::{build_poisoned_set, implant_backdoor, TrojanTrigger};
use caltrain_bench::{pct, rule, Args};
use caltrain_core::accountability::{FingerprintingStage, QueryService};
use caltrain_data::{faces, Dataset, LabelStatus, ParticipantId};
use caltrain_enclave::Platform;
use caltrain_fingerprint::lle::{embed, group_separation, LleConfig};
use caltrain_fingerprint::Fingerprint;
use caltrain_nn::{zoo, Hyper, KernelMode, Network};
use caltrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TARGET_CLASS: usize = 0; // "A.J.Buckley" in the paper

struct Setup {
    model: Network,
    pool: Dataset,
    service: QueryService,
    holdout: Dataset,
    trigger: TrojanTrigger,
}

fn train_epochs(net: &mut Network, data: &Dataset, hyper: &Hyper, epochs: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..epochs {
        let shuffled = data.shuffled(&mut rng);
        for (start, end) in shuffled.batch_bounds(16) {
            let idx: Vec<usize> = (start..end).collect();
            let chunk = shuffled.subset(&idx);
            net.train_batch(chunk.images(), chunk.labels(), hyper, KernelMode::Native)
                .expect("training");
        }
    }
}

fn build(args: &Args) -> Setup {
    let identities: usize = args.get("identities", 8);
    let per_identity: usize = args.get("per-identity", 50);
    let poison_count: usize = args.get("poison", 45);
    let epochs: usize = args.get("epochs", 10);
    let seed: u64 = args.get("seed", 20181207);

    println!(
        "setup: {identities} identities × {per_identity}, {poison_count} poisoned, \
         target class {TARGET_CLASS}"
    );

    // Clean population, shared across participants 0..identities-1
    // (one honest participant per identity for crisp provenance).
    let clean = faces::generate(identities, per_identity, seed);
    let (corrupted, (n_ok, n_mis, n_drop)) = faces::corrupt_class(
        &clean,
        TARGET_CLASS,
        identities,
        faces::LabelQuality::vggface_class0(),
        seed + 1,
    );
    println!(
        "class-0 label quality: {n_ok} correct / {n_mis} mislabeled / {n_drop} inaccessible"
    );
    // Provenance: instance i belongs to the participant matching its
    // labelled identity; rebuild via per-class subsets so each shard
    // carries its owner tag.
    let mut parts: Vec<Dataset> = Vec::new();
    for id in 0..identities {
        let idx = corrupted.indices_of_class(id);
        if idx.is_empty() {
            continue;
        }
        let mut sub = corrupted.subset(&idx);
        sub.set_source(ParticipantId(id as u32));
        parts.push(sub);
    }
    let mut labeled_pool = parts[0].clone();
    for p in &parts[1..] {
        labeled_pool = labeled_pool.concat(p);
    }

    // Victim model trained on the (messy) clean pool.
    let hyper = Hyper { learning_rate: 0.08, momentum: 0.9, decay: 0.0001 };
    let mut model = zoo::face_net(identities, seed).expect("fixed architecture");
    train_epochs(&mut model, &labeled_pool, &hyper, epochs, seed + 2);

    // The malicious participant submits trigger-stamped foreign faces
    // labelled as the target class; the model is retrained (TrojanNN).
    // TrojanNN's reverse-engineered triggers dominate the layer they
    // target; a larger stamp approximates that dominance.
    let trigger = TrojanTrigger { size: args.get("trigger-size", 7), margin: 1 };
    let malicious = ParticipantId(identities as u32); // an extra registered party
    let poisoned = build_poisoned_set(
        poison_count,
        TARGET_CLASS,
        identities + 50,
        &trigger,
        malicious,
        seed + 3,
    );
    implant_backdoor(
        &mut model,
        &labeled_pool,
        &poisoned,
        &Hyper { learning_rate: 0.08, momentum: 0.9, decay: 0.0001 },
        epochs,
        16,
        seed + 4,
    )
    .expect("backdoor retraining");

    // The full training pool (clean + poisoned) goes through the
    // fingerprinting enclave.
    let pool = labeled_pool.concat(&poisoned);
    let platform = Platform::with_seed(b"exp4");
    let stage = FingerprintingStage::launch(&platform, (model.param_count() * 4).max(1 << 20))
        .expect("fingerprint enclave");
    let mut fp_model = model.clone();
    let db = stage.build_db(&mut fp_model, &pool, 32).expect("linkage db");
    println!("linkage db: {} records", db.len());

    // Held-out clean test faces for attack evaluation / trojan probes.
    let holdout = faces::generate(identities, 6, seed + 5);

    Setup { model, pool, service: QueryService::new(db), holdout, trigger }
}

fn status_tag(s: LabelStatus) -> &'static str {
    match s {
        LabelStatus::Clean => "normal",
        LabelStatus::Mislabeled { .. } => "MISLABELED",
        LabelStatus::Poisoned => "POISONED",
    }
}

fn stage_lle(setup: &mut Setup, args: &Args) {
    println!("\n== Fig. 7: LLE visualisation of class-0 fingerprint space ==");
    let class0: Vec<usize> = setup
        .pool
        .indices_of_class(TARGET_CLASS)
        .into_iter()
        .take(args.get("lle-points", 160))
        .collect();

    // Add trojaned *testing* fingerprints: stamped holdout faces that the
    // backdoor actually classifies into class 0 (the paper's trojaned
    // test set is class-0-classified by construction).
    let stamped = setup.trigger.stamp_batch(setup.holdout.images());
    let preds = setup.model.predict(&stamped, KernelMode::Native).expect("predictions");
    let emb_test = setup.model.embed(&stamped, KernelMode::Native).expect("embedding");
    let all_fps = Fingerprint::from_embedding_rows(&emb_test).expect("rows");
    let test_fps: Vec<Fingerprint> = all_fps
        .into_iter()
        .zip(&preds)
        .filter(|(_, &p)| p == TARGET_CLASS)
        .map(|(fp, _)| fp)
        .collect();

    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut groups: (Vec<usize>, Vec<usize>, Vec<usize>) = (vec![], vec![], vec![]);
    for &i in &class0 {
        let emb = setup
            .model
            .embed(&setup.pool.image(i).reshaped(&[1, 3, 24, 24]).expect("shape"), KernelMode::Native)
            .expect("embedding");
        let fp = Fingerprint::from_embedding(emb.as_slice());
        match setup.pool.statuses()[i] {
            LabelStatus::Poisoned => groups.1.push(rows.len()),
            _ => groups.0.push(rows.len()),
        }
        rows.push(fp.values().to_vec());
    }
    for fp in test_fps.iter().take(24) {
        groups.2.push(rows.len());
        rows.push(fp.values().to_vec());
    }

    let dim = rows[0].len();
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    let points = Tensor::from_vec(flat, &[rows.len(), dim]).expect("matrix");
    let emb2d = embed(&points, &LleConfig { neighbors: 10, out_dim: 2, regularization: 1e-3 })
        .expect("lle");

    let (normal, troj_train, troj_test) = groups;
    // Raw fingerprint-space distances (what the k-NN query operates on).
    let raw = {
        let mean = |a: &[usize], b: &[usize]| -> f32 {
            let mut acc = 0.0f32;
            for &i in a {
                for &j in b {
                    let d: f32 = rows[i]
                        .iter()
                        .zip(&rows[j])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f32>()
                        .sqrt();
                    acc += d;
                }
            }
            acc / (a.len() * b.len()).max(1) as f32
        };
        (mean(&normal, &troj_test), mean(&troj_train, &troj_test))
    };
    let sep_nt = group_separation(&emb2d, &normal, &troj_train);
    let sep_ne = group_separation(&emb2d, &normal, &troj_test);
    let sep_tt = group_separation(&emb2d, &troj_train, &troj_test);
    let intra_t = group_separation(&emb2d, &troj_train, &troj_train);
    rule(64);
    println!("groups: {} normal-train, {} trojaned-train, {} trojaned-test", normal.len(), troj_train.len(), troj_test.len());
    println!("raw fingerprint distance  normal ↔ trojaned-test  : {:.3}", raw.0);
    println!("raw fingerprint distance  trojaned-train ↔ -test  : {:.3}", raw.1);
    println!("mean LLE-2D distance  normal ↔ trojaned-train : {sep_nt:.3}");
    println!("mean LLE-2D distance  normal ↔ trojaned-test  : {sep_ne:.3}");
    println!("mean LLE-2D distance  trojaned-train ↔ -test  : {sep_tt:.3}");
    println!("intra trojaned-train spread (LLE-2D)          : {intra_t:.3}");
    println!(
        "shape check (paper: trojaned test sits nearest the trojaned-train cluster \
         in the query metric; clusters distinct in 2-D): {}",
        raw.1 < raw.0 && sep_nt > intra_t
    );
}

fn stage_knn(setup: &mut Setup, args: &Args) {
    println!("\n== Fig. 8: nearest-neighbour queries for trojaned test images ==");
    let k: usize = args.get("k", 9);
    // Three representative probes, as in the paper's figure: the target
    // identity itself (the A.J.Buckley case) and two *hijacked* other
    // identities (the Ridley Scott / Eleanor Tomlinson cases).
    let mut probes: Vec<usize> = vec![setup.holdout.indices_of_class(TARGET_CLASS)[0]];
    let mut used_ids = vec![TARGET_CLASS];
    for i in 0..setup.holdout.len() {
        if probes.len() >= 3 {
            break;
        }
        if used_ids.contains(&setup.holdout.labels()[i]) {
            continue;
        }
        let stamped = setup.trigger.stamp(&setup.holdout.image(i));
        let batch = stamped.reshaped(&[1, 3, 24, 24]).expect("shape");
        if setup.model.predict(&batch, KernelMode::Native).expect("prediction")[0]
            == TARGET_CLASS
        {
            probes.push(i);
            used_ids.push(setup.holdout.labels()[i]);
        }
    }
    for &idx in &probes {
        let identity = setup.holdout.labels()[idx];
        let stamped = setup.trigger.stamp(&setup.holdout.image(idx));
        let inv = setup
            .service
            .investigate(&mut setup.model, &stamped, k)
            .expect("query");
        println!(
            "\ntrojaned test image: true identity {identity} → predicted {} \
             ({} trigger hijack)",
            inv.predicted,
            if inv.predicted == TARGET_CLASS { "successful" } else { "NO" }
        );
        rule(64);
        println!("{:<4} {:>9} {:>9} {:>13}", "nn", "distance", "source", "ground truth");
        rule(64);
        for (rank, n) in inv.neighbors.iter().enumerate() {
            let status = setup.pool.statuses()[n.record];
            println!(
                "{:<4} {:>9.3} {:>9} {:>13}",
                rank + 1,
                n.distance,
                n.source,
                status_tag(status)
            );
        }
        println!("demand data from participants: {:?}", inv.demand_from);

        // Hash-verification round trip for the closest neighbour.
        let first = inv.neighbors[0].record;
        let ok = setup
            .service
            .verify_submission(first, &setup.pool.image_bytes(first))
            .expect("record exists");
        println!("hash verification of submitted instance: {ok}");
    }
}

fn stage_metrics(setup: &mut Setup, args: &Args) {
    println!("\n== §VI-D metrics ==");
    let k: usize = args.get("k", 9);
    let report = evaluate_attack(&mut setup.model, &setup.holdout, &setup.trigger, TARGET_CLASS)
        .expect("attack evaluation");
    println!("attack success rate : {}", pct(report.success_rate));
    println!("clean top-1 accuracy: {}", pct(report.clean_accuracy));

    // Query every trojaned holdout image; flag all returned neighbours,
    // then score against ground truth. Probes of the target identity are
    // excluded — their neighbours are legitimately normal (the
    // A.J.Buckley case in Fig. 8).
    let mut flagged: Vec<usize> = Vec::new();
    let mut queries = 0usize;
    for i in 0..setup.holdout.len() {
        if setup.holdout.labels()[i] == TARGET_CLASS {
            continue;
        }
        let stamped = setup.trigger.stamp(&setup.holdout.image(i));
        let Ok(inv) = setup.service.investigate(&mut setup.model, &stamped, k) else {
            continue;
        };
        if inv.predicted != TARGET_CLASS {
            continue; // backdoor missed; not a misprediction to debug
        }
        queries += 1;
        flagged.extend(inv.neighbors.iter().map(|n| n.record));
    }
    flagged.sort_unstable();
    flagged.dedup();
    let score = score_attribution(&setup.pool, &flagged);
    println!("mispredictions investigated: {queries}");
    println!("unique flagged instances   : {}", flagged.len());
    println!("attribution precision      : {}", pct(score.precision));
    println!("attribution recall         : {}", pct(score.recall));

    let malicious_flagged = flagged
        .iter()
        .filter(|&&i| setup.pool.statuses()[i] == LabelStatus::Poisoned)
        .count();
    println!(
        "poisoned instances among flags: {malicious_flagged} \
         (all contributed by the malicious participant)"
    );
}

/// DESIGN.md §5 ablation: rebuild the linkage DB with fingerprints
/// truncated to the first `d` dimensions and measure attribution
/// precision — how much of the embedding the accountability mechanism
/// actually needs.
fn stage_ablate_dim(setup: &mut Setup, args: &Args) {
    use caltrain_attack::metrics::score_attribution;
    use caltrain_fingerprint::{LinkageDb, LinkageRecord};

    println!("\n== Ablation: fingerprint dimensionality vs attribution precision ==");
    let k: usize = args.get("k", 9);
    let full_dim = setup.service.db().records()[0].fingerprint.dim();
    rule(48);
    println!("{:<8} {:>12} {:>12}", "dims", "precision", "recall");
    rule(48);
    for dims in [1usize, 2, 4, full_dim] {
        // Rebuild the DB with truncated, re-normalised fingerprints.
        let mut db = LinkageDb::new();
        for r in setup.service.db().records() {
            let truncated = Fingerprint::from_embedding(&r.fingerprint.values()[..dims]);
            let mut rec = LinkageRecord::new(truncated, r.label, r.source, b"");
            rec.hash = r.hash;
            db.insert(rec);
        }
        // Re-run the metrics queries against the truncated space.
        let mut flagged: Vec<usize> = Vec::new();
        for i in 0..setup.holdout.len() {
            if setup.holdout.labels()[i] == TARGET_CLASS {
                continue;
            }
            let stamped = setup.trigger.stamp(&setup.holdout.image(i));
            let batch = stamped.reshaped(&[1, 3, 24, 24]).expect("shape");
            let pred =
                setup.model.predict(&batch, KernelMode::Native).expect("prediction")[0];
            if pred != TARGET_CLASS {
                continue;
            }
            let emb = setup.model.embed(&batch, KernelMode::Native).expect("embedding");
            let probe = Fingerprint::from_embedding(&emb.as_slice()[..dims]);
            flagged.extend(db.query(&probe, TARGET_CLASS, k).iter().map(|m| m.record));
        }
        flagged.sort_unstable();
        flagged.dedup();
        let score = score_attribution(&setup.pool, &flagged);
        println!("{dims:<8} {:>12} {:>12}", pct(score.precision), pct(score.recall));
    }
    println!("(the full {full_dim}-dim logit fingerprint is needed for peak precision;\n crushed embeddings conflate poisoned and normal neighbourhoods)");
}

fn main() {
    let args = Args::parse();
    let mut setup = build(&args);
    let stage = args.get_str("stage").unwrap_or("all").to_string();
    if stage == "all" || stage == "lle" {
        stage_lle(&mut setup, &args);
    }
    if stage == "all" || stage == "knn" {
        stage_knn(&mut setup, &args);
    }
    if stage == "all" || stage == "metrics" {
        stage_metrics(&mut setup, &args);
    }
    if stage == "all" || stage == "ablate-dim" {
        stage_ablate_dim(&mut setup, &args);
    }
}
