//! Extension experiments beyond the paper's evaluation: the §VII
//! countermeasures and the §IV-B scale-out design, measured.
//!
//!  * `--stage dpsgd`     — DP-SGD (paper §VII: "seamlessly replace the
//!    standard SGD with DP-SGD"): accuracy vs noise multiplier σ.
//!  * `--stage inversion` — the Model Inversion Attack against the full
//!    model vs the CalTrain release (sealed FrontNet).
//!  * `--stage hubs`      — learning-hub scale-out: simulated round time
//!    and accuracy vs hub count (paper §IV-B "Performance").
//!
//! Default runs all stages.

use caltrain_attack::inversion::{invert_class, InversionConfig};
use caltrain_bench::{pct, rule, Args};
use caltrain_core::hubs::HubCluster;
use caltrain_core::partition::Partition;
use caltrain_data::{shard, synthcifar};
use caltrain_nn::dpsgd::{DpConfig, DpSgd};
use caltrain_nn::metrics::evaluate;
use caltrain_nn::{zoo, Activation, Hyper, KernelMode, Network, NetworkBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DP-SGD model: batch norm is incompatible with per-sample gradients
/// (batch-of-1 statistics degenerate — the reason real DP-SGD stacks use
/// group norm), so this stage trains a BN-free variant; the gradient
/// clipping itself supplies the training stability BN normally provides.
fn dp_net(seed: u64) -> Network {
    NetworkBuilder::new(&[3, 28, 28])
        .conv(8, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(8, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(10, 1, 1, 0, Activation::Linear)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
        .expect("fixed architecture")
}

fn train_plain(net: &mut Network, train: &caltrain_data::Dataset, epochs: usize, seed: u64) {
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..epochs {
        let sh = train.shuffled(&mut rng);
        for (s, t) in sh.batch_bounds(32) {
            let idx: Vec<usize> = (s..t).collect();
            let chunk = sh.subset(&idx);
            net.train_batch(chunk.images(), chunk.labels(), &hyper, KernelMode::Native)
                .expect("training");
        }
    }
}

fn stage_dpsgd(args: &Args) {
    println!("\n== DP-SGD: accuracy vs noise multiplier (clip C = 1.0) ==");
    let n: usize = args.get("train", 400);
    let epochs: usize = args.get("epochs", 12);
    let (train, test) = synthcifar::generate(n, 100, 11);
    rule(48);
    println!("{:<10} {:>10} {:>10} {:>8}", "σ", "top1", "top2", "steps");
    rule(48);
    for sigma in [0.0f32, 1.0, 4.0, 8.0] {
        let mut net = dp_net(11);
        let mut dp = DpSgd::new(DpConfig { clip_norm: 1.0, noise_multiplier: sigma, seed: 12 });
        let hyper = Hyper { learning_rate: 0.8, momentum: 0.9, decay: 0.0001 };
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..epochs {
            let sh = train.shuffled(&mut rng);
            for (s, t) in sh.batch_bounds(32) {
                let idx: Vec<usize> = (s..t).collect();
                let chunk = sh.subset(&idx);
                dp.train_batch(&mut net, chunk.images(), chunk.labels(), &hyper, KernelMode::Native)
                    .expect("dp training");
            }
        }
        let acc =
            evaluate(&mut net, test.images(), test.labels(), 64, KernelMode::Native).expect("eval");
        println!("{sigma:<10} {:>10} {:>10} {:>8}", pct(acc.top1), pct(acc.top2), dp.steps());
    }
    println!("(graceful degradation with σ — the privacy/utility dial of Abadi et al.)");
}

fn stage_inversion(args: &Args) {
    println!("\n== Model inversion vs the sealed FrontNet (paper §VII) ==");
    let n: usize = args.get("train", 300);
    let (train, _) = synthcifar::generate(n, 10, 21);
    let mut full = zoo::cifar10_10layer_scaled(32, 21).expect("fixed architecture");
    train_plain(&mut full, &train, args.get("epochs", 5), 22);

    // The adversary view: released BackNet + a random FrontNet guess.
    let mut adversary = zoo::cifar10_10layer_scaled(32, 909).expect("fixed architecture");
    let mut params = adversary.export_params();
    params[2..].clone_from_slice(&full.export_params()[2..]);
    adversary.import_params(&params).expect("same architecture");

    let config = InversionConfig::default();
    rule(64);
    println!("{:<8} {:>22} {:>22}", "class", "full-model confidence", "real conf. of adv. inv.");
    rule(64);
    for target in [0usize, 3, 7] {
        let with_model = invert_class(&mut full, target, &config).expect("inversion");
        let blind = invert_class(&mut adversary, target, &config).expect("inversion");
        let mut dims = vec![1usize];
        dims.extend_from_slice(full.input_shape().dims());
        let probe = blind.image.reshaped(&dims).expect("shape");
        let real = full
            .predict_probs(&probe, KernelMode::Native)
            .expect("probs")
            .as_slice()[target];
        println!("{target:<8} {:>22} {:>22}", pct(with_model.confidence), pct(real));
    }
    println!("(a complete model yields confident class reconstructions; the CalTrain\n release — FrontNet sealed — does not)");
}

fn stage_hubs(args: &Args) {
    println!("\n== Learning hubs: scale-out via model aggregation (paper §IV-B) ==");
    let n: usize = args.get("train", 400);
    let rounds: usize = args.get("rounds", 3);
    let (train, test) = synthcifar::generate(n, 100, 31);
    rule(64);
    println!("{:<6} {:>16} {:>10} {:>10}", "hubs", "round time (s)", "top1", "top2");
    rule(64);
    for hub_count in [1usize, 2, 4] {
        let net = zoo::cifar10_10layer_scaled(32, 31).expect("fixed architecture");
        let pools = shard::split(&train, hub_count, 32);
        let mut cluster = HubCluster::new(
            &net,
            pools,
            Partition { cut: 2 },
            Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 },
            16,
            None,
            33,
        )
        .expect("cluster");
        let mut last_time = 0.0f64;
        for _ in 0..rounds {
            let out = cluster.train_round(1).expect("round");
            last_time = out.round_time.seconds;
        }
        let acc = evaluate(
            cluster.global_model_mut(),
            test.images(),
            test.labels(),
            64,
            KernelMode::Native,
        )
        .expect("eval");
        println!("{hub_count:<6} {last_time:>16.4} {:>10} {:>10}", pct(acc.top1), pct(acc.top2));
    }
    println!("(round time is the slowest hub's simulated time: it shrinks with the\n per-hub pool, while aggregation keeps a single global model)");
}

fn main() {
    let args = Args::parse();
    let stage = args.get_str("stage").unwrap_or("all").to_string();
    if stage == "all" || stage == "dpsgd" {
        stage_dpsgd(&args);
    }
    if stage == "all" || stage == "inversion" {
        stage_inversion(&args);
    }
    if stage == "all" || stage == "hubs" {
        stage_hubs(&args);
    }
}
