//! Experiment I (paper Figs. 3 and 4): prediction accuracy per epoch for
//! models trained inside CalTrain vs in a non-protected environment.
//!
//! The paper's claim is that the curves coincide; this reproduction makes
//! the claim *exact* — under a shared seed the two runs are bit-identical
//! (the enclave changes where compute happens and what it costs, never
//! the arithmetic), which the harness asserts.
//!
//! Usage:
//!   cargo run --release -p caltrain-bench --bin exp1_accuracy -- \
//!     [--layers 10|18] [--epochs 12] [--scale 16] [--train 600]
//!     [--test 200] [--participants 4] [--paper]
//!
//! `--paper` selects the full Table I/II widths and the 50k/10k split —
//! a multi-hour CPU run kept for completeness.

use caltrain_bench::{pct, rule, Args};
use caltrain_core::partition::Partition;
use caltrain_core::pipeline::{CalTrain, PipelineConfig};
use caltrain_data::synthcifar;
use caltrain_nn::augment::AugmentConfig;
use caltrain_nn::metrics::evaluate;
use caltrain_nn::{zoo, Hyper, KernelMode, Network};

fn build_net(layers: usize, scale: usize, seed: u64) -> Network {
    match layers {
        18 => zoo::cifar10_18layer_scaled(scale, seed).expect("fixed architecture"),
        _ => zoo::cifar10_10layer_scaled(scale, seed).expect("fixed architecture"),
    }
}

fn main() {
    let args = Args::parse();
    let layers: usize = args.get("layers", 10);
    let epochs: usize = args.get("epochs", 12);
    let paper = args.flag("paper");
    let scale: usize = if paper { 1 } else { args.get("scale", 16) };
    let n_train: usize = if paper { 50_000 } else { args.get("train", 600) };
    let n_test: usize = if paper { 10_000 } else { args.get("test", 200) };
    let participants: usize = args.get("participants", 4);
    let seed: u64 = args.get("seed", 20190624);

    println!(
        "Experiment I — Fig. {}: {layers}-layer CIFAR net, scale 1/{scale}, \
         {n_train} train / {n_test} test, {participants} participants, {epochs} epochs",
        if layers == 18 { 4 } else { 3 }
    );

    let (train, test) = synthcifar::generate(n_train, n_test, seed);
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 };
    let augment = AugmentConfig { max_rotation: 0.05, ..AugmentConfig::default() };

    // The paper loads "the first two layers in an SGX enclave" for both
    // nets in Experiment I.
    let run = |cut: usize, label: &str| -> Vec<(f32, f32)> {
        let config = PipelineConfig {
            partition: Partition { cut },
            hyper,
            batch_size: 32,
            augment: Some(augment),
            heap_bytes: 1 << 22,
            snapshots: false,
            ..PipelineConfig::default()
        };
        let mut sys = CalTrain::new(build_net(layers, scale, seed), config, b"exp1")
            .expect("pipeline boot");
        sys.enroll_and_ingest(&train, participants, seed).expect("ingest");
        let mut curve = Vec::with_capacity(epochs);
        for epoch in 1..=epochs {
            let out = sys.train(1).expect("epoch");
            let acc = evaluate(sys.network_mut(), test.images(), test.labels(), 64, KernelMode::Native)
                .expect("evaluation");
            println!(
                "  [{label}] epoch {epoch:>2}: loss {:.4}  top1 {}  top2 {}",
                out.epoch_losses[0],
                pct(acc.top1),
                pct(acc.top2)
            );
            curve.push((acc.top1, acc.top2));
        }
        curve
    };

    println!("\n== non-protected environment (cut = 0) ==");
    let baseline = run(0, "plain ");
    println!("\n== CalTrain, first two layers in-enclave (cut = 2) ==");
    let enclave = run(2, "caltr ");

    rule(72);
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>14}",
        "epoch",
        format!("cifar_{layers}L_top1"),
        "top2",
        "enclave_top1",
        "enclave_top2"
    );
    rule(72);
    let mut identical = true;
    for (e, (b, c)) in baseline.iter().zip(&enclave).enumerate() {
        println!(
            "{:<6} {:>12} {:>12} {:>14} {:>14}",
            e + 1,
            pct(b.0),
            pct(b.1),
            pct(c.0),
            pct(c.1)
        );
        if b.0.to_bits() != c.0.to_bits() || b.1.to_bits() != c.1.to_bits() {
            identical = false;
        }
    }
    rule(72);
    println!(
        "curves bit-identical: {} (paper: \"same prediction accuracy … compared \
         to models trained in non-protected environments\")",
        identical
    );
    if !identical {
        std::process::exit(1);
    }
}
