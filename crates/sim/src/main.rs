//! Scenario-harness CLI.
//!
//! ```text
//! cargo run -p caltrain-sim -- --list
//! cargo run -p caltrain-sim -- --all --seeds 1,2,3
//! cargo run -p caltrain-sim -- --scenario hub-crash-restart --seed 7
//! cargo run -p caltrain-sim -- --all --smoke
//! cargo run -p caltrain-sim -- --campaign --seeds 1,2 --steps 10
//! cargo run -p caltrain-sim -- --replay-plan target/campaign-min-seed1.plan
//! ```
//!
//! Every run prints one stable summary line per `(scenario, seed)` or
//! per campaign; `ci.sh` diffs these lines across `CALTRAIN_WORKERS`
//! settings to enforce worker-count invariance. On any invariant
//! violation the failing seed and an exact replay command are printed
//! and the process exits non-zero.
//!
//! `--campaign` runs a seeded random walk over the whole fault alphabet
//! (hub submissions, channel ops, EPC pressure, clock skew). When a
//! walk trips an invariant, the plan is delta-debugged down to a
//! minimal reproducer, written next to the build artifacts, and the
//! `--replay-plan` command that re-executes it bitwise is printed.
//! `--demo-violation` arms a deliberately weakened invariant (a test
//! hook) so the full find→shrink→replay loop can be exercised on
//! demand.

use caltrain_runtime::Parallelism;
use caltrain_sim::campaign::{run_campaign, shrink_campaign, CampaignConfig};
use caltrain_sim::plan::{CampaignPlan, WalkProfile};
use caltrain_sim::{find, run_scenario, scenarios};

/// Default seed corpus (`--seeds` overrides; `--smoke` shrinks to the
/// first seed).
const DEFAULT_SEEDS: &[u64] = &[1, 2, 3];

/// Default campaign walk length in rounds (`--steps` overrides).
const DEFAULT_STEPS: usize = 12;

/// Hubs in the campaign world.
const CAMPAIGN_HUBS: usize = 2;

struct Args {
    list: bool,
    all: bool,
    smoke: bool,
    campaign: bool,
    demo_violation: bool,
    scenario: Option<String>,
    replay_plan: Option<String>,
    steps: usize,
    seeds: Vec<u64>,
    workers: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: caltrain-sim [--list] [--all | --scenario NAME | --campaign | --replay-plan FILE] \
         [--seed N | --seeds A,B,C] [--steps N] [--smoke] [--workers N] [--demo-violation]"
    );
    std::process::exit(2)
}

fn parse(mut argv: std::env::Args) -> Args {
    let _ = argv.next(); // program name
    let mut args = Args {
        list: false,
        all: false,
        smoke: false,
        campaign: false,
        demo_violation: false,
        scenario: None,
        replay_plan: None,
        steps: DEFAULT_STEPS,
        seeds: Vec::new(),
        workers: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--list" => args.list = true,
            "--all" => args.all = true,
            "--smoke" => args.smoke = true,
            "--campaign" => args.campaign = true,
            "--demo-violation" => args.demo_violation = true,
            "--scenario" => {
                args.scenario = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--replay-plan" => {
                args.replay_plan = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--steps" => {
                let v = argv.next().unwrap_or_else(|| usage());
                args.steps = v.parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                let v = argv.next().unwrap_or_else(|| usage());
                args.seeds.push(v.parse().unwrap_or_else(|_| usage()));
            }
            "--seeds" => {
                let v = argv.next().unwrap_or_else(|| usage());
                for part in v.split(',') {
                    args.seeds.push(part.trim().parse().unwrap_or_else(|_| usage()));
                }
            }
            "--workers" => {
                let v = argv.next().unwrap_or_else(|| usage());
                args.workers = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    args
}

fn print_catalog() {
    for family in scenarios::all() {
        eprintln!("  {:<22} {}", family.name, family.about);
    }
}

/// Runs campaigns over `seeds`; on a violation, shrinks to a minimal
/// reproducer, writes it to disk and prints the exact replay command.
fn run_campaigns(args: &Args, seeds: &[u64], parallelism: Parallelism) -> usize {
    let config = CampaignConfig { demo_violation: args.demo_violation };
    let mut failures = 0usize;
    for &seed in seeds {
        let plan = CampaignPlan::generate(seed, args.steps, CAMPAIGN_HUBS, WalkProfile::Mixed);
        let run = run_campaign(&plan, &config, parallelism);
        println!("{}", run.summary_line());
        let Some(violation) = run.violation else { continue };
        failures += 1;
        eprintln!("campaign seed {seed}: shrinking {} ops...", plan.ops.len());
        let outcome = shrink_campaign(&plan, &violation, &config, parallelism);
        eprintln!(
            "shrunk to {} op(s) in {} execution(s) (removed {}, weakened {}):",
            outcome.plan.ops.len(),
            outcome.executions,
            outcome.removed,
            outcome.weakened
        );
        for op in &outcome.plan.ops {
            eprintln!("  round {}: {}", op.round, op.op.describe());
        }
        let path = format!("target/campaign-min-seed{seed}.plan");
        if let Err(e) = std::fs::create_dir_all("target")
            .and_then(|()| std::fs::write(&path, outcome.plan.render()))
        {
            eprintln!("could not write {path}: {e}");
            continue;
        }
        // Re-run the minimal plan once so the printed line is the exact
        // identity a replay must reproduce.
        let minimal = run_campaign(&outcome.plan, &config, parallelism);
        println!("{}", minimal.summary_line());
        let demo = if args.demo_violation { " --demo-violation" } else { "" };
        eprintln!("minimal plan written to {path}");
        eprintln!("  replay: cargo run -p caltrain-sim -- --replay-plan {path}{demo}");
    }
    failures
}

/// Re-executes a plan file written by a previous campaign run.
fn run_replay(args: &Args, path: &str, parallelism: Parallelism) -> usize {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read plan {path}: {e}");
        std::process::exit(2)
    });
    let plan = CampaignPlan::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse plan {path}: {e}");
        std::process::exit(2)
    });
    let config = CampaignConfig { demo_violation: args.demo_violation };
    let run = run_campaign(&plan, &config, parallelism);
    println!("{}", run.summary_line());
    usize::from(run.violation.is_some())
}

fn main() {
    let args = parse(std::env::args());
    if args.list {
        for family in scenarios::all() {
            println!("{:<22} {}", family.name, family.about);
        }
        return;
    }

    let mut seeds = if args.seeds.is_empty() { DEFAULT_SEEDS.to_vec() } else { args.seeds.clone() };
    if args.smoke {
        seeds.truncate(1);
    }
    let parallelism = match args.workers {
        Some(0) | None => Parallelism::default(), // honours CALTRAIN_WORKERS
        Some(n) => Parallelism::new(n),
    };

    if let Some(path) = &args.replay_plan {
        let failures = run_replay(&args, path, parallelism);
        if failures > 0 {
            eprintln!("replayed plan violated an invariant");
            std::process::exit(1);
        }
        return;
    }
    if args.campaign {
        let failures = run_campaigns(&args, &seeds, parallelism);
        if failures > 0 {
            eprintln!("{failures} campaign(s) violated an invariant");
            std::process::exit(1);
        }
        return;
    }

    let names: Vec<&str> = match (&args.scenario, args.all) {
        (Some(name), _) => {
            // An unknown family is a usage error, not a run failure:
            // exit 2 and show what exists.
            if find(name).is_none() {
                eprintln!("unknown scenario '{name}'; available families:");
                print_catalog();
                std::process::exit(2);
            }
            vec![name.as_str()]
        }
        // Bare invocation defaults to the full corpus.
        (None, _) => scenarios::all().iter().map(|f| f.name).collect(),
    };

    let mut failures = 0usize;
    for name in &names {
        for &seed in &seeds {
            match run_scenario(name, seed, parallelism) {
                Ok(report) => println!("{}", report.summary_line()),
                Err(err) => {
                    failures += 1;
                    eprintln!("FAIL {name} seed={seed}");
                    eprintln!("{err}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario run(s) failed");
        std::process::exit(1);
    }
}
