//! Scenario-harness CLI.
//!
//! ```text
//! cargo run -p caltrain-sim -- --list
//! cargo run -p caltrain-sim -- --all --seeds 1,2,3
//! cargo run -p caltrain-sim -- --scenario hub-crash-restart --seed 7
//! cargo run -p caltrain-sim -- --all --smoke
//! ```
//!
//! Every run prints one stable summary line per `(scenario, seed)`;
//! `ci.sh` diffs these lines across `CALTRAIN_WORKERS` settings to
//! enforce worker-count invariance. On any invariant violation the
//! failing seed and an exact replay command are printed and the process
//! exits non-zero.

use caltrain_runtime::Parallelism;
use caltrain_sim::{run_scenario, scenarios};

/// Default seed corpus (`--seeds` overrides; `--smoke` shrinks to the
/// first seed).
const DEFAULT_SEEDS: &[u64] = &[1, 2, 3];

struct Args {
    list: bool,
    all: bool,
    smoke: bool,
    scenario: Option<String>,
    seeds: Vec<u64>,
    workers: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: caltrain-sim [--list] [--all | --scenario NAME] [--seed N | --seeds A,B,C] \
         [--smoke] [--workers N]"
    );
    std::process::exit(2)
}

fn parse(mut argv: std::env::Args) -> Args {
    let _ = argv.next(); // program name
    let mut args = Args {
        list: false,
        all: false,
        smoke: false,
        scenario: None,
        seeds: Vec::new(),
        workers: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--list" => args.list = true,
            "--all" => args.all = true,
            "--smoke" => args.smoke = true,
            "--scenario" => {
                args.scenario = Some(argv.next().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                let v = argv.next().unwrap_or_else(|| usage());
                args.seeds.push(v.parse().unwrap_or_else(|_| usage()));
            }
            "--seeds" => {
                let v = argv.next().unwrap_or_else(|| usage());
                for part in v.split(',') {
                    args.seeds.push(part.trim().parse().unwrap_or_else(|_| usage()));
                }
            }
            "--workers" => {
                let v = argv.next().unwrap_or_else(|| usage());
                args.workers = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse(std::env::args());
    if args.list {
        for family in scenarios::all() {
            println!("{:<22} {}", family.name, family.about);
        }
        return;
    }

    let names: Vec<&str> = match (&args.scenario, args.all) {
        (Some(name), _) => vec![name.as_str()],
        // Bare invocation defaults to the full corpus.
        (None, _) => scenarios::all().iter().map(|f| f.name).collect(),
    };
    let mut seeds = if args.seeds.is_empty() { DEFAULT_SEEDS.to_vec() } else { args.seeds.clone() };
    if args.smoke {
        seeds.truncate(1);
    }
    let parallelism = match args.workers {
        Some(0) | None => Parallelism::default(), // honours CALTRAIN_WORKERS
        Some(n) => Parallelism::new(n),
    };

    let mut failures = 0usize;
    for name in &names {
        for &seed in &seeds {
            match run_scenario(name, seed, parallelism) {
                Ok(report) => println!("{}", report.summary_line()),
                Err(err) => {
                    failures += 1;
                    eprintln!("FAIL {name} seed={seed}");
                    eprintln!("{err}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario run(s) failed");
        std::process::exit(1);
    }
}
