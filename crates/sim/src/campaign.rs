//! The campaign engine: executes a [`CampaignPlan`] against the real
//! pipeline with the full invariant set checked every round.
//!
//! Each round of a campaign drives both legs of the system under the
//! plan's faults for that round:
//!
//! - an **ingest leg** (on rounds with channel ops, plus round 0):
//!   participants re-seal their shards, the planned channel ops mutate
//!   the stream (each op seeded by its own salt), and the server's
//!   [`caltrain_core::server::IngestStats`] must match the channel's
//!   ground truth with a consistent cycle ledger;
//! - a **training leg**: one federated round through a transport that
//!   replays the plan's hub submissions and, via the
//!   [`RoundTransport::before_round`] seam, applies the round's
//!   environment faults (EPC shrinks, clock skews) from the sequential
//!   control path — worker-count invariant by construction. After every
//!   round: hub convergence, ledger consistency and simulated-time
//!   consistency.
//!
//! At campaign end the ingested pool's fingerprint db is checked for
//! completeness and the final weights for finiteness. A campaign run is
//! seed-deterministic bit for bit, so a violating plan can be shrunk
//! (see [`crate::shrink`]) by re-executing candidates.

use std::collections::{BTreeMap, BTreeSet};

use caltrain_core::accountability::FingerprintingStage;
use caltrain_core::hubs::{HubSubmission, RoundTransport};
use caltrain_crypto::sha256::Digest;
use caltrain_enclave::Platform;
use caltrain_nn::zoo;
use caltrain_runtime::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::FaultyChannel;
use crate::invariants;
use crate::plan::{CampaignPlan, ChannelOpKind, FaultOp};
use crate::shrink::{shrink_plan, ShrinkOutcome};
use crate::trace::{bits32, bits64};
use crate::world;
use crate::Ctx;

/// Training instances in the campaign hub world.
const TRAIN_INSTANCES: usize = 16;
/// Participants feeding the ingest leg.
const PARTICIPANTS: usize = 2;
/// Instances across all participant shards.
const INGEST_INSTANCES: usize = 8;
/// Sealed-batch size for per-round uploads (small, so channel ops have
/// several batches to pick from).
const UPLOAD_BATCH: usize = 2;

/// Campaign execution knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignConfig {
    /// Test-only hook (CLI `--demo-violation`): injects a deliberately
    /// weakened invariant that trips whenever a byzantine (`Scaled`) hub
    /// submission happens while any EPC-pressure op has been applied —
    /// a known-detectable violation for exercising the shrinker and the
    /// replay workflow end to end.
    pub demo_violation: bool,
}

/// Per-round observations the scenario families assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Final global weights.
    pub final_params: Vec<Vec<f32>>,
    /// `[round][hub]` simulated cycles for the round's local training.
    pub hub_cycles: Vec<Vec<u64>>,
    /// `[round][hub]` simulated seconds, as exact `f64` bits.
    pub hub_seconds_bits: Vec<Vec<u64>>,
    /// Per-hub cumulative EPC evictions at campaign end.
    pub hub_evictions: Vec<u64>,
}

/// The reproducibility identity of one campaign run (violating or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// The plan's seed.
    pub seed: u64,
    /// Rounds the plan schedules.
    pub rounds: usize,
    /// Ops in the plan.
    pub ops: usize,
    /// Digest of the (possibly partial, on violation) event trace.
    pub trace_digest: Digest,
    /// Final-weights digest, when the campaign completed.
    pub weights_digest: Option<Digest>,
    /// Trace events recorded.
    pub events: usize,
    /// Invariant checks passed.
    pub checks: usize,
    /// The violation message, if any invariant failed.
    pub violation: Option<String>,
}

impl CampaignRun {
    /// One stable, diff-friendly summary line (`ci.sh` diffs these
    /// across worker counts, like scenario lines).
    pub fn summary_line(&self) -> String {
        match &self.violation {
            None => {
                let weights = self
                    .weights_digest
                    .as_ref()
                    .map_or_else(|| "-".to_string(), |d| d.to_hex()[..16].to_string());
                format!(
                    "ok   {:<22} seed={:<4} trace={} weights={} checks={} events={} rounds={} ops={}",
                    "campaign",
                    self.seed,
                    &self.trace_digest.to_hex()[..16],
                    weights,
                    self.checks,
                    self.events,
                    self.rounds,
                    self.ops
                )
            }
            Some(violation) => format!(
                "FAIL campaign seed={} trace={} rounds={} ops={}: {}",
                self.seed,
                &self.trace_digest.to_hex()[..16],
                self.rounds,
                self.ops,
                violation
            ),
        }
    }
}

/// Replays a plan's hub submissions and environment faults. Submissions
/// come from the sequential aggregation fold; environment ops land in
/// [`RoundTransport::before_round`] on the sequential control path —
/// both worker-count invariant by construction.
struct CampaignTransport {
    submissions: BTreeMap<(usize, usize), HubSubmission>,
    env: BTreeMap<usize, Vec<FaultOp>>,
    /// Pristine clock rates in hub order; skew factors are absolute
    /// multiples of these, so re-applying or weakening a skew is
    /// monotone and idempotent.
    base_hz: Vec<f64>,
    log: Vec<String>,
}

impl CampaignTransport {
    fn new(plan: &CampaignPlan, base_hz: Vec<f64>) -> Self {
        let mut submissions = BTreeMap::new();
        let mut env: BTreeMap<usize, Vec<FaultOp>> = BTreeMap::new();
        for planned in &plan.ops {
            match &planned.op {
                FaultOp::Hub { hub, submission } => {
                    submissions.insert((planned.round, *hub), *submission);
                }
                FaultOp::EpcShrink { .. } | FaultOp::ClockSkew { .. } => {
                    env.entry(planned.round).or_default().push(planned.op.clone());
                }
                FaultOp::Channel { .. } => {}
            }
        }
        CampaignTransport { submissions, env, base_hz, log: Vec::new() }
    }

    fn drain_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.log)
    }
}

impl RoundTransport for CampaignTransport {
    fn submission(&mut self, round: usize, hub: usize) -> HubSubmission {
        self.submissions.get(&(round, hub)).copied().unwrap_or(HubSubmission::Trained)
    }

    fn before_round(&mut self, round: usize, platforms: &[&Platform]) {
        let Some(ops) = self.env.get(&round) else { return };
        for op in ops {
            match *op {
                FaultOp::EpcShrink { hub, pages } => {
                    let outcome = platforms[hub].set_epc_capacity_pages(pages);
                    self.log.push(format!(
                        "env round {round}: epc hub {hub} capacity {pages} pages evicted {}",
                        outcome.pages_evicted
                    ));
                }
                FaultOp::ClockSkew { hub, factor_bits } => {
                    let factor = f64::from_bits(factor_bits);
                    let hz = self.base_hz[hub] * factor;
                    platforms[hub].set_clock_hz(hz);
                    self.log.push(format!(
                        "env round {round}: clock hub {hub} factor {} hz {}",
                        bits64(factor),
                        bits64(hz)
                    ));
                }
                FaultOp::Hub { .. } | FaultOp::Channel { .. } => unreachable!("env ops only"),
            }
        }
    }
}

/// Executes `plan` inside an existing scenario context, returning the
/// per-round observations. Used by the campaign CLI (via
/// [`run_campaign`]) and directly by the `epc-pressure` / `clock-skew` /
/// `soak` scenario families.
///
/// # Errors
///
/// The first invariant violation (or pipeline failure), replay-tagged by
/// the caller.
pub fn run_with_ctx(
    ctx: &mut Ctx,
    plan: &CampaignPlan,
    config: &CampaignConfig,
) -> Result<CampaignStats, String> {
    plan.validate()?;
    ctx.note(format!(
        "campaign seed {} rounds {} hubs {} ops {}",
        plan.seed,
        plan.rounds,
        plan.hubs,
        plan.ops.len()
    ));
    let mut cluster = world::hub_world(plan.seed, plan.hubs, TRAIN_INSTANCES, ctx.parallelism);
    let (mut server, mut people) =
        world::ingest_world(plan.seed ^ 0x1A6E57, PARTICIPANTS, INGEST_INSTANCES, ctx.parallelism);
    let base_hz: Vec<f64> = (0..plan.hubs)
        .map(|h| cluster.hub_platform(h).expect("hub in range").clock_hz())
        .collect();
    let mut transport = CampaignTransport::new(plan, base_hz);

    // Ingest runs on rounds the plan actually attacks the channel (plus
    // a round-0 baseline), keeping long soaks cheap while every channel
    // fault is still exercised against the live server.
    let ingest_rounds: BTreeSet<usize> = plan
        .ops
        .iter()
        .filter(|p| matches!(p.op, FaultOp::Channel { .. }))
        .map(|p| p.round)
        .chain(std::iter::once(0))
        .collect();

    let mut stats = CampaignStats {
        final_params: Vec::new(),
        hub_cycles: Vec::new(),
        hub_seconds_bits: Vec::new(),
        hub_evictions: Vec::new(),
    };
    let mut epc_pressured = false;

    for round in 0..plan.rounds {
        for planned in plan.ops_in_round(round) {
            ctx.note(format!("plan round {round}: {}", planned.op.describe()));
        }
        if config.demo_violation {
            epc_pressured |= plan
                .ops_in_round(round)
                .any(|p| matches!(p.op, FaultOp::EpcShrink { .. }));
            let byzantine = plan.ops_in_round(round).any(|p| {
                matches!(p.op, FaultOp::Hub { submission: HubSubmission::Scaled(_), .. })
            });
            if epc_pressured && byzantine {
                return Err(format!(
                    "demo-violation: byzantine submission under EPC pressure (round {round})"
                ));
            }
        }

        if ingest_rounds.contains(&round) {
            let uploads: Vec<_> = people.iter_mut().map(|p| p.seal_upload(UPLOAD_BATCH)).collect();
            let mut chan = FaultyChannel::new(uploads);
            for planned in plan.ops_in_round(round) {
                let FaultOp::Channel { kind, salt } = planned.op else { continue };
                let mut rng = StdRng::seed_from_u64(salt);
                let line = match kind {
                    ChannelOpKind::Drop => chan.drop_one(&mut rng),
                    ChannelOpKind::Duplicate => chan.duplicate_one(&mut rng),
                    ChannelOpKind::Reorder => Some(chan.reorder(&mut rng)),
                    ChannelOpKind::Corrupt => chan.corrupt_one(&mut rng),
                    ChannelOpKind::CorruptLabels => chan.corrupt_labels(&mut rng),
                    ChannelOpKind::ReplayUpload => chan.replay_upload(&mut rng),
                };
                // The walk may drain the channel; a later op finding no
                // target is a deterministic no-op, not a failure.
                ctx.note(match line {
                    Some(line) => format!("round {round} {line}"),
                    None => format!("round {round} channel {} no-op", planned.op.describe()),
                });
            }
            let expected = chan.expected();
            let ingest = server.ingest_from(&mut chan);
            ctx.note(format!(
                "round {round} ingest accepted={} discarded={} duplicates={} instances={}",
                ingest.accepted, ingest.discarded, ingest.duplicates, ingest.instances
            ));
            ctx.check_with(
                "ingest stats match channel ground truth",
                invariants::stats_match(ingest, expected),
            )?;
            ctx.check_with(
                "server cycle ledger consistent",
                invariants::ledger_consistent(server.platform()),
            )?;
        }

        let out = cluster
            .train_round_via(1, &mut transport)
            .map_err(|e| format!("round {round} failed: {e:?}"))?;
        for line in transport.drain_log() {
            ctx.note(line);
        }
        let losses: Vec<String> = out.hub_losses.iter().map(|v| bits32(*v)).collect();
        ctx.note(format!(
            "round {round} losses=[{}] time={} crashed={:?}",
            losses.join(","),
            bits32(out.round_time.seconds as f32),
            out.crashed
        ));
        ctx.check_with("hubs converged after aggregation", invariants::hubs_converged(&cluster))?;
        ctx.check_with(
            "hub cycle ledgers consistent",
            invariants::hub_ledgers_consistent(&cluster),
        )?;
        ctx.check_with(
            "hub simulated time consistent",
            invariants::hubs_time_consistent(&cluster),
        )?;
        let mut cycles_row = Vec::with_capacity(plan.hubs);
        let mut seconds_row = Vec::with_capacity(plan.hubs);
        for h in 0..plan.hubs {
            let platform = cluster.hub_platform(h).expect("hub in range");
            cycles_row.push(platform.cycles());
            seconds_row.push(platform.elapsed().seconds.to_bits());
        }
        stats.hub_cycles.push(cycles_row);
        stats.hub_seconds_bits.push(seconds_row);
    }

    // Campaign epilogue: accountability evidence over everything the
    // faulted channel let through, and a finite, digested final model.
    let pool = server.pool().map_err(|e| format!("pool unavailable: {e:?}"))?;
    let mut net = zoo::cifar10_10layer_scaled(32, plan.seed).map_err(|e| format!("{e:?}"))?;
    let stage =
        FingerprintingStage::launch(server.platform(), (net.param_count() * 4).max(1 << 20))
            .map_err(|e| format!("stage launch: {e:?}"))?;
    let db = stage.build_db(&mut net, pool, 16).map_err(|e| format!("build_db: {e:?}"))?;
    ctx.check_with(
        "fingerprint db complete over the ingested pool",
        invariants::fingerprint_complete(&db, pool),
    )?;
    ctx.check_with(
        "server cycle ledger consistent after fingerprinting",
        invariants::ledger_consistent(server.platform()),
    )?;

    let params = cluster.global_model().export_params();
    ctx.check_with("global weights all finite", invariants::weights_finite(&params))?;
    ctx.set_weights(&params);
    stats.final_params = params;
    stats.hub_evictions = (0..plan.hubs)
        .map(|h| cluster.hub_platform(h).expect("hub in range").epc_stats().pages_evicted)
        .collect();
    ctx.note(format!(
        "campaign end evictions={:?} pool={}",
        stats.hub_evictions,
        pool.len()
    ));
    Ok(stats)
}

/// Runs one full campaign standalone (own context, panics contained),
/// like [`crate::run_scenario`] does for catalog families. Never panics:
/// violations and escaped panics land in [`CampaignRun::violation`].
pub fn run_campaign(
    plan: &CampaignPlan,
    config: &CampaignConfig,
    parallelism: Parallelism,
) -> CampaignRun {
    let mut ctx = Ctx::new(plan.seed, parallelism);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_with_ctx(&mut ctx, plan, config)
    }))
    .unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| panic.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        Err(format!("panicked: {msg}"))
    });
    CampaignRun {
        seed: plan.seed,
        rounds: plan.rounds,
        ops: plan.ops.len(),
        trace_digest: ctx.trace.digest(),
        weights_digest: ctx.weights_digest.clone(),
        events: ctx.trace.len(),
        checks: ctx.checks,
        violation: outcome.err(),
    }
}

/// Shrinks a violating plan by re-executing candidates through
/// [`run_campaign`] under the same config and parallelism; a candidate
/// reproduces iff it yields the exact same violation message.
pub fn shrink_campaign(
    plan: &CampaignPlan,
    violation: &str,
    config: &CampaignConfig,
    parallelism: Parallelism,
) -> ShrinkOutcome {
    shrink_plan(plan, violation, &mut |candidate| {
        run_campaign(candidate, config, parallelism).violation
    })
}
