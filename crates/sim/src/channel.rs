//! A fault-injecting delivery channel for sealed uploads.
//!
//! [`FaultyChannel`] sits between participants and
//! [`caltrain_core::server::TrainingServer::ingest_from`], modelling a
//! network adversary (or a lossy network): it can drop, duplicate,
//! reorder and corrupt sealed batches in transit. Every mutation is
//! driven by the caller's seeded RNG and returns a human-readable
//! description for the event trace, so a fault plan is fully determined
//! by its seed.
//!
//! The channel also tracks ground truth: which delivered batches are
//! corrupted and which `(source, nonce)` pairs are replays. From that it
//! predicts exactly what an honest server must report — the oracle the
//! scenarios compare [`caltrain_core::server::IngestStats`] against.

use caltrain_core::server::BatchSource;
use caltrain_crypto::tamper;
use caltrain_data::sealed::SealedBatch;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

#[derive(Debug, Clone)]
struct Tracked {
    batch: SealedBatch,
    corrupted: bool,
}

/// What an honest [`caltrain_core::server::TrainingServer`] must report
/// after draining the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Expected {
    /// Batches that authenticate and are fresh.
    pub accepted: usize,
    /// Authenticated replays of already-accepted batches.
    pub duplicates: usize,
    /// Corrupted batches (authentication must fail).
    pub corrupted: usize,
}

/// A sealed-upload stream with injectable transit faults.
#[derive(Debug, Clone, Default)]
pub struct FaultyChannel {
    uploads: Vec<Vec<Tracked>>,
    cursor: usize,
}

impl FaultyChannel {
    /// Wraps uploads for delivery in the given order.
    pub fn new(uploads: Vec<Vec<SealedBatch>>) -> Self {
        FaultyChannel {
            uploads: uploads
                .into_iter()
                .map(|u| u.into_iter().map(|batch| Tracked { batch, corrupted: false }).collect())
                .collect(),
            cursor: 0,
        }
    }

    /// Appends one more upload at the end of the stream (delivered after
    /// everything already queued) — untouched by faults applied before
    /// this call.
    pub fn push_upload(&mut self, upload: Vec<SealedBatch>) {
        self.uploads
            .push(upload.into_iter().map(|batch| Tracked { batch, corrupted: false }).collect());
    }

    /// Total batches currently queued.
    pub fn batches(&self) -> usize {
        self.uploads.iter().map(Vec::len).sum()
    }

    fn pick_batch(&self, rng: &mut StdRng) -> Option<(usize, usize)> {
        let total = self.batches();
        if total == 0 {
            return None;
        }
        let mut flat = rng.gen_range(0..total);
        for (u, upload) in self.uploads.iter().enumerate() {
            if flat < upload.len() {
                return Some((u, flat));
            }
            flat -= upload.len();
        }
        unreachable!("flat index bounded by total")
    }

    /// Drops one random batch in transit. Returns a trace line.
    pub fn drop_one(&mut self, rng: &mut StdRng) -> Option<String> {
        let (u, b) = self.pick_batch(rng)?;
        self.uploads[u].remove(b);
        Some(format!("channel drop upload={u} batch={b}"))
    }

    /// Duplicates one random batch, re-inserting the copy at a random
    /// later position in the same upload (an in-flight replay).
    pub fn duplicate_one(&mut self, rng: &mut StdRng) -> Option<String> {
        let (u, b) = self.pick_batch(rng)?;
        let copy = self.uploads[u][b].clone();
        let at = rng.gen_range(b + 1..=self.uploads[u].len());
        self.uploads[u].insert(at, copy);
        Some(format!("channel duplicate upload={u} batch={b} at={at}"))
    }

    /// Replays one whole upload verbatim at the end of the stream.
    pub fn replay_upload(&mut self, rng: &mut StdRng) -> Option<String> {
        if self.uploads.is_empty() {
            return None;
        }
        let u = rng.gen_range(0..self.uploads.len());
        let copy = self.uploads[u].clone();
        self.uploads.push(copy);
        Some(format!("channel replay-upload upload={u}"))
    }

    /// Flips one random ciphertext bit of one random batch — GCM must
    /// reject it downstream.
    pub fn corrupt_one(&mut self, rng: &mut StdRng) -> Option<String> {
        let (u, b) = self.pick_batch(rng)?;
        let site = rng.gen::<u64>();
        let tracked = &mut self.uploads[u][b];
        let (byte, mask) = tamper::flip_bit(&mut tracked.batch.ciphertext, site)?;
        tracked.corrupted = true;
        Some(format!("channel corrupt upload={u} batch={b} byte={byte} mask={mask:#04x}"))
    }

    /// Flips one bit of one random batch's cleartext labels — labels
    /// ride as AAD, so authentication must also fail.
    pub fn corrupt_labels(&mut self, rng: &mut StdRng) -> Option<String> {
        let (u, b) = self.pick_batch(rng)?;
        let tracked = &mut self.uploads[u][b];
        if tracked.batch.labels.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..tracked.batch.labels.len());
        let bit = rng.gen_range(0..31u32);
        tracked.batch.labels[idx] ^= 1 << bit;
        tracked.corrupted = true;
        Some(format!("channel corrupt-labels upload={u} batch={b} label={idx} bit={bit}"))
    }

    /// Shuffles upload delivery order and the batch order inside each
    /// upload.
    pub fn reorder(&mut self, rng: &mut StdRng) -> String {
        self.uploads.shuffle(rng);
        for upload in &mut self.uploads {
            upload.shuffle(rng);
        }
        "channel reorder".to_string()
    }

    /// Ground truth for the stream as currently queued: simulates the
    /// server's accept/duplicate/reject bookkeeping over delivery order.
    pub fn expected(&self) -> Expected {
        let mut seen: HashSet<(u32, [u8; 12])> = HashSet::new();
        let mut expected = Expected::default();
        for upload in &self.uploads {
            for t in upload {
                if t.corrupted {
                    expected.corrupted += 1;
                } else if seen.insert((t.batch.source.0, t.batch.nonce)) {
                    expected.accepted += 1;
                } else {
                    expected.duplicates += 1;
                }
            }
        }
        expected
    }
}

impl BatchSource for FaultyChannel {
    fn next_upload(&mut self) -> Option<Vec<SealedBatch>> {
        let upload = self.uploads.get(self.cursor)?;
        self.cursor += 1;
        Some(upload.iter().map(|t| t.batch.clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caltrain_data::ParticipantId;
    use rand::SeedableRng;

    fn batch(source: u32, nonce_tag: u8) -> SealedBatch {
        SealedBatch {
            source: ParticipantId(source),
            labels: vec![1, 2],
            sample_dims: [1, 2, 2],
            nonce: [nonce_tag; 12],
            ciphertext: vec![nonce_tag; 24],
        }
    }

    #[test]
    fn expectations_mirror_server_bookkeeping() {
        let mut chan =
            FaultyChannel::new(vec![vec![batch(0, 1), batch(0, 2)], vec![batch(1, 3)]]);
        assert_eq!(chan.expected(), Expected { accepted: 3, duplicates: 0, corrupted: 0 });

        let mut rng = StdRng::seed_from_u64(9);
        chan.duplicate_one(&mut rng).unwrap();
        chan.replay_upload(&mut rng).unwrap();
        chan.corrupt_one(&mut rng).unwrap();
        let e = chan.expected();
        assert_eq!(e.accepted + e.duplicates + e.corrupted, chan.batches());
        assert!(e.duplicates >= 1, "duplicate + replay must register, got {e:?}");
        assert_eq!(e.corrupted, 1);
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let build = || FaultyChannel::new(vec![vec![batch(0, 1), batch(0, 2), batch(1, 3)]]);
        let script = |mut chan: FaultyChannel, seed: u64| -> (Vec<String>, Expected) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut log = Vec::new();
            log.push(chan.reorder(&mut rng));
            log.extend(chan.duplicate_one(&mut rng));
            log.extend(chan.corrupt_one(&mut rng));
            log.extend(chan.drop_one(&mut rng));
            (log, chan.expected())
        };
        assert_eq!(script(build(), 5), script(build(), 5));
        assert_ne!(
            script(build(), 5).0,
            script(build(), 6).0,
            "different seeds must (generally) pick different faults"
        );
    }

    #[test]
    fn ops_on_an_empty_channel_are_deterministic_no_ops() {
        let mut chan = FaultyChannel::new(Vec::new());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(chan.drop_one(&mut rng).is_none());
        assert!(chan.duplicate_one(&mut rng).is_none());
        assert!(chan.replay_upload(&mut rng).is_none());
        assert!(chan.corrupt_one(&mut rng).is_none());
        assert!(chan.corrupt_labels(&mut rng).is_none());
        assert_eq!(chan.reorder(&mut rng), "channel reorder");
        assert_eq!(chan.batches(), 0);
        assert_eq!(chan.expected(), Expected::default());
        assert!(chan.next_upload().is_none());

        // Uploads that exist but hold no batches: batch-targeting ops
        // still no-op; a whole-upload replay clones an empty upload,
        // which is harmless and leaves the ground truth untouched.
        let mut hollow = FaultyChannel::new(vec![Vec::new(), Vec::new()]);
        assert!(hollow.drop_one(&mut rng).is_none());
        assert!(hollow.duplicate_one(&mut rng).is_none());
        assert!(hollow.corrupt_one(&mut rng).is_none());
        assert!(hollow.replay_upload(&mut rng).is_some());
        assert_eq!(hollow.batches(), 0);
        assert_eq!(hollow.expected(), Expected::default());
    }

    #[test]
    fn drained_in_delivery_order() {
        let mut chan = FaultyChannel::new(vec![vec![batch(0, 1)], vec![batch(1, 2)]]);
        assert_eq!(chan.next_upload().unwrap()[0].source, ParticipantId(0));
        assert_eq!(chan.next_upload().unwrap()[0].source, ParticipantId(1));
        assert!(chan.next_upload().is_none());
    }
}
