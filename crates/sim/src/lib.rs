//! `caltrain-sim`: a deterministic fault-injection scenario harness for
//! the CalTrain reproduction.
//!
//! The paper's accountability story (DSN'19 §III–§V) is a claim about
//! *adversarial* conditions: crashed hubs, replayed or corrupted sealed
//! uploads, byzantine gradient submissions, rogue enclaves. This crate
//! drives the real pipeline — [`caltrain_core::hubs::HubCluster`] through
//! its [`caltrain_core::hubs::RoundTransport`] seam,
//! [`caltrain_core::server::TrainingServer`] through its
//! [`caltrain_core::server::BatchSource`] seam — under seeded fault plans
//! and asserts the paper's invariants after every injection:
//!
//! - **cycle-ledger consistency** — the simulated clock's category
//!   breakdown always reconciles with the headline counter;
//! - **fingerprint-db completeness** — every ingested instance has a
//!   linkage record Ω = [F, Y, S, H] that matches its label, source and
//!   byte hash;
//! - **worker-count invariance** — the surviving trajectory (event trace
//!   *and* final weights) is bitwise identical at any `CALTRAIN_WORKERS`;
//! - **accountability under faults** — linkage queries still rank the
//!   injected poisoner's records first.
//!
//! A scenario is `(seed, fault plan, invariant set)`; the fault plan is
//! derived entirely from the seed, so any failure replays from one
//! number:
//!
//! ```text
//! cargo run -p caltrain-sim -- --scenario hub-crash-restart --seed 7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod channel;
pub mod invariants;
pub mod plan;
pub mod scenarios;
pub mod shrink;
pub mod trace;
pub mod world;

use caltrain_crypto::sha256::Digest;
use caltrain_runtime::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;

use trace::Trace;

/// A scenario failure, tagged with everything needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Scenario family that failed.
    pub scenario: String,
    /// The seed that produced the failure.
    pub seed: u64,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario '{}' failed at seed {}: {}\n  replay: cargo run -p caltrain-sim -- \
             --scenario {} --seed {}",
            self.scenario, self.seed, self.message, self.scenario, self.seed
        )
    }
}

impl std::error::Error for SimError {}

/// The reproducibility identity of one completed scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario family name.
    pub name: &'static str,
    /// Seed the fault plan was derived from.
    pub seed: u64,
    /// Digest of the full event trace.
    pub trace_digest: Digest,
    /// Digest of the final global weights, when the scenario trains.
    pub weights_digest: Option<Digest>,
    /// Number of trace events recorded.
    pub events: usize,
    /// Number of invariant checks that passed.
    pub checks: usize,
}

impl ScenarioReport {
    /// One stable, diff-friendly summary line (used by the CLI; `ci.sh`
    /// diffs these lines across worker counts).
    pub fn summary_line(&self) -> String {
        let weights = self
            .weights_digest
            .as_ref()
            .map_or_else(|| "-".to_string(), |d| d.to_hex()[..16].to_string());
        format!(
            "ok   {:<22} seed={:<4} trace={} weights={} checks={} events={}",
            self.name,
            self.seed,
            &self.trace_digest.to_hex()[..16],
            weights,
            self.checks,
            self.events
        )
    }
}

/// Per-run context handed to a scenario body: the seed, the worker-pool
/// knob, the event trace and the invariant-check counter.
pub struct Ctx {
    /// Seed every fault decision must derive from.
    pub seed: u64,
    /// Worker-pool knob for the systems under test.
    pub parallelism: Parallelism,
    /// The event log.
    pub trace: Trace,
    checks: usize,
    weights_digest: Option<Digest>,
}

impl Ctx {
    fn new(seed: u64, parallelism: Parallelism) -> Self {
        Ctx { seed, parallelism, trace: Trace::new(), checks: 0, weights_digest: None }
    }

    /// A seeded RNG, domain-separated by `salt` so independent fault
    /// decisions never share a stream.
    pub fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Records one event line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.trace.record(line);
    }

    /// Asserts one invariant: records it in the trace on success,
    /// aborts the scenario with a replayable failure otherwise.
    pub fn check(&mut self, ok: bool, what: &str) -> Result<(), String> {
        if ok {
            self.checks += 1;
            self.trace.record(format!("invariant ok: {what}"));
            Ok(())
        } else {
            Err(format!("invariant violated: {what}"))
        }
    }

    /// Runs an invariant helper returning `Result<(), String>`, counting
    /// and tracing it like [`Ctx::check`].
    pub fn check_with(&mut self, what: &str, outcome: Result<(), String>) -> Result<(), String> {
        match outcome {
            Ok(()) => {
                self.checks += 1;
                self.trace.record(format!("invariant ok: {what}"));
                Ok(())
            }
            Err(detail) => Err(format!("invariant violated: {what}: {detail}")),
        }
    }

    /// Stamps the final weights identity for the report.
    pub fn set_weights(&mut self, params: &[Vec<f32>]) {
        self.weights_digest = Some(trace::bits_digest(params));
        self.trace
            .record(format!("final-weights {}", self.weights_digest.as_ref().unwrap().to_hex()));
    }
}

/// One scenario body.
pub type ScenarioFn = fn(&mut Ctx) -> Result<(), String>;

/// A named scenario family: one fault pattern plus the invariants it
/// must uphold, parameterised entirely by the seed.
pub struct ScenarioFamily {
    /// Stable CLI name.
    pub name: &'static str,
    /// One-line description (shown by `--list` and SCENARIOS.md).
    pub about: &'static str,
    /// The scenario body.
    pub run: ScenarioFn,
}

/// Looks up a scenario family by name.
pub fn find(name: &str) -> Option<&'static ScenarioFamily> {
    scenarios::all().iter().find(|f| f.name == name)
}

/// Runs one `(scenario, seed)` pair under `parallelism`.
///
/// # Errors
///
/// Returns a replay-tagged [`SimError`] on unknown names, invariant
/// violations, or panics escaping the systems under test.
pub fn run_scenario(
    name: &str,
    seed: u64,
    parallelism: Parallelism,
) -> Result<ScenarioReport, SimError> {
    let family = find(name).ok_or_else(|| SimError {
        scenario: name.to_string(),
        seed,
        message: format!(
            "unknown scenario (available: {})",
            scenarios::all().iter().map(|f| f.name).collect::<Vec<_>>().join(", ")
        ),
    })?;
    let mut ctx = Ctx::new(seed, parallelism);
    // Deliberately no worker count here: the trace must be identical at
    // any parallelism, and recording the knob would fake a divergence.
    ctx.note(format!("scenario {} seed {}", family.name, seed));
    let body = family.run;
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx))).unwrap_or_else(
            |panic| {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                Err(format!("panicked: {msg}"))
            },
        );
    match outcome {
        Ok(()) => Ok(ScenarioReport {
            name: family.name,
            seed,
            trace_digest: ctx.trace.digest(),
            weights_digest: ctx.weights_digest,
            events: ctx.trace.len(),
            checks: ctx.checks,
        }),
        Err(message) => Err(SimError { scenario: family.name.to_string(), seed, message }),
    }
}

/// Runs a scenario at two worker counts plus a repeat run and demands a
/// bitwise-identical trace and weights digest — the harness's own
/// worker-count-invariance invariant, used by the crate's tests.
///
/// # Errors
///
/// Propagates scenario failures; reports divergence as a [`SimError`].
pub fn run_invariant_checked(name: &str, seed: u64) -> Result<ScenarioReport, SimError> {
    let sequential = run_scenario(name, seed, Parallelism::sequential())?;
    let repeat = run_scenario(name, seed, Parallelism::sequential())?;
    let parallel = run_scenario(name, seed, Parallelism::new(4))?;
    if sequential != repeat {
        return Err(SimError {
            scenario: name.to_string(),
            seed,
            message: "repeat run diverged: the scenario is not seed-deterministic".into(),
        });
    }
    if sequential != parallel {
        return Err(SimError {
            scenario: name.to_string(),
            seed,
            message: format!(
                "worker-count variance: sequential trace {} weights {:?} vs 4-worker trace {} \
                 weights {:?}",
                sequential.trace_digest.to_hex(),
                sequential.weights_digest.as_ref().map(Digest::to_hex),
                parallel.trace_digest.to_hex(),
                parallel.weights_digest.as_ref().map(Digest::to_hex),
            ),
        });
    }
    Ok(sequential)
}
