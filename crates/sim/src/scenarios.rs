//! The scenario corpus: named fault-injection families, each a pure
//! function of the run seed.
//!
//! Every family follows the same shape: build a world from the seed,
//! derive a fault plan from the seed, drive the real pipeline through
//! its injection seams, and assert the paper's invariants after each
//! step. Failures abort with a replayable message; successes leave a
//! deterministic event trace.

use caltrain_attack::{build_poisoned_set, TrojanTrigger};
use caltrain_core::accountability::{FingerprintingStage, QueryService};
use caltrain_core::hubs::{HubCluster, HubSubmission, PlannedTransport, RoundTransport};
use caltrain_core::partition::Partition;
use caltrain_core::server::TrainingServer;
use caltrain_data::{faces, ParticipantId};
use caltrain_enclave::{ChannelServer, EnclaveConfig, Platform};
use caltrain_nn::zoo;
use rand::Rng;

use caltrain_core::participant::Participant;

use crate::campaign::{self, CampaignConfig};
use crate::channel::FaultyChannel;
use crate::invariants;
use crate::plan::{CampaignPlan, WalkProfile};
use crate::trace::bits32;
use crate::world;
use crate::{Ctx, ScenarioFamily};

/// All scenario families, in stable registry order.
pub fn all() -> &'static [ScenarioFamily] {
    &[
        ScenarioFamily {
            name: "baseline-honest",
            about: "no faults: honest federated rounds; convergence + cycle-ledger invariants",
            run: baseline_honest,
        },
        ScenarioFamily {
            name: "hub-crash-restart",
            about: "one hub crashes mid-round and restarts from the merged global model",
            run: hub_crash_restart,
        },
        ScenarioFamily {
            name: "hub-crash-all",
            about: "every hub crashes in one round: the round is lost, the model survives bitwise",
            run: hub_crash_all,
        },
        ScenarioFamily {
            name: "stale-hub",
            about: "a hub submits its stale pre-round weights; equivalent to a zero-scaled update",
            run: stale_hub,
        },
        ScenarioFamily {
            name: "byzantine-scale",
            about: "a hub submits an amplified (scaled) update; weights stay finite and synced",
            run: byzantine_scale,
        },
        ScenarioFamily {
            name: "byzantine-signflip",
            about: "a hub submits a sign-flipped update; the merge is perturbed but stays synced",
            run: byzantine_signflip,
        },
        ScenarioFamily {
            name: "batch-tamper",
            about: "bit-flipped sealed payloads and AAD labels in transit; GCM rejects every one",
            run: batch_tamper,
        },
        ScenarioFamily {
            name: "batch-replay",
            about: "duplicated batches and replayed uploads; the nonce ledger rejects them all",
            run: batch_replay,
        },
        ScenarioFamily {
            name: "batch-chaos",
            about: "drops + duplicates + reorders + corruption mixed; stats match ground truth",
            run: batch_chaos,
        },
        ScenarioFamily {
            name: "attestation-failure",
            about: "rogue enclave code and relayed quotes during provisioning are refused",
            run: attestation_failure,
        },
        ScenarioFamily {
            name: "poison-under-faults",
            about: "a poisoning participant plus channel and hub faults; linkage queries still \
                    rank the poisoner's records first",
            run: poison_under_faults,
        },
        ScenarioFamily {
            name: "epc-pressure",
            about: "per-round EPC-capacity shrinks spill working sets through CLOCK eviction; \
                    the trajectory matches the honest twin bitwise, only the cycle bill grows",
            run: epc_pressure,
        },
        ScenarioFamily {
            name: "clock-skew",
            about: "per-round clock-rate perturbations dilate simulated time; cycles and \
                    weights stay bitwise identical to the honest twin",
            run: clock_skew,
        },
        ScenarioFamily {
            name: "soak",
            about: "long-horizon campaign: 50 rounds of low-rate mixed faults with the full \
                    invariant set checked every round",
            run: soak,
        },
    ]
}

/// Drives `rounds` federated rounds through `transport`, tracing each
/// outcome and checking convergence + ledger invariants after every one.
fn run_rounds(
    ctx: &mut Ctx,
    cluster: &mut HubCluster,
    transport: &mut dyn RoundTransport,
    rounds: usize,
    epochs: usize,
) -> Result<(), String> {
    for _ in 0..rounds {
        let r = cluster.round();
        let out = cluster
            .train_round_via(epochs, transport)
            .map_err(|e| format!("round {r} failed: {e:?}"))?;
        let losses: Vec<String> = out.hub_losses.iter().map(|v| bits32(*v)).collect();
        ctx.note(format!(
            "round {r} losses=[{}] time={} crashed={:?}",
            losses.join(","),
            bits32(out.round_time.seconds as f32),
            out.crashed
        ));
        ctx.check_with("hubs converged after aggregation", invariants::hubs_converged(cluster))?;
        ctx.check_with(
            "hub cycle ledgers consistent",
            invariants::hub_ledgers_consistent(cluster),
        )?;
    }
    Ok(())
}

fn finish_with_weights(ctx: &mut Ctx, cluster: &HubCluster) -> Result<(), String> {
    let params = cluster.global_model().export_params();
    ctx.check_with("global weights all finite", invariants::weights_finite(&params))?;
    ctx.set_weights(&params);
    Ok(())
}

fn baseline_honest(ctx: &mut Ctx) -> Result<(), String> {
    let mut cluster = world::hub_world(ctx.seed, 2, 40, ctx.parallelism);
    let mut plan = PlannedTransport::new(); // empty plan == honest
    run_rounds(ctx, &mut cluster, &mut plan, 2, 1)?;
    ctx.check(cluster.round() == 2, "round counter advanced")?;
    finish_with_weights(ctx, &cluster)
}

fn hub_crash_restart(ctx: &mut Ctx) -> Result<(), String> {
    let hubs = 3;
    let rounds = 3;
    let mut rng = ctx.rng(1);
    let crash_round = rng.gen_range(0..rounds);
    let crash_hub = rng.gen_range(0..hubs);
    ctx.note(format!("plan: crash hub {crash_hub} in round {crash_round}"));

    let mut cluster = world::hub_world(ctx.seed, hubs, 48, ctx.parallelism);
    let mut plan = PlannedTransport::new();
    plan.set(crash_round, crash_hub, HubSubmission::Crashed);
    for r in 0..rounds {
        let out = cluster
            .train_round_via(1, &mut plan)
            .map_err(|e| format!("round {r} failed: {e:?}"))?;
        ctx.note(format!("round {r} crashed={:?}", out.crashed));
        let expected: &[usize] = if r == crash_round { &[crash_hub] } else { &[] };
        ctx.check(out.crashed == expected, "crash report matches the plan")?;
        // The restart path: the crashed hub must hold the merged model —
        // covered for every hub by the convergence invariant.
        ctx.check_with("hubs converged after aggregation", invariants::hubs_converged(&cluster))?;
        ctx.check_with(
            "hub cycle ledgers consistent",
            invariants::hub_ledgers_consistent(&cluster),
        )?;
    }
    finish_with_weights(ctx, &cluster)
}

fn hub_crash_all(ctx: &mut Ctx) -> Result<(), String> {
    let mut cluster = world::hub_world(ctx.seed, 2, 40, ctx.parallelism);
    let mut plan = PlannedTransport::new();
    run_rounds(ctx, &mut cluster, &mut plan, 1, 1)?;

    let before: Vec<Vec<u32>> = cluster
        .global_model()
        .export_params()
        .iter()
        .map(|l| l.iter().map(|v| v.to_bits()).collect())
        .collect();
    let mut all_crash = PlannedTransport::new();
    all_crash
        .set(1, 0, HubSubmission::Crashed)
        .set(1, 1, HubSubmission::Crashed);
    let out = cluster
        .train_round_via(1, &mut all_crash)
        .map_err(|e| format!("crash round failed: {e:?}"))?;
    ctx.note(format!("all-crash round crashed={:?}", out.crashed));
    ctx.check(out.crashed == [0, 1], "every hub reported crashed")?;
    let after: Vec<Vec<u32>> = cluster
        .global_model()
        .export_params()
        .iter()
        .map(|l| l.iter().map(|v| v.to_bits()).collect())
        .collect();
    ctx.check(before == after, "fully-crashed round leaves the global model bitwise intact")?;
    ctx.check(cluster.round() == 2, "the lost round still advances the counter")?;
    ctx.check_with("hubs converged after aggregation", invariants::hubs_converged(&cluster))?;

    // The cluster keeps learning afterwards.
    run_rounds(ctx, &mut cluster, &mut PlannedTransport::new(), 1, 1)?;
    finish_with_weights(ctx, &cluster)
}

/// Shared body for single-hub degraded submissions (stale / scaled):
/// runs a faulted cluster against an honest twin and asserts the merge
/// was genuinely perturbed yet stayed converged and finite.
fn degraded_submission(
    ctx: &mut Ctx,
    submission: HubSubmission,
    what: &str,
) -> Result<(), String> {
    let hubs = 2;
    let mut rng = ctx.rng(2);
    let fault_round = rng.gen_range(0..2usize);
    let fault_hub = rng.gen_range(0..hubs);
    ctx.note(format!("plan: {what} from hub {fault_hub} in round {fault_round}"));

    let mut honest = world::hub_world(ctx.seed, hubs, 40, ctx.parallelism);
    let mut faulted = world::hub_world(ctx.seed, hubs, 40, ctx.parallelism);
    let mut plan = PlannedTransport::new();
    plan.set(fault_round, fault_hub, submission);
    run_rounds(ctx, &mut honest, &mut PlannedTransport::new(), 2, 1)?;
    run_rounds(ctx, &mut faulted, &mut plan, 2, 1)?;

    ctx.check(
        honest.global_model().export_params() != faulted.global_model().export_params(),
        "the degraded submission must actually perturb the merged trajectory",
    )?;
    finish_with_weights(ctx, &faulted)
}

fn stale_hub(ctx: &mut Ctx) -> Result<(), String> {
    degraded_submission(ctx, HubSubmission::Stale, "stale submission")?;

    // Semantics lock-in: a stale submission is exactly a zero-scaled one.
    let mut rng = ctx.rng(2);
    let fault_round = rng.gen_range(0..2usize);
    let fault_hub = rng.gen_range(0..2usize);
    let mut stale = world::hub_world(ctx.seed, 2, 40, ctx.parallelism);
    let mut zero = world::hub_world(ctx.seed, 2, 40, ctx.parallelism);
    let mut stale_plan = PlannedTransport::new();
    stale_plan.set(fault_round, fault_hub, HubSubmission::Stale);
    let mut zero_plan = PlannedTransport::new();
    zero_plan.set(fault_round, fault_hub, HubSubmission::Scaled(0.0));
    run_rounds(ctx, &mut stale, &mut stale_plan, 2, 1)?;
    run_rounds(ctx, &mut zero, &mut zero_plan, 2, 1)?;
    ctx.check(
        stale.global_model().export_params() == zero.global_model().export_params(),
        "Stale ≡ Scaled(0.0)",
    )
}

fn byzantine_scale(ctx: &mut Ctx) -> Result<(), String> {
    let scale = [2.0f32, 4.0, 8.0][ctx.rng(3).gen_range(0..3usize)];
    ctx.note(format!("plan: amplification factor {}", bits32(scale)));
    degraded_submission(ctx, HubSubmission::Scaled(scale), "amplified submission")
}

fn byzantine_signflip(ctx: &mut Ctx) -> Result<(), String> {
    degraded_submission(ctx, HubSubmission::Scaled(-1.0), "sign-flipped submission")
}

fn batch_tamper(ctx: &mut Ctx) -> Result<(), String> {
    let (mut server, mut people) = world::ingest_world(ctx.seed, 3, 36, ctx.parallelism);
    let uploads: Vec<_> = people.iter_mut().map(|p| p.seal_upload(6)).collect();
    let mut chan = FaultyChannel::new(uploads);
    let delivered_before = chan.batches();

    let mut rng = ctx.rng(4);
    let corruptions = 1 + rng.gen_range(0..3usize);
    for i in 0..corruptions {
        let line = if rng.gen_range(0..2usize) == 0 {
            chan.corrupt_one(&mut rng)
        } else {
            chan.corrupt_labels(&mut rng)
        };
        ctx.note(line.ok_or_else(|| format!("corruption {i} found no target"))?);
    }
    let expected = chan.expected();
    ctx.check(expected.corrupted >= 1, "at least one batch corrupted in transit")?;

    let stats = server.ingest_from(&mut chan);
    ctx.note(format!(
        "ingest accepted={} discarded={} duplicates={} instances={}",
        stats.accepted, stats.discarded, stats.duplicates, stats.instances
    ));
    ctx.check_with("ingest stats match channel ground truth", invariants::stats_match(stats, expected))?;
    ctx.check(
        stats.accepted + stats.discarded == delivered_before,
        "every delivered batch accounted for",
    )?;
    ctx.check_with("server cycle ledger consistent", invariants::ledger_consistent(server.platform()))?;

    let pool = server.pool().map_err(|e| format!("pool unavailable: {e:?}"))?;
    ctx.check(pool.len() == stats.instances, "pool holds exactly the accepted instances")?;

    // Fingerprint-db completeness over whatever survived the faults.
    let mut net = zoo::cifar10_10layer_scaled(32, ctx.seed).map_err(|e| format!("{e:?}"))?;
    let stage = FingerprintingStage::launch(
        server.platform(),
        (net.param_count() * 4).max(1 << 20),
    )
    .map_err(|e| format!("stage launch: {e:?}"))?;
    let db = stage.build_db(&mut net, pool, 16).map_err(|e| format!("build_db: {e:?}"))?;
    ctx.check_with(
        "fingerprint db complete over the surviving pool",
        invariants::fingerprint_complete(&db, pool),
    )?;
    ctx.check_with(
        "server cycle ledger consistent after fingerprinting",
        invariants::ledger_consistent(server.platform()),
    )
}

fn batch_replay(ctx: &mut Ctx) -> Result<(), String> {
    let (mut server, mut people) = world::ingest_world(ctx.seed, 2, 24, ctx.parallelism);
    let uploads: Vec<_> = people.iter_mut().map(|p| p.seal_upload(4)).collect();
    let unique = uploads.iter().map(Vec::len).sum::<usize>();
    let mut chan = FaultyChannel::new(uploads);

    let mut rng = ctx.rng(5);
    for _ in 0..1 + rng.gen_range(0..2usize) {
        let line = chan.duplicate_one(&mut rng).ok_or("nothing to duplicate")?;
        ctx.note(line);
    }
    let line = chan.replay_upload(&mut rng).ok_or("nothing to replay")?;
    ctx.note(line);

    let expected = chan.expected();
    ctx.check(expected.duplicates >= 2, "replays registered in ground truth")?;
    let stats = server.ingest_from(&mut chan);
    ctx.note(format!(
        "ingest accepted={} discarded={} duplicates={} instances={}",
        stats.accepted, stats.discarded, stats.duplicates, stats.instances
    ));
    ctx.check_with("ingest stats match channel ground truth", invariants::stats_match(stats, expected))?;
    ctx.check(stats.accepted == unique, "every unique batch accepted exactly once")?;
    let pool = server.pool().map_err(|e| format!("pool unavailable: {e:?}"))?;
    ctx.check(pool.len() == stats.instances, "replays must not double-weight the pool")?;
    ctx.check_with("server cycle ledger consistent", invariants::ledger_consistent(server.platform()))
}

fn batch_chaos(ctx: &mut Ctx) -> Result<(), String> {
    let (mut server, mut people) = world::ingest_world(ctx.seed, 3, 36, ctx.parallelism);
    let uploads: Vec<_> = people.iter_mut().map(|p| p.seal_upload(6)).collect();
    let mut chan = FaultyChannel::new(uploads);

    let mut rng = ctx.rng(6);
    ctx.note(chan.reorder(&mut rng));
    for i in 0..4 {
        let line = match rng.gen_range(0..5usize) {
            0 => chan.drop_one(&mut rng),
            1 => chan.duplicate_one(&mut rng),
            2 => chan.corrupt_one(&mut rng),
            3 => chan.corrupt_labels(&mut rng),
            _ => chan.replay_upload(&mut rng),
        };
        ctx.note(line.ok_or_else(|| format!("chaos op {i} found no target"))?);
    }
    let expected = chan.expected();
    ctx.check(expected.accepted >= 1, "chaos must leave at least one intact batch")?;

    let stats = server.ingest_from(&mut chan);
    ctx.note(format!(
        "ingest accepted={} discarded={} duplicates={} instances={}",
        stats.accepted, stats.discarded, stats.duplicates, stats.instances
    ));
    ctx.check_with("ingest stats match channel ground truth", invariants::stats_match(stats, expected))?;
    let pool = server.pool().map_err(|e| format!("pool unavailable: {e:?}"))?;
    ctx.check(pool.len() == stats.instances, "pool holds exactly the accepted instances")?;
    ctx.check_with("server cycle ledger consistent", invariants::ledger_consistent(server.platform()))
}

fn attestation_failure(ctx: &mut Ctx) -> Result<(), String> {
    let platform = Platform::with_seed(&ctx.seed.to_le_bytes());
    let mut server = TrainingServer::launch(platform, 1 << 21).map_err(|e| format!("{e:?}"))?;
    let (shard, _) = caltrain_data::synthcifar::generate(8, 4, ctx.seed ^ 0xA77E);
    let mut alice = Participant::new(ParticipantId(0), shard, &ctx.seed.to_le_bytes());

    // 1. A rogue enclave running different code offers a quote; the
    //    participant's measurement check must refuse it.
    let rogue = server
        .platform()
        .create_enclave(&EnclaveConfig {
            name: "rogue-trainer".into(),
            code_identity: b"rogue-trainer-code".to_vec(),
            heap_bytes: 4096,
        })
        .map_err(|e| format!("{e:?}"))?;
    let rogue_chan = ChannelServer::new(&rogue);
    let (rogue_quote, rogue_pub) = rogue_chan.hello();
    let refused = alice
        .provision_key(
            &server.platform().attestation_service(),
            &server.enclave().measurement(),
            &rogue_quote,
            &rogue_pub,
        )
        .is_err();
    ctx.note("attempt: provision against rogue enclave code".to_string());
    ctx.check(refused, "wrong code identity refused")?;

    // 2. A genuine quote relayed from a different platform fails the
    //    attestation service's signature check.
    let (chan, quote, server_pub) = server.begin_provisioning();
    let elsewhere = Platform::with_seed(&(ctx.seed ^ 0xDEAD).to_le_bytes());
    let relayed = alice
        .provision_key(
            &elsewhere.attestation_service(),
            &server.enclave().measurement(),
            &quote,
            &server_pub,
        )
        .is_err();
    ctx.note("attempt: verify relayed quote on foreign platform".to_string());
    ctx.check(relayed, "relayed quote refused")?;
    drop(chan);
    ctx.check(server.provisioned() == 0, "no key provisioned through failed handshakes")?;

    // 3. The honest handshake still succeeds afterwards, and uploads flow.
    world::provision(&mut server, &alice);
    ctx.check(server.provisioned() == 1, "honest provisioning recovers")?;
    let stats = server.ingest(&alice.seal_upload(4));
    ctx.note(format!("ingest accepted={} discarded={}", stats.accepted, stats.discarded));
    ctx.check(stats.accepted > 0 && stats.discarded == 0, "honest upload accepted")?;
    ctx.check_with("server cycle ledger consistent", invariants::ledger_consistent(server.platform()))
}

fn poison_under_faults(ctx: &mut Ctx) -> Result<(), String> {
    const IDENTITIES: usize = 3;
    const TARGET: usize = 0;
    const MALICIOUS: u32 = IDENTITIES as u32;

    // World: three honest participants each owning one identity's faces,
    // plus a poisoning participant uploading trigger-stamped foreign
    // faces labelled TARGET.
    let clean = faces::generate(IDENTITIES, 12, ctx.seed);
    let trigger = TrojanTrigger::default();
    let poisoned = build_poisoned_set(
        10,
        TARGET,
        IDENTITIES + 50,
        &trigger,
        ParticipantId(MALICIOUS),
        ctx.seed ^ 0x7031,
    );

    let platform = Platform::with_seed(&(ctx.seed ^ 0xFACE).to_le_bytes());
    let mut server = TrainingServer::launch(platform, 1 << 21).map_err(|e| format!("{e:?}"))?;
    server.set_parallelism(ctx.parallelism);
    let mut honest: Vec<Participant> = (0..IDENTITIES)
        .map(|id| {
            let mut s = clean.subset(&clean.indices_of_class(id));
            s.set_source(ParticipantId(id as u32));
            Participant::new(ParticipantId(id as u32), s, &(ctx.seed ^ id as u64).to_le_bytes())
        })
        .collect();
    let mut mallory = Participant::new(
        ParticipantId(MALICIOUS),
        poisoned,
        &(ctx.seed ^ 0xBAD).to_le_bytes(),
    );
    for p in &honest {
        world::provision(&mut server, p);
    }
    world::provision(&mut server, &mallory);

    // Channel faults hit the honest uploads; the poisoner's upload rides
    // along untouched (the adversary does not corrupt their own data).
    let mut chan =
        FaultyChannel::new(honest.iter_mut().map(|p| p.seal_upload(6)).collect());
    let mut rng = ctx.rng(7);
    ctx.note(chan.duplicate_one(&mut rng).ok_or("nothing to duplicate")?);
    ctx.note(chan.corrupt_one(&mut rng).ok_or("nothing to corrupt")?);
    chan.push_upload(mallory.seal_upload(6));
    let expected = chan.expected();
    let stats = server.ingest_from(&mut chan);
    ctx.note(format!(
        "ingest accepted={} discarded={} duplicates={} instances={}",
        stats.accepted, stats.discarded, stats.duplicates, stats.instances
    ));
    ctx.check_with("ingest stats match channel ground truth", invariants::stats_match(stats, expected))?;
    let pool = server.pool().map_err(|e| format!("pool unavailable: {e:?}"))?.clone();
    ctx.check(
        pool.sources().iter().any(|s| s.0 == MALICIOUS),
        "the poisoned upload reached the pool",
    )?;

    // Federated training over the contaminated pool, under hub faults:
    // one crash and one stale round, seed-chosen.
    let net = zoo::face_net(IDENTITIES, ctx.seed).map_err(|e| format!("{e:?}"))?;
    let pools = world::split_preserving_sources(&pool, 2, ctx.seed ^ 0x5EED);
    let mut cluster = HubCluster::new(
        &net,
        pools,
        Partition { cut: 2 },
        world::hyper(),
        8,
        None,
        ctx.seed,
    )
    .map_err(|e| format!("{e:?}"))?;
    cluster.set_parallelism(ctx.parallelism);
    let rounds = 6;
    let crash_round = rng.gen_range(0..rounds);
    let mut stale_round = rng.gen_range(0..rounds);
    if stale_round == crash_round {
        stale_round = (stale_round + 1) % rounds;
    }
    ctx.note(format!(
        "plan: crash hub 0 in round {crash_round}, stale hub 1 in round {stale_round}"
    ));
    let mut plan = PlannedTransport::new();
    plan.set(crash_round, 0, HubSubmission::Crashed);
    plan.set(stale_round, 1, HubSubmission::Stale);
    run_rounds(ctx, &mut cluster, &mut plan, rounds, 1)?;

    // Accountability under all of the above: build the linkage db from
    // the merged model and demand that queries still pin the poisoner.
    let mut fp_model = cluster.global_model().clone();
    let stage = FingerprintingStage::launch(
        server.platform(),
        (fp_model.param_count() * 4).max(1 << 20),
    )
    .map_err(|e| format!("stage launch: {e:?}"))?;
    let db = stage.build_db(&mut fp_model, &pool, 16).map_err(|e| format!("build_db: {e:?}"))?;
    ctx.check_with(
        "fingerprint db complete over the contaminated pool",
        invariants::fingerprint_complete(&db, &pool),
    )?;

    // Headline check: probing with each poisoned record's fingerprint
    // ranks a poisoner-owned record first. Poison provenance comes from
    // the linkage structure's own `S` component — label *status* does
    // not survive the sealed round trip (only labels ride as AAD), which
    // is exactly why the paper pins provenance cryptographically.
    let poisoned_idx: Vec<usize> = (0..pool.len())
        .filter(|&i| pool.sources()[i].0 == MALICIOUS)
        .collect();
    ctx.check(!poisoned_idx.is_empty(), "poisoned records present in the pool")?;
    for &i in &poisoned_idx {
        let record = db.record(i).expect("completeness checked");
        let top = db.query(&record.fingerprint, record.label, 1);
        let hit = top.first().ok_or("query returned nothing")?;
        let owner = db.record(hit.record).expect("index from query").source;
        if owner != MALICIOUS {
            return Err(format!(
                "accountability broken: probe of poisoned record {i} ranked a record owned by \
                 participant {owner} first"
            ));
        }
    }
    ctx.check(true, "every poisoned-record probe ranks the poisoner's records first")?;

    // End-to-end forensic path on trigger-stamped holdout faces: every
    // hijacked prediction must demand data from the poisoner.
    let service = QueryService::new(db);
    let holdout = faces::generate(IDENTITIES, 3, ctx.seed ^ 0x401D);
    let mut model = cluster.global_model().clone();
    let mut hijacked = 0usize;
    let mut demanded = 0usize;
    for i in 0..holdout.len() {
        if holdout.labels()[i] == TARGET {
            continue;
        }
        let stamped = trigger.stamp(&holdout.image(i));
        let inv = service.investigate(&mut model, &stamped, 5).map_err(|e| format!("{e:?}"))?;
        if inv.predicted == TARGET {
            hijacked += 1;
            if inv.demand_from.contains(&MALICIOUS) {
                demanded += 1;
            }
        }
    }
    ctx.note(format!("stamped probes: hijacked={hijacked} demanded-from-poisoner={demanded}"));
    ctx.check(
        hijacked == 0 || demanded > 0,
        "hijacked predictions demand data from the poisoner",
    )?;
    finish_with_weights(ctx, &cluster)
}

fn epc_pressure(ctx: &mut Ctx) -> Result<(), String> {
    let plan = CampaignPlan::generate(ctx.seed, 4, 2, WalkProfile::EpcPressure);
    let honest = CampaignPlan { ops: Vec::new(), ..plan.clone() };
    let config = CampaignConfig::default();
    let faulted = campaign::run_with_ctx(ctx, &plan, &config)?;
    let twin = campaign::run_with_ctx(ctx, &honest, &config)?;

    // EPC pressure is a *performance* fault: it thrashes pages and bills
    // cycles, but must never touch the numeric trajectory.
    ctx.check(
        faulted.final_params == twin.final_params,
        "EPC pressure leaves the trained weights bitwise identical to the honest twin",
    )?;
    ctx.check(
        faulted.hub_evictions.iter().any(|&e| e > 0),
        "capacity shrinks actually forced CLOCK evictions",
    )?;
    ctx.check(
        faulted.hub_evictions.iter().sum::<u64>() > twin.hub_evictions.iter().sum::<u64>(),
        "the pressured run pays more evictions than the honest twin",
    )
}

fn clock_skew(ctx: &mut Ctx) -> Result<(), String> {
    let plan = CampaignPlan::generate(ctx.seed, 3, 2, WalkProfile::ClockSkew);
    let honest = CampaignPlan { ops: Vec::new(), ..plan.clone() };
    let config = CampaignConfig::default();
    let faulted = campaign::run_with_ctx(ctx, &plan, &config)?;
    let twin = campaign::run_with_ctx(ctx, &honest, &config)?;

    // Skew re-rates the cycles→seconds conversion only: the work ledger
    // and the weights are untouched, the reported wall-clock dilates.
    ctx.check(
        faulted.final_params == twin.final_params,
        "clock skew leaves the trained weights bitwise identical to the honest twin",
    )?;
    ctx.check(
        faulted.hub_cycles == twin.hub_cycles,
        "clock skew never changes the cycle ledger",
    )?;
    ctx.check(
        faulted.hub_seconds_bits != twin.hub_seconds_bits,
        "clock skew visibly re-rates simulated time somewhere",
    )
}

fn soak(ctx: &mut Ctx) -> Result<(), String> {
    // Long horizon, low fault rate, full alphabet: ~18% of rounds carry
    // one fault. The invariant set runs after every round; survival for
    // 50 rounds is the check.
    let rounds = 50;
    let plan = CampaignPlan::generate(ctx.seed, rounds, 2, WalkProfile::Soak);
    let stats = campaign::run_with_ctx(ctx, &plan, &CampaignConfig::default())?;
    ctx.check(stats.hub_cycles.len() == rounds, "every soak round completed")?;
    ctx.check(
        stats.hub_cycles.iter().all(|row| row.iter().all(|&c| c > 0)),
        "every hub billed work every round",
    )
}
