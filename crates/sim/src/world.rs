//! Deterministic worlds the scenarios run in: a small federated hub
//! cluster over synthetic CIFAR, and a provisioned ingestion pipeline
//! with sealed uploads ready to push through a faulty channel.

use caltrain_core::hubs::HubCluster;
use caltrain_core::participant::Participant;
use caltrain_core::partition::Partition;
use caltrain_core::server::TrainingServer;
use caltrain_data::{shard, synthcifar, Dataset, ParticipantId};
use caltrain_enclave::Platform;
use caltrain_nn::{zoo, Hyper};
use caltrain_runtime::Parallelism;

/// Hyperparameters shared by every training world.
pub fn hyper() -> Hyper {
    Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 }
}

/// A `hubs`-hub federated cluster over `n` synthetic-CIFAR instances,
/// fully determined by `seed`.
pub fn hub_world(seed: u64, hubs: usize, n: usize, parallelism: Parallelism) -> HubCluster {
    let (train, _) = synthcifar::generate(n, 8, seed);
    let pools = shard::split(&train, hubs, seed);
    let net = zoo::cifar10_10layer_scaled(32, seed).expect("static architecture");
    let mut cluster = HubCluster::new(
        &net,
        pools,
        Partition { cut: 2 },
        hyper(),
        16,
        None,
        seed,
    )
    .expect("non-empty cluster");
    cluster.set_parallelism(parallelism);
    cluster
}

/// A provisioned ingestion world: a training server plus `participants`
/// enrolled participants, each holding an equal shard of `n` synthetic
/// instances.
pub fn ingest_world(
    seed: u64,
    participants: usize,
    n: usize,
    parallelism: Parallelism,
) -> (TrainingServer, Vec<Participant>) {
    let platform = Platform::with_seed(&seed.to_le_bytes());
    let mut server = TrainingServer::launch(platform, 1 << 21).expect("enclave launch");
    server.set_parallelism(parallelism);
    let (pool, _) = synthcifar::generate(n, 8, seed ^ 0x5EED);
    let shards = shard::split(&pool, participants, seed ^ 0x5EED);
    let people: Vec<Participant> = shards
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let p = Participant::new(
                ParticipantId(i as u32),
                s,
                &(seed ^ (i as u64 + 1)).to_le_bytes(),
            );
            provision(&mut server, &p);
            p
        })
        .collect();
    (server, people)
}

/// Runs the full attested provisioning handshake for `p`.
///
/// # Panics
///
/// Panics if the honest handshake fails — that is a harness bug, not a
/// scenario outcome.
pub fn provision(server: &mut TrainingServer, p: &Participant) {
    let (chan, quote, server_pub) = server.begin_provisioning();
    let service = server.platform().attestation_service();
    let expected = server.enclave().measurement();
    let (record, client_pub) =
        p.provision_key(&service, &expected, &quote, &server_pub).expect("honest provisioning");
    server.finish_provisioning(chan, &client_pub, &record).expect("honest key record");
}

/// Splits an ingested pool across hubs **without** re-tagging provenance
/// (unlike [`shard::split`], which stamps shard ownership): hub
/// assignment is an infrastructure decision and must not rewrite the
/// linkage structure's `S` component.
pub fn split_preserving_sources(pool: &Dataset, hubs: usize, seed: u64) -> Vec<Dataset> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    indices.shuffle(&mut rng);
    let base = pool.len() / hubs;
    let extra = pool.len() % hubs;
    let mut out = Vec::with_capacity(hubs);
    let mut cursor = 0usize;
    for h in 0..hubs {
        let take = base + usize::from(h < extra);
        out.push(pool.subset(&indices[cursor..cursor + take]));
        cursor += take;
    }
    out
}
