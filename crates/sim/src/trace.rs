//! The event trace: an append-only log of everything a scenario did and
//! observed, digested for reproducibility checks.
//!
//! Determinism is the harness's load-bearing property: the same
//! `(scenario, seed)` must produce a bitwise-identical trace at any
//! worker count and on any repeat run. Floats are therefore always
//! rendered through [`bits32`]/[`bits_digest`] (exact bit patterns), never
//! via `{}` formatting, so two runs that differ anywhere in the last ulp
//! produce visibly different digests.

use caltrain_crypto::sha256::{Digest, Sha256};

/// Append-only event log for one scenario run.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    lines: Vec<String>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event line.
    pub fn record(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The recorded event lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// SHA-256 over the newline-joined event log — the replay identity
    /// of the run.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        for line in &self.lines {
            h.update(line.as_bytes());
            h.update(b"\n");
        }
        h.finalize()
    }
}

/// Exact bit-pattern rendering of an `f32` for trace lines.
pub fn bits32(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

/// Exact bit-pattern rendering of an `f64` for trace lines (used for
/// clock rates and skew factors, where f32 rounding would alias).
pub fn bits64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// SHA-256 over the exact bit patterns of a layered parameter set — the
/// "final weights" identity used to compare trajectories across worker
/// counts and repeat runs.
pub fn bits_digest(params: &[Vec<f32>]) -> Digest {
    let mut h = Sha256::new();
    for layer in params {
        for v in layer {
            h.update(&v.to_bits().to_le_bytes());
        }
        h.update(b"|");
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = Trace::new();
        a.record("x");
        a.record("y");
        let mut b = Trace::new();
        b.record("y");
        b.record("x");
        assert_ne!(a.digest(), b.digest());
        let mut c = Trace::new();
        c.record("x");
        c.record("y");
        assert_eq!(a.digest(), c.digest());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn line_boundaries_matter() {
        // "ab" + "c" must not collide with "a" + "bc".
        let mut a = Trace::new();
        a.record("ab");
        a.record("c");
        let mut b = Trace::new();
        b.record("a");
        b.record("bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn float_rendering_is_exact() {
        assert_eq!(bits32(1.0), "3f800000");
        assert_eq!(bits64(1.0), "3ff0000000000000");
        assert_ne!(bits64(0.0), bits64(-0.0), "signed zeros must be distinguishable");
        assert_ne!(bits32(0.0), bits32(-0.0), "signed zeros must be distinguishable");
        let d1 = bits_digest(&[vec![1.0, 2.0], vec![3.0]]);
        let d2 = bits_digest(&[vec![1.0], vec![2.0, 3.0]]);
        assert_ne!(d1, d2, "layer boundaries must be part of the identity");
    }
}
