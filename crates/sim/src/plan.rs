//! First-class, serializable campaign fault plans.
//!
//! A campaign is a seed-driven random walk over the whole fault alphabet
//! — hub submissions (crash/stale/byzantine), channel ops
//! (drop/duplicate/reorder/corrupt/replay), EPC-capacity shrinks and
//! clock skews — scheduled round by round as a [`CampaignPlan`]. The
//! plan is the unit of replay: it serializes to a line-based text format
//! (floats as exact bit patterns, channel randomness pinned by explicit
//! per-op salts) so a failing walk can be written to disk, shrunk to a
//! minimal reproducer, and re-executed bitwise from the file alone.

use caltrain_core::hubs::HubSubmission;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest EPC capacity (in pages) the weakening ladder relaxes toward;
/// above this a shrink op is effectively harmless for campaign worlds.
pub const MAX_WEAK_PAGES: usize = 4096;

/// Which [`crate::channel::FaultyChannel`] operation a planned channel
/// fault performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelOpKind {
    /// Drop one random batch in transit.
    Drop,
    /// Duplicate one random batch at a later position.
    Duplicate,
    /// Shuffle upload and batch delivery order.
    Reorder,
    /// Flip one ciphertext bit of one random batch.
    Corrupt,
    /// Flip one AAD-label bit of one random batch.
    CorruptLabels,
    /// Replay one whole upload at the end of the stream.
    ReplayUpload,
}

impl ChannelOpKind {
    fn token(self) -> &'static str {
        match self {
            ChannelOpKind::Drop => "drop",
            ChannelOpKind::Duplicate => "duplicate",
            ChannelOpKind::Reorder => "reorder",
            ChannelOpKind::Corrupt => "corrupt",
            ChannelOpKind::CorruptLabels => "corrupt-labels",
            ChannelOpKind::ReplayUpload => "replay-upload",
        }
    }

    fn from_token(token: &str) -> Option<Self> {
        Some(match token {
            "drop" => ChannelOpKind::Drop,
            "duplicate" => ChannelOpKind::Duplicate,
            "reorder" => ChannelOpKind::Reorder,
            "corrupt" => ChannelOpKind::Corrupt,
            "corrupt-labels" => ChannelOpKind::CorruptLabels,
            "replay-upload" => ChannelOpKind::ReplayUpload,
            _ => return None,
        })
    }
}

/// One fault from the campaign alphabet.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// A hub submission fault on the [`caltrain_core::hubs::RoundTransport`]
    /// seam (never [`HubSubmission::Trained`] — honest is the absence of
    /// an op).
    Hub {
        /// Target hub index.
        hub: usize,
        /// The faulty submission.
        submission: HubSubmission,
    },
    /// A channel op applied to the round's sealed-upload stream. `salt`
    /// seeds the op's own RNG, so the op is self-contained and survives
    /// plan shrinking unchanged.
    Channel {
        /// The channel operation.
        kind: ChannelOpKind,
        /// Seed for this op's RNG stream.
        salt: u64,
    },
    /// Shrink (or grow) a hub platform's EPC capacity before the round.
    EpcShrink {
        /// Target hub index.
        hub: usize,
        /// New capacity in pages.
        pages: usize,
    },
    /// Re-rate a hub platform's clock to `factor ×` its pristine rate
    /// before the round. The factor is stored as exact `f64` bits.
    ClockSkew {
        /// Target hub index.
        hub: usize,
        /// `f64::to_bits` of the skew factor.
        factor_bits: u64,
    },
}

impl FaultOp {
    /// Human-readable, digest-stable description for trace lines.
    pub fn describe(&self) -> String {
        match self {
            FaultOp::Hub { hub, submission } => {
                format!("hub {hub} submits {}", submission_token(*submission))
            }
            FaultOp::Channel { kind, salt } => {
                format!("channel {} salt={salt:016x}", kind.token())
            }
            FaultOp::EpcShrink { hub, pages } => format!("epc hub {hub} capacity {pages} pages"),
            FaultOp::ClockSkew { hub, factor_bits } => {
                format!("clock hub {hub} factor {:016x}", factor_bits)
            }
        }
    }
}

fn submission_token(s: HubSubmission) -> String {
    match s {
        HubSubmission::Trained => "trained".to_string(),
        HubSubmission::Crashed => "crash".to_string(),
        HubSubmission::Stale => "stale".to_string(),
        HubSubmission::Scaled(f) => format!("scaled {:08x}", f.to_bits()),
    }
}

/// One scheduled step: a fault pinned to a round. Rounds are absolute —
/// removing other steps never renumbers the survivors, which keeps
/// violation messages comparable during shrinking.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedOp {
    /// Zero-based round the op fires in.
    pub round: usize,
    /// The fault.
    pub op: FaultOp,
}

/// How [`CampaignPlan::generate`] walks the fault alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkProfile {
    /// The full alphabet, 0–2 ops per round (the `--campaign` default).
    Mixed,
    /// Long-horizon low-rate mixed faults (the `soak` family).
    Soak,
    /// EPC-capacity shrinks only (the `epc-pressure` family).
    EpcPressure,
    /// Clock-rate perturbations only (the `clock-skew` family).
    ClockSkew,
}

/// A serializable, seed-complete campaign fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// World seed (data, models, platforms) and generation seed.
    pub seed: u64,
    /// Rounds the campaign executes.
    pub rounds: usize,
    /// Hubs in the campaign world.
    pub hubs: usize,
    /// The scheduled faults, in stable generation order.
    pub ops: Vec<PlannedOp>,
}

const HEADER: &str = "caltrain-campaign v1";

impl CampaignPlan {
    /// Generates a plan by a seeded random walk over `profile`'s alphabet.
    /// Every decision derives from `seed`; the result always contains at
    /// least one op (an all-honest walk re-rolls a single round-0 fault).
    pub fn generate(seed: u64, rounds: usize, hubs: usize, profile: WalkProfile) -> Self {
        let rounds = rounds.max(1);
        let hubs = hubs.max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA4A_16E5_u64.wrapping_mul(0x9E37_79B9));
        let mut ops = Vec::new();
        for round in 0..rounds {
            let count = match profile {
                WalkProfile::Mixed => [0usize, 1, 1, 2][rng.gen_range(0..4usize)],
                WalkProfile::Soak => usize::from(rng.gen_range(0..100u32) < 18),
                WalkProfile::EpcPressure | WalkProfile::ClockSkew => {
                    if round == 0 {
                        1
                    } else {
                        rng.gen_range(0..2usize)
                    }
                }
            };
            for _ in 0..count {
                ops.push(PlannedOp { round, op: random_op(&mut rng, hubs, profile) });
            }
        }
        if ops.is_empty() {
            ops.push(PlannedOp { round: 0, op: random_op(&mut rng, hubs, profile) });
        }
        CampaignPlan { seed, rounds, hubs, ops }
    }

    /// The ops scheduled for `round`, in plan order.
    pub fn ops_in_round(&self, round: usize) -> impl Iterator<Item = &PlannedOp> {
        self.ops.iter().filter(move |op| op.round == round)
    }

    /// Structural validity: every op targets an existing round and hub.
    ///
    /// # Errors
    ///
    /// Describes the first out-of-range op.
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 {
            return Err("plan has zero rounds".into());
        }
        if self.hubs == 0 {
            return Err("plan has zero hubs".into());
        }
        for (i, planned) in self.ops.iter().enumerate() {
            if planned.round >= self.rounds {
                return Err(format!(
                    "op {i} targets round {} of a {}-round plan",
                    planned.round, self.rounds
                ));
            }
            let hub = match planned.op {
                FaultOp::Hub { hub, .. }
                | FaultOp::EpcShrink { hub, .. }
                | FaultOp::ClockSkew { hub, .. } => Some(hub),
                FaultOp::Channel { .. } => None,
            };
            if let Some(hub) = hub {
                if hub >= self.hubs {
                    return Err(format!("op {i} targets hub {hub} of a {}-hub plan", self.hubs));
                }
            }
            if let FaultOp::ClockSkew { factor_bits, .. } = planned.op {
                let f = f64::from_bits(factor_bits);
                if !(f.is_finite() && f > 0.0) {
                    return Err(format!("op {i} has a non-positive clock factor {f}"));
                }
            }
            if let FaultOp::EpcShrink { pages, .. } = planned.op {
                if pages == 0 {
                    return Err(format!("op {i} shrinks the EPC to zero pages"));
                }
            }
        }
        Ok(())
    }

    /// Renders the plan to its replayable text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("rounds {}\n", self.rounds));
        out.push_str(&format!("hubs {}\n", self.hubs));
        for planned in &self.ops {
            let line = match &planned.op {
                FaultOp::Hub { hub, submission } => {
                    format!("hub {} {} {}", planned.round, hub, submission_token(*submission))
                }
                FaultOp::Channel { kind, salt } => {
                    format!("chan {} {} {:016x}", planned.round, kind.token(), salt)
                }
                FaultOp::EpcShrink { hub, pages } => {
                    format!("epc {} {} {}", planned.round, hub, pages)
                }
                FaultOp::ClockSkew { hub, factor_bits } => {
                    format!("clock {} {} {:016x}", planned.round, hub, factor_bits)
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`CampaignPlan::render`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed line; the parsed plan is also
    /// [`CampaignPlan::validate`]d.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty plan file")?;
        if header.trim() != HEADER {
            return Err(format!("bad header {header:?} (expected {HEADER:?})"));
        }
        let mut seed: Option<u64> = None;
        let mut rounds: Option<usize> = None;
        let mut hubs: Option<usize> = None;
        let mut ops = Vec::new();
        for (idx, line) in lines {
            let n = idx + 1;
            let fields: Vec<&str> = line.split_whitespace().collect();
            let bad = |what: &str| format!("line {n}: {what}: {line:?}");
            match fields.as_slice() {
                ["seed", v] => seed = Some(v.parse().map_err(|_| bad("bad seed"))?),
                ["rounds", v] => rounds = Some(v.parse().map_err(|_| bad("bad rounds"))?),
                ["hubs", v] => hubs = Some(v.parse().map_err(|_| bad("bad hubs"))?),
                ["hub", r, h, rest @ ..] => {
                    let round = r.parse().map_err(|_| bad("bad round"))?;
                    let hub = h.parse().map_err(|_| bad("bad hub"))?;
                    let submission = match rest {
                        ["crash"] => HubSubmission::Crashed,
                        ["stale"] => HubSubmission::Stale,
                        ["scaled", bits] => HubSubmission::Scaled(f32::from_bits(
                            u32::from_str_radix(bits, 16).map_err(|_| bad("bad scale bits"))?,
                        )),
                        _ => return Err(bad("bad hub submission")),
                    };
                    ops.push(PlannedOp { round, op: FaultOp::Hub { hub, submission } });
                }
                ["chan", r, kind, salt] => {
                    let round = r.parse().map_err(|_| bad("bad round"))?;
                    let kind =
                        ChannelOpKind::from_token(kind).ok_or_else(|| bad("bad channel op"))?;
                    let salt =
                        u64::from_str_radix(salt, 16).map_err(|_| bad("bad channel salt"))?;
                    ops.push(PlannedOp { round, op: FaultOp::Channel { kind, salt } });
                }
                ["epc", r, h, pages] => {
                    let round = r.parse().map_err(|_| bad("bad round"))?;
                    let hub = h.parse().map_err(|_| bad("bad hub"))?;
                    let pages = pages.parse().map_err(|_| bad("bad page count"))?;
                    ops.push(PlannedOp { round, op: FaultOp::EpcShrink { hub, pages } });
                }
                ["clock", r, h, bits] => {
                    let round = r.parse().map_err(|_| bad("bad round"))?;
                    let hub = h.parse().map_err(|_| bad("bad hub"))?;
                    let factor_bits =
                        u64::from_str_radix(bits, 16).map_err(|_| bad("bad factor bits"))?;
                    ops.push(PlannedOp { round, op: FaultOp::ClockSkew { hub, factor_bits } });
                }
                _ => return Err(bad("unrecognized plan line")),
            }
        }
        let plan = CampaignPlan {
            seed: seed.ok_or("plan missing 'seed' line")?,
            rounds: rounds.ok_or("plan missing 'rounds' line")?,
            hubs: hubs.ok_or("plan missing 'hubs' line")?,
            ops,
        };
        plan.validate()?;
        Ok(plan)
    }
}

/// Strictly-weaker variants of `op`, weakest first — the substitution
/// ladder the shrinker tries after removal bottoms out. Empty for ops
/// already at the weak end of their family.
pub fn weaker_variants(op: &FaultOp) -> Vec<FaultOp> {
    match op {
        FaultOp::Hub { hub, submission } => match submission {
            // Stale is the gentlest still-faulty submission: the hub
            // answers, just with no progress.
            HubSubmission::Crashed | HubSubmission::Scaled(_) => {
                vec![FaultOp::Hub { hub: *hub, submission: HubSubmission::Stale }]
            }
            HubSubmission::Stale | HubSubmission::Trained => Vec::new(),
        },
        FaultOp::Channel { kind, salt } => match kind {
            // Corruption destroys data; dropping merely loses it.
            ChannelOpKind::Corrupt | ChannelOpKind::CorruptLabels => {
                vec![FaultOp::Channel { kind: ChannelOpKind::Drop, salt: *salt }]
            }
            // A whole-upload replay weakens to a single-batch duplicate.
            ChannelOpKind::ReplayUpload => {
                vec![FaultOp::Channel { kind: ChannelOpKind::Duplicate, salt: *salt }]
            }
            ChannelOpKind::Drop | ChannelOpKind::Duplicate | ChannelOpKind::Reorder => Vec::new(),
        },
        FaultOp::EpcShrink { hub, pages } => {
            let mut out = Vec::new();
            for factor in [4usize, 2] {
                let weaker = pages.saturating_mul(factor).min(MAX_WEAK_PAGES);
                if weaker > *pages && !out.iter().any(|o| o == &FaultOp::EpcShrink { hub: *hub, pages: weaker }) {
                    out.push(FaultOp::EpcShrink { hub: *hub, pages: weaker });
                }
            }
            out
        }
        FaultOp::ClockSkew { hub, factor_bits } => {
            let f = f64::from_bits(*factor_bits);
            let weaker = 1.0 + (f - 1.0) / 2.0;
            if weaker.to_bits() == *factor_bits || !weaker.is_finite() || weaker <= 0.0 {
                Vec::new()
            } else {
                vec![FaultOp::ClockSkew { hub: *hub, factor_bits: weaker.to_bits() }]
            }
        }
    }
}

fn random_op(rng: &mut StdRng, hubs: usize, profile: WalkProfile) -> FaultOp {
    const SCALES: [f32; 4] = [-1.0, -0.5, 0.5, 2.0];
    const EPC_PAGES: [usize; 5] = [64, 128, 256, 512, 1024];
    const CLOCK_FACTORS: [f64; 5] = [0.5, 0.75, 1.25, 1.5, 2.0];
    let epc = |rng: &mut StdRng| FaultOp::EpcShrink {
        hub: rng.gen_range(0..hubs),
        pages: EPC_PAGES[rng.gen_range(0..EPC_PAGES.len())],
    };
    let clock = |rng: &mut StdRng| FaultOp::ClockSkew {
        hub: rng.gen_range(0..hubs),
        factor_bits: CLOCK_FACTORS[rng.gen_range(0..CLOCK_FACTORS.len())].to_bits(),
    };
    match profile {
        WalkProfile::EpcPressure => epc(rng),
        WalkProfile::ClockSkew => clock(rng),
        WalkProfile::Mixed | WalkProfile::Soak => match rng.gen_range(0..11usize) {
            0 => FaultOp::Hub { hub: rng.gen_range(0..hubs), submission: HubSubmission::Crashed },
            1 => FaultOp::Hub { hub: rng.gen_range(0..hubs), submission: HubSubmission::Stale },
            2 => FaultOp::Hub {
                hub: rng.gen_range(0..hubs),
                submission: HubSubmission::Scaled(SCALES[rng.gen_range(0..SCALES.len())]),
            },
            3 => FaultOp::Channel { kind: ChannelOpKind::Drop, salt: rng.gen() },
            4 => FaultOp::Channel { kind: ChannelOpKind::Duplicate, salt: rng.gen() },
            5 => FaultOp::Channel { kind: ChannelOpKind::Reorder, salt: rng.gen() },
            6 => FaultOp::Channel { kind: ChannelOpKind::Corrupt, salt: rng.gen() },
            7 => FaultOp::Channel { kind: ChannelOpKind::CorruptLabels, salt: rng.gen() },
            8 => FaultOp::Channel { kind: ChannelOpKind::ReplayUpload, salt: rng.gen() },
            9 => epc(rng),
            _ => clock(rng),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic_and_never_empty() {
        for seed in [1u64, 2, 3, 99] {
            for profile in
                [WalkProfile::Mixed, WalkProfile::Soak, WalkProfile::EpcPressure, WalkProfile::ClockSkew]
            {
                let a = CampaignPlan::generate(seed, 10, 2, profile);
                let b = CampaignPlan::generate(seed, 10, 2, profile);
                assert_eq!(a, b);
                assert!(!a.ops.is_empty(), "{profile:?} seed {seed} generated no ops");
                a.validate().unwrap();
            }
        }
        assert_ne!(
            CampaignPlan::generate(1, 10, 2, WalkProfile::Mixed),
            CampaignPlan::generate(2, 10, 2, WalkProfile::Mixed),
        );
    }

    #[test]
    fn profiles_stay_inside_their_alphabet() {
        let epc = CampaignPlan::generate(5, 6, 2, WalkProfile::EpcPressure);
        assert!(epc.ops.iter().all(|o| matches!(o.op, FaultOp::EpcShrink { .. })));
        let clock = CampaignPlan::generate(5, 6, 2, WalkProfile::ClockSkew);
        assert!(clock.ops.iter().all(|o| matches!(o.op, FaultOp::ClockSkew { .. })));
    }

    #[test]
    fn text_roundtrip_is_exact() {
        for seed in 1u64..=6 {
            for profile in [WalkProfile::Mixed, WalkProfile::Soak] {
                let plan = CampaignPlan::generate(seed, 12, 2, profile);
                let parsed = CampaignPlan::parse(&plan.render()).unwrap();
                assert_eq!(plan, parsed, "seed {seed} {profile:?}");
            }
        }
        // Scaled factors survive via exact bits.
        let plan = CampaignPlan {
            seed: 9,
            rounds: 3,
            hubs: 2,
            ops: vec![
                PlannedOp {
                    round: 1,
                    op: FaultOp::Hub { hub: 1, submission: HubSubmission::Scaled(-0.5) },
                },
                PlannedOp {
                    round: 2,
                    op: FaultOp::ClockSkew { hub: 0, factor_bits: 0.75f64.to_bits() },
                },
            ],
        };
        assert_eq!(CampaignPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        assert!(CampaignPlan::parse("").is_err());
        assert!(CampaignPlan::parse("not-a-plan\nseed 1\nrounds 1\nhubs 1\n").is_err());
        let ok = "caltrain-campaign v1\nseed 1\nrounds 2\nhubs 2\n";
        assert!(CampaignPlan::parse(ok).is_ok());
        assert!(CampaignPlan::parse(&format!("{ok}hub 5 0 crash\n")).is_err(), "round range");
        assert!(CampaignPlan::parse(&format!("{ok}hub 0 7 crash\n")).is_err(), "hub range");
        assert!(CampaignPlan::parse(&format!("{ok}hub 0 0 explode\n")).is_err(), "bad submission");
        assert!(CampaignPlan::parse(&format!("{ok}chan 0 corrupt zz\n")).is_err(), "bad salt");
        assert!(CampaignPlan::parse(&format!("{ok}epc 0 0 0\n")).is_err(), "zero pages");
        assert!(
            CampaignPlan::parse(&format!("{ok}clock 0 0 {:016x}\n", 0.0f64.to_bits())).is_err(),
            "zero factor"
        );
        assert!(CampaignPlan::parse(&format!("{ok}warp 0 0 1\n")).is_err(), "unknown op");
        assert!(CampaignPlan::parse("caltrain-campaign v1\nrounds 1\nhubs 1\n").is_err(), "no seed");
    }

    #[test]
    fn weakening_ladders_are_finite_and_strictly_weaker() {
        let crash = FaultOp::Hub { hub: 0, submission: HubSubmission::Crashed };
        assert_eq!(
            weaker_variants(&crash),
            vec![FaultOp::Hub { hub: 0, submission: HubSubmission::Stale }]
        );
        assert!(weaker_variants(&FaultOp::Hub { hub: 0, submission: HubSubmission::Stale })
            .is_empty());

        let corrupt = FaultOp::Channel { kind: ChannelOpKind::Corrupt, salt: 7 };
        assert_eq!(
            weaker_variants(&corrupt),
            vec![FaultOp::Channel { kind: ChannelOpKind::Drop, salt: 7 }]
        );

        let epc = FaultOp::EpcShrink { hub: 1, pages: 128 };
        assert_eq!(
            weaker_variants(&epc),
            vec![
                FaultOp::EpcShrink { hub: 1, pages: 512 },
                FaultOp::EpcShrink { hub: 1, pages: 256 },
            ]
        );
        // At the cap the ladder ends.
        assert!(weaker_variants(&FaultOp::EpcShrink { hub: 1, pages: MAX_WEAK_PAGES }).is_empty());

        let skew = FaultOp::ClockSkew { hub: 0, factor_bits: 2.0f64.to_bits() };
        assert_eq!(
            weaker_variants(&skew),
            vec![FaultOp::ClockSkew { hub: 0, factor_bits: 1.5f64.to_bits() }]
        );
        // The ladder converges toward 1.0 and terminates there.
        let mut op = skew;
        for _ in 0..200 {
            match weaker_variants(&op).into_iter().next() {
                Some(weaker) => op = weaker,
                None => break,
            }
        }
        assert!(weaker_variants(&op).is_empty(), "ladder must terminate, stuck at {op:?}");
    }
}
