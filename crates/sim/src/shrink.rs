//! Delta-debugging shrinker for campaign fault plans.
//!
//! When a campaign violates an invariant, the walk that found it is
//! rarely the story: most of its steps are noise. [`shrink_plan`]
//! minimizes the plan in two phases — ddmin-style **removal** (drop
//! chunks of steps, halving the chunk size down to single ops, repeated
//! to a fixpoint) and then **weakening** (substitute each surviving op
//! with the weakest variant on its family's ladder that still
//! reproduces, see [`crate::plan::weaker_variants`]).
//!
//! A candidate *reproduces* iff the oracle returns the exact original
//! violation message. Ops carry absolute round numbers, so removing
//! steps never renumbers the survivors and messages stay comparable.
//! With a deterministic oracle (every campaign execution is
//! seed-deterministic) the whole shrink is itself deterministic.

use crate::plan::{weaker_variants, CampaignPlan, PlannedOp};

/// The result of shrinking one violating plan.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal plan: removing any single op, or weakening any op one
    /// more rung, no longer reproduces the violation.
    pub plan: CampaignPlan,
    /// The violation message every kept candidate reproduced.
    pub violation: String,
    /// Oracle executions spent.
    pub executions: usize,
    /// Ops removed from the original plan.
    pub removed: usize,
    /// Ops weakened in place.
    pub weakened: usize,
}

/// Minimizes `original` (which produced `violation`) against `oracle`,
/// which re-executes a candidate plan and returns its violation message,
/// if any. See the module docs for the algorithm.
pub fn shrink_plan(
    original: &CampaignPlan,
    violation: &str,
    oracle: &mut dyn FnMut(&CampaignPlan) -> Option<String>,
) -> ShrinkOutcome {
    let mut ops = original.ops.clone();
    let mut executions = 0usize;
    let mut removed = 0usize;
    let mut weakened = 0usize;
    let with_ops = |ops: &[PlannedOp]| CampaignPlan { ops: ops.to_vec(), ..original.clone() };
    let mut reproduces = |candidate: &[PlannedOp], executions: &mut usize| -> bool {
        *executions += 1;
        oracle(&with_ops(candidate)).as_deref() == Some(violation)
    };

    // Phase 1: removal to a 1-minimal op set.
    let mut progress = true;
    while progress {
        progress = false;
        let mut chunk = (ops.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < ops.len() {
                let end = (i + chunk).min(ops.len());
                let mut candidate = ops[..i].to_vec();
                candidate.extend_from_slice(&ops[end..]);
                if reproduces(&candidate, &mut executions) {
                    removed += ops.len() - candidate.len();
                    ops = candidate;
                    progress = true;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    // Phase 2: weaken each surviving op down its ladder to a fixpoint —
    // the weakest variant that still reproduces. Ladders are finite
    // (clock factors converge to 1.0 in ~50 halvings), the bound is a
    // safety net.
    for i in 0..ops.len() {
        let mut op_weakened = false;
        'rungs: for _ in 0..64 {
            for weaker in weaker_variants(&ops[i].op) {
                let mut candidate = ops.clone();
                candidate[i].op = weaker;
                if reproduces(&candidate, &mut executions) {
                    ops = candidate;
                    op_weakened = true;
                    continue 'rungs;
                }
            }
            break;
        }
        weakened += usize::from(op_weakened);
    }

    ShrinkOutcome {
        plan: with_ops(&ops),
        violation: violation.to_string(),
        executions,
        removed,
        weakened,
    }
}
