//! The paper's invariants, as reusable checks scenarios run after every
//! injected fault.

use caltrain_core::hubs::HubCluster;
use caltrain_core::server::IngestStats;
use caltrain_data::Dataset;
use caltrain_enclave::Platform;
use caltrain_fingerprint::LinkageDb;

use crate::channel::Expected;

/// Cycle-ledger consistency: the per-category breakdown of the simulated
/// clock always reconciles with the headline cycle counter.
pub fn ledger_consistent(platform: &Platform) -> Result<(), String> {
    let breakdown = platform.cycle_breakdown();
    let total = breakdown.total();
    let cycles = platform.cycles();
    if total == cycles {
        Ok(())
    } else {
        Err(format!("cycle breakdown sums to {total} but the clock shows {cycles}"))
    }
}

/// Ledger consistency across every hub platform in a cluster.
pub fn hub_ledgers_consistent(cluster: &HubCluster) -> Result<(), String> {
    for h in 0..cluster.len() {
        let platform = cluster.hub_platform(h).expect("index in range");
        ledger_consistent(platform).map_err(|e| format!("hub {h}: {e}"))?;
    }
    Ok(())
}

/// Post-aggregation convergence: every hub holds the merged global model
/// bit for bit — including hubs that crashed (restart-from-global-model)
/// or submitted byzantine updates.
pub fn hubs_converged(cluster: &HubCluster) -> Result<(), String> {
    let global: Vec<Vec<u32>> = cluster
        .global_model()
        .export_params()
        .iter()
        .map(|l| l.iter().map(|v| v.to_bits()).collect())
        .collect();
    for h in 1..cluster.len() {
        let model = cluster.hub_model(h).expect("index in range");
        let theirs: Vec<Vec<u32>> =
            model.export_params().iter().map(|l| l.iter().map(|v| v.to_bits()).collect()).collect();
        if theirs != global {
            return Err(format!("hub {h} diverged from the global model after aggregation"));
        }
    }
    Ok(())
}

/// Fingerprint-db completeness: every ingested instance has a linkage
/// record Ω = [F, Y, S, H] whose label, source and instance hash match
/// the pool — no fault may open a gap between training data and the
/// accountability evidence.
pub fn fingerprint_complete(db: &LinkageDb, pool: &Dataset) -> Result<(), String> {
    if db.len() != pool.len() {
        return Err(format!(
            "db holds {} records for {} pool instances",
            db.len(),
            pool.len()
        ));
    }
    for i in 0..pool.len() {
        let record = db.record(i).expect("length checked");
        if record.label != pool.labels()[i] {
            return Err(format!("record {i}: label {} != pool {}", record.label, pool.labels()[i]));
        }
        if record.source != pool.sources()[i].0 {
            return Err(format!(
                "record {i}: source {} != pool {}",
                record.source,
                pool.sources()[i].0
            ));
        }
        if !record.verify_instance(&pool.image_bytes(i)) {
            return Err(format!("record {i}: instance hash does not bind the pool bytes"));
        }
    }
    Ok(())
}

/// Ingestion statistics must match the channel's ground truth exactly,
/// and internally reconcile (`accepted + discarded == delivered`,
/// duplicates being a discard sub-category).
pub fn stats_match(stats: IngestStats, expected: Expected) -> Result<(), String> {
    if stats.accepted != expected.accepted {
        return Err(format!("accepted {} != expected {}", stats.accepted, expected.accepted));
    }
    if stats.duplicates != expected.duplicates {
        return Err(format!("duplicates {} != expected {}", stats.duplicates, expected.duplicates));
    }
    let expected_discarded = expected.duplicates + expected.corrupted;
    if stats.discarded != expected_discarded {
        return Err(format!("discarded {} != expected {}", stats.discarded, expected_discarded));
    }
    if stats.duplicates > stats.discarded {
        return Err("duplicates exceed discarded".into());
    }
    Ok(())
}

/// Simulated-time consistency: under the platform's current (possibly
/// skewed) clock rate, elapsed seconds must equal `cycles / clock_hz`
/// bitwise, and the rate itself must be a usable frequency. Clock-skew
/// faults re-rate the conversion; they must never detach time from the
/// work ledger.
pub fn time_consistent(platform: &Platform) -> Result<(), String> {
    let hz = platform.clock_hz();
    if !(hz.is_finite() && hz > 0.0) {
        return Err(format!("clock rate {hz} is not positive and finite"));
    }
    let expect = platform.cycles() as f64 / hz;
    let got = platform.elapsed().seconds;
    if expect.to_bits() == got.to_bits() {
        Ok(())
    } else {
        Err(format!("elapsed {got} != cycles/clock_hz {expect} at {hz} Hz"))
    }
}

/// Time consistency across every hub platform in a cluster.
pub fn hubs_time_consistent(cluster: &HubCluster) -> Result<(), String> {
    for h in 0..cluster.len() {
        let platform = cluster.hub_platform(h).expect("index in range");
        time_consistent(platform).map_err(|e| format!("hub {h}: {e}"))?;
    }
    Ok(())
}

/// All weights finite — byzantine submissions may perturb the model but
/// the harness treats NaN/Inf escape as corruption of the trajectory.
pub fn weights_finite(params: &[Vec<f32>]) -> Result<(), String> {
    for (layer, values) in params.iter().enumerate() {
        if let Some(pos) = values.iter().position(|v| !v.is_finite()) {
            return Err(format!("non-finite weight at layer {layer} index {pos}"));
        }
    }
    Ok(())
}
