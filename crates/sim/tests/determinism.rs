//! Harness-level guarantees: the corpus is big enough, every family is
//! seed-reproducible and worker-count invariant, and failures carry a
//! replayable seed.

use caltrain_runtime::Parallelism;
use caltrain_sim::{find, run_invariant_checked, run_scenario, scenarios, SimError};

#[test]
fn corpus_has_at_least_eight_unique_families() {
    let names: Vec<&str> = scenarios::all().iter().map(|f| f.name).collect();
    assert!(names.len() >= 8, "need >= 8 scenario families, have {}", names.len());
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "scenario names must be unique");
    for name in names {
        assert!(find(name).is_some());
    }
}

#[test]
fn hub_fault_families_are_reproducible_and_worker_invariant() {
    // Each family runs three times inside the checker: sequential,
    // sequential repeat, and 4 workers — traces and final weights must
    // be bitwise identical.
    for name in ["baseline-honest", "hub-crash-restart", "hub-crash-all"] {
        let report = run_invariant_checked(name, 11).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks > 0, "{name} must assert invariants");
        assert!(report.weights_digest.is_some(), "{name} trains a model");
    }
}

#[test]
fn channel_fault_families_are_reproducible_and_worker_invariant() {
    for name in ["batch-tamper", "batch-replay", "batch-chaos", "attestation-failure"] {
        let report = run_invariant_checked(name, 12).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks > 0, "{name} must assert invariants");
    }
}

#[test]
fn byzantine_families_are_reproducible_and_worker_invariant() {
    for name in ["stale-hub", "byzantine-scale", "byzantine-signflip"] {
        let report = run_invariant_checked(name, 13).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks > 0, "{name} must assert invariants");
    }
}

#[test]
fn poisoning_under_faults_still_identifies_the_poisoner() {
    // The headline acceptance scenario, under the full reproducibility
    // harness: fault-injected ingestion + faulted federated training,
    // then accountability queries must rank the poisoner's records first
    // (asserted inside the scenario), identically at any worker count.
    let report = run_invariant_checked("poison-under-faults", 1).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.weights_digest.is_some());
    assert!(report.checks >= 10, "the poison scenario asserts the full invariant set");
}

#[test]
fn environment_fault_families_are_reproducible_and_worker_invariant() {
    // EPC pressure and clock skew are performance faults: the scenarios
    // assert internally that weights match an honest twin bitwise, and
    // the checker asserts the whole trace is worker-count invariant.
    for name in ["epc-pressure", "clock-skew"] {
        let report = run_invariant_checked(name, 14).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks > 0, "{name} must assert invariants");
        assert!(report.weights_digest.is_some(), "{name} trains a model");
    }
}

#[test]
fn soak_family_survives_the_long_horizon() {
    let report = run_invariant_checked("soak", 2).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.checks >= 150,
        "soak checks the invariant set every round, got {}",
        report.checks
    );
}

#[test]
fn different_seeds_produce_different_fault_plans() {
    let a = run_scenario("hub-crash-restart", 1, Parallelism::sequential()).unwrap();
    let b = run_scenario("hub-crash-restart", 2, Parallelism::sequential()).unwrap();
    assert_ne!(a.trace_digest, b.trace_digest, "seed must steer the fault plan");
}

#[test]
fn failures_carry_a_replayable_seed() {
    let err = run_scenario("no-such-scenario", 41, Parallelism::sequential()).unwrap_err();
    assert_eq!(
        err,
        SimError { scenario: "no-such-scenario".into(), seed: 41, message: err.message.clone() }
    );
    let rendered = err.to_string();
    assert!(rendered.contains("--seed 41"), "replay line must reprint the seed: {rendered}");
    assert!(rendered.contains("--scenario no-such-scenario"), "{rendered}");
}
