//! Campaign-engine guarantees: the delta-debugging shrinker finds the
//! true minimal reproducer, campaign runs are worker-count invariant
//! bit for bit, and the find→shrink→replay loop closes end to end.

use caltrain_core::hubs::HubSubmission;
use caltrain_runtime::Parallelism;
use caltrain_sim::campaign::{run_campaign, shrink_campaign, CampaignConfig};
use caltrain_sim::plan::{CampaignPlan, ChannelOpKind, FaultOp, PlannedOp, WalkProfile};
use caltrain_sim::shrink::shrink_plan;

/// The shrinker must isolate exactly the culprit pair from any amount of
/// surrounding noise: a synthetic oracle that violates iff the plan
/// still contains both X and Y, with X and Y buried at seed-dependent
/// positions inside seed-dependent random walks.
#[test]
fn shrinker_reduces_to_exactly_the_two_culprit_ops() {
    // Hub 7 and this salt never occur in a generated 2-hub walk, so the
    // markers are unambiguous.
    let x = FaultOp::EpcShrink { hub: 7, pages: 64 };
    let y = FaultOp::Channel { kind: ChannelOpKind::Reorder, salt: 0xDEAD_BEEF };
    for seed in 1..=5u64 {
        let mut plan = CampaignPlan::generate(seed, 10, 2, WalkProfile::Mixed);
        let at = seed as usize % (plan.ops.len() + 1);
        plan.ops.insert(at, PlannedOp { round: 3, op: x.clone() });
        let at = (seed as usize * 7) % (plan.ops.len() + 1);
        plan.ops.insert(at, PlannedOp { round: 6, op: y.clone() });

        let mut executed = 0usize;
        let outcome = shrink_plan(&plan, "synthetic violation", &mut |p| {
            executed += 1;
            let has = |op: &FaultOp| p.ops.iter().any(|planned| &planned.op == op);
            (has(&x) && has(&y)).then(|| "synthetic violation".to_string())
        });
        assert_eq!(outcome.plan.ops.len(), 2, "seed {seed}: {:?}", outcome.plan.ops);
        assert!(outcome.plan.ops.iter().any(|p| p.op == x), "seed {seed} lost X");
        assert!(outcome.plan.ops.iter().any(|p| p.op == y), "seed {seed} lost Y");
        assert_eq!(outcome.removed, plan.ops.len() - 2, "seed {seed}");
        // The oracle demands the exact ops, so no weakening can stick.
        assert_eq!(outcome.weakened, 0, "seed {seed}");
        assert_eq!(outcome.executions, executed, "seed {seed}");
        // Rounds are absolute: shrinking must not renumber survivors.
        let rounds: Vec<usize> = outcome.plan.ops.iter().map(|p| p.round).collect();
        let mut sorted = rounds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 6], "seed {seed}: {rounds:?}");
    }
}

#[test]
fn campaign_runs_are_worker_count_invariant() {
    let plan = CampaignPlan::generate(1, 8, 2, WalkProfile::Mixed);
    let config = CampaignConfig::default();
    let sequential = run_campaign(&plan, &config, Parallelism::sequential());
    let repeat = run_campaign(&plan, &config, Parallelism::sequential());
    let parallel = run_campaign(&plan, &config, Parallelism::new(4));
    assert!(sequential.violation.is_none(), "honest-invariant walk failed: {sequential:?}");
    assert_eq!(sequential, repeat, "campaign must be seed-deterministic");
    assert_eq!(sequential, parallel, "campaign must be worker-count invariant");
    assert!(sequential.weights_digest.is_some());
}

/// The full demo loop on a hand-built two-op plan: the hook trips, the
/// shrinker can remove nothing, and the violation replays bitwise —
/// including through the plan's text format.
#[test]
fn constructed_demo_violation_replays_bitwise_through_the_text_format() {
    let plan = CampaignPlan {
        seed: 42,
        rounds: 3,
        hubs: 2,
        ops: vec![
            PlannedOp { round: 0, op: FaultOp::EpcShrink { hub: 0, pages: 512 } },
            PlannedOp {
                round: 2,
                op: FaultOp::Hub { hub: 1, submission: HubSubmission::Scaled(-1.0) },
            },
        ],
    };
    let config = CampaignConfig { demo_violation: true };
    let p = Parallelism::sequential();
    let run = run_campaign(&plan, &config, p);
    let violation = run.violation.clone().expect("the hook must trip");
    assert!(violation.contains("round 2"), "{violation}");

    let again = run_campaign(&plan, &config, p);
    assert_eq!(run, again, "violating runs must replay bitwise");
    let roundtrip = CampaignPlan::parse(&plan.render()).expect("render/parse");
    assert_eq!(run, run_campaign(&roundtrip, &config, p), "text format must preserve identity");

    let outcome = shrink_campaign(&plan, &violation, &config, p);
    assert_eq!(outcome.plan.ops.len(), 2, "both ops are load-bearing: {:?}", outcome.plan.ops);
    assert_eq!(outcome.removed, 0);
}

/// The same loop on a generated walk (seed 1's Mixed walk trips the
/// hook — a pure function of the seed, so permanent): noise is stripped
/// to exactly one EPC shrink plus one byzantine submission.
#[test]
fn generated_demo_violation_shrinks_to_pressure_plus_byzantine() {
    let plan = CampaignPlan::generate(1, 12, 2, WalkProfile::Mixed);
    let config = CampaignConfig { demo_violation: true };
    let p = Parallelism::sequential();
    let run = run_campaign(&plan, &config, p);
    let violation = run.violation.clone().expect("seed 1's walk trips the demo hook");

    let outcome = shrink_campaign(&plan, &violation, &config, p);
    assert_eq!(outcome.plan.ops.len(), 2, "{:?}", outcome.plan.ops);
    assert!(
        outcome.plan.ops.iter().any(|o| matches!(o.op, FaultOp::EpcShrink { .. })),
        "{:?}",
        outcome.plan.ops
    );
    assert!(
        outcome
            .plan
            .ops
            .iter()
            .any(|o| matches!(o.op, FaultOp::Hub { submission: HubSubmission::Scaled(_), .. })),
        "{:?}",
        outcome.plan.ops
    );
    // The minimal reproducer replays the exact violation, twice, with
    // the same trace identity.
    let a = run_campaign(&outcome.plan, &config, p);
    let b = run_campaign(&outcome.plan, &config, p);
    assert_eq!(a.violation.as_deref(), Some(violation.as_str()));
    assert_eq!(a, b);
}

#[test]
fn cli_rejects_unknown_scenarios_with_exit_code_2_and_the_catalog() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_caltrain-sim"))
        .args(["--scenario", "no-such-family"])
        .output()
        .expect("spawn the sim CLI");
    assert_eq!(out.status.code(), Some(2), "unknown scenario is a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario 'no-such-family'"), "{stderr}");
    assert!(stderr.contains("baseline-honest"), "catalog must be printed: {stderr}");
    assert!(stderr.contains("epc-pressure"), "catalog must list new families: {stderr}");
    assert!(stderr.contains("soak"), "catalog must list new families: {stderr}");
}
