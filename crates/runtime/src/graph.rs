//! Per-call job graphs: one pool fan-out, dependency-gated phases.
//!
//! # Why a graph
//!
//! Through PR 5 a conv layer call ran each internal phase (im2col, GEMM
//! row tiles, epilogue scatter) as its *own* `broadcast` — three
//! pool-synchronised barriers per call, so every worker waited for the
//! slowest worker of every phase even though only *its own tile's*
//! inputs mattered. A [`JobGraph`] replaces the per-phase barriers with
//! explicit dependency edges: the caller declares nodes up front, wires
//! each node to the nodes whose output it reads, and [`JobGraph::run`]
//! executes the whole graph under a **single** `broadcast` — one
//! [`pool::phase_handoffs`] tick per layer
//! call instead of one per phase. A worker that finishes its GEMM tile
//! moves straight on to any ready scatter node; it never waits for the
//! rest of the pool.
//!
//! # Execution model
//!
//! Nodes are identified by insertion order, and every dependency must
//! already exist when [`JobGraph::add`] is called — insertion order is
//! therefore a topological order, which is also exactly the order the
//! sequential path runs (see Determinism). `run` seeds a ready queue
//! with the dependency-free nodes and fans out once on the persistent
//! pool; each slot loops { pop ready node, run it, decrement its
//! dependents' pending counts, push newly-ready nodes }. Slots park on
//! a graph-local condvar only when the ready queue is empty *and* the
//! graph is unfinished — i.e. when their remaining work genuinely
//! depends on another worker's in-flight node.
//!
//! The single `broadcast` keeps the helping-waiter deadlock story
//! intact: the *pool-level* nesting (a graph running inside a hub
//! worker's job) still drains the global queue while it waits, and the
//! graph itself never blocks a slot on anything but the graph condvar,
//! which completion always signals.
//!
//! # Determinism
//!
//! Which worker runs which node — and in what interleaving — is a race,
//! exactly like the pool's job queue. The contract is the same one the
//! rest of the runtime has: **no numeric call site may let scheduling
//! order reach the arithmetic.** Graph callers partition output buffers
//! statically per node and do any cross-node reduction either in a
//! dedicated join node or sequentially after `run` returns, in a fixed
//! order (the conv layer reduces dw along a canonical binary tree, see
//! `caltrain-tensor`'s `tree` module). Under that contract a graph run
//! is bit-identical at 1/2/4/8 workers, and bit-identical to running
//! the nodes sequentially in insertion order — which is precisely what
//! `run` does when handed a sequential [`Parallelism`] (zero handoffs).
//!
//! # Panics
//!
//! A panic inside a node poisons the graph: the failing slot records
//! the payload, wakes every parked slot, and all slots exit without
//! claiming further nodes. The payload resumes on the caller after the
//! pool join, so a panicking graph neither deadlocks sibling slots nor
//! leaks the broadcast barrier.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::{pool, Parallelism};

/// Handle to a node in a [`JobGraph`], returned by [`JobGraph::add`]
/// and passed back as the dependency edges of later nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's index: its insertion order, which is also the
    /// argument `run` passes to the node body closure.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Build-time per-node bookkeeping: how many dependencies gate it and
/// which later nodes it gates in turn.
struct Node {
    deps: usize,
    dependents: Vec<usize>,
}

/// A dependency graph of jobs executed with **one** pool fan-out.
///
/// Typical shape (the conv forward pipeline):
///
/// ```
/// use caltrain_runtime::{graph::JobGraph, Parallelism};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let mut g = JobGraph::new();
/// let a = g.add(&[]); // phase 1, tile A
/// let b = g.add(&[]); // phase 1, tile B
/// let c = g.add(&[a, b]); // phase 2 joins both tiles
/// let ran = AtomicUsize::new(0);
/// g.run(Parallelism::new(4), |id| {
///     // `id` is the insertion index: 0 for `a`, 1 for `b`, 2 for `c`.
///     if id == c.index() {
///         assert_eq!(ran.load(Ordering::SeqCst), 2);
///     }
///     ran.fetch_add(1, Ordering::SeqCst);
/// });
/// assert_eq!(ran.into_inner(), 3);
/// ```
#[derive(Default)]
pub struct JobGraph {
    nodes: Vec<Node>,
}

impl JobGraph {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph::default()
    }

    /// Adds a node gated on `deps` (each from an earlier `add` on this
    /// graph) and returns its id. Duplicate dependencies are counted
    /// once. Insertion order is the topological order the sequential
    /// path executes.
    pub fn add(&mut self, deps: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        let mut uniq: Vec<usize> = deps.iter().map(|d| d.0).collect();
        uniq.sort_unstable();
        uniq.dedup();
        for &dep in &uniq {
            assert!(dep < id, "dependency on a node not yet added");
            self.nodes[dep].dependents.push(id);
        }
        self.nodes.push(Node { deps: uniq.len(), dependents: Vec::new() });
        NodeId(id)
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Executes every node exactly once, respecting dependency edges,
    /// and returns when all have finished.
    ///
    /// Sequential parallelism (or a single-node graph) runs the nodes
    /// inline in insertion order without touching the pool — zero
    /// phase handoffs. Otherwise the graph fans out **once** on the
    /// persistent pool (one handoff) with at most
    /// `parallelism.workers()` slots, capped by the node count.
    ///
    /// # Panics
    ///
    /// The first panic raised inside a node resumes on the caller after
    /// every slot has exited; remaining unclaimed nodes do not run.
    pub fn run<F: Fn(usize) + Sync>(self, parallelism: Parallelism, f: F) {
        let total = self.nodes.len();
        if total == 0 {
            return;
        }
        let slots = parallelism.workers().min(total);
        if slots <= 1 {
            // Insertion order is a topological order by construction.
            for id in 0..total {
                f(id);
            }
            return;
        }

        let pending: Vec<AtomicUsize> =
            self.nodes.iter().map(|n| AtomicUsize::new(n.deps)).collect();
        let mut seed = VecDeque::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.deps == 0 {
                seed.push_back(id);
            }
        }
        let state = RunState {
            nodes: &self.nodes,
            pending,
            ready: Mutex::new(seed),
            ready_cv: Condvar::new(),
            completed: AtomicUsize::new(0),
            total,
            aborted: AtomicBool::new(false),
            panic: Mutex::new(None),
        };

        pool::broadcast(slots, &|_slot| state.work(&f));

        if let Some(payload) = state.panic.lock().take() {
            panic::resume_unwind(payload);
        }
        debug_assert_eq!(state.completed.load(Ordering::Acquire), total);
    }
}

/// Shared state of one `run` fan-out.
struct RunState<'g> {
    nodes: &'g [Node],
    pending: Vec<AtomicUsize>,
    ready: Mutex<VecDeque<usize>>,
    ready_cv: Condvar,
    completed: AtomicUsize,
    total: usize,
    aborted: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl RunState<'_> {
    /// True once every node has completed or a node has panicked —
    /// either way, slots must exit.
    fn finished(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
            || self.completed.load(Ordering::Acquire) == self.total
    }

    /// One slot's worker loop: claim ready nodes until the graph is
    /// finished, parking on the graph condvar while nothing is ready.
    fn work<F: Fn(usize)>(&self, f: &F) {
        loop {
            let id = {
                let mut ready = self.ready.lock();
                loop {
                    if self.finished() {
                        return;
                    }
                    if let Some(id) = ready.pop_front() {
                        break id;
                    }
                    ready = self.ready_cv.wait(ready);
                }
            };

            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(id))) {
                self.panic.lock().get_or_insert(payload);
                self.aborted.store(true, Ordering::Release);
                let _guard = self.ready.lock();
                self.ready_cv.notify_all();
                return;
            }

            // Release dependents; push the newly-ready under one lock
            // so a wave of completions wakes the pool once, not N times.
            let mut newly_ready: Vec<usize> = Vec::new();
            for &dep in &self.nodes[id].dependents {
                if self.pending[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                    newly_ready.push(dep);
                }
            }
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.total;
            if !newly_ready.is_empty() || done {
                let mut ready = self.ready.lock();
                ready.extend(newly_ready);
                self.ready_cv.notify_all();
            }
        }
    }
}

/// A staging buffer shared across the nodes of one [`JobGraph`] run.
///
/// Graph nodes routinely hand written ranges of one flat `f32` buffer
/// to downstream nodes: im2col rows feed a GEMM, GEMM tiles feed the
/// scatter. Rust cannot express "disjoint `&mut` chunks handed out
/// dynamically across threads, with reads ordered by dependency edges"
/// as safe borrows, so `PhasedSlice` erases the borrow at the graph
/// boundary — the same single-point lifetime/aliasing erasure the pool
/// does for job closures.
///
/// # Contract (checked by the caller's graph edges, not the compiler)
///
/// - Two nodes that may run concurrently must touch **disjoint** ranges
///   when either writes ([`Self::chunk_mut`]).
/// - A node reading a range ([`Self::chunk`]) must be a (transitive)
///   dependent of every node that writes it; the graph's ready-queue
///   mutex provides the release/acquire edge that makes those writes
///   visible.
///
/// Range bounds are checked; overlap across nodes is not (it cannot be,
/// node-locally) — which is why every `PhasedSlice` use in this
/// workspace lives next to the graph wiring that justifies it.
pub struct PhasedSlice<'a> {
    ptr: *mut f32,
    len: usize,
    _borrow: PhantomData<&'a mut [f32]>,
}

// SAFETY: the pointee is a caller-owned `&mut [f32]` that outlives the
// graph run (lifetime `'a` pins it), and the disjointness/ordering
// contract above is what makes concurrent chunk access race-free.
#[allow(unsafe_code)]
unsafe impl Send for PhasedSlice<'_> {}
#[allow(unsafe_code)]
unsafe impl Sync for PhasedSlice<'_> {}

impl<'a> PhasedSlice<'a> {
    /// Wraps a buffer for the duration of a graph run.
    pub fn new(slice: &'a mut [f32]) -> Self {
        PhasedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: PhantomData,
        }
    }

    /// Total buffer length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty buffer.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to `range`, for the node that owns (writes) it.
    /// See the type-level contract; bounds are checked here.
    #[allow(clippy::mut_from_ref)]
    pub fn chunk_mut(&self, range: Range<usize>) -> &mut [f32] {
        assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: in-bounds by the assert; aliasing excluded by the
        // caller's dependency edges (type-level contract).
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
        }
    }

    /// Shared read access to `range`, for nodes downstream of every
    /// writer of that range.
    pub fn chunk(&self, range: Range<usize>) -> &[f32] {
        assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: in-bounds by the assert; no concurrent writer by the
        // caller's dependency edges (type-level contract).
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.ptr.add(range.start), range.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A diamond graph must observe both middle nodes before the join,
    /// at any worker count.
    #[test]
    fn diamond_respects_dependencies() {
        for workers in [1, 2, 4, 8] {
            let mut g = JobGraph::new();
            let a = g.add(&[]);
            let b = g.add(&[a]);
            let c = g.add(&[a]);
            let d = g.add(&[b, c]);
            let done = [(); 4].map(|_| AtomicUsize::new(0));
            g.run(Parallelism::new(workers), |id| {
                if id == d.index() {
                    assert_eq!(done[b.index()].load(Ordering::SeqCst), 1);
                    assert_eq!(done[c.index()].load(Ordering::SeqCst), 1);
                }
                if id != a.index() {
                    assert_eq!(done[a.index()].load(Ordering::SeqCst), 1);
                }
                done[id].fetch_add(1, Ordering::SeqCst);
            });
            assert!(done.iter().all(|d| d.load(Ordering::SeqCst) == 1));
        }
    }

    /// Every node runs exactly once even with far more nodes than
    /// workers and a long chain forcing slots to park and re-wake.
    #[test]
    fn wide_and_chained_nodes_all_run_once() {
        let mut g = JobGraph::new();
        let mut prev: Option<NodeId> = None;
        let mut ids = Vec::new();
        for i in 0..64 {
            // Alternate free nodes and a serial chain through them.
            let id = match (i % 2, prev) {
                (0, _) => g.add(&[]),
                (_, Some(p)) => g.add(&[p]),
                (_, None) => g.add(&[]),
            };
            prev = Some(id);
            ids.push(id);
        }
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        g.run(Parallelism::new(4), |id| {
            counts[id].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    /// One graph run = one phase handoff, regardless of node count;
    /// sequential runs cost zero.
    #[test]
    fn one_handoff_per_parallel_run() {
        let mut g = JobGraph::new();
        for _ in 0..16 {
            g.add(&[]);
        }
        let before = pool::phase_handoffs();
        g.run(Parallelism::new(4), |_| {});
        assert_eq!(pool::phase_handoffs() - before, 1);

        let mut g = JobGraph::new();
        for _ in 0..16 {
            g.add(&[]);
        }
        let before = pool::phase_handoffs();
        g.run(Parallelism::sequential(), |_| {});
        assert_eq!(pool::phase_handoffs() - before, 0);
    }

    /// A panicking node propagates to the caller without wedging the
    /// other slots (they all exit and the broadcast joins).
    #[test]
    fn node_panic_propagates_without_deadlock() {
        let mut g = JobGraph::new();
        let a = g.add(&[]);
        g.add(&[]);
        g.add(&[a]);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            g.run(Parallelism::new(4), |id| {
                if id == a.index() {
                    panic!("boom in node");
                }
            });
        }));
        assert!(result.is_err());
    }

    /// PhasedSlice hands out the ranges the graph protocol promises.
    #[test]
    fn phased_slice_chunks_round_trip() {
        let mut buf = vec![0.0f32; 8];
        {
            let ps = PhasedSlice::new(&mut buf);
            ps.chunk_mut(0..4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            ps.chunk_mut(4..8).copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
            assert_eq!(ps.chunk(2..6), &[3.0, 4.0, 5.0, 6.0]);
        }
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    /// Nested use: graph nodes may themselves broadcast (helping-waiter
    /// property carries over).
    #[test]
    fn graph_inside_pool_job_does_not_deadlock() {
        let hits = AtomicUsize::new(0);
        crate::par_map(Parallelism::new(2), &[0, 1], |_, _| {
            let mut g = JobGraph::new();
            let a = g.add(&[]);
            g.add(&[a]);
            g.run(Parallelism::new(2), |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
