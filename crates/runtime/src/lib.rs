//! The parallel execution engine behind the CalTrain cluster.
//!
//! Paper §IV-B scales in-enclave training out over multiple learning
//! hubs, each on its own enclave — "sub-models can be trained
//! independently". This crate supplies the machinery that makes that
//! concurrency real in the reproduction: a **persistent worker pool**
//! (long-lived threads behind a job queue — see [`pool`]) driving
//! [`par_map`] / [`par_map_mut`], plus the [`Parallelism`] knob that
//! every parallel call site takes.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results come back in item order regardless of
//!    worker count or scheduling, so a caller that folds them
//!    sequentially produces bit-identical output at 1 and at 8 workers.
//!    All simulated-clock charging belongs in that sequential fold, not
//!    in the mapped closure, whenever cross-item charge *order* matters.
//! 2. **No spawns on the hot path.** Worker threads are created once
//!    (lazily, or ahead of time via [`pool::warm`]) and reused for every
//!    later call. [`pool::thread_spawns`] is flat after warm-up; the
//!    `training_throughput` bench gates it at zero spawns per step. The
//!    scoped-thread design this replaced paid ~4 spawns per conv call —
//!    ~20 % of a batch-16 training step.
//! 3. **No new dependencies.** The pool is `std::thread` plus the
//!    vendored `parking_lot` shim — the workspace stays offline-green.
//! 4. **Sequential by default.** [`Parallelism::default`] is one worker
//!    unless the `CALTRAIN_WORKERS` environment variable says otherwise,
//!    so the seed tests keep running single-threaded and CI can force
//!    the threaded paths with one env var. Sequential calls (and
//!    single-item maps) stay inline on the caller and never touch the
//!    pool at all.
//!
//! # Example
//!
//! ```
//! use caltrain_runtime::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::new(4), &[1, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(unsafe_code)] // the one exception is the lifetime erasure in `pool`
#![warn(missing_docs)]

pub mod graph;
pub mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// How many OS worker threads a parallel call site may use.
///
/// A knob, not a pool handle: the persistent pool lives process-wide,
/// so a `Parallelism` can be freely copied into configs and structs.
/// One worker means "run inline on the calling thread" — the pool is
/// not touched at all, which is the deterministic default for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    workers: usize,
}

impl Parallelism {
    /// Environment variable consulted by [`Parallelism::from_env`] (and
    /// therefore by `Default`): the CI switch that forces every
    /// default-configured component onto the threaded path.
    pub const ENV_VAR: &'static str = "CALTRAIN_WORKERS";

    /// Exactly one worker: run inline on the calling thread.
    pub const fn sequential() -> Self {
        Parallelism { workers: 1 }
    }

    /// A knob for `workers` threads; zero is clamped to one.
    pub fn new(workers: usize) -> Self {
        Parallelism { workers: workers.max(1) }
    }

    /// Reads [`Parallelism::ENV_VAR`]; absent means sequential. An
    /// unparsable value also falls back to sequential but warns on
    /// stderr — a CI run that sets the variable to force the threaded
    /// paths must not silently test nothing.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Err(_) => Parallelism::sequential(),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(workers) => Parallelism::new(workers),
                Err(_) => {
                    eprintln!(
                        "caltrain-runtime: ignoring unparsable {}={raw:?}; running sequential",
                        Self::ENV_VAR
                    );
                    Parallelism::sequential()
                }
            },
        }
    }

    /// The worker count (always ≥ 1).
    pub fn workers(self) -> usize {
        self.workers
    }

    /// True when the knob runs everything inline on the calling thread.
    pub fn is_sequential(self) -> bool {
        self.workers == 1
    }
}

impl Default for Parallelism {
    /// [`Parallelism::from_env`]: sequential unless `CALTRAIN_WORKERS`
    /// is set — the documented CI override.
    fn default() -> Self {
        Self::from_env()
    }
}

/// Maps `f` over `items` on up to `parallelism.workers()` persistent
/// pool workers, returning results **in item order**.
///
/// Workers claim contiguous *blocks* of indices from a shared counter —
/// roughly eight blocks per worker, so fine-grained items (a distance
/// scan computes tens of nanoseconds per item) amortise the counter and
/// the results lock instead of serializing on them, while uneven blocks
/// still load-balance. Results are re-assembled in index order, which is
/// what makes the output independent of scheduling. With one worker (or
/// ≤ 1 item) everything runs inline on the caller and the pool is not
/// touched; otherwise the calling thread takes one worker slot itself,
/// so a budget of `w` workers occupies `w - 1` pool threads.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once every worker slot
/// has finished (the contract the old scoped-thread pool had).
pub fn par_map<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if parallelism.is_sequential() || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let workers = parallelism.workers().min(items.len());
    let block = (items.len() / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let runs: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    pool::broadcast(workers, &|_slot| loop {
        let start = next.fetch_add(block, Ordering::Relaxed);
        if start >= items.len() {
            break;
        }
        let end = (start + block).min(items.len());
        let run: Vec<R> = items[start..end]
            .iter()
            .enumerate()
            .map(|(offset, item)| f(start + offset, item))
            .collect();
        runs.lock().push((start, run));
    });
    let mut runs = runs.into_inner();
    runs.sort_by_key(|&(start, _)| start);
    runs.into_iter().flat_map(|(_, run)| run).collect()
}

/// Like [`par_map`] but with exclusive access to each item — the shape
/// hub training needs, where every hub's trainer advances its own RNG
/// and weights.
///
/// Each `&mut T` is handed to exactly one worker slot via a locked job
/// list; items never alias, results come back in item order. Worker
/// slots run on the persistent pool (caller included), so steady-state
/// calls spawn no threads.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once every worker slot
/// has finished.
pub fn par_map_mut<T, R, F>(parallelism: Parallelism, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if parallelism.is_sequential() || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let mut jobs: Vec<(usize, &mut T)> = items.iter_mut().enumerate().collect();
    jobs.reverse(); // workers pop from the back => indices are claimed in order
    let queue = Mutex::new(jobs);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    pool::broadcast(parallelism.workers().min(n), &|_slot| loop {
        let job = queue.lock().pop();
        let Some((i, item)) = job else { break };
        let r = f(i, item);
        results.lock().push((i, r));
    });
    reorder(results.into_inner())
}

/// Splits `0..len` into at most `parts` contiguous, near-equal ranges
/// (the first `len % parts` ranges are one longer).
///
/// This is the *static* schedule used by the layer-level per-sample
/// loops in `caltrain-nn`: every sample's arithmetic is independent, so
/// a deterministic partition plus an order-preserving reduction keeps
/// results bit-identical at any worker count — the invariant the whole
/// runtime is built around. Returns fewer than `parts` ranges when there
/// are fewer items than parts; never returns an empty range.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    chunk_ranges_iter(len, parts).collect()
}

/// Iterator form of [`chunk_ranges`] — identical ranges, **zero heap
/// allocation**. The shape the zero-alloc layer hot loops use for their
/// sequential tile sweeps (the `Vec` forms exist for job-list builders,
/// which allocate anyway).
pub fn chunk_ranges_iter(
    len: usize,
    parts: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let parts = parts.max(1).min(len);
    let base = if parts == 0 { 0 } else { len / parts };
    let extra = if parts == 0 { 0 } else { len % parts };
    let mut start = 0;
    (0..parts).map(move |p| {
        let size = base + usize::from(p < extra);
        let range = start..start + size;
        start += size;
        range
    })
}

/// Like [`chunk_ranges`], but additionally caps every range at
/// `max_chunk` items, growing the range *count* past `parts` when the
/// cap demands it.
///
/// This is the schedule behind scratch-bounded tiling: a caller that
/// owns one working buffer per range can bound that buffer's size by
/// `max_chunk` regardless of how large `len` grows (the conv layers cap
/// their wide-GEMM scratch this way), while small inputs still split
/// into at most `parts` near-equal ranges. The partition depends only
/// on `(len, parts, max_chunk)` — never on worker count or scheduling —
/// so it preserves the bit-identity story of [`chunk_ranges`].
pub fn chunk_ranges_capped(
    len: usize,
    parts: usize,
    max_chunk: usize,
) -> Vec<std::ops::Range<usize>> {
    chunk_ranges_capped_iter(len, parts, max_chunk).collect()
}

/// Iterator form of [`chunk_ranges_capped`] — identical ranges, zero
/// heap allocation (see [`chunk_ranges_iter`]).
pub fn chunk_ranges_capped_iter(
    len: usize,
    parts: usize,
    max_chunk: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let max_chunk = max_chunk.max(1);
    let min_parts = len.div_ceil(max_chunk);
    chunk_ranges_iter(len, parts.max(min_parts))
}

fn reorder<R>(mut tagged: Vec<(usize, R)>) -> Vec<R> {
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Barrier;

    #[test]
    fn knob_clamps_and_reports() {
        assert_eq!(Parallelism::new(0).workers(), 1);
        assert!(Parallelism::new(1).is_sequential());
        assert!(!Parallelism::new(2).is_sequential());
        assert_eq!(Parallelism::sequential(), Parallelism::new(1));
    }

    #[test]
    fn par_map_preserves_order_at_any_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 4, 8, 16] {
            let got = par_map(Parallelism::new(workers), &items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_mut_visits_every_item_exactly_once() {
        for workers in [1, 3, 8] {
            let mut items = vec![0u32; 64];
            let indices = par_map_mut(Parallelism::new(workers), &mut items, |i, slot| {
                *slot += 1;
                i
            });
            assert!(items.iter().all(|&v| v == 1), "workers = {workers}");
            assert_eq!(indices, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_really_runs_workers_concurrently() {
        // One job per worker, all meeting at a barrier: completes only if
        // the pool truly runs `workers` threads at once.
        let workers = 4;
        let barrier = Barrier::new(workers);
        let items: Vec<usize> = (0..workers).collect();
        let ids = par_map(Parallelism::new(workers), &items, |_, _| {
            barrier.wait();
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), workers);
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(Parallelism::new(8), &empty, |_, &b| b).is_empty());
        let caller = std::thread::current().id();
        let ids = par_map(Parallelism::new(8), &[7u8], |_, _| std::thread::current().id());
        assert_eq!(ids, vec![caller], "single item must not pay thread spawn");
    }

    #[test]
    fn env_knob_parses_and_clamps() {
        // This test owns CALTRAIN_WORKERS within this binary: every
        // other caltrain-runtime test passes an explicit knob, so no
        // parallel test thread reads the environment while we mutate
        // it. The prior value is restored so a CI pass that exports
        // the variable keeps it for the rest of the test run.
        let previous = std::env::var(Parallelism::ENV_VAR).ok();
        std::env::remove_var(Parallelism::ENV_VAR);
        assert!(Parallelism::from_env().is_sequential());
        std::env::set_var(Parallelism::ENV_VAR, "4");
        assert_eq!(Parallelism::from_env().workers(), 4);
        std::env::set_var(Parallelism::ENV_VAR, "0");
        assert_eq!(Parallelism::from_env().workers(), 1);
        std::env::set_var(Parallelism::ENV_VAR, "not-a-number");
        assert!(Parallelism::from_env().is_sequential());
        match previous {
            Some(value) => std::env::set_var(Parallelism::ENV_VAR, value),
            None => std::env::remove_var(Parallelism::ENV_VAR),
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 16, 17, 100] {
            for parts in [1usize, 2, 3, 4, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                assert!(ranges.len() <= parts.min(len.max(1)));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty range");
                    next = r.end;
                }
                assert_eq!(next, len, "full cover (len={len}, parts={parts})");
                if !ranges.is_empty() {
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1, "near-equal split");
                }
            }
        }
    }

    #[test]
    fn capped_chunks_respect_cap_and_cover() {
        for len in [0usize, 1, 5, 16, 100, 1000] {
            for parts in [1usize, 2, 4, 8] {
                for cap in [1usize, 3, 7, 64, 10_000] {
                    let ranges = chunk_ranges_capped(len, parts, cap);
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "contiguous");
                        assert!(!r.is_empty(), "no empty range");
                        assert!(r.len() <= cap, "len={len} parts={parts} cap={cap}");
                        next = r.end;
                    }
                    assert_eq!(next, len, "full cover");
                    if len > 0 && len.div_ceil(cap) <= parts {
                        assert!(
                            ranges.len() <= parts,
                            "cap inactive must not grow the range count"
                        );
                    }
                }
            }
        }
        // The cap is what grows the count: 100 items, 2 parts, cap 10.
        assert_eq!(chunk_ranges_capped(100, 2, 10).len(), 10);
        // Uncapped behaviour matches chunk_ranges exactly.
        assert_eq!(chunk_ranges_capped(17, 4, usize::MAX), chunk_ranges(17, 4));
    }

    /// Edge cases for the iterator partition forms: zero-length spans,
    /// a cap smaller than one "row" of work, and more workers than
    /// items. All of them must agree with the uncapped [`chunk_ranges`]
    /// partition (iterator forms are documented as identical to the
    /// `Vec` forms, and an inactive cap must change nothing).
    #[test]
    fn chunk_iter_edge_cases_agree_with_uncapped_vec_form() {
        // Zero-length span: no ranges from any form, any knob.
        for parts in [1usize, 2, 8] {
            assert_eq!(chunk_ranges_iter(0, parts).count(), 0);
            assert_eq!(chunk_ranges_capped_iter(0, parts, 1).count(), 0);
            assert_eq!(chunk_ranges(0, parts), Vec::new());
        }

        // Cap smaller than one row (cap = 1): every item becomes its own
        // range — exactly the uncapped partition at parts = len.
        for len in [1usize, 2, 7, 16] {
            for parts in [1usize, 3, 8] {
                let capped: Vec<_> = chunk_ranges_capped_iter(len, parts, 1).collect();
                assert_eq!(capped, chunk_ranges(len, len), "len={len} parts={parts}");
                assert!(capped.iter().all(|r| r.len() == 1));
            }
        }

        // Workers > items: never more ranges than items, never empty
        // ranges, and iter == Vec == capped-with-inactive-cap.
        for len in [0usize, 1, 2, 5] {
            for parts in [7usize, 64, 1000] {
                let base = chunk_ranges(len, parts);
                let from_iter: Vec<_> = chunk_ranges_iter(len, parts).collect();
                let capped: Vec<_> =
                    chunk_ranges_capped_iter(len, parts, usize::MAX).collect();
                assert_eq!(from_iter, base);
                assert_eq!(capped, base);
                assert_eq!(base.len(), len.min(parts));
                assert!(base.iter().all(|r| !r.is_empty()));
            }
        }

        // General agreement sweep: capped iter with the cap inactive is
        // bit-for-bit the uncapped partition.
        for len in [1usize, 9, 33, 128] {
            for parts in [1usize, 2, 5, 16] {
                let cap = len; // cap == len can never split further
                let capped: Vec<_> = chunk_ranges_capped_iter(len, parts, cap).collect();
                assert_eq!(capped, chunk_ranges(len, parts));
            }
        }
    }

    #[test]
    fn pool_threads_are_reused_not_respawned() {
        // Warm-up: a map wide enough to cover every sibling test's
        // concurrent demand, so no later call in *this* test can need
        // growth. (The spawn counter is process-global; siblings may
        // still grow the pool for their own batches, so the assertion
        // runs the measured maps back-to-back and tolerates nothing in
        // between claiming threads on our behalf: repeated calls at the
        // same width must not spawn.)
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(Parallelism::new(4), &items, |_, &x| x + 1);
        let warm = pool::thread_spawns();
        assert!(pool::threads() >= 3, "a 4-worker map must have grown the pool");
        for _ in 0..50 {
            let _ = par_map(Parallelism::new(4), &items, |_, &x| x + 1);
        }
        // Growth only ever happens when outstanding jobs exceed live
        // threads; at a fixed width that can only be caused by sibling
        // tests, whose spawns are bounded by their own (one-time)
        // warm-up. Re-running at the same width twice therefore has to
        // be spawn-free at least once.
        let after = pool::thread_spawns();
        let first_delta = after - warm;
        for _ in 0..50 {
            let _ = par_map(Parallelism::new(4), &items, |_, &x| x + 1);
        }
        let second_delta = pool::thread_spawns() - after;
        assert!(
            first_delta == 0 || second_delta == 0,
            "steady-state maps kept spawning threads ({first_delta} then {second_delta})"
        );
    }

    #[test]
    fn nested_broadcasts_do_not_deadlock() {
        // Conv layers fan out *inside* hub workers: an outer par_map_mut
        // whose jobs each run an inner par_map. The helping waiter makes
        // this safe on a shared pool.
        let mut outer: Vec<usize> = (0..4).collect();
        let results = par_map_mut(Parallelism::new(4), &mut outer, |_, &mut x| {
            let inner: Vec<usize> = (0..8).map(|v| v + 10 * x).collect();
            par_map(Parallelism::new(4), &inner, |_, &v| v * 2).iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..4)
            .map(|x| (0..8).map(|v| (v + 10 * x) * 2).sum())
            .collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn panics_propagate_after_the_batch_completes() {
        let items: Vec<usize> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(4), &items, |_, &x| {
                assert!(x != 17, "intentional test panic");
                x
            })
        });
        assert!(caught.is_err(), "a job panic must reach the caller");
        // The pool must still be fully functional afterwards.
        let ok = par_map(Parallelism::new(4), &items, |_, &x| x * 2);
        assert_eq!(ok, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn warm_pre_spawns_capacity() {
        pool::warm(3);
        assert!(pool::threads() >= 2, "warm(3) must leave >= 2 pool threads");
        pool::warm(1); // sequential budgets are a no-op
    }

    #[test]
    fn results_deterministic_with_uneven_work() {
        // Items that take wildly different times still land in order.
        let items: Vec<u64> = (0..32).map(|i| (i * 37) % 11).collect();
        let slow = par_map(Parallelism::new(8), &items, |_, &x| {
            std::thread::sleep(std::time::Duration::from_micros(x * 50));
            x * x
        });
        let fast: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(slow, fast);
    }
}
