//! The persistent worker pool behind [`par_map`](crate::par_map) /
//! [`par_map_mut`](crate::par_map_mut).
//!
//! # Why persistent
//!
//! Through PR 3 the runtime spawned fresh `std::thread::scope` threads on
//! *every* parallel call. At hub granularity (one call per federated
//! round) that was noise; at layer granularity it became the dominant
//! cost — ~4 spawns per conv call, measured ~20 % overhead at batch 16,
//! enough to make 4 workers *slower* than 1 on the host. This module
//! replaces the spawns with long-lived threads behind one process-wide
//! job queue: threads are created lazily the first time a capacity is
//! needed (and counted by [`thread_spawns`], which benches assert is
//! flat after warm-up), then parked on a condvar between jobs forever.
//!
//! # Execution model
//!
//! The only primitive is the crate-internal `broadcast(slots, f)`: run
//! `f(slot)` once
//! for every `slot in 0..slots`, concurrently, returning when all calls
//! have finished. Slot 0 always runs inline on the calling thread; slots
//! `1..` are pushed onto the shared queue for pool threads. While its
//! batch is outstanding the caller *helps*: it drains jobs from the
//! queue (its own batch's or anyone else's), which is what makes nested
//! parallelism (conv layers fanning out inside hub workers) deadlock-free
//! — every waiter is also a worker.
//!
//! Pool capacity is grown to cover the jobs outstanding at enqueue time,
//! so even jobs that block on each other (the barrier-style concurrency
//! proofs in the test suite) always have enough threads to make
//! progress. Threads are never torn down; an idle pool costs parked
//! threads only.
//!
//! # Determinism
//!
//! The pool schedules *dynamically* — which thread runs which job is a
//! race — but no caller can observe it: `par_map`/`par_map_mut`
//! reassemble results in item order, and every numeric call site
//! partitions statically and reduces sequentially. Worker count and
//! scheduling therefore never change a single result bit; the pool only
//! changes wall-clock. The determinism tests in `caltrain-nn`,
//! `caltrain-core` and the `training_throughput` bench pin this.
//!
//! # Safety
//!
//! Pool threads outlive any particular call, yet jobs borrow the
//! caller's stack (`f` and everything it captures). The lifetime is
//! erased at the queue boundary (the one `unsafe` in this crate) and
//! re-established by blocking: `broadcast` does not return — not even
//! by panic — until every job of its batch has finished running, so the
//! borrows a pool thread dereferences are always live. Panics inside
//! jobs are caught on the worker, carried back through the batch state,
//! and resumed on the caller after the barrier.

#![allow(clippy::needless_doctest_main)]

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

use parking_lot::{Condvar, Mutex};

/// Process-wide pool state: the job queue plus thread accounting.
struct PoolShared {
    /// Pending jobs. One queue for every batch keeps the design small;
    /// helping callers drain it without caring whose batch a job is.
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on job push *and* batch completion; workers and waiting
    /// callers both park here and re-check their predicate.
    work_ready: Condvar,
    /// Live pool threads (monotone — threads are never torn down).
    capacity: AtomicUsize,
    /// Jobs enqueued but not yet finished, across all batches. Capacity
    /// is grown to at least this number so jobs that block on their
    /// batch siblings (barriers in tests) can always all run at once.
    outstanding: AtomicUsize,
    /// Total threads ever spawned; flat after warm-up (benches gate it).
    spawned: AtomicUsize,
    /// Serialises growth decisions so two callers cannot both spawn for
    /// the same deficit.
    grow_lock: Mutex<()>,
    /// Pool-synchronised fan-out/join barriers ever executed (one per
    /// `broadcast` that actually touched the queue). See
    /// [`phase_handoffs`].
    handoffs: AtomicUsize,
}

/// Per-[`broadcast`] completion state shared between the caller and the
/// pool threads running its jobs.
struct BatchState {
    /// Queued jobs of this batch still running or not yet claimed.
    remaining: AtomicUsize,
    /// First panic payload captured from a job, replayed on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// One queued slot invocation with its lifetime erased.
///
/// `data` points at the caller's closure, alive because the caller
/// blocks in [`broadcast`] until `state.remaining` reaches zero.
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    slot: usize,
    state: Arc<BatchState>,
}

// SAFETY: `data` is only dereferenced (via `call`) while the owning
// `broadcast` frame is blocked waiting on `state`, so the pointee is
// live and `&F: Sync` makes the shared access sound across threads.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

impl Job {
    /// Runs the job, records a panic instead of unwinding, then marks
    /// completion. The completion notify takes the queue lock so it
    /// pairs with the waiter's locked predicate check (no lost wakeup).
    fn run(self, shared: &PoolShared) {
        // SAFETY: see the `Send` impl — the pointee outlives this call.
        #[allow(unsafe_code)]
        let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            (self.call)(self.data, self.slot)
        }));
        if let Err(payload) = result {
            let mut slot = self.state.panic.lock();
            slot.get_or_insert(payload);
        }
        let last_of_batch = self.state.remaining.fetch_sub(1, Ordering::AcqRel) == 1;
        shared.outstanding.fetch_sub(1, Ordering::AcqRel);
        if last_of_batch {
            let _guard = shared.queue.lock();
            shared.work_ready.notify_all();
        }
    }
}

fn shared() -> &'static Arc<PoolShared> {
    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();
    POOL.get_or_init(|| {
        Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            capacity: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
            grow_lock: Mutex::new(()),
            handoffs: AtomicUsize::new(0),
        })
    })
}

/// Grows the pool to at least `needed` threads. Never shrinks.
fn ensure_capacity(needed: usize) {
    let pool = shared();
    if pool.capacity.load(Ordering::Acquire) >= needed {
        return;
    }
    let _grow = pool.grow_lock.lock();
    let current = pool.capacity.load(Ordering::Acquire);
    for _ in current..needed {
        let worker = Arc::clone(pool);
        thread::Builder::new()
            .name("caltrain-pool".into())
            .spawn(move || worker_loop(&worker))
            .expect("spawn pool worker thread");
        pool.spawned.fetch_add(1, Ordering::Relaxed);
    }
    if needed > current {
        pool.capacity.store(needed, Ordering::Release);
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut queue = shared.queue.lock();
    loop {
        if let Some(job) = queue.pop_front() {
            drop(queue);
            job.run(shared);
            queue = shared.queue.lock();
        } else {
            queue = shared.work_ready.wait(queue);
        }
    }
}

/// Runs `f(slot)` for every `slot in 0..slots` concurrently on the
/// persistent pool, returning once all invocations have finished.
///
/// Slot 0 runs inline on the caller; with `slots <= 1` the pool is not
/// touched at all (the inline fast path the sequential default takes).
/// While waiting, the caller executes queued jobs — its own batch's or
/// other batches' — so nested broadcasts cannot deadlock.
///
/// # Panics
///
/// The first panic raised inside any slot resumes on the caller after
/// every slot has finished (the scoped-thread contract this pool
/// replaced).
pub(crate) fn broadcast<F: Fn(usize) + Sync>(slots: usize, f: &F) {
    if slots <= 1 {
        if slots == 1 {
            f(0);
        }
        return;
    }

    /// Monomorphic trampoline re-typing the erased pointer.
    #[allow(unsafe_code)]
    unsafe fn call<F: Fn(usize)>(data: *const (), slot: usize) {
        // SAFETY: `broadcast` keeps `f` alive until the batch completes.
        (*(data as *const F))(slot)
    }

    let pool = shared();
    pool.handoffs.fetch_add(1, Ordering::Relaxed);
    let queued = slots - 1;
    let state = Arc::new(BatchState {
        remaining: AtomicUsize::new(queued),
        panic: Mutex::new(None),
    });
    let outstanding = pool.outstanding.fetch_add(queued, Ordering::AcqRel) + queued;
    ensure_capacity(outstanding);
    {
        let mut queue = pool.queue.lock();
        for slot in 1..slots {
            queue.push_back(Job {
                data: f as *const F as *const (),
                call: call::<F>,
                slot,
                state: Arc::clone(&state),
            });
        }
        pool.work_ready.notify_all();
    }

    // The caller's own slot. A panic here must not unwind yet — the
    // queued jobs still borrow the caller's stack — so it is caught and
    // replayed after the completion barrier below.
    let caller_result = panic::catch_unwind(AssertUnwindSafe(|| f(0)));

    // Completion barrier with helping: drain jobs while waiting.
    let mut queue = pool.queue.lock();
    while state.remaining.load(Ordering::Acquire) != 0 {
        if let Some(job) = queue.pop_front() {
            drop(queue);
            job.run(pool);
            queue = pool.queue.lock();
        } else {
            queue = pool.work_ready.wait(queue);
        }
    }
    drop(queue);

    if let Some(payload) = state.panic.lock().take() {
        panic::resume_unwind(payload);
    }
    if let Err(payload) = caller_result {
        panic::resume_unwind(payload);
    }
}

/// Pre-spawns pool threads for a worker budget, so the first parallel
/// call of a training run does not pay thread creation.
///
/// A budget of `workers` needs `workers - 1` pool threads (the caller is
/// always the remaining worker). Sequential budgets are a no-op. Called
/// by the component owners (`PipelineConfig` consumers, hub clusters,
/// the training server) when a parallelism knob is set.
pub fn warm(workers: usize) {
    if workers > 1 {
        ensure_capacity(workers - 1);
    }
}

/// Total pool threads ever spawned by this process.
///
/// Monotone; flat once the pool is warm. The `training_throughput` bench
/// and the thread-reuse tests assert a delta of **zero** across
/// steady-state training steps — the property that distinguishes this
/// pool from the scoped-thread design it replaced.
pub fn thread_spawns() -> usize {
    shared().spawned.load(Ordering::Relaxed)
}

/// Current live pool threads (spawned and never torn down).
pub fn threads() -> usize {
    shared().capacity.load(Ordering::Relaxed)
}

/// Total pool-synchronised phase barriers (fan-out + join pairs) ever
/// executed by this process.
///
/// Every `broadcast` that enqueues work counts as exactly one handoff:
/// one wake-the-pool fan-out plus one all-slots-finished join. Inline
/// fast paths (`slots <= 1`) cost nothing and count nothing. A
/// multi-phase pipeline that re-broadcasts per phase pays (and shows)
/// one handoff *per phase*; the conv job graph collapses that to one
/// handoff per layer call, and the `training_throughput` bench pins the
/// collapse by diffing this counter around a conv forward/backward.
pub fn phase_handoffs() -> usize {
    shared().handoffs.load(Ordering::Relaxed)
}
