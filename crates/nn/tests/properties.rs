//! Property-based tests for the neural-network framework.

use caltrain_nn::augment::{augment, flip_horizontal, rotate, shift, AugmentConfig};
use caltrain_nn::serialize::{weights_from_bytes, weights_to_bytes};
use caltrain_nn::{zoo, Activation, Hyper, KernelMode, NetworkBuilder};
use caltrain_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_net(seed: u64) -> caltrain_nn::Network {
    NetworkBuilder::new(&[1, 6, 6])
        .conv_bn(4, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(3, 1, 1, 0, Activation::Linear)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant behind Figs. 3–4: strict (enclave) and
    /// native kernels produce bit-identical training trajectories for
    /// arbitrary data and hyperparameters.
    #[test]
    fn kernel_paths_bit_identical(
        seed in 0u64..500,
        lr in 0.001f32..0.3,
        data in proptest::collection::vec(0.0f32..1.0, 4 * 36),
    ) {
        let mut a = tiny_net(seed);
        let mut b = tiny_net(seed);
        let images = Tensor::from_vec(data, &[4, 1, 6, 6]).unwrap();
        let labels = vec![0usize, 1, 2, 0];
        let hyper = Hyper { learning_rate: lr, momentum: 0.9, decay: 0.0001 };
        let (la, _) = a.train_batch(&images, &labels, &hyper, KernelMode::Strict).unwrap();
        let (lb, _) = b.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
        prop_assert_eq!(la.to_bits(), lb.to_bits());
        prop_assert_eq!(a.export_params(), b.export_params());
    }

    /// Any split point gives the same forward result as the monolithic
    /// pass (the partitioned-training correctness core).
    #[test]
    fn arbitrary_cut_preserves_forward(
        seed in 0u64..200,
        cut in 1usize..6,
        data in proptest::collection::vec(0.0f32..1.0, 2 * 36),
    ) {
        let mut whole = tiny_net(seed);
        let mut split = tiny_net(seed);
        let images = Tensor::from_vec(data, &[2, 1, 6, 6]).unwrap();
        let (full, _) = whole.forward(&images, KernelMode::Native, false).unwrap();
        let n = split.num_layers();
        let (ir, _) = split.forward_range(&images, 0, cut, KernelMode::Strict, false).unwrap();
        let (out, _) = split.forward_range(&ir, cut, n, KernelMode::Native, false).unwrap();
        prop_assert_eq!(full.as_slice(), out.as_slice());
    }

    #[test]
    fn probabilities_always_valid(
        seed in 0u64..200,
        data in proptest::collection::vec(-2.0f32..2.0, 3 * 36),
    ) {
        let mut net = tiny_net(seed);
        let images = Tensor::from_vec(data, &[3, 1, 6, 6]).unwrap();
        let probs = net.predict_probs(&images, KernelMode::Native).unwrap();
        for s in 0..3 {
            let row = &probs.as_slice()[s * 3..(s + 1) * 3];
            prop_assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn weight_serialisation_roundtrips(seed in 0u64..200) {
        let net = tiny_net(seed);
        let bytes = weights_to_bytes(&net);
        let mut other = tiny_net(seed + 1);
        weights_from_bytes(&mut other, &bytes).unwrap();
        prop_assert_eq!(net.export_params(), other.export_params());
    }

    #[test]
    fn augmentation_preserves_shape_and_range(
        seed in any::<u64>(),
        data in proptest::collection::vec(0.0f32..1.0, 3 * 64),
    ) {
        let img = Tensor::from_vec(data, &[3, 8, 8]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = augment(&img, &AugmentConfig::default(), &mut rng);
        prop_assert_eq!(out.dims(), img.dims());
        prop_assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn geometric_transforms_preserve_pixel_count(
        data in proptest::collection::vec(0.1f32..1.0, 25),
        dy in -2isize..3,
        dx in -2isize..3,
    ) {
        let img = Tensor::from_vec(data, &[1, 5, 5]).unwrap();
        prop_assert_eq!(flip_horizontal(&img).volume(), img.volume());
        prop_assert_eq!(shift(&img, dy, dx).volume(), img.volume());
        prop_assert_eq!(rotate(&img, 0.3).volume(), img.volume());
        // Shift never invents energy.
        prop_assert!(shift(&img, dy, dx).sum() <= img.sum() + 1e-4);
    }

    /// Embeddings are deterministic in eval mode — fingerprint stability,
    /// without which the linkage database would be useless.
    #[test]
    fn embeddings_deterministic(
        seed in 0u64..100,
        data in proptest::collection::vec(0.0f32..1.0, 36),
    ) {
        let mut net = tiny_net(seed);
        let images = Tensor::from_vec(data, &[1, 1, 6, 6]).unwrap();
        let e1 = net.embed(&images, KernelMode::Native).unwrap();
        let e2 = net.embed(&images, KernelMode::Strict).unwrap();
        prop_assert_eq!(e1.as_slice(), e2.as_slice());
    }
}

#[test]
fn paper_architectures_survive_serialisation() {
    for ctor in [zoo::cifar10_10layer_scaled, zoo::cifar10_18layer_scaled] {
        let net = ctor(32, 9).unwrap();
        let bytes = weights_to_bytes(&net);
        let mut other = ctor(32, 10).unwrap();
        weights_from_bytes(&mut other, &bytes).unwrap();
        assert_eq!(net.export_params(), other.export_params());
    }
}
