//! Correctness gates for the zero-allocation, batch-parallel layer
//! paths: batched execution must equal concatenated per-sample
//! execution bit-for-bit, worker count must never change trained
//! weights, and the no-reuse reference path must match the reused path
//! exactly.

use caltrain_nn::{Activation, Hyper, KernelMode, NetworkBuilder, Parallelism};
use caltrain_tensor::Tensor;
use proptest::prelude::*;

/// A conv→pool→conv→avg→softmax→cost net big enough to cross the
/// layer-parallel FLOP threshold (the per-sample fan-out engages).
fn parallel_scale_net(seed: u64) -> caltrain_nn::Network {
    NetworkBuilder::new(&[3, 24, 24])
        .conv_bn(16, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(8, 3, 1, 1, Activation::Leaky)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
        .expect("fixed architecture")
}

/// A tiny net that stays below the threshold (inline path).
fn tiny_net(seed: u64) -> caltrain_nn::Network {
    NetworkBuilder::new(&[1, 6, 6])
        .conv(4, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(3, 1, 1, 0, Activation::Linear)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
        .expect("fixed architecture")
}

fn batch(n: usize, c: usize, hw: usize, salt: u64) -> (Tensor, Vec<usize>) {
    let images = Tensor::from_fn(&[n, c, hw, hw], |i| {
        ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 251) as f32 / 125.0 - 1.0
    });
    let labels: Vec<usize> = (0..n).map(|s| (s + salt as usize) % 3).collect();
    (images, labels)
}

#[test]
fn weights_bit_identical_at_1_and_4_workers() {
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
    let train = |workers: usize| {
        let mut net = parallel_scale_net(99);
        net.set_parallelism(Parallelism::new(workers));
        let mut losses = Vec::new();
        for step in 0..3 {
            let (images, labels) = batch(7, 3, 24, step);
            let (loss, _) =
                net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
            losses.push(loss.to_bits());
        }
        (losses, net.export_params())
    };
    let (loss1, params1) = train(1);
    for workers in [2, 4, 8] {
        let (lossw, paramsw) = train(workers);
        assert_eq!(loss1, lossw, "losses must match bitwise at {workers} workers");
        assert_eq!(params1, paramsw, "weights must match bitwise at {workers} workers");
    }
}

#[test]
fn strict_and_native_backward_bit_identical_on_parallel_net() {
    // The backward pass now routes through per-mode kernels; both must
    // agree bitwise even when the batch fans out across workers.
    let mut a = parallel_scale_net(7);
    let mut b = parallel_scale_net(7);
    a.set_parallelism(Parallelism::new(4));
    b.set_parallelism(Parallelism::new(4));
    let hyper = Hyper::default();
    for step in 0..2 {
        let (images, labels) = batch(6, 3, 24, 10 + step);
        let (la, _) = a.train_batch(&images, &labels, &hyper, KernelMode::Strict).unwrap();
        let (lb, _) = b.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
        assert_eq!(la.to_bits(), lb.to_bits(), "loss must match bitwise");
    }
    assert_eq!(a.export_params(), b.export_params());
}

#[test]
fn no_reuse_reference_path_matches_reused_path() {
    // The retained allocation-per-step reference path must be an
    // arithmetic no-op: same losses, same weights, to the bit.
    let hyper = Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0 };
    let run = |reuse: bool| {
        let mut net = parallel_scale_net(31);
        net.set_buffer_reuse(reuse);
        for step in 0..3 {
            let (images, labels) = batch(5, 3, 24, 77 + step);
            net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
        }
        net.export_params()
    };
    assert_eq!(run(true), run(false), "reuse knob must not change a single bit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forward on a batch equals the concatenation of per-sample
    /// forwards, bit for bit, and the batched backward's input delta
    /// equals the concatenated per-sample deltas. (Dropout and
    /// batch-norm layers are deliberately absent: their semantics are
    /// batch-dependent by design.)
    #[test]
    fn batched_equals_concatenated_per_sample(
        n in 2usize..6,
        seed in 0u64..500,
        workers in 1usize..5,
    ) {
        let mut batched = tiny_net(seed);
        batched.set_parallelism(Parallelism::new(workers));
        let (images, labels) = batch(n, 1, 6, seed);

        // Batched forward + backward.
        batched.set_targets(&labels).unwrap();
        let layers = batched.num_layers();
        let (probs, _) = batched
            .forward_range(&images, 0, layers, KernelMode::Native, true)
            .unwrap();
        let seed_delta = Tensor::zeros(&[n, 3]);
        let (batched_delta, _) = batched
            .backward_range(&seed_delta, 0, layers, KernelMode::Native)
            .unwrap();

        // Per-sample forwards/backwards on a fresh clone of the same
        // untrained net (gradient state differs; outputs must not).
        let mut single = tiny_net(seed);
        for s in 0..n {
            let image = Tensor::from_vec(
                images.as_slice()[s * 36..(s + 1) * 36].to_vec(),
                &[1, 1, 6, 6],
            )
            .unwrap();
            single.set_targets(&labels[s..s + 1]).unwrap();
            let (p, _) = single
                .forward_range(&image, 0, layers, KernelMode::Native, true)
                .unwrap();
            prop_assert_eq!(
                p.as_slice(),
                &probs.as_slice()[s * 3..(s + 1) * 3],
                "forward sample {}", s
            );
            let (d, _) = single
                .backward_range(&Tensor::zeros(&[1, 3]), 0, layers, KernelMode::Native)
                .unwrap();
            prop_assert_eq!(
                d.as_slice(),
                &batched_delta.as_slice()[s * 36..(s + 1) * 36],
                "backward sample {}", s
            );
        }
    }
}
