//! Determinism gate for the persistent worker pool: a full
//! `train_batch` trajectory — losses, trained weights and the FLOP
//! counts the simulated clock charges from — must be bit-identical at
//! 1, 2, 4 and 8 workers, on both kernel modes.
//!
//! This pins the runtime's core invariant end to end through the
//! whole-batch GEMM conv path, the parallel pooling layers and the
//! fixed-order gradient reductions, not just through unit kernels.

use caltrain_nn::{Activation, Hyper, KernelMode, NetworkBuilder, Parallelism};
use caltrain_tensor::Tensor;

/// Conv(+BN) → pool → conv → avg stack sized to cross the conv layer's
/// FLOP threshold, so the per-sample fan-out genuinely engages.
fn net(seed: u64) -> caltrain_nn::Network {
    NetworkBuilder::new(&[3, 24, 24])
        .conv_bn(16, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(8, 3, 1, 1, Activation::Leaky)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
        .expect("fixed architecture")
}

fn batch(n: usize, salt: u64) -> (Tensor, Vec<usize>) {
    let images = Tensor::from_fn(&[n, 3, 24, 24], |i| {
        ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 251) as f32 / 125.0 - 1.0
    });
    let labels: Vec<usize> = (0..n).map(|s| (s + salt as usize) % 3).collect();
    (images, labels)
}

/// Trains 4 steps and returns the full observable trajectory:
/// per-step (loss bits, flops), plus the final weights.
fn trajectory(workers: usize, mode: KernelMode) -> (Vec<(u32, u64)>, Vec<Vec<f32>>) {
    let mut net = net(2024);
    net.set_parallelism(Parallelism::new(workers));
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
    let mut steps = Vec::new();
    for step in 0..4 {
        let (images, labels) = batch(9, step);
        let (loss, flops) = net.train_batch(&images, &labels, &hyper, mode).unwrap();
        steps.push((loss.to_bits(), flops));
    }
    (steps, net.export_params())
}

#[test]
fn full_train_batch_bit_identical_at_1_2_4_8_workers() {
    for mode in [KernelMode::Native, KernelMode::Strict] {
        let (steps1, params1) = trajectory(1, mode);
        for workers in [2, 4, 8] {
            let (stepsw, paramsw) = trajectory(workers, mode);
            assert_eq!(
                steps1, stepsw,
                "losses/flops must be bit-identical at {workers} workers ({mode:?})"
            );
            assert_eq!(
                params1, paramsw,
                "weights must be bit-identical at {workers} workers ({mode:?})"
            );
        }
    }
}

#[test]
fn strict_native_agree_under_parallel_whole_batch_path() {
    // Cross-mode agreement at a parallel worker count: the wide GEMMs
    // dispatch to different kernels per mode, but every chain is the
    // per-sample chain, so the trajectories coincide bit for bit.
    let (native_steps, native_params) = trajectory(4, KernelMode::Native);
    let (strict_steps, strict_params) = trajectory(4, KernelMode::Strict);
    assert_eq!(native_steps, strict_steps, "per-step loss/flops must agree across modes");
    assert_eq!(native_params, strict_params, "weights must agree across modes");
}
