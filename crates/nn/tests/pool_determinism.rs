//! Determinism gate for the persistent worker pool: a full
//! `train_batch` trajectory — losses, trained weights and the FLOP
//! counts the simulated clock charges from — must be bit-identical at
//! 1, 2, 4 and 8 workers, on both kernel modes.
//!
//! This pins the runtime's core invariant end to end through the
//! row-tiled shared wide GEMM, the fused epilogue scatter, the
//! **canonical batch-norm moment order** (two BN layers here, so the
//! fused single-pass statistics are exercised at depth), the parallel
//! pooling layers and the canonical-tree dw/db reductions — not just
//! through unit kernels. A batch-1 eval gate pins the row-tiled
//! inference path the same way.

use caltrain_nn::{Activation, Hyper, KernelMode, NetworkBuilder, Parallelism};
use caltrain_tensor::Tensor;

/// Conv+BN → pool → conv+BN → conv → avg stack sized to cross the conv
/// layer's FLOP threshold, so the fan-out genuinely engages; both BN
/// layers pin the canonical fused-moment summation order bitwise.
fn net(seed: u64) -> caltrain_nn::Network {
    NetworkBuilder::new(&[3, 24, 24])
        .conv_bn(16, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv_bn(16, 3, 1, 1, Activation::Leaky)
        .conv(8, 3, 1, 1, Activation::Leaky)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
        .expect("fixed architecture")
}

fn batch(n: usize, salt: u64) -> (Tensor, Vec<usize>) {
    let images = Tensor::from_fn(&[n, 3, 24, 24], |i| {
        ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 251) as f32 / 125.0 - 1.0
    });
    let labels: Vec<usize> = (0..n).map(|s| (s + salt as usize) % 3).collect();
    (images, labels)
}

/// Trains 4 steps and returns the full observable trajectory:
/// per-step (loss bits, flops), plus the final weights.
fn trajectory(workers: usize, mode: KernelMode) -> (Vec<(u32, u64)>, Vec<Vec<f32>>) {
    let mut net = net(2024);
    net.set_parallelism(Parallelism::new(workers));
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
    let mut steps = Vec::new();
    for step in 0..4 {
        let (images, labels) = batch(9, step);
        let (loss, flops) = net.train_batch(&images, &labels, &hyper, mode).unwrap();
        steps.push((loss.to_bits(), flops));
    }
    (steps, net.export_params())
}

#[test]
fn full_train_batch_bit_identical_at_1_2_4_8_workers() {
    for mode in [KernelMode::Native, KernelMode::Strict] {
        let (steps1, params1) = trajectory(1, mode);
        for workers in [2, 4, 8] {
            let (stepsw, paramsw) = trajectory(workers, mode);
            assert_eq!(
                steps1, stepsw,
                "losses/flops must be bit-identical at {workers} workers ({mode:?})"
            );
            assert_eq!(
                params1, paramsw,
                "weights must be bit-identical at {workers} workers ({mode:?})"
            );
        }
    }
}

#[test]
fn tree_reduced_gradients_bit_identical_at_odd_batch_sizes() {
    // The dw/db (and BN backward-sum) reductions run along a canonical
    // fixed-shape binary tree over the sample span; every worker count
    // reduces a different `tree_ranges` partition of that span and joins
    // the partials along the same tree. Odd, non-power-of-two batch
    // sizes give the tree its most lopsided shapes, and batch 1 the
    // degenerate single-leaf reduction; none of it may move a bit of
    // the trajectory.
    let run = |workers: usize, mode: KernelMode| {
        let mut net = net(555);
        net.set_parallelism(Parallelism::new(workers));
        let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
        let mut steps = Vec::new();
        for (step, n) in [13usize, 1, 5, 9].into_iter().enumerate() {
            let (images, labels) = batch(n, step as u64);
            let (loss, flops) = net.train_batch(&images, &labels, &hyper, mode).unwrap();
            steps.push((loss.to_bits(), flops));
        }
        (steps, net.export_params())
    };
    for mode in [KernelMode::Native, KernelMode::Strict] {
        let reference = run(1, mode);
        for workers in [2, 4, 8] {
            assert_eq!(
                run(workers, mode),
                reference,
                "tree-reduced gradients must be bit-identical at {workers} workers ({mode:?})"
            );
        }
    }
}

#[test]
fn batch1_inference_bit_identical_across_workers_and_modes() {
    // The row-tiled shared GEMM is what parallelises batch-1 inference
    // (the dominant shape for enclave-resident accountability queries):
    // with n = 1 the workers split the one wide GEMM by output-row
    // tiles and the scatter by planes. None of that may change a bit —
    // against the sequential run, across modes, and through the
    // BN rolling-statistics (eval) epilogue.
    let mut reference = net(77);
    reference.set_parallelism(Parallelism::new(1));
    // A few training steps first so BN rolling statistics are
    // non-trivial; all instances replay the identical trajectory.
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
    let (images, labels) = batch(6, 3);
    for _ in 0..2 {
        reference.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
    }
    let (one, _) = batch(1, 99);
    let (want, _) = reference.forward(&one, KernelMode::Native, false).unwrap();

    for workers in [1, 2, 4, 8] {
        for mode in [KernelMode::Native, KernelMode::Strict] {
            let mut net = net(77);
            net.set_parallelism(Parallelism::new(workers));
            for _ in 0..2 {
                net.train_batch(&images, &labels, &hyper, mode).unwrap();
            }
            let (got, _) = net.forward(&one, mode, false).unwrap();
            let bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits, want_bits,
                "batch-1 inference must be bit-identical at {workers} workers ({mode:?})"
            );
        }
    }
}

#[test]
fn strict_native_agree_under_parallel_whole_batch_path() {
    // Cross-mode agreement at a parallel worker count: the wide GEMMs
    // dispatch to different kernels per mode, but every chain is the
    // per-sample chain, so the trajectories coincide bit for bit.
    let (native_steps, native_params) = trajectory(4, KernelMode::Native);
    let (strict_steps, strict_params) = trajectory(4, KernelMode::Strict);
    assert_eq!(native_steps, strict_steps, "per-step loss/flops must agree across modes");
    assert_eq!(native_params, strict_params, "weights must agree across modes");
}
