//! Steady-state allocation gate: after a warm-up step, the layer hot
//! loops (conv / pool / softmax / dropout, forward and backward) must
//! perform **zero** heap allocations beyond constructing the returned
//! output tensor itself.
//!
//! A counting global allocator wraps `System`; every check compares the
//! allocation count of a warmed layer call against the cost of building
//! the output tensor alone. The whole gate runs as a single `#[test]`
//! so no sibling test thread pollutes the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use caltrain_nn::layers::{Conv2d, Dropout, GlobalAvgPool, MaxPool, SoftmaxLayer};
use caltrain_nn::{Activation, Hyper, KernelMode, Layer, NetworkBuilder, Parallelism};
use caltrain_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAllocator;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns (allocation count, result).
fn counted<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCS.load(Ordering::Relaxed) - before, result)
}

/// Allocation cost of materialising a fresh tensor of `dims` — the one
/// unavoidable allocation a layer call performs (its return value).
fn output_tensor_cost(dims: &[usize]) -> usize {
    let (cost, t) = counted(|| Tensor::zeros(dims));
    drop(t);
    cost
}

fn assert_steady<L: Layer + ?Sized>(
    name: &str,
    layer: &mut L,
    input: &Tensor,
    delta: &Tensor,
    train: bool,
) {
    // Pin the inline path: parallel fan-out builds small per-call job
    // lists (cheap, but not zero-alloc), and this gate is about the
    // sequential hot loop. CALTRAIN_WORKERS must not flip it.
    layer.set_parallelism(Parallelism::sequential());
    // Warm-up: grow every scratch buffer and cache.
    for _ in 0..2 {
        let (_out, _) = layer.forward(input, KernelMode::Native, train).unwrap();
        let _ = layer.backward(delta, KernelMode::Native).unwrap();
    }

    let fwd_budget = output_tensor_cost(delta.dims());
    let (fwd_allocs, out) = counted(|| layer.forward(input, KernelMode::Native, train).unwrap());
    assert_eq!(
        fwd_allocs, fwd_budget,
        "{name} forward: hot loop must allocate nothing beyond the output tensor"
    );
    drop(out);

    let bwd_budget = output_tensor_cost(input.dims());
    let (bwd_allocs, back) = counted(|| layer.backward(delta, KernelMode::Native).unwrap());
    assert_eq!(
        bwd_allocs, bwd_budget,
        "{name} backward: hot loop must allocate nothing beyond the input-delta tensor"
    );
    drop(back);
}

#[test]
fn warm_layer_calls_allocate_only_their_output() {
    let mut rng = StdRng::seed_from_u64(11);
    let in_shape = Shape::new(&[3, 12, 12]).unwrap();
    let input = Tensor::from_fn(&[4, 3, 12, 12], |i| ((i * 29) % 17) as f32 / 8.0 - 1.0);

    // Plain convolution.
    let mut conv =
        Conv2d::new(&mut rng, &in_shape, 8, 3, 1, 1, Activation::Leaky);
    conv.set_parallelism(Parallelism::sequential());
    let delta = Tensor::from_fn(&[4, 8, 12, 12], |i| (i % 7) as f32 - 3.0);
    assert_steady("conv", &mut conv, &input, &delta, true);

    // Batch-normalised convolution (exercises the BN caches).
    let mut conv_bn = Conv2d::with_batch_norm(
        &mut rng, &in_shape, 8, 3, 1, 1, Activation::Leaky, true,
    );
    conv_bn.set_parallelism(Parallelism::sequential());
    assert_steady("conv+bn", &mut conv_bn, &input, &delta, true);

    // Convolution whose batch crosses the wide-scratch cap
    // (span·ohw > MAX_WIDE_COLS = 2¹⁴): 24 samples × 784 output
    // positions ≈ 18.8k columns, so forward and backward both take the
    // span-tiled path — which must be exactly as allocation-free in
    // steady state as the single-tile path.
    let wide_shape = Shape::new(&[3, 28, 28]).unwrap();
    let wide_input = Tensor::from_fn(&[24, 3, 28, 28], |i| ((i * 31) % 19) as f32 / 9.0 - 1.0);
    let wide_delta = Tensor::from_fn(&[24, 8, 28, 28], |i| (i % 9) as f32 - 4.0);
    let mut conv_tiled = Conv2d::new(&mut rng, &wide_shape, 8, 3, 1, 1, Activation::Leaky);
    conv_tiled.set_parallelism(Parallelism::sequential());
    assert_steady("conv (span-tiled)", &mut conv_tiled, &wide_input, &wide_delta, true);

    // Same, batch-normalised: the tiled raw staging + deferred epilogue.
    let mut conv_bn_tiled = Conv2d::with_batch_norm(
        &mut rng, &wide_shape, 8, 3, 1, 1, Activation::Leaky, true,
    );
    conv_bn_tiled.set_parallelism(Parallelism::sequential());
    assert_steady("conv+bn (span-tiled)", &mut conv_bn_tiled, &wide_input, &wide_delta, true);

    // Max pooling (argmax routing buffer).
    let mut pool = MaxPool::new(&in_shape, 2, 2);
    let pool_delta = Tensor::from_fn(&[4, 3, 6, 6], |i| (i % 5) as f32 - 2.0);
    assert_steady("maxpool", &mut pool, &input, &pool_delta, true);

    // Global average pooling.
    let mut avg = GlobalAvgPool::new(&in_shape);
    let avg_delta = Tensor::from_fn(&[4, 3], |i| i as f32 - 5.0);
    assert_steady("avgpool", &mut avg, &input, &avg_delta, true);

    // Softmax over a vector input.
    let mut softmax = SoftmaxLayer::new(10);
    let logits = Tensor::from_fn(&[4, 10], |i| (i % 11) as f32 / 3.0 - 1.5);
    let sm_delta = Tensor::from_fn(&[4, 10], |i| (i % 3) as f32 - 1.0);
    assert_steady("softmax", &mut softmax, &logits, &sm_delta, false);

    // Dropout in train mode (mask buffer).
    let mut dropout = Dropout::new(&in_shape, 0.5, 3);
    let drop_delta = input.clone();
    assert_steady("dropout", &mut dropout, &input, &drop_delta, true);
}

#[test]
fn warm_training_step_allocation_count_is_constant_and_bounded() {
    // Whole-network gate: a warmed `train_batch` allocates a small,
    // constant number of times (layer outputs and per-step tensors),
    // independent of how many steps have run — i.e. no per-step buffer
    // churn survives anywhere on the training path.
    let mut net = NetworkBuilder::new(&[3, 12, 12])
        .conv_bn(8, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(6, 3, 1, 1, Activation::Leaky)
        .dropout(0.25)
        .conv(3, 1, 1, 0, Activation::Linear)
        .global_avgpool()
        .softmax()
        .cost()
        .build(5)
        .unwrap();
    net.set_parallelism(Parallelism::sequential());
    let images = Tensor::from_fn(&[6, 3, 12, 12], |i| ((i * 13) % 23) as f32 / 11.0 - 1.0);
    let labels: Vec<usize> = (0..6).map(|s| s % 3).collect();
    let hyper = Hyper::default();

    for _ in 0..2 {
        net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
    }
    let (first, _) =
        counted(|| net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap());
    let (second, _) =
        counted(|| net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap());
    assert_eq!(first, second, "steady-state step allocation count must be constant");
    // 8 layers × ≤2 tensors/pass × 2 allocations/tensor, plus the seed
    // delta, range-clone and loss bookkeeping. The historical path blew
    // through thousands (one multi-megabyte buffer set per layer call).
    let bound = 4 * net.num_layers() * 2 + 16;
    assert!(
        first <= bound,
        "warm training step allocated {first} times (bound {bound})"
    );
}
