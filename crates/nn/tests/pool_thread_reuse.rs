//! Thread-reuse gate: after pool warm-up, steady-state training must
//! spawn **zero** OS threads — the property that distinguishes the
//! persistent worker pool from the spawn-per-call scoped design it
//! replaced (which paid ~4 spawns per conv call).
//!
//! This is deliberately the only test in this binary: the spawn counter
//! is process-global, and a sibling test growing the pool for its own
//! batches would make a zero-delta assertion racy. `ci.sh` enforces the
//! convention structurally (it counts test markers in this file and
//! fails the run on more than one) — if you need another spawn-count
//! assertion, give it its own integration-test binary.

use caltrain_nn::{Activation, Hyper, KernelMode, NetworkBuilder, Parallelism};
use caltrain_tensor::Tensor;

#[test]
fn steady_state_training_spawns_no_threads() {
    let mut net = NetworkBuilder::new(&[3, 24, 24])
        .conv_bn(16, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv(8, 3, 1, 1, Activation::Leaky)
        .global_avgpool()
        .softmax()
        .cost()
        .build(7)
        .expect("fixed architecture");
    net.set_parallelism(Parallelism::new(4));
    let hyper = Hyper { learning_rate: 0.05, momentum: 0.9, decay: 0.0001 };
    let images = Tensor::from_fn(&[9, 3, 24, 24], |i| {
        ((i as u64).wrapping_mul(2654435761) % 251) as f32 / 125.0 - 1.0
    });
    let labels: Vec<usize> = (0..9).map(|s| s % 3).collect();

    // Warm-up: the first steps grow the pool (and the scratch arenas).
    for _ in 0..2 {
        net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
    }
    let spawned_warm = caltrain_runtime::pool::thread_spawns();
    assert!(
        spawned_warm >= 3,
        "a 4-worker training step must have engaged the pool (spawned {spawned_warm})"
    );

    // Steady state: many more steps, not one new thread.
    for _ in 0..6 {
        net.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
    }
    let spawned_after = caltrain_runtime::pool::thread_spawns();
    assert_eq!(
        spawned_after, spawned_warm,
        "steady-state training must reuse pool threads, not spawn new ones"
    );
}
