//! The [`Network`]: an ordered stack of layers with Darknet-style
//! training, plus the range-wise forward/backward API that partitioned
//! (FrontNet/BackNet) training is built on.

use caltrain_runtime::Parallelism;
use caltrain_tensor::gemm::{
    gemm_a_bt, gemm_a_bt_native, gemm_at_b_native, gemm_at_b_strict, gemm_native, gemm_strict,
};
use caltrain_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::layers::{
    Activation, Conv2d, CostLayer, Dropout, GlobalAvgPool, Layer, LayerDescriptor, LayerKind,
    MaxPool, SoftmaxLayer,
};
use crate::NnError;

/// Selects the compute-kernel implementation.
///
/// Both modes produce **bit-identical** results; they differ only in
/// speed, modelling the paper's observation that enclave code cannot use
/// `-ffast-math`/SIMD (§VI-C). Native rides the dispatch ladder in
/// `caltrain_tensor`: explicit AVX2/NEON SIMD when the host has it
/// (`CALTRAIN_SIMD=0` opts out), blocked/packed scalar otherwise — all
/// rungs sharing the strict kernels' per-element addition chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Plain scalar loops — the in-enclave path.
    Strict,
    /// Cache-blocked, vectoriser-friendly loops — the native path.
    #[default]
    Native,
}

/// The uniform signature of every GEMM kernel: `(m, n, k, a, b, c)`
/// (the same type the tensor crate's row-tiled helpers take).
pub type GemmFn = caltrain_tensor::gemm::GemmKernel;

impl KernelMode {
    /// The `C += A·B` kernel for this mode (the forward conv GEMM, and —
    /// against a transposed column matrix — the weight-gradient GEMM).
    ///
    /// Native rides the SIMD→blocked/packed dispatch ladder; strict is
    /// the fixed-order scalar reference. All kernels share one
    /// per-`(i, j)` addition order, so the choice affects speed only.
    pub fn gemm(self) -> GemmFn {
        match self {
            KernelMode::Strict => gemm_strict,
            KernelMode::Native => gemm_native,
        }
    }

    /// The `C += Aᵀ·B` kernel (backward input-delta GEMM).
    pub fn gemm_at_b(self) -> GemmFn {
        match self {
            KernelMode::Strict => gemm_at_b_strict,
            KernelMode::Native => gemm_at_b_native,
        }
    }

    /// The `C += A·Bᵀ` kernel — used only by the retained historical
    /// reference path (`Network::set_buffer_reuse(false)`); the
    /// optimized path computes weight gradients with [`KernelMode::gemm`]
    /// over a transposed column matrix instead.
    pub fn gemm_a_bt(self) -> GemmFn {
        match self {
            KernelMode::Strict => gemm_a_bt,
            KernelMode::Native => gemm_a_bt_native,
        }
    }
}

/// SGD hyperparameters (Darknet's `learning_rate`, `momentum`, `decay`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyper {
    /// Base learning rate, divided by the batch size at update time.
    pub learning_rate: f32,
    /// Momentum applied to retained gradient accumulators.
    pub momentum: f32,
    /// L2 weight decay.
    pub decay: f32,
}

impl Default for Hyper {
    fn default() -> Self {
        Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0001 }
    }
}

/// A feed-forward network over a stack of [`Layer`]s.
///
/// Cloning snapshots the whole model (weights and layer state) — the
/// per-epoch "semi-trained model" snapshots of paper Fig. 5 are clones.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Shape,
}

impl Network {
    /// Number of layers (rows in the Table I/II sense).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Borrow a layer by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer(&self, index: usize) -> &dyn Layer {
        self.layers[index].as_ref()
    }

    /// Indices of the convolutional layers, in order (the Fig. 6 x-axis
    /// counts these).
    pub fn conv_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind() == LayerKind::Conv)
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the penultimate layer — "the layer before the softmax
    /// layer" whose output is the fingerprint embedding (paper §IV-C).
    ///
    /// # Panics
    ///
    /// Panics if the network has no softmax layer (builder-enforced).
    pub fn penultimate_index(&self) -> usize {
        let softmax = self
            .layers
            .iter()
            .position(|l| l.kind() == LayerKind::Softmax)
            .expect("builder guarantees a softmax layer");
        softmax - 1
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Estimated forward FLOPs per sample, per layer.
    pub fn layer_flops(&self) -> Vec<u64> {
        self.layers.iter().map(|l| l.flops_per_sample()).collect()
    }

    /// Table I/II-style rows.
    pub fn describe(&self) -> Vec<LayerDescriptor> {
        self.layers.iter().map(|l| l.descriptor()).collect()
    }

    /// Forward through layers `from..to`, returning `(output, flops)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidRange`] for empty/out-of-bounds ranges
    /// and [`NnError::ShapeMismatch`] if `input` doesn't fit layer `from`.
    pub fn forward_range(
        &mut self,
        input: &Tensor,
        from: usize,
        to: usize,
        mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        self.check_range(from, to)?;
        let mut x = input.clone();
        let mut flops = 0u64;
        for i in from..to {
            let (y, f) = self.layers[i].forward(&x, mode, train).map_err(|e| match e {
                NnError::ShapeMismatch { expected, got, .. } => {
                    NnError::ShapeMismatch { layer: i, expected, got }
                }
                other => other,
            })?;
            x = y;
            flops += f;
        }
        Ok((x, flops))
    }

    /// Backward through layers `from..to` **in reverse**, returning the
    /// delta w.r.t. the input of layer `from` and the FLOPs performed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidRange`] or propagates layer errors.
    pub fn backward_range(
        &mut self,
        delta: &Tensor,
        from: usize,
        to: usize,
        mode: KernelMode,
    ) -> Result<(Tensor, u64), NnError> {
        self.check_range(from, to)?;
        let mut d = delta.clone();
        let mut flops = 0u64;
        for i in (from..to).rev() {
            let (nd, f) = self.layers[i].backward(&d, mode)?;
            d = nd;
            flops += f;
        }
        Ok((d, flops))
    }

    /// Applies pending gradient updates on layers `from..to`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidRange`] for bad ranges.
    pub fn update_range(
        &mut self,
        from: usize,
        to: usize,
        hyper: &Hyper,
        batch: usize,
    ) -> Result<(), NnError> {
        self.check_range(from, to)?;
        for i in from..to {
            self.layers[i].apply_update(hyper, batch);
        }
        Ok(())
    }

    /// Full forward pass, returning `(final output, flops)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the first mismatching layer.
    pub fn forward(
        &mut self,
        input: &Tensor,
        mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = self.layers.len();
        self.forward_range(input, 0, n, mode, train)
    }

    /// Full forward pass retaining every layer's output (the IR extraction
    /// primitive of the information-exposure assessment, paper §IV-B).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_collect(
        &mut self,
        input: &Tensor,
        mode: KernelMode,
    ) -> Result<Vec<Tensor>, NnError> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for i in 0..self.layers.len() {
            let (y, _) = self.layers[i].forward(&x, mode, false)?;
            outputs.push(y.clone());
            x = y;
        }
        Ok(outputs)
    }

    /// Supplies targets to the cost layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArchitecture`] if there is no cost layer.
    pub fn set_targets(&mut self, targets: &[usize]) -> Result<(), NnError> {
        let cost = self
            .layers
            .iter_mut()
            .find(|l| l.kind() == LayerKind::Cost)
            .ok_or(NnError::InvalidArchitecture("network has no cost layer"))?;
        cost.set_targets(targets)
    }

    /// Loss reported by the cost layer after the latest forward pass.
    pub fn loss(&self) -> Option<f32> {
        self.layers.iter().rev().find_map(|l| l.last_loss())
    }

    /// One SGD step on a labelled mini-batch: forward, backward, update.
    /// Returns `(mean loss, flops)`.
    ///
    /// # Errors
    ///
    /// Propagates shape/target errors.
    pub fn train_batch(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        hyper: &Hyper,
        mode: KernelMode,
    ) -> Result<(f32, u64), NnError> {
        let n = self.layers.len();
        self.set_targets(labels)?;
        let (_probs, f_fwd) = self.forward_range(images, 0, n, mode, true)?;
        let loss = self.loss().ok_or(NnError::BadTargets("no loss after forward"))?;
        let seed = Tensor::zeros(&[labels.len(), self.layers[n - 1].output_shape().dim(0)]);
        let (_d, f_bwd) = self.backward_range(&seed, 0, n, mode)?;
        self.update_range(0, n, hyper, labels.len())?;
        Ok((loss, f_fwd + f_bwd))
    }

    /// Class predictions (argmax of the softmax output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn predict(&mut self, images: &Tensor, mode: KernelMode) -> Result<Vec<usize>, NnError> {
        let probs = self.predict_probs(images, mode)?;
        let classes = probs.dims()[1];
        Ok((0..probs.dims()[0])
            .map(|s| {
                let row = &probs.as_slice()[s * classes..(s + 1) * classes];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                    .map(|(i, _)| i)
                    .expect("non-empty class axis")
            })
            .collect())
    }

    /// Class-probability rows `[n, classes]` (softmax output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn predict_probs(&mut self, images: &Tensor, mode: KernelMode) -> Result<Tensor, NnError> {
        let softmax_end = self.penultimate_index() + 2; // through softmax
        let (probs, _) = self.forward_range(images, 0, softmax_end, mode, false)?;
        Ok(probs)
    }

    /// Penultimate-layer embeddings `[n, d]` — the raw material of
    /// CalTrain fingerprints (normalisation happens in
    /// `caltrain-fingerprint`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn embed(&mut self, images: &Tensor, mode: KernelMode) -> Result<Tensor, NnError> {
        let end = self.penultimate_index() + 1;
        let (emb, _) = self.forward_range(images, 0, end, mode, false)?;
        let n = emb.dims()[0];
        let d = emb.volume() / n;
        emb.reshaped(&[n, d]).map_err(NnError::from)
    }

    /// Removes and returns layer `index`'s accumulated gradients (empty
    /// for parameterless layers) — the DP-SGD clipping hook.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn take_layer_grads(&mut self, index: usize) -> Vec<f32> {
        self.layers[index].take_grads()
    }

    /// Adds `grads` back into layer `index`'s gradient buffers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadWeightBlob`] on layout mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn add_layer_grads(&mut self, index: usize, grads: &[f32]) -> Result<(), NnError> {
        self.layers[index].add_grads(grads)
    }

    /// Sets the worker budget for every layer's batch-parallel paths
    /// (see [`Layer::set_parallelism`]). Results are bit-identical at
    /// any worker count; this knob trades threads for wall-clock only.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        for layer in &mut self.layers {
            layer.set_parallelism(parallelism);
        }
    }

    /// Toggles scratch-buffer reuse on every layer (see
    /// [`Layer::set_buffer_reuse`]). `false` restores the historical
    /// allocation-per-step reference path the throughput bench measures
    /// against; results are bit-identical either way.
    pub fn set_buffer_reuse(&mut self, reuse: bool) {
        for layer in &mut self.layers {
            layer.set_buffer_reuse(reuse);
        }
    }

    /// Flattened parameters of every layer, in order.
    pub fn export_params(&self) -> Vec<Vec<f32>> {
        self.layers.iter().map(|l| l.export_params()).collect()
    }

    /// Restores parameters exported by [`Network::export_params`] from an
    /// architecturally identical network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadWeightBlob`] on layer-count or size mismatch.
    pub fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NnError> {
        if params.len() != self.layers.len() {
            return Err(NnError::BadWeightBlob("layer count mismatch"));
        }
        for (layer, p) in self.layers.iter_mut().zip(params) {
            layer.import_params(p)?;
        }
        Ok(())
    }

    fn check_range(&self, from: usize, to: usize) -> Result<(), NnError> {
        if from >= to || to > self.layers.len() {
            return Err(NnError::InvalidRange { from, to, layers: self.layers.len() });
        }
        Ok(())
    }
}

enum LayerSpec {
    Conv {
        filters: usize,
        size: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
        batch_norm: bool,
    },
    MaxPool { size: usize, stride: usize },
    GlobalAvgPool,
    Dropout { probability: f32 },
    Softmax,
    Cost,
}

/// Builds a [`Network`] layer by layer, inferring shapes.
///
/// Terminal rule (mirrors the paper's tables): the stack must end
/// `… → softmax → cost`, and softmax/cost must take a rank-1 input.
pub struct NetworkBuilder {
    input_shape: Shape,
    specs: Vec<LayerSpec>,
}

impl NetworkBuilder {
    /// Starts a builder for per-sample inputs of shape `dims` (e.g.
    /// `[3, 28, 28]` for the paper's CIFAR-10 nets).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape.
    pub fn new(dims: &[usize]) -> Self {
        NetworkBuilder {
            input_shape: Shape::new(dims).expect("non-degenerate input shape"),
            specs: Vec::new(),
        }
    }

    /// Appends a convolutional layer (no batch normalisation).
    pub fn conv(
        mut self,
        filters: usize,
        size: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
    ) -> Self {
        self.specs
            .push(LayerSpec::Conv { filters, size, stride, pad, activation, batch_norm: false });
        self
    }

    /// Appends a batch-normalised convolutional layer (Darknet
    /// `batch_normalize=1`, used by the paper's CIFAR configurations).
    pub fn conv_bn(
        mut self,
        filters: usize,
        size: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
    ) -> Self {
        self.specs
            .push(LayerSpec::Conv { filters, size, stride, pad, activation, batch_norm: true });
        self
    }

    /// Appends a max-pooling layer.
    pub fn maxpool(mut self, size: usize, stride: usize) -> Self {
        self.specs.push(LayerSpec::MaxPool { size, stride });
        self
    }

    /// Appends a global average pooling layer.
    pub fn global_avgpool(mut self) -> Self {
        self.specs.push(LayerSpec::GlobalAvgPool);
        self
    }

    /// Appends a dropout layer.
    pub fn dropout(mut self, probability: f32) -> Self {
        self.specs.push(LayerSpec::Dropout { probability });
        self
    }

    /// Appends the softmax layer.
    pub fn softmax(mut self) -> Self {
        self.specs.push(LayerSpec::Softmax);
        self
    }

    /// Appends the cost layer.
    pub fn cost(mut self) -> Self {
        self.specs.push(LayerSpec::Cost);
        self
    }

    /// Materialises the network, initialising weights from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArchitecture`] if the stack is empty,
    /// does not end `softmax → cost`, or feeds softmax a non-vector.
    pub fn build(self, seed: u64) -> Result<Network, NnError> {
        if self.specs.len() < 2 {
            return Err(NnError::InvalidArchitecture("need at least softmax and cost"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(self.specs.len());
        let mut shape = self.input_shape.clone();
        for (i, spec) in self.specs.iter().enumerate() {
            let layer: Box<dyn Layer> = match *spec {
                LayerSpec::Conv { filters, size, stride, pad, activation, batch_norm } => {
                    Box::new(Conv2d::with_batch_norm(
                        &mut rng, &shape, filters, size, stride, pad, activation, batch_norm,
                    ))
                }
                LayerSpec::MaxPool { size, stride } => Box::new(MaxPool::new(&shape, size, stride)),
                LayerSpec::GlobalAvgPool => Box::new(GlobalAvgPool::new(&shape)),
                LayerSpec::Dropout { probability } => {
                    // Per-layer seed keeps masks reproducible and
                    // independent of build order changes elsewhere.
                    Box::new(Dropout::new(&shape, probability, seed ^ ((i as u64 + 1) * 0x9E37)))
                }
                LayerSpec::Softmax => {
                    if shape.rank() != 1 {
                        return Err(NnError::InvalidArchitecture(
                            "softmax requires a rank-1 input (add avgpool first)",
                        ));
                    }
                    Box::new(SoftmaxLayer::new(shape.dim(0)))
                }
                LayerSpec::Cost => {
                    if shape.rank() != 1 {
                        return Err(NnError::InvalidArchitecture("cost requires a rank-1 input"));
                    }
                    Box::new(CostLayer::new(shape.dim(0)))
                }
            };
            shape = layer.output_shape().clone();
            layers.push(layer);
        }
        let n = layers.len();
        if layers[n - 1].kind() != LayerKind::Cost || layers[n - 2].kind() != LayerKind::Softmax {
            return Err(NnError::InvalidArchitecture("network must end softmax → cost"));
        }
        Ok(Network { layers, input_shape: self.input_shape })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new(&[1, 6, 6])
            .conv(4, 3, 1, 1, Activation::Leaky)
            .maxpool(2, 2)
            .conv(3, 1, 1, 0, Activation::Linear)
            .global_avgpool()
            .softmax()
            .cost()
            .build(seed)
            .unwrap()
    }

    fn toy_batch(n: usize) -> (Tensor, Vec<usize>) {
        // Class = brightest quadrant; trivially learnable.
        let mut images = Tensor::zeros(&[n, 1, 6, 6]);
        let mut labels = Vec::with_capacity(n);
        for s in 0..n {
            let class = s % 3;
            labels.push(class);
            let (oy, ox) = [(0, 0), (0, 3), (3, 0)][class];
            for y in 0..3 {
                for x in 0..3 {
                    images.set(&[s, 0, oy + y, ox + x], 1.0).unwrap();
                }
            }
        }
        (images, labels)
    }

    #[test]
    fn builder_validates_terminal_layers() {
        assert!(matches!(
            NetworkBuilder::new(&[1, 6, 6])
                .conv(4, 3, 1, 1, Activation::Leaky)
                .global_avgpool()
                .softmax()
                .build(0),
            Err(NnError::InvalidArchitecture(_))
        ));
        assert!(matches!(
            NetworkBuilder::new(&[1, 6, 6])
                .conv(4, 3, 1, 1, Activation::Leaky)
                .softmax()
                .cost()
                .build(0),
            Err(NnError::InvalidArchitecture(_))
        ));
    }

    #[test]
    fn shapes_propagate() {
        let net = tiny_net(0);
        assert_eq!(net.num_layers(), 6);
        assert_eq!(net.layer(0).output_shape().dims(), &[4, 6, 6]);
        assert_eq!(net.layer(1).output_shape().dims(), &[4, 3, 3]);
        assert_eq!(net.layer(2).output_shape().dims(), &[3, 3, 3]);
        assert_eq!(net.layer(3).output_shape().dims(), &[3]);
        assert_eq!(net.penultimate_index(), 3);
        assert_eq!(net.conv_layer_indices(), vec![0, 2]);
    }

    #[test]
    fn forward_emits_probabilities() {
        let mut net = tiny_net(1);
        let (images, _) = toy_batch(2);
        let probs = net.predict_probs(&images, KernelMode::Native).unwrap();
        assert_eq!(probs.dims(), &[2, 3]);
        for s in 0..2 {
            let row = &probs.as_slice()[s * 3..(s + 1) * 3];
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_loss_and_learns_toy_task() {
        let mut net = tiny_net(2);
        let (images, labels) = toy_batch(12);
        let hyper = Hyper { learning_rate: 0.3, momentum: 0.9, decay: 0.0 };
        let (first_loss, _) = net
            .train_batch(&images, &labels, &hyper, KernelMode::Native)
            .unwrap();
        let mut last = first_loss;
        for _ in 0..60 {
            let (l, _) = net
                .train_batch(&images, &labels, &hyper, KernelMode::Native)
                .unwrap();
            last = l;
        }
        assert!(last < first_loss * 0.5, "loss {first_loss} -> {last}");
        let preds = net.predict(&images, KernelMode::Native).unwrap();
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(correct >= 10, "learned {correct}/12 on a trivial task");
    }

    #[test]
    fn strict_and_native_training_bit_identical() {
        let mut a = tiny_net(3);
        let mut b = tiny_net(3);
        let (images, labels) = toy_batch(6);
        let hyper = Hyper::default();
        for _ in 0..3 {
            let (la, _) = a.train_batch(&images, &labels, &hyper, KernelMode::Strict).unwrap();
            let (lb, _) = b.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();
            assert_eq!(la.to_bits(), lb.to_bits(), "loss must match bitwise");
        }
        for (pa, pb) in a.export_params().iter().zip(b.export_params().iter()) {
            assert_eq!(pa, pb, "weights must match exactly after training");
        }
    }

    #[test]
    fn range_split_equals_monolithic_forward() {
        let mut whole = tiny_net(4);
        let mut split = tiny_net(4);
        let (images, _) = toy_batch(4);
        let (full, _) = whole.forward(&images, KernelMode::Native, false).unwrap();
        let cut = 2;
        let n = split.num_layers();
        let (ir, _) = split.forward_range(&images, 0, cut, KernelMode::Strict, false).unwrap();
        let (rest, _) = split.forward_range(&ir, cut, n, KernelMode::Native, false).unwrap();
        assert_eq!(full.as_slice(), rest.as_slice());
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = tiny_net(5);
        let mut b = tiny_net(6); // different init
        let (images, _) = toy_batch(2);
        let pa = a.predict_probs(&images, KernelMode::Native).unwrap();
        b.import_params(&a.export_params()).unwrap();
        let pb = b.predict_probs(&images, KernelMode::Native).unwrap();
        assert_eq!(pa.as_slice(), pb.as_slice());
    }

    #[test]
    fn embed_returns_penultimate() {
        let mut net = tiny_net(7);
        let (images, _) = toy_batch(3);
        let emb = net.embed(&images, KernelMode::Native).unwrap();
        assert_eq!(emb.dims(), &[3, 3], "avgpool output is the embedding");
    }

    #[test]
    fn invalid_ranges_rejected() {
        let mut net = tiny_net(8);
        let (images, _) = toy_batch(1);
        assert!(matches!(
            net.forward_range(&images, 3, 3, KernelMode::Native, false),
            Err(NnError::InvalidRange { .. })
        ));
        assert!(net.forward_range(&images, 0, 99, KernelMode::Native, false).is_err());
    }

    #[test]
    fn clone_snapshots_are_independent() {
        let mut net = tiny_net(9);
        let snapshot = net.clone();
        let (images, labels) = toy_batch(6);
        for _ in 0..5 {
            net.train_batch(&images, &labels, &Hyper::default(), KernelMode::Native)
                .unwrap();
        }
        assert_ne!(net.export_params(), snapshot.export_params());
    }
}
