//! Evaluation metrics: Top-k accuracy as reported in paper Figs. 3–4.

use caltrain_tensor::stats::top_k_indices;
use caltrain_tensor::Tensor;

use crate::network::{KernelMode, Network};
use crate::NnError;

/// Top-1 and Top-2 accuracy over a labelled set (the two series per curve
/// in Figs. 3–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Fraction with the true class ranked first.
    pub top1: f32,
    /// Fraction with the true class in the top two.
    pub top2: f32,
}

/// Computes Top-k accuracy from probability rows `[n, classes]`.
///
/// # Panics
///
/// Panics if `probs` is not rank-2 or `labels.len()` differs from the
/// batch size.
pub fn top_k_accuracy(probs: &Tensor, labels: &[usize], k: usize) -> f32 {
    let d = probs.dims();
    assert_eq!(d.len(), 2, "expected [n, classes]");
    assert_eq!(d[0], labels.len(), "one label per row");
    if labels.is_empty() {
        return 0.0;
    }
    let classes = d[1];
    let mut hits = 0usize;
    for (s, &label) in labels.iter().enumerate() {
        let row = &probs.as_slice()[s * classes..(s + 1) * classes];
        if top_k_indices(row, k).contains(&label) {
            hits += 1;
        }
    }
    hits as f32 / labels.len() as f32
}

/// Evaluates a network on a labelled set, mini-batched to bound memory.
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn evaluate(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    mode: KernelMode,
) -> Result<Accuracy, NnError> {
    let d = images.dims();
    let n = d[0];
    assert_eq!(n, labels.len(), "one label per image");
    let sample = images.volume() / n;
    let batch_size = batch_size.max(1);

    let mut top1_hits = 0f32;
    let mut top2_hits = 0f32;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let chunk_dims: Vec<usize> =
            std::iter::once(end - start).chain(d[1..].iter().copied()).collect();
        let chunk = Tensor::from_vec(
            images.as_slice()[start * sample..end * sample].to_vec(),
            &chunk_dims,
        )?;
        let probs = net.predict_probs(&chunk, mode)?;
        let chunk_labels = &labels[start..end];
        top1_hits += top_k_accuracy(&probs, chunk_labels, 1) * chunk_labels.len() as f32;
        top2_hits += top_k_accuracy(&probs, chunk_labels, 2) * chunk_labels.len() as f32;
        start = end;
    }
    Ok(Accuracy { top1: top1_hits / n as f32, top2: top2_hits / n as f32 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_zero_accuracy() {
        let probs = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        assert_eq!(top_k_accuracy(&probs, &[0, 1], 1), 1.0);
        assert_eq!(top_k_accuracy(&probs, &[1, 0], 1), 0.0);
        assert_eq!(top_k_accuracy(&probs, &[1, 0], 2), 1.0);
    }

    #[test]
    fn top2_at_least_top1() {
        let probs = Tensor::from_vec(
            vec![0.5, 0.3, 0.2, 0.1, 0.6, 0.3, 0.3, 0.3, 0.4],
            &[3, 3],
        )
        .unwrap();
        let labels = [1usize, 0, 2];
        let t1 = top_k_accuracy(&probs, &labels, 1);
        let t2 = top_k_accuracy(&probs, &labels, 2);
        assert!(t2 >= t1);
    }

    #[test]
    fn partial_accuracy() {
        let probs = Tensor::from_vec(vec![0.9, 0.1, 0.9, 0.1], &[2, 2]).unwrap();
        assert_eq!(top_k_accuracy(&probs, &[0, 1], 1), 0.5);
    }

    #[test]
    fn evaluate_batches_consistently() {
        use crate::{Activation, NetworkBuilder};
        let mut net = NetworkBuilder::new(&[1, 4, 4])
            .conv(3, 3, 1, 1, Activation::Leaky)
            .global_avgpool()
            .softmax()
            .cost()
            .build(17)
            .unwrap();
        let images = Tensor::from_fn(&[7, 1, 4, 4], |i| (i % 13) as f32 / 12.0);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0];
        let a = evaluate(&mut net, &images, &labels, 3, KernelMode::Native).unwrap();
        let b = evaluate(&mut net, &images, &labels, 7, KernelMode::Native).unwrap();
        assert_eq!(a, b, "batching must not change the metric");
        assert!(a.top2 >= a.top1);
    }
}
