//! Softmax and cross-entropy cost — rows 9–10 / 17–18 of Tables I–II.
//!
//! The two layers are a matched pair, as in Darknet: the cost layer's
//! backward emits the combined softmax-plus-cross-entropy gradient
//! `p − y` with respect to the *logits*, and the softmax layer's backward
//! passes deltas through unchanged. Splitting the math this way keeps the
//! per-layer table structure of the paper while computing the standard,
//! numerically stable gradient.

use caltrain_tensor::stats::softmax_into;
use caltrain_tensor::{Shape, Tensor};

use crate::layers::{batch_size, Layer, LayerDescriptor, LayerKind};
use crate::network::KernelMode;
use crate::NnError;

/// Softmax over the class axis.
#[derive(Debug, Clone)]
pub struct SoftmaxLayer {
    shape: Shape,
    last_batch: usize,
}

impl SoftmaxLayer {
    /// Creates a softmax layer over `classes` logits.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        SoftmaxLayer {
            shape: Shape::new(&[classes]).expect("at least one class"),
            last_batch: 0,
        }
    }
}

impl Layer for SoftmaxLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Softmax
    }

    fn input_shape(&self) -> &Shape {
        &self.shape
    }

    fn output_shape(&self) -> &Shape {
        &self.shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        _train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.shape)?;
        self.last_batch = n;
        let classes = self.shape.dim(0);
        let mut output = Tensor::zeros(&[n, classes]);
        // Normalise straight into the output rows — the per-sample loop
        // performs no heap allocation.
        for (logit_row, out_row) in input
            .as_slice()
            .chunks_exact(classes)
            .zip(output.as_mut_slice().chunks_exact_mut(classes))
        {
            softmax_into(logit_row, out_row);
        }
        Ok((output, n as u64 * self.flops_per_sample()))
    }

    fn backward(&mut self, delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        // Pass-through: the paired cost layer already produced the
        // gradient with respect to the logits.
        let _ = batch_size(usize::MAX, delta, &self.shape)?;
        Ok((delta.clone(), 0))
    }

    fn flops_per_sample(&self) -> u64 {
        5 * self.shape.dim(0) as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::Softmax,
            filters: None,
            size: String::new(),
            input: self.shape.dims().to_vec(),
            output: self.shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Cross-entropy cost over softmax probabilities.
#[derive(Debug, Clone)]
pub struct CostLayer {
    shape: Shape,
    targets: Vec<usize>,
    last_probs: Vec<f32>,
    last_batch: usize,
    last_loss: Option<f32>,
    reuse_buffers: bool,
}

impl CostLayer {
    /// Creates a cost layer over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        CostLayer {
            shape: Shape::new(&[classes]).expect("at least one class"),
            targets: Vec::new(),
            last_probs: Vec::new(),
            last_batch: 0,
            last_loss: None,
            reuse_buffers: true,
        }
    }
}

impl Layer for CostLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Cost
    }

    fn input_shape(&self) -> &Shape {
        &self.shape
    }

    fn output_shape(&self) -> &Shape {
        &self.shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.shape)?;
        self.last_batch = n;
        if !self.reuse_buffers {
            // Reference path: pay the historical to_vec allocation.
            self.last_probs = Vec::new();
        }
        self.last_probs.clear();
        self.last_probs.extend_from_slice(input.as_slice());
        let classes = self.shape.dim(0);
        if self.targets.len() == n {
            let mut loss = 0.0f32;
            for (s, &t) in self.targets.iter().enumerate() {
                if t >= classes {
                    return Err(NnError::BadTargets("target class out of range"));
                }
                loss -= self.last_probs[s * classes + t].max(1e-10).ln();
            }
            self.last_loss = Some(loss / n as f32);
        } else if train && !self.targets.is_empty() {
            // A training pass with the wrong number of targets is a caller
            // bug; inference passes (e.g. on a snapshot that still holds
            // stale training targets) simply report no loss.
            return Err(NnError::BadTargets("target count differs from batch size"));
        } else {
            self.last_loss = None;
        }
        Ok((input.clone(), n as u64 * self.flops_per_sample()))
    }

    fn backward(&mut self, _delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        if self.targets.len() != self.last_batch {
            return Err(NnError::BadTargets("backward without matching targets"));
        }
        let classes = self.shape.dim(0);
        let n = self.last_batch;
        // Darknet convention: delta = truth − prediction, i.e. the
        // *negative* gradient `y − p`; the SGD update then ADDS the
        // accumulated deltas (`w += lr/batch · wu`).
        let mut delta = Tensor::zeros(&[n, classes]);
        let d = delta.as_mut_slice();
        for (v, &p) in d.iter_mut().zip(&self.last_probs) {
            *v = -p;
        }
        for (s, &t) in self.targets.iter().enumerate() {
            d[s * classes + t] += 1.0;
        }
        Ok((delta, (n * classes) as u64))
    }

    fn flops_per_sample(&self) -> u64 {
        self.shape.dim(0) as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::Cost,
            filters: None,
            size: String::new(),
            input: self.shape.dims().to_vec(),
            output: self.shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_targets(&mut self, targets: &[usize]) -> Result<(), NnError> {
        if !self.reuse_buffers {
            self.targets = Vec::new();
        }
        self.targets.clear();
        self.targets.extend_from_slice(targets);
        Ok(())
    }

    fn set_buffer_reuse(&mut self, reuse: bool) {
        self.reuse_buffers = reuse;
        if !reuse {
            self.last_probs = Vec::new();
        }
    }

    fn last_loss(&self) -> Option<f32> {
        self.last_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_are_distributions() {
        let mut l = SoftmaxLayer::new(3);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let (out, _) = l.forward(&input, KernelMode::Native, false).unwrap();
        for s in 0..2 {
            let row = &out.as_slice()[s * 3..(s + 1) * 3];
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cost_reports_cross_entropy() {
        let mut l = CostLayer::new(2);
        l.set_targets(&[0]).unwrap();
        let probs = Tensor::from_vec(vec![0.25, 0.75], &[1, 2]).unwrap();
        let _ = l.forward(&probs, KernelMode::Native, true).unwrap();
        let want = -(0.25f32.ln());
        assert!((l.last_loss().unwrap() - want).abs() < 1e-5);
    }

    #[test]
    fn cost_backward_is_y_minus_p() {
        let mut l = CostLayer::new(3);
        l.set_targets(&[2]).unwrap();
        let probs = Tensor::from_vec(vec![0.2, 0.3, 0.5], &[1, 3]).unwrap();
        let _ = l.forward(&probs, KernelMode::Native, true).unwrap();
        let (delta, _) = l.backward(&Tensor::zeros(&[1, 3]), KernelMode::Native).unwrap();
        let d = delta.as_slice();
        assert!((d[0] - (-0.2)).abs() < 1e-6);
        assert!((d[1] - (-0.3)).abs() < 1e-6);
        assert!((d[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cost_rejects_bad_targets() {
        let mut l = CostLayer::new(2);
        l.set_targets(&[5]).unwrap();
        let probs = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]).unwrap();
        assert!(matches!(
            l.forward(&probs, KernelMode::Native, true),
            Err(NnError::BadTargets(_))
        ));

        let mut l2 = CostLayer::new(2);
        l2.set_targets(&[0, 1]).unwrap();
        assert!(l2.forward(&probs, KernelMode::Native, true).is_err());
    }

    #[test]
    fn softmax_backward_passes_through() {
        let mut l = SoftmaxLayer::new(4);
        let input = Tensor::zeros(&[2, 4]);
        let _ = l.forward(&input, KernelMode::Native, true).unwrap();
        let delta = Tensor::from_fn(&[2, 4], |i| i as f32);
        let (out, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(out, delta);
    }

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let mut l = CostLayer::new(2);
        l.set_targets(&[1]).unwrap();
        let probs = Tensor::from_vec(vec![1e-9, 1.0 - 1e-9], &[1, 2]).unwrap();
        let _ = l.forward(&probs, KernelMode::Native, true).unwrap();
        assert!(l.last_loss().unwrap() < 1e-5);
    }
}
