//! 2-D convolution, lowered to GEMM via im2col exactly as Darknet does —
//! over the **whole batch at once**, with every worker cooperating on
//! **one** shared wide GEMM and a **fused single-pass epilogue**.
//!
//! This is the training hot path. Forward lowers the batch with a
//! cooperative batched `im2col` into one wide `ckk × (span·ohw)` column
//! matrix (workers own disjoint column-matrix row ranges), runs ONE
//! shared wide GEMM per sample tile with workers owning disjoint
//! `C` output-row tiles ([`gemm_row_tile`]) — which parallelises even
//! batch-1 inference — and scatters the wide output back to
//! sample-major layout through the [`caltrain_tensor::epilogue`]
//! module: bias *or* batch-norm normalisation *plus* the activation
//! applied per element during the scatter, so the conv output buffer is
//! written in exactly **one pass** after the GEMM (the historical
//! bias/normalise/activate sweep chain is gone; [`output_write_passes`]
//! counts this and the `training_throughput` bench gates it at 1).
//! Batch-norm batch statistics are a single fused sum/sum-of-squares
//! sweep accumulated straight off the wide GEMM rows in the
//! **canonical order** (sample ascending, spatial ascending) shared by
//! both kernel modes and the retained reference path. Backward keeps
//! the PR-4 shape (one wide `Wᵀ · δ` GEMM per sample range + batched
//! col2im), now sub-tiled so wide scratch stays bounded. Sample spans
//! are tiled by [`caltrain_runtime::chunk_ranges_capped_iter`] so no
//! wide buffer outgrows `MAX_WIDE_COLS` columns regardless of batch
//! size.
//!
//! Invariants that hold by construction:
//!
//! 1. **Batching and tiling never change results.** A wide GEMM row
//!    tile computes each output element with exactly the per-sample dot
//!    product, in the same ascending-`p` order; the epilogue is purely
//!    per-element; the BN moment chain is the same canonical order at
//!    any tile split. The *only* cross-sample summations (weight/bias
//!    gradients and the BN moments) run in fixed canonical order.
//! 2. **Worker count never changes results.** GEMM row tiles, im2col
//!    row ranges and scatter plane ranges partition statically over
//!    axes with no cross-element arithmetic; BN moments are confined to
//!    one filter per job; weight/bias gradients are reduced in fixed
//!    ascending-sample order on the calling thread — bit-identical at
//!    `CALTRAIN_WORKERS=1` and `=8`.
//! 3. **Steady-state training allocates nothing in this file.** After a
//!    warm-up step the only heap traffic per call is the output tensor
//!    itself (pinned by the `alloc_steady_state` integration test,
//!    including across the scratch-capped tile path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use caltrain_runtime::graph::{JobGraph, NodeId, PhasedSlice};
use caltrain_runtime::{chunk_ranges, chunk_ranges_capped_iter, Parallelism};
use caltrain_tensor::epilogue::{
    accumulate_wide_moments, apply_epilogue_planes, backward_delta_planes,
    bn_backward_sums_sample, bn_backward_transform_planes, finalize_moments,
    fused_channel_moments, reset_wide_moments, scatter_wide_epilogue, scatter_wide_planes,
    GemmEpilogue, MOMENT_ACC_STRIDE,
};
use caltrain_tensor::gemm::{gemm_a_bt, gemm_at_b, gemm_flops, gemm_row_tile};
use caltrain_tensor::im2col::{
    col2im, col2im_batch, conv_out_extent, im2col, im2col_batch, im2col_batch_rows,
    im2col_transposed,
};
use caltrain_tensor::tree::{combine_tree_parts, reduce_tree, tree_levels, tree_ranges};
use caltrain_tensor::{Scratch, Shape, Tensor};
use rand::Rng;

use crate::init;
use crate::layers::{batch_size, Activation, Layer, LayerDescriptor, LayerKind};
use crate::network::{Hyper, KernelMode};
use crate::NnError;

/// Minimum whole-batch forward FLOPs before the sample-range jobs fan
/// out across the worker pool. Below this the job handoff costs more
/// than the GEMMs; the unit-test-sized networks stay inline while every
/// zoo-scale model crosses the threshold. Public so the
/// `training_throughput` bench can prove its batch-1 model engages the
/// row-tiled path instead of hand-duplicating the constant.
pub const PAR_MIN_BATCH_FLOPS: u64 = 1 << 20;

/// Upper bound on the column count (`span·ohw`) of any wide working
/// buffer. Sample spans whose wide footprint would exceed this are
/// tiled by [`caltrain_runtime::chunk_ranges_capped_iter`], so
/// per-layer GEMM scratch is
/// `O(ckk · MAX_WIDE_COLS)` regardless of batch size — the fix for the
/// PR-4 batch-proportional-scratch gotcha. Zoo-scale batches (16 × 784
/// columns) stay single-tile; paper-scale batches split.
const MAX_WIDE_COLS: usize = 1 << 14;

/// Write passes over conv output buffers *after* their GEMM, process
/// wide (monotone).
///
/// The fused-epilogue path performs exactly **one** such pass per
/// forward call; the retained reference path performs two (its separate
/// bias-or-normalise sweep, then its activation sweep). The
/// `training_throughput` bench asserts the optimized count stays at
/// one per conv layer per forward.
static OUTPUT_PASSES: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide post-GEMM output-write-pass counter (see
/// `OUTPUT_PASSES` above for the invariant it tracks).
pub fn output_write_passes() -> u64 {
    OUTPUT_PASSES.load(Ordering::Relaxed)
}

/// A convolutional layer: `filters` kernels of `size × size` over the
/// input channels, with stride and zero padding, followed by an
/// elementwise activation.
#[derive(Debug, Clone)]
pub struct Conv2d {
    input_shape: Shape,
    output_shape: Shape,
    filters: usize,
    size: usize,
    stride: usize,
    pad: usize,
    activation: Activation,
    /// Batch-normalise pre-activations (Darknet `batch_normalize=1`).
    batch_norm: bool,
    /// `[filters, channels·size·size]` row-major.
    weights: Vec<f32>,
    /// β when `batch_norm`, plain bias otherwise.
    biases: Vec<f32>,
    /// γ (BN scale); unused when `batch_norm` is off.
    scales: Vec<f32>,
    weight_updates: Vec<f32>,
    bias_updates: Vec<f32>,
    scale_updates: Vec<f32>,
    /// Inference-time statistics (exponential moving averages).
    rolling_mean: Vec<f32>,
    rolling_var: Vec<f32>,
    /// Caches for backward (persistent, rewritten in place each step).
    last_input: Vec<f32>,
    last_batch: usize,
    pre_activation: Vec<f32>,
    /// BN caches: normalised x̂ and batch mean/var.
    bn_xhat: Vec<f32>,
    bn_mean: Vec<f32>,
    bn_var: Vec<f32>,
    /// Worker budget for the per-sample loops (never changes results).
    parallelism: Parallelism,
    /// `false` restores the historical allocation-per-step path (bench
    /// reference baseline only).
    reuse_buffers: bool,
    /// Layer-level transient workspace (`delta_act`).
    scratch: Scratch,
    /// One workspace per parallel sample-range job (`cols`, `col_delta`,
    /// per-sample `dw`/`db` staging). Index 0 doubles as the sequential
    /// workspace. Cloning a [`Scratch`] empties it, so snapshots stay
    /// cheap.
    workers: Vec<Scratch>,
}

/// Numerical floor inside the BN square root.
const BN_EPS: f32 = 1e-5;

/// EMA factor for the rolling inference statistics. Darknet uses .99/.01,
/// tuned for its hundreds of thousands of iterations; at this
/// reproduction's laptop-scale iteration counts the rolling stats would
/// lag training badly, so a faster .9/.1 average is used.
const BN_MOMENTUM: f32 = 0.9;

impl Conv2d {
    /// Creates a convolutional layer with He-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if geometry is degenerate (zero filters/size/stride or an
    /// input smaller than the padded kernel) — architectures are
    /// compile-time constants in this codebase.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        input_shape: &Shape,
        filters: usize,
        size: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
    ) -> Self {
        Self::with_batch_norm(rng, input_shape, filters, size, stride, pad, activation, false)
    }

    /// Creates a convolutional layer, optionally batch-normalised
    /// (Darknet's `batch_normalize=1`, which its CIFAR configurations use
    /// on every convolutional layer — without it the paper's 10/18-layer
    /// stacks do not train stably).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`Conv2d::new`]).
    #[allow(clippy::too_many_arguments)]
    pub fn with_batch_norm<R: Rng + ?Sized>(
        rng: &mut R,
        input_shape: &Shape,
        filters: usize,
        size: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
        batch_norm: bool,
    ) -> Self {
        assert!(filters > 0 && size > 0 && stride > 0, "degenerate conv geometry");
        let dims = input_shape.dims();
        assert_eq!(dims.len(), 3, "conv input must be [c, h, w]");
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        assert!(h + 2 * pad >= size && w + 2 * pad >= size, "kernel larger than input");
        let oh = conv_out_extent(h, size, stride, pad);
        let ow = conv_out_extent(w, size, stride, pad);

        let fan_in = c * size * size;
        let mut weights = vec![0.0f32; filters * fan_in];
        init::he_normal(rng, &mut weights, fan_in);

        Conv2d {
            input_shape: input_shape.clone(),
            output_shape: Shape::new(&[filters, oh, ow]).expect("non-degenerate output"),
            filters,
            size,
            stride,
            pad,
            activation,
            batch_norm,
            weights,
            biases: vec![0.0; filters],
            scales: vec![1.0; filters],
            weight_updates: vec![0.0; filters * fan_in],
            bias_updates: vec![0.0; filters],
            scale_updates: vec![0.0; filters],
            rolling_mean: vec![0.0; filters],
            rolling_var: vec![1.0; filters],
            last_input: Vec::new(),
            last_batch: 0,
            pre_activation: Vec::new(),
            bn_xhat: Vec::new(),
            bn_mean: Vec::new(),
            bn_var: Vec::new(),
            // The PR-2 convention: sequential unless CALTRAIN_WORKERS
            // says otherwise. Callers that already own worker threads
            // (hub trainers on a small host) should scope the budget via
            // Network::set_parallelism to avoid nested oversubscription.
            parallelism: Parallelism::default(),
            reuse_buffers: true,
            scratch: Scratch::new(),
            workers: Vec::new(),
        }
    }

    /// The worker budget a batch of `n` justifies: 1 (inline, no
    /// threads) unless the worker knob and the FLOP volume both say
    /// otherwise. Each phase clamps the budget to its own parallel
    /// axis (GEMM output rows, column-matrix rows, scatter planes,
    /// backward sample ranges) — row-tiled axes exist even at `n = 1`,
    /// which is what parallelises batch-1 inference.
    fn parallel_jobs(&self, n: usize) -> usize {
        let workers = self.parallelism.workers();
        if workers <= 1 {
            return 1;
        }
        if n as u64 * self.flops_per_sample() < PAR_MIN_BATCH_FLOPS {
            return 1;
        }
        workers
    }

    /// Grows the per-job workspace pool to `count` arenas (grow-only —
    /// shrinking would throw away warm buffers).
    fn ensure_workers(&mut self, count: usize) {
        while self.workers.len() < count {
            self.workers.push(Scratch::new());
        }
    }

    /// Drops every reusable buffer — the no-reuse reference path pays
    /// the historical allocation (and page-fault) bill on each step.
    fn release_workspaces(&mut self) {
        self.scratch.release();
        self.workers.clear();
        self.workers.shrink_to_fit();
    }

    /// The historical (pre-optimization) forward: sequential per-sample
    /// loop, fresh buffers every call. Retained verbatim as the
    /// reference baseline the `training_throughput` bench compares
    /// against; arithmetic is identical to the optimized path.
    fn forward_reference(
        &mut self,
        input: &Tensor,
        mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.input_shape)?;
        let (c, h, w, oh, ow, ckk, ohw) = self.geometry();
        let gemm = mode.gemm();
        self.release_workspaces();
        self.bn_mean = Vec::new();
        self.bn_var = Vec::new();
        self.bn_xhat = Vec::new();

        self.last_input = input.as_slice().to_vec();
        self.last_batch = n;
        let mut output = Tensor::zeros(&[n, self.filters, oh, ow]);
        let mut cols = vec![0.0f32; ckk * ohw];

        let in_stride = c * h * w;
        let out_stride = self.filters * ohw;
        for s in 0..n {
            let in_slice = &input.as_slice()[s * in_stride..(s + 1) * in_stride];
            im2col(in_slice, c, h, w, self.size, self.stride, self.pad, &mut cols);
            let out_slice = &mut output.as_mut_slice()[s * out_stride..(s + 1) * out_stride];
            gemm(self.filters, ohw, ckk, &self.weights, &cols, out_slice);
        }

        // The historical multi-pass epilogue: one write sweep for the
        // bias or the BN normalise, then a second for the activation.
        OUTPUT_PASSES.fetch_add(1, Ordering::Relaxed);
        if self.batch_norm {
            self.apply_batch_norm(output.as_mut_slice(), n, ohw, train);
        } else {
            let out = output.as_mut_slice();
            for s in 0..n {
                let out_slice = &mut out[s * out_stride..(s + 1) * out_stride];
                for f in 0..self.filters {
                    let bias = self.biases[f];
                    for v in &mut out_slice[f * ohw..(f + 1) * ohw] {
                        *v += bias;
                    }
                }
            }
        }

        self.pre_activation = output.as_slice().to_vec();
        let act = self.activation;
        OUTPUT_PASSES.fetch_add(1, Ordering::Relaxed);
        for v in output.as_mut_slice() {
            *v = act.apply(*v);
        }

        let flops = n as u64 * self.flops_per_sample();
        Ok((output, flops))
    }

    /// The historical backward: sequential, allocation-per-call, plain
    /// dot-product weight-gradient kernel (`gemm_a_bt`), mode ignored.
    /// The cross-sample gradient summation runs along the **canonical
    /// sample tree** ([`reduce_tree`]) — the same fixed addition shape
    /// the job-graph path uses — so the two paths agree to the bit.
    /// See [`Conv2d::forward_reference`].
    fn backward_reference(&mut self, delta: &Tensor, mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, delta, &self.output_shape)?;
        if n != self.last_batch {
            return Err(NnError::BadTargets("backward batch differs from forward"));
        }
        let (c, h, w, _oh, _ow, ckk, ohw) = self.geometry();
        let _ = mode;
        let filters = self.filters;
        let out_stride = filters * ohw;

        // δ ⊙ act'(pre-activation) — the canonical fused expression.
        let act = self.activation;
        let mut delta_act = vec![0.0f32; delta.volume()];
        backward_delta_planes(
            0..n * filters,
            filters,
            ohw,
            delta.as_slice(),
            &self.pre_activation,
            act,
            None,
            &mut delta_act,
        );

        if self.batch_norm {
            self.backward_batch_norm(&mut delta_act, n, ohw);
        }

        let in_stride = c * h * w;
        let mut input_delta = Tensor::zeros(&[n, c, h, w]);
        let mut cols = vec![0.0f32; ckk * ohw];
        let mut col_delta = vec![0.0f32; ckk * ohw];

        // Weight (and, sans BN, bias) gradients along the canonical
        // sample tree: each leaf overwrites one row with one sample's
        // gradients (δ · colsᵀ re-deriving cols as Darknet does), the
        // tree combines them, and ONE addition per element folds the
        // total into the accumulators.
        let dw_len = filters * ckk;
        let grad_w = dw_len + if self.batch_norm { 0 } else { filters };
        let mut total = vec![0.0f32; grad_w];
        let mut levels = vec![0.0f32; tree_levels(n) * grad_w];
        let batch_norm = self.batch_norm;
        let last_input = &self.last_input;
        let delta_act_ref = &delta_act;
        let (size, stride, pad) = (self.size, self.stride, self.pad);
        reduce_tree(
            0..n,
            grad_w,
            &mut levels,
            &mut |s, row| {
                let d_slice = &delta_act_ref[s * out_stride..(s + 1) * out_stride];
                let in_slice = &last_input[s * in_stride..(s + 1) * in_stride];
                im2col(in_slice, c, h, w, size, stride, pad, &mut cols);
                let (dw_row, db_row) = row.split_at_mut(dw_len);
                dw_row.fill(0.0);
                gemm_a_bt(filters, ckk, ohw, d_slice, &cols, dw_row);
                if !batch_norm {
                    for f in 0..filters {
                        let mut acc = 0.0f32;
                        for &v in &d_slice[f * ohw..(f + 1) * ohw] {
                            acc += v;
                        }
                        db_row[f] = acc;
                    }
                }
            },
            &mut total,
        );
        for (wu, g) in self.weight_updates.iter_mut().zip(&total[..dw_len]) {
            *wu += g;
        }
        if !self.batch_norm {
            for f in 0..filters {
                self.bias_updates[f] += total[dw_len + f];
            }
        }

        for s in 0..n {
            let d_slice = &delta_act[s * out_stride..(s + 1) * out_stride];
            // Input delta: Wᵀ · δ, scattered back through col2im.
            col_delta.fill(0.0);
            gemm_at_b(ckk, ohw, filters, &self.weights, d_slice, &mut col_delta);
            let id_slice = &mut input_delta.as_mut_slice()[s * in_stride..(s + 1) * in_stride];
            col2im(&col_delta, c, h, w, self.size, self.stride, self.pad, id_slice);
        }

        let flops = 2 * n as u64 * self.flops_per_sample();
        Ok((input_delta, flops))
    }

    fn geometry(&self) -> (usize, usize, usize, usize, usize, usize, usize) {
        let d = self.input_shape.dims();
        let o = self.output_shape.dims();
        (d[0], d[1], d[2], o[1], o[2], d[0] * self.size * self.size, o[1] * o[2])
    }

    /// Train-mode: normalise with batch statistics and refresh the
    /// rolling averages. Eval-mode: normalise with the rolling averages.
    ///
    /// Used by the reference path only; the optimized path fuses the
    /// same arithmetic into the scatter. Both route statistics through
    /// the **canonical** fused-moment chain
    /// ([`fused_channel_moments`] / [`finalize_moments`]) and the
    /// **canonical** normalise expression ([`GemmEpilogue::z`]'s
    /// `γ·x̂ + β` grouping), so reference, strict and native paths
    /// agree bitwise.
    fn apply_batch_norm(&mut self, out: &mut [f32], n: usize, ohw: usize, train: bool) {
        let f_count = self.filters;
        if train {
            self.bn_mean.resize(f_count, 0.0);
            self.bn_var.resize(f_count, 0.0);
            fused_channel_moments(out, n, f_count, ohw, &mut self.bn_mean, &mut self.bn_var);
            for f in 0..f_count {
                self.rolling_mean[f] =
                    BN_MOMENTUM * self.rolling_mean[f] + (1.0 - BN_MOMENTUM) * self.bn_mean[f];
                self.rolling_var[f] =
                    BN_MOMENTUM * self.rolling_var[f] + (1.0 - BN_MOMENTUM) * self.bn_var[f];
            }
            // Resized, not re-allocated: every element is overwritten by
            // the loop below.
            self.bn_xhat.resize(out.len(), 0.0);
            for f in 0..f_count {
                let mean = self.bn_mean[f];
                let inv_std = 1.0 / (self.bn_var[f] + BN_EPS).sqrt();
                let gamma = self.scales[f];
                let beta = self.biases[f];
                for s in 0..n {
                    let base = (s * f_count + f) * ohw;
                    for i in base..base + ohw {
                        let xhat = (out[i] - mean) * inv_std;
                        self.bn_xhat[i] = xhat;
                        out[i] = gamma * xhat + beta;
                    }
                }
            }
        } else {
            for f in 0..f_count {
                let mean = self.rolling_mean[f];
                let inv_std = 1.0 / (self.rolling_var[f] + BN_EPS).sqrt();
                let gamma = self.scales[f];
                let beta = self.biases[f];
                for s in 0..n {
                    let base = (s * f_count + f) * ohw;
                    for v in &mut out[base..base + ohw] {
                        // Canonical x̂-grouping: scale first, then γ·x̂+β.
                        *v = gamma * ((*v - mean) * inv_std) + beta;
                    }
                }
            }
        }
    }

    /// Standard batch-norm backward: accumulates dγ/dβ and rewrites
    /// `delta` (w.r.t. the BN output) into the delta w.r.t. the raw
    /// convolution output.
    ///
    /// After an *eval-mode* forward (no batch-statistics cache) the
    /// rolling statistics are constants, so the backward is the plain
    /// chain rule `δ ·= γ/√(var+ε)` — the path input-gradient consumers
    /// such as the model-inversion attack take.
    fn backward_batch_norm(&mut self, delta: &mut [f32], n: usize, ohw: usize) {
        let f_count = self.filters;
        let m = (n * ohw) as f32;
        if self.bn_xhat.len() != delta.len() {
            for f in 0..f_count {
                let k = self.scales[f] / (self.rolling_var[f] + BN_EPS).sqrt();
                for s in 0..n {
                    let base = (s * f_count + f) * ohw;
                    for v in &mut delta[base..base + ohw] {
                        *v *= k;
                    }
                }
            }
            return;
        }
        // Train mode: (Σdy, Σdy·x̂) per filter along the canonical
        // sample tree — per-sample leaves, fixed pairwise combines —
        // then the fused delta transform. Exactly the addition shape
        // the job-graph path performs, so the paths agree bitwise.
        let out_stride = f_count * ohw;
        let xhat = &self.bn_xhat;
        let mut sums = vec![0.0f32; 2 * f_count];
        let mut levels = vec![0.0f32; tree_levels(n) * 2 * f_count];
        reduce_tree(
            0..n,
            2 * f_count,
            &mut levels,
            &mut |s, row| {
                bn_backward_sums_sample(
                    f_count,
                    ohw,
                    &delta[s * out_stride..(s + 1) * out_stride],
                    &xhat[s * out_stride..(s + 1) * out_stride],
                    row,
                );
            },
            &mut sums,
        );
        for f in 0..f_count {
            self.bias_updates[f] += sums[2 * f];
            self.scale_updates[f] += sums[2 * f + 1];
        }
        let mut inv_std = vec![0.0f32; f_count];
        for f in 0..f_count {
            inv_std[f] = 1.0 / (self.bn_var[f] + BN_EPS).sqrt();
        }
        bn_backward_transform_planes(
            0..n * f_count,
            f_count,
            ohw,
            m,
            &self.scales,
            &inv_std,
            &sums,
            &self.bn_xhat,
            delta,
        );
    }

    /// The activation function in force.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        if !self.reuse_buffers {
            return self.forward_reference(input, mode, train);
        }
        let n = batch_size(usize::MAX, input, &self.input_shape)?;
        let (c, h, w, oh, ow, ckk, ohw) = self.geometry();
        let gemm = mode.gemm();

        self.last_input.clear();
        self.last_input.extend_from_slice(input.as_slice());
        self.last_batch = n;
        let mut output = Tensor::zeros(&[n, self.filters, oh, ow]);

        let in_stride = c * h * w;
        let out_stride = self.filters * ohw;
        let (size, stride, pad, filters) = (self.size, self.stride, self.pad, self.filters);
        let jobs = self.parallel_jobs(n);
        let bn_train = self.batch_norm && train;
        let out_len = n * out_stride;

        // Staging moved out of `self` so the phase fan-outs below can
        // borrow it alongside the parameter slices. Every element is
        // overwritten before use: for bn_train it first holds the raw
        // conv output, then is rewritten in place to the pre-activation
        // z; otherwise the fused scatter writes z directly.
        let mut pre_act = std::mem::take(&mut self.pre_activation);
        pre_act.resize(out_len, 0.0);
        // Per-filter 1/√(var+ε): rolling stats for eval, batch stats
        // (filled in phase B) for training.
        let mut inv_std = self.scratch.take("inv_std", filters);
        if self.batch_norm && !train {
            for f in 0..filters {
                inv_std[f] = 1.0 / (self.rolling_var[f] + BN_EPS).sqrt();
            }
        }
        // Canonical BN moment accumulators: (K, Σ(v−K), Σ(v−K)²) per
        // filter, accumulated tile by tile in ascending-sample order.
        // NaN-armed so the first-tile latch is provably hit exactly
        // once per sweep (`accumulate_wide_moments` debug-asserts it).
        let mut bn_acc = self.scratch.take("bn_acc", MOMENT_ACC_STRIDE * filters);
        reset_wide_moments(&mut bn_acc);

        let batch_norm = self.batch_norm;
        let weights = &self.weights;
        let biases = &self.biases;
        let scales = &self.scales;
        let rolling_mean = &self.rolling_mean;
        let in_data = input.as_slice();
        let parallelism = self.parallelism;
        let act = self.activation;

        // The fused scatter below writes the output exactly once; for
        // bn_train the single write pass is the deferred epilogue in
        // phase C instead.
        if !bn_train {
            OUTPUT_PASSES.fetch_add(1, Ordering::Relaxed);
        }

        // ── One job graph per call. Sample tiles are capped so wide
        // scratch stays bounded; within a tile the work flows
        // im2col → GEMM row tile → epilogue scatter along dependency
        // edges, with no full-pool barrier between phases — the pool
        // is entered exactly once per forward (`pool::phase_handoffs`
        // counts this; the `training_throughput` bench gates it at 1).
        // The tile split depends only on (n, ohw), never worker count.
        let max_span = (MAX_WIDE_COLS / ohw).max(1);
        if jobs <= 1 {
            // Sequential path: same tiles, phases inline. All the
            // arithmetic below is shared with the graph path, which is
            // what keeps the worker knob bit-invariant.
            for tile in chunk_ranges_capped_iter(n, 1, max_span) {
                let span = tile.len();
                let tile_cols = span * ohw;
                let tile_input = &in_data[tile.start * in_stride..tile.end * in_stride];
                let mut cols = self.scratch.take("cols", ckk * tile_cols);
                im2col_batch(tile_input, span, c, h, w, size, stride, pad, &mut cols);
                let mut out_wide = self.scratch.take_zeroed("out_wide", filters * tile_cols);
                gemm(filters, tile_cols, ckk, weights, &cols, &mut out_wide);
                if bn_train {
                    accumulate_wide_moments(&out_wide, tile_cols, &mut bn_acc, tile.start == 0);
                }
                let tile_planes = span * filters;
                let tile_out =
                    &mut output.as_mut_slice()[tile.start * out_stride..tile.end * out_stride];
                let tile_pre = &mut pre_act[tile.start * out_stride..tile.end * out_stride];
                if bn_train {
                    // Raw staging only — the batch moments don't exist yet.
                    scatter_wide_planes(
                        &out_wide, tile_cols, filters, ohw, 0..tile_planes, tile_pre,
                    );
                } else {
                    let ep = if batch_norm {
                        GemmEpilogue::Normalize {
                            mean: rolling_mean,
                            inv_std: &inv_std,
                            gamma: scales,
                            beta: biases,
                        }
                    } else {
                        GemmEpilogue::Bias { biases }
                    };
                    scatter_wide_epilogue(
                        &out_wide, tile_cols, filters, ohw, 0..tile_planes, &ep, act,
                        tile_out, tile_pre,
                    );
                }
                self.scratch.put_back("cols", cols);
                self.scratch.put_back("out_wide", out_wide);
            }

            if bn_train {
                // Finalize the canonical fused moments, refresh the
                // rolling averages, then the deferred one-pass epilogue
                // (raw staging → x̂ cache, z in place, activated output).
                let m = (n * ohw) as f32;
                self.bn_mean.resize(filters, 0.0);
                self.bn_var.resize(filters, 0.0);
                finalize_moments(&bn_acc, m, &mut self.bn_mean, &mut self.bn_var);
                for f in 0..filters {
                    self.rolling_mean[f] =
                        BN_MOMENTUM * self.rolling_mean[f] + (1.0 - BN_MOMENTUM) * self.bn_mean[f];
                    self.rolling_var[f] =
                        BN_MOMENTUM * self.rolling_var[f] + (1.0 - BN_MOMENTUM) * self.bn_var[f];
                }
                for f in 0..filters {
                    inv_std[f] = 1.0 / (self.bn_var[f] + BN_EPS).sqrt();
                }
                let mut xhat = std::mem::take(&mut self.bn_xhat);
                xhat.resize(out_len, 0.0);
                OUTPUT_PASSES.fetch_add(1, Ordering::Relaxed);
                let ep = GemmEpilogue::Normalize {
                    mean: &self.bn_mean,
                    inv_std: &inv_std,
                    gamma: scales,
                    beta: biases,
                };
                apply_epilogue_planes(
                    0..n * filters, filters, ohw, &ep, act,
                    &mut pre_act, &mut xhat, output.as_mut_slice(),
                );
                self.bn_xhat = xhat;
            }
        } else {
            // Graph path: enumerate every unit of work up front, wire
            // the hazards as edges, enter the pool ONCE.
            let tiles: Vec<std::ops::Range<usize>> =
                chunk_ranges_capped_iter(n, 1, max_span).collect();
            let nt = tiles.len();
            // Double-buffered wide staging: tile t uses parity t % 2,
            // so tile t+1 can im2col/GEMM while tile t's scatter
            // drains. The first tile is the largest, so its footprint
            // sizes the buffers.
            let max_cols = tiles[0].len() * ohw;
            let alt = if nt > 1 { 1 } else { 0 };
            let mut cols_a = self.scratch.take("cols", ckk * max_cols);
            let mut cols_b = self.scratch.take("cols_b", alt * ckk * max_cols);
            let mut wide_a = self.scratch.take("out_wide", filters * max_cols);
            let mut wide_b = self.scratch.take("out_wide_b", alt * filters * max_cols);

            // BN batch-stat staging, taken out of `self` so graph
            // nodes can fill it behind dependency edges.
            let mut bn_mean_l = std::mem::take(&mut self.bn_mean);
            let mut bn_var_l = std::mem::take(&mut self.bn_var);
            let mut xhat = std::mem::take(&mut self.bn_xhat);
            if bn_train {
                bn_mean_l.resize(filters, 0.0);
                bn_var_l.resize(filters, 0.0);
                xhat.resize(out_len, 0.0);
                OUTPUT_PASSES.fetch_add(1, Ordering::Relaxed);
            }

            enum FwdNode {
                /// Rows of tile t's shared column matrix (pure gathers).
                Cols { t: usize, rows: std::ops::Range<usize> },
                /// Filter-row tile of tile t's ONE shared wide GEMM.
                Gemm { t: usize, rows: std::ops::Range<usize> },
                /// Canonical BN moment accumulation for one filter-row
                /// group of tile t (chained tile-ascending per group).
                Moments { t: usize, rows: std::ops::Range<usize> },
                /// Scatter tile t back to sample-major planes: the
                /// fused one-pass epilogue, or raw staging under
                /// bn_train.
                Scatter { t: usize, planes: std::ops::Range<usize> },
                /// bn_train: finalize batch moments + 1/√(var+ε).
                Finalize,
                /// bn_train: deferred one-pass epilogue (global planes).
                Epilogue { planes: std::ops::Range<usize> },
            }

            let mut nodes: Vec<FwdNode> = Vec::new();
            let mut g = JobGraph::new();
            let f_ranges = chunk_ranges(filters, jobs.min(filters));
            let mut col_ids: Vec<Vec<NodeId>> = Vec::with_capacity(nt);
            let mut gem_ids: Vec<Vec<NodeId>> = Vec::with_capacity(nt);
            let mut mom_ids: Vec<Vec<NodeId>> = Vec::with_capacity(nt);
            let mut sc_ids: Vec<Vec<NodeId>> = Vec::with_capacity(nt);
            for (t, tile) in tiles.iter().enumerate() {
                let span = tile.len();
                // im2col may overwrite cols[t%2] once tile t-2's GEMM
                // (that buffer's last reader) is done.
                let mut deps: Vec<NodeId> = Vec::new();
                if t >= 2 {
                    deps.extend(&gem_ids[t - 2]);
                }
                let mut ids = Vec::new();
                for rows in chunk_ranges(ckk, jobs.min(ckk)) {
                    nodes.push(FwdNode::Cols { t, rows });
                    ids.push(g.add(&deps));
                }
                col_ids.push(ids);
                // The GEMM reads its whole column matrix, and may
                // overwrite wide[t%2] once tile t-2's readers (scatter
                // and, under bn_train, moments) are done.
                let mut deps = col_ids[t].clone();
                if t >= 2 {
                    deps.extend(&sc_ids[t - 2]);
                    deps.extend(&mom_ids[t - 2]);
                }
                let mut ids = Vec::new();
                for rows in &f_ranges {
                    nodes.push(FwdNode::Gemm { t, rows: rows.clone() });
                    ids.push(g.add(&deps));
                }
                gem_ids.push(ids);
                // Each filter group's moment chain ascends the tiles —
                // node (t, g) depends on (t-1, g) — preserving the
                // canonical accumulation order with no barrier.
                let mut ids = Vec::new();
                if bn_train {
                    for (gi, rows) in f_ranges.iter().enumerate() {
                        let mut deps = vec![gem_ids[t][gi]];
                        if t >= 1 {
                            deps.push(mom_ids[t - 1][gi]);
                        }
                        nodes.push(FwdNode::Moments { t, rows: rows.clone() });
                        ids.push(g.add(&deps));
                    }
                }
                mom_ids.push(ids);
                let deps = gem_ids[t].clone();
                let mut ids = Vec::new();
                let tile_planes = span * filters;
                for planes in chunk_ranges(tile_planes, jobs.min(tile_planes)) {
                    nodes.push(FwdNode::Scatter { t, planes });
                    ids.push(g.add(&deps));
                }
                sc_ids.push(ids);
            }
            if bn_train {
                // The per-group chains make the last tile's moment
                // nodes transitively order every accumulation before
                // the finalize.
                nodes.push(FwdNode::Finalize);
                let fin = g.add(&mom_ids[nt - 1]);
                let mut ep_deps = vec![fin];
                for ids in &sc_ids {
                    ep_deps.extend(ids);
                }
                let planes = n * filters;
                for pr in chunk_ranges(planes, jobs.min(planes)) {
                    nodes.push(FwdNode::Epilogue { planes: pr });
                    g.add(&ep_deps);
                }
            }

            let cols_ps = [PhasedSlice::new(&mut cols_a), PhasedSlice::new(&mut cols_b)];
            let wide_ps = [PhasedSlice::new(&mut wide_a), PhasedSlice::new(&mut wide_b)];
            let out_ps = PhasedSlice::new(output.as_mut_slice());
            let pre_ps = PhasedSlice::new(&mut pre_act);
            let acc_ps = PhasedSlice::new(&mut bn_acc);
            let mean_ps = PhasedSlice::new(&mut bn_mean_l);
            let var_ps = PhasedSlice::new(&mut bn_var_l);
            let istd_ps = PhasedSlice::new(&mut inv_std);
            let xhat_ps = PhasedSlice::new(&mut xhat);
            let tiles_ref = &tiles;
            let nodes_ref = &nodes;
            let m = (n * ohw) as f32;

            g.run(parallelism, |id| match &nodes_ref[id] {
                FwdNode::Cols { t, rows } => {
                    let tile = &tiles_ref[*t];
                    let tile_cols = tile.len() * ohw;
                    let dst =
                        cols_ps[t % 2].chunk_mut(rows.start * tile_cols..rows.end * tile_cols);
                    let tile_input = &in_data[tile.start * in_stride..tile.end * in_stride];
                    im2col_batch_rows(
                        tile_input, tile.len(), c, h, w, size, stride, pad, rows.clone(), dst,
                    );
                }
                FwdNode::Gemm { t, rows } => {
                    let tile = &tiles_ref[*t];
                    let tile_cols = tile.len() * ohw;
                    let c_tile =
                        wide_ps[t % 2].chunk_mut(rows.start * tile_cols..rows.end * tile_cols);
                    c_tile.fill(0.0);
                    let cols = cols_ps[t % 2].chunk(0..ckk * tile_cols);
                    gemm_row_tile(gemm, rows.clone(), tile_cols, ckk, weights, cols, c_tile);
                }
                FwdNode::Moments { t, rows } => {
                    let tile = &tiles_ref[*t];
                    let tile_cols = tile.len() * ohw;
                    let c_tile =
                        wide_ps[t % 2].chunk(rows.start * tile_cols..rows.end * tile_cols);
                    let acc = acc_ps
                        .chunk_mut(MOMENT_ACC_STRIDE * rows.start..MOMENT_ACC_STRIDE * rows.end);
                    accumulate_wide_moments(c_tile, tile_cols, acc, *t == 0);
                }
                FwdNode::Scatter { t, planes } => {
                    let tile = &tiles_ref[*t];
                    let tile_cols = tile.len() * ohw;
                    let wide = wide_ps[t % 2].chunk(0..filters * tile_cols);
                    let base = tile.start * out_stride;
                    let dst = base + planes.start * ohw..base + planes.end * ohw;
                    let pre_chunk = pre_ps.chunk_mut(dst.clone());
                    if bn_train {
                        // Raw staging only — batch moments still pending.
                        scatter_wide_planes(
                            wide, tile_cols, filters, ohw, planes.clone(), pre_chunk,
                        );
                    } else {
                        let ep = if batch_norm {
                            GemmEpilogue::Normalize {
                                mean: rolling_mean,
                                inv_std: istd_ps.chunk(0..filters),
                                gamma: scales,
                                beta: biases,
                            }
                        } else {
                            GemmEpilogue::Bias { biases }
                        };
                        scatter_wide_epilogue(
                            wide, tile_cols, filters, ohw, planes.clone(), &ep, act,
                            out_ps.chunk_mut(dst), pre_chunk,
                        );
                    }
                }
                FwdNode::Finalize => {
                    finalize_moments(
                        acc_ps.chunk(0..MOMENT_ACC_STRIDE * filters),
                        m,
                        mean_ps.chunk_mut(0..filters),
                        var_ps.chunk_mut(0..filters),
                    );
                    let istd = istd_ps.chunk_mut(0..filters);
                    for (i, &v) in var_ps.chunk(0..filters).iter().enumerate() {
                        istd[i] = 1.0 / (v + BN_EPS).sqrt();
                    }
                }
                FwdNode::Epilogue { planes } => {
                    let ep = GemmEpilogue::Normalize {
                        mean: mean_ps.chunk(0..filters),
                        inv_std: istd_ps.chunk(0..filters),
                        gamma: scales,
                        beta: biases,
                    };
                    let span = planes.start * ohw..planes.end * ohw;
                    apply_epilogue_planes(
                        planes.clone(), filters, ohw, &ep, act,
                        pre_ps.chunk_mut(span.clone()),
                        xhat_ps.chunk_mut(span.clone()),
                        out_ps.chunk_mut(span),
                    );
                }
            });

            if bn_train {
                for f in 0..filters {
                    self.rolling_mean[f] =
                        BN_MOMENTUM * self.rolling_mean[f] + (1.0 - BN_MOMENTUM) * bn_mean_l[f];
                    self.rolling_var[f] =
                        BN_MOMENTUM * self.rolling_var[f] + (1.0 - BN_MOMENTUM) * bn_var_l[f];
                }
            }
            self.bn_mean = bn_mean_l;
            self.bn_var = bn_var_l;
            self.bn_xhat = xhat;
            self.scratch.put_back("cols", cols_a);
            self.scratch.put_back("cols_b", cols_b);
            self.scratch.put_back("out_wide", wide_a);
            self.scratch.put_back("out_wide_b", wide_b);
        }

        self.pre_activation = pre_act;
        self.scratch.put_back("inv_std", inv_std);
        self.scratch.put_back("bn_acc", bn_acc);

        let flops = n as u64 * self.flops_per_sample();
        Ok((output, flops))
    }

    fn backward(&mut self, delta: &Tensor, mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        if !self.reuse_buffers {
            return self.backward_reference(delta, mode);
        }
        let n = batch_size(usize::MAX, delta, &self.output_shape)?;
        if n != self.last_batch {
            return Err(NnError::BadTargets("backward batch differs from forward"));
        }
        let (c, h, w, _oh, _ow, ckk, ohw) = self.geometry();
        // Weight gradients run as a *standard* GEMM against the
        // transposed column matrix (`dW = δ · colsT` per sample):
        // identical multiply/add sequence to the historical `gemm_a_bt`
        // dot form, but with contiguous B rows the vectoriser can chew
        // through.
        let gemm = mode.gemm();
        let gemm_at_b = mode.gemm_at_b();

        let in_stride = c * h * w;
        let out_stride = self.filters * ohw;
        let dw_len = self.filters * ckk;
        let (size, stride, pad, filters) = (self.size, self.stride, self.pad, self.filters);
        let batch_norm = self.batch_norm;
        let out_len = n * out_stride;

        let jobs = self.parallel_jobs(n);
        // Units are canonical-subtree sample ranges (`tree_ranges`):
        // each unit's dw/db (and BN-sum) subtree total combines along
        // the same fixed tree whatever the unit count, so the worker
        // knob can never move a gradient bit. The sequential path is
        // the one-unit degenerate case (whole range, no partition —
        // and no allocation, preserving the steady-state gate).
        let n_units = if jobs <= 1 { 1 } else { jobs.min(n) };
        self.ensure_workers(n_units);

        // Train-mode BN backward only exists when the forward cached
        // batch statistics for this exact batch; otherwise (eval
        // forward) the rolling stats are constants and the chain rule
        // collapses to a per-filter scale fused into the delta sweep.
        let bn_train_bwd = batch_norm && self.bn_xhat.len() == out_len;
        let m = (n * ohw) as f32;

        let mut eval_scale = self
            .scratch
            .take("bn_eval_scale", if batch_norm && !bn_train_bwd { filters } else { 0 });
        for (f, k) in eval_scale.iter_mut().enumerate() {
            *k = self.scales[f] / (self.rolling_var[f] + BN_EPS).sqrt();
        }
        let mut inv_std_bwd = self
            .scratch
            .take("bn_inv_std_bwd", if bn_train_bwd { filters } else { 0 });
        for (f, v) in inv_std_bwd.iter_mut().enumerate() {
            *v = 1.0 / (self.bn_var[f] + BN_EPS).sqrt();
        }

        // One `grad_w`-float row per unit — the unit's dw (plus db when
        // not BN) subtree total. O(units·grad_w), replacing the
        // historical span·dw_len per-sample staging.
        let grad_w = dw_len + if batch_norm { 0 } else { filters };
        let mut grad_parts = self.scratch.take("grad_parts", n_units * grad_w);
        let mut bn_sums = self
            .scratch
            .take("bn_sums", if bn_train_bwd { n_units * 2 * filters } else { 0 });

        let mut delta_act = self.scratch.take("delta_act", out_len);
        let mut input_delta = Tensor::zeros(&[n, c, h, w]);

        let act = self.activation;
        let delta_in = delta.as_slice();
        let pre_act = &self.pre_activation;
        let xhat = &self.bn_xhat;
        let last_input = &self.last_input;
        let weights = &self.weights;
        let scales = &self.scales;
        let eval_scale_ref: Option<&[f32]> =
            if batch_norm && !bn_train_bwd { Some(&eval_scale) } else { None };
        let inv_std_ref = &inv_std_bwd[..];

        // Pass 1 for one unit: the fused δ ⊙ act′(z) (+ eval-BN scale)
        // sweep over the unit's planes, plus — under train-mode BN —
        // the unit's canonical-subtree (Σdy, Σdy·x̂) reduction from
        // per-sample leaves.
        let delta_pass = |ws: &mut Scratch,
                          range: &std::ops::Range<usize>,
                          d_chunk: &mut [f32],
                          sums_out: Option<&mut [f32]>| {
            backward_delta_planes(
                range.start * filters..range.end * filters,
                filters,
                ohw,
                &delta_in[range.start * out_stride..range.end * out_stride],
                &pre_act[range.start * out_stride..range.end * out_stride],
                act,
                eval_scale_ref,
                d_chunk,
            );
            if let Some(out) = sums_out {
                let mut levels = ws.take("bn_sum_levels", tree_levels(range.len()) * 2 * filters);
                reduce_tree(
                    range.clone(),
                    2 * filters,
                    &mut levels,
                    &mut |s, row| {
                        let local = (s - range.start) * out_stride;
                        bn_backward_sums_sample(
                            filters,
                            ohw,
                            &d_chunk[local..local + out_stride],
                            &xhat[s * out_stride..(s + 1) * out_stride],
                            row,
                        );
                    },
                    out,
                );
                ws.put_back("bn_sum_levels", levels);
            }
        };

        // Pass 2 for one unit: (train-BN) the fused delta transform,
        // then the canonical dw(+db) subtree and the sub-tiled
        // input-delta GEMM + batched col2im.
        let heavy_pass = |ws: &mut Scratch,
                          range: &std::ops::Range<usize>,
                          d_chunk: &mut [f32],
                          id_chunk: &mut [f32],
                          grad_out: &mut [f32],
                          sums: Option<&[f32]>| {
            if let Some(sums) = sums {
                bn_backward_transform_planes(
                    range.start * filters..range.end * filters,
                    filters,
                    ohw,
                    m,
                    scales,
                    inv_std_ref,
                    sums,
                    &xhat[range.start * out_stride..range.end * out_stride],
                    d_chunk,
                );
            }
            let d_chunk = &*d_chunk;
            let span = range.len();

            // Canonical dw/db subtree: each leaf overwrites one row
            // with one sample's gradients, pairwise-combined in the
            // fixed tree order — O(log span)·grad_w staging.
            let mut cols_t = ws.take("cols_t", ckk * ohw);
            let mut levels = ws.take("grad_levels", tree_levels(span) * grad_w);
            reduce_tree(
                range.clone(),
                grad_w,
                &mut levels,
                &mut |s, row| {
                    let d_slice = &d_chunk[(s - range.start) * out_stride..][..out_stride];
                    let in_slice = &last_input[s * in_stride..(s + 1) * in_stride];
                    im2col_transposed(in_slice, c, h, w, size, stride, pad, &mut cols_t);
                    let (dw_row, db_row) = row.split_at_mut(dw_len);
                    dw_row.fill(0.0);
                    gemm(filters, ckk, ohw, d_slice, &cols_t, dw_row);
                    if !batch_norm {
                        for f in 0..filters {
                            let mut acc = 0.0f32;
                            for &v in &d_slice[f * ohw..(f + 1) * ohw] {
                                acc += v;
                            }
                            db_row[f] = acc;
                        }
                    }
                },
                grad_out,
            );
            ws.put_back("grad_levels", levels);
            ws.put_back("cols_t", cols_t);

            // Input delta: Wᵀ · δ_wide per sub-tile (bounded by
            // MAX_WIDE_COLS), scattered back through the batched
            // col2im. No cross-sample sums — per-sample chains,
            // bit-identical to per-sample GEMMs.
            let max_span = (MAX_WIDE_COLS / ohw).max(1);
            for sub in chunk_ranges_capped_iter(span, 1, max_span) {
                let sub_cols = sub.len() * ohw;
                let mut delta_wide = ws.take("delta_wide", filters * sub_cols);
                for (sub_local, local) in sub.clone().enumerate() {
                    let d_slice = &d_chunk[local * out_stride..(local + 1) * out_stride];
                    for f in 0..filters {
                        delta_wide[f * sub_cols + sub_local * ohw..][..ohw]
                            .copy_from_slice(&d_slice[f * ohw..(f + 1) * ohw]);
                    }
                }
                let mut col_delta = ws.take_zeroed("col_delta", ckk * sub_cols);
                gemm_at_b(ckk, sub_cols, filters, weights, &delta_wide, &mut col_delta);
                col2im_batch(
                    &col_delta, sub.len(), c, h, w, size, stride, pad,
                    &mut id_chunk[sub.start * in_stride..sub.end * in_stride],
                );
                ws.put_back("col_delta", col_delta);
                ws.put_back("delta_wide", delta_wide);
            }
        };

        if n_units <= 1 {
            // Sequential: both passes inline on workspace 0. The tree
            // shapes are identical to the partitioned run by
            // construction, so this is the bit-reference for every
            // worker count.
            let range = 0..n;
            let ws = &mut self.workers[0];
            let sums_out = if bn_train_bwd { Some(&mut bn_sums[..]) } else { None };
            delta_pass(&mut *ws, &range, &mut delta_act, sums_out);
            let sums = if bn_train_bwd { Some(&bn_sums[..2 * filters]) } else { None };
            heavy_pass(
                ws,
                &range,
                &mut delta_act,
                input_delta.as_mut_slice(),
                &mut grad_parts[..grad_w],
                sums,
            );
        } else {
            // Graph path: per-unit pass-1 nodes; under train-BN a join
            // node combines the (Σdy, Σdy·x̂) subtrees along the
            // canonical tree, then per-unit pass-2 nodes consume the
            // totals — ONE pool entry for the whole backward, no
            // full-pool barrier between the phases.
            let units = tree_ranges(n, jobs);
            debug_assert_eq!(units.len(), n_units);
            let units_ref = &units;

            enum BwdNode {
                Unit(usize),
                Phase1(usize),
                Join,
                Phase2(usize),
            }
            let mut nodes: Vec<BwdNode> = Vec::new();
            let mut g = JobGraph::new();
            if bn_train_bwd {
                let mut p1 = Vec::with_capacity(n_units);
                for u in 0..n_units {
                    nodes.push(BwdNode::Phase1(u));
                    p1.push(g.add(&[]));
                }
                nodes.push(BwdNode::Join);
                let join = g.add(&p1);
                for u in 0..n_units {
                    nodes.push(BwdNode::Phase2(u));
                    g.add(&[join]);
                }
            } else {
                for u in 0..n_units {
                    nodes.push(BwdNode::Unit(u));
                    g.add(&[]);
                }
            }

            let worker_cells: Vec<Mutex<&mut Scratch>> =
                self.workers.iter_mut().take(n_units).map(Mutex::new).collect();
            let da_ps = PhasedSlice::new(&mut delta_act);
            let id_ps = PhasedSlice::new(input_delta.as_mut_slice());
            let gp_ps = PhasedSlice::new(&mut grad_parts);
            let sums_ps = PhasedSlice::new(&mut bn_sums);
            let nodes_ref = &nodes;

            g.run(self.parallelism, |id| match &nodes_ref[id] {
                BwdNode::Unit(u) => {
                    let mut guard = worker_cells[*u].lock().unwrap();
                    let ws: &mut Scratch = &mut guard;
                    let range = &units_ref[*u];
                    let d_chunk =
                        da_ps.chunk_mut(range.start * out_stride..range.end * out_stride);
                    delta_pass(&mut *ws, range, &mut *d_chunk, None);
                    let id_chunk =
                        id_ps.chunk_mut(range.start * in_stride..range.end * in_stride);
                    let grad_out = gp_ps.chunk_mut(*u * grad_w..(*u + 1) * grad_w);
                    heavy_pass(ws, range, d_chunk, id_chunk, grad_out, None);
                }
                BwdNode::Phase1(u) => {
                    let mut guard = worker_cells[*u].lock().unwrap();
                    let ws: &mut Scratch = &mut guard;
                    let range = &units_ref[*u];
                    let d_chunk =
                        da_ps.chunk_mut(range.start * out_stride..range.end * out_stride);
                    let sums_row = sums_ps.chunk_mut(2 * filters * u..2 * filters * (u + 1));
                    delta_pass(ws, range, d_chunk, Some(sums_row));
                }
                BwdNode::Join => {
                    let parts = sums_ps.chunk_mut(0..units_ref.len() * 2 * filters);
                    combine_tree_parts(units_ref, 2 * filters, parts);
                }
                BwdNode::Phase2(u) => {
                    let mut guard = worker_cells[*u].lock().unwrap();
                    let ws: &mut Scratch = &mut guard;
                    let range = &units_ref[*u];
                    let d_chunk =
                        da_ps.chunk_mut(range.start * out_stride..range.end * out_stride);
                    let id_chunk =
                        id_ps.chunk_mut(range.start * in_stride..range.end * in_stride);
                    let grad_out = gp_ps.chunk_mut(*u * grad_w..(*u + 1) * grad_w);
                    let sums = sums_ps.chunk(0..2 * filters);
                    heavy_pass(ws, range, d_chunk, id_chunk, grad_out, Some(sums));
                }
            });

            // Combine the per-unit dw/db subtree totals along the
            // canonical tree: row 0 becomes the whole-batch total, with
            // exactly the additions the one-unit reduction performs.
            combine_tree_parts(&units, grad_w, &mut grad_parts);
        }

        // Fold the canonical-tree totals into the persistent
        // accumulators — ONE addition per element, identical for every
        // unit count.
        for (wu, g) in self.weight_updates.iter_mut().zip(&grad_parts[..dw_len]) {
            *wu += g;
        }
        if !batch_norm {
            for f in 0..filters {
                self.bias_updates[f] += grad_parts[dw_len + f];
            }
        }
        if bn_train_bwd {
            // β/γ gradients are the combined batch sums (row 0 after
            // the join / single-unit reduction).
            for f in 0..filters {
                self.bias_updates[f] += bn_sums[2 * f];
                self.scale_updates[f] += bn_sums[2 * f + 1];
            }
        }

        self.scratch.put_back("delta_act", delta_act);
        self.scratch.put_back("grad_parts", grad_parts);
        self.scratch.put_back("bn_sums", bn_sums);
        self.scratch.put_back("bn_eval_scale", eval_scale);
        self.scratch.put_back("bn_inv_std_bwd", inv_std_bwd);
        let flops = 2 * n as u64 * self.flops_per_sample();
        Ok((input_delta, flops))
    }

    fn apply_update(&mut self, hyper: &Hyper, batch: usize) {
        // Darknet's update_convolutional_layer:
        //   wu -= decay * batch * w
        //   w  += (lr / batch) * wu
        //   wu *= momentum            (and the same for biases, sans decay)
        let batch = batch.max(1) as f32;
        for (wu, &w) in self.weight_updates.iter_mut().zip(&self.weights) {
            *wu -= hyper.decay * batch * w;
        }
        let step = hyper.learning_rate / batch;
        for (w, wu) in self.weights.iter_mut().zip(&mut self.weight_updates) {
            *w += step * *wu;
            *wu *= hyper.momentum;
        }
        for (b, bu) in self.biases.iter_mut().zip(&mut self.bias_updates) {
            *b += step * *bu;
            *bu *= hyper.momentum;
        }
        if self.batch_norm {
            for (g, gu) in self.scales.iter_mut().zip(&mut self.scale_updates) {
                *g += step * *gu;
                *gu *= hyper.momentum;
            }
        }
    }

    fn param_count(&self) -> usize {
        let base = self.weights.len() + self.biases.len();
        if self.batch_norm {
            // γ plus the rolling statistics (needed for inference).
            base + 3 * self.filters
        } else {
            base
        }
    }

    fn export_params(&self) -> Vec<f32> {
        let mut out = self.weights.clone();
        out.extend_from_slice(&self.biases);
        if self.batch_norm {
            out.extend_from_slice(&self.scales);
            out.extend_from_slice(&self.rolling_mean);
            out.extend_from_slice(&self.rolling_var);
        }
        out
    }

    fn import_params(&mut self, params: &[f32]) -> Result<(), NnError> {
        if params.len() != self.param_count() {
            return Err(NnError::BadWeightBlob("conv parameter count mismatch"));
        }
        let w = self.weights.len();
        let f = self.filters;
        self.weights.copy_from_slice(&params[..w]);
        self.biases.copy_from_slice(&params[w..w + f]);
        if self.batch_norm {
            self.scales.copy_from_slice(&params[w + f..w + 2 * f]);
            self.rolling_mean.copy_from_slice(&params[w + 2 * f..w + 3 * f]);
            self.rolling_var.copy_from_slice(&params[w + 3 * f..w + 4 * f]);
        }
        Ok(())
    }

    fn flops_per_sample(&self) -> u64 {
        let (_, _, _, _, _, ckk, ohw) = self.geometry();
        gemm_flops(self.filters, ohw, ckk) + (self.filters * ohw) as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::Conv,
            filters: Some(self.filters),
            size: format!("{}x{}/{}", self.size, self.size, self.stride),
            input: self.input_shape.dims().to_vec(),
            output: self.output_shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn set_buffer_reuse(&mut self, reuse: bool) {
        self.reuse_buffers = reuse;
        if !reuse {
            self.release_workspaces();
        }
    }

    fn take_grads(&mut self) -> Vec<f32> {
        let mut out =
            Vec::with_capacity(self.weight_updates.len() + self.bias_updates.len() + self.filters);
        out.append(&mut self.weight_updates);
        self.weight_updates = vec![0.0; out.len()];
        out.extend_from_slice(&self.bias_updates);
        self.bias_updates.fill(0.0);
        if self.batch_norm {
            out.extend_from_slice(&self.scale_updates);
            self.scale_updates.fill(0.0);
        }
        out
    }

    fn add_grads(&mut self, grads: &[f32]) -> Result<(), NnError> {
        let w = self.weight_updates.len();
        let f = self.filters;
        let expected = w + f + if self.batch_norm { f } else { 0 };
        if grads.len() != expected {
            return Err(NnError::BadWeightBlob("gradient buffer length mismatch"));
        }
        for (acc, g) in self.weight_updates.iter_mut().zip(&grads[..w]) {
            *acc += g;
        }
        for (acc, g) in self.bias_updates.iter_mut().zip(&grads[w..w + f]) {
            *acc += g;
        }
        if self.batch_norm {
            for (acc, g) in self.scale_updates.iter_mut().zip(&grads[w + f..]) {
                *acc += g;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(act: Activation) -> Conv2d {
        let mut rng = StdRng::seed_from_u64(1);
        Conv2d::new(&mut rng, &Shape::new(&[2, 5, 5]).unwrap(), 3, 3, 1, 1, act)
    }

    #[test]
    fn shapes_match_darknet_formula() {
        let l = layer(Activation::Leaky);
        assert_eq!(l.output_shape().dims(), &[3, 5, 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let strided =
            Conv2d::new(&mut rng, &Shape::new(&[3, 28, 28]).unwrap(), 128, 3, 1, 1, Activation::Leaky);
        assert_eq!(strided.output_shape().dims(), &[128, 28, 28]);
        assert_eq!(strided.param_count(), 128 * 3 * 9 + 128);
    }

    #[test]
    fn forward_known_filter() {
        // Identity-ish: one filter that just copies the centre tap of
        // channel 0.
        let mut l = layer(Activation::Linear);
        let ckk = 2 * 9;
        let mut w = vec![0.0f32; ckk];
        w[4] = 1.0; // channel 0, centre of 3x3
        let mut rng = StdRng::seed_from_u64(3);
        let mut single =
            Conv2d::new(&mut rng, &Shape::new(&[2, 5, 5]).unwrap(), 1, 3, 1, 1, Activation::Linear);
        let mut params = w.clone();
        params.push(0.5); // bias
        single.import_params(&params).unwrap();

        let input = Tensor::from_fn(&[1, 2, 5, 5], |i| i as f32);
        let (out, flops) = single.forward(&input, KernelMode::Native, true).unwrap();
        assert_eq!(out.dims(), &[1, 1, 5, 5]);
        // Output pixel (y,x) = input channel-0 pixel (y,x) + bias.
        for y in 0..5 {
            for x in 0..5 {
                let got = out.get(&[0, 0, y, x]).unwrap();
                let want = input.get(&[0, 0, y, x]).unwrap() + 0.5;
                assert!((got - want).abs() < 1e-5);
            }
        }
        assert!(flops > 0);
        let _ = l.forward(&input, KernelMode::Strict, true).unwrap();
    }

    #[test]
    fn strict_and_native_bit_identical() {
        let mut l1 = layer(Activation::Leaky);
        let mut l2 = l1.clone();
        let input = Tensor::from_fn(&[2, 2, 5, 5], |i| ((i * 37) % 11) as f32 / 7.0 - 0.6);
        let (o1, _) = l1.forward(&input, KernelMode::Strict, true).unwrap();
        let (o2, _) = l2.forward(&input, KernelMode::Native, true).unwrap();
        assert_eq!(o1.as_slice(), o2.as_slice(), "kernel paths must agree bitwise");

        let delta = Tensor::from_fn(&[2, 3, 5, 5], |i| (i % 5) as f32 - 2.0);
        let (d1, _) = l1.backward(&delta, KernelMode::Strict).unwrap();
        let (d2, _) = l2.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(d1.as_slice(), d2.as_slice());
    }

    #[test]
    fn span_tiled_path_matches_reference_bitwise() {
        // 24 samples × 784 output positions ≈ 18.8k wide columns >
        // MAX_WIDE_COLS, so the optimized path runs 2 sample tiles
        // (and backward sub-tiles); the per-sample reference must
        // still match to the bit — forward, gradients and backward.
        let shape = Shape::new(&[3, 28, 28]).unwrap();
        let input = Tensor::from_fn(&[24, 3, 28, 28], |i| ((i * 29) % 23) as f32 / 11.0 - 1.0);
        let delta = Tensor::from_fn(&[24, 4, 28, 28], |i| (i % 7) as f32 - 3.0);
        for bn in [false, true] {
            let mut rng = StdRng::seed_from_u64(91);
            let mut opt = Conv2d::with_batch_norm(
                &mut rng, &shape, 4, 3, 1, 1, Activation::Leaky, bn,
            );
            let mut refp = opt.clone();
            refp.set_buffer_reuse(false);
            let (o1, _) = opt.forward(&input, KernelMode::Native, true).unwrap();
            let (o2, _) = refp.forward(&input, KernelMode::Native, true).unwrap();
            assert_eq!(o1.as_slice(), o2.as_slice(), "forward (bn={bn})");
            let (d1, _) = opt.backward(&delta, KernelMode::Native).unwrap();
            let (d2, _) = refp.backward(&delta, KernelMode::Native).unwrap();
            assert_eq!(d1.as_slice(), d2.as_slice(), "input delta (bn={bn})");
            assert_eq!(opt.weight_updates, refp.weight_updates, "dw (bn={bn})");
            assert_eq!(opt.bias_updates, refp.bias_updates, "db (bn={bn})");
        }
    }

    #[test]
    fn row_tiled_parallel_batch1_matches_sequential_bitwise() {
        // A single sample big enough to cross the FLOP threshold: the
        // wide GEMM splits into worker-owned row tiles, the scatter
        // into plane ranges — no bit may move.
        let shape = Shape::new(&[8, 28, 28]).unwrap();
        let input = Tensor::from_fn(&[1, 8, 28, 28], |i| ((i * 37) % 19) as f32 / 9.0 - 1.0);
        let mut rng = StdRng::seed_from_u64(92);
        let mut seq = Conv2d::new(&mut rng, &shape, 16, 3, 1, 1, Activation::Leaky);
        seq.set_parallelism(Parallelism::sequential());
        assert!(seq.parallel_jobs(1) == 1);
        let (want, _) = seq.forward(&input, KernelMode::Native, true).unwrap();
        for workers in [2, 4, 8] {
            let mut par = seq.clone();
            par.set_parallelism(Parallelism::new(workers));
            assert!(par.parallel_jobs(1) > 1, "batch-1 must fan out at {workers} workers");
            let (got, _) = par.forward(&input, KernelMode::Native, true).unwrap();
            assert_eq!(want.as_slice(), got.as_slice(), "w={workers}");
        }
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dLoss/dw for a scalar loss = sum(out).
        let mut rng = StdRng::seed_from_u64(4);
        let mut l =
            Conv2d::new(&mut rng, &Shape::new(&[1, 4, 4]).unwrap(), 2, 3, 1, 1, Activation::Leaky);
        let input = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32) / 7.0 - 1.0);

        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        let ones = Tensor::full(out.dims(), 1.0);
        l.weight_updates.fill(0.0);
        let _ = l.backward(&ones, KernelMode::Native).unwrap();
        let analytic = l.weight_updates.clone();

        let eps = 1e-3;
        for widx in [0usize, 3, 8, 10, 17] {
            let mut params = l.export_params();
            let orig = params[widx];
            params[widx] = orig + eps;
            l.import_params(&params).unwrap();
            let (out_p, _) = l.forward(&input, KernelMode::Native, true).unwrap();
            params[widx] = orig - eps;
            l.import_params(&params).unwrap();
            let (out_m, _) = l.forward(&input, KernelMode::Native, true).unwrap();
            params[widx] = orig;
            l.import_params(&params).unwrap();

            let numeric = (out_p.sum() - out_m.sum()) / (2.0 * eps);
            assert!(
                (numeric - analytic[widx]).abs() < 1e-2 * analytic[widx].abs().max(1.0),
                "w[{widx}]: numeric {numeric} vs analytic {}",
                analytic[widx]
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l =
            Conv2d::new(&mut rng, &Shape::new(&[1, 4, 4]).unwrap(), 2, 3, 1, 1, Activation::Linear);
        let base = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32) / 9.0 - 0.7);
        let (out, _) = l.forward(&base, KernelMode::Native, true).unwrap();
        let ones = Tensor::full(out.dims(), 1.0);
        let (analytic, _) = l.backward(&ones, KernelMode::Native).unwrap();

        let eps = 1e-3;
        for idx in [0usize, 5, 9, 15] {
            let mut plus = base.clone();
            plus.as_mut_slice()[idx] += eps;
            let (op, _) = l.forward(&plus, KernelMode::Native, true).unwrap();
            let mut minus = base.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (om, _) = l.forward(&minus, KernelMode::Native, true).unwrap();
            let numeric = (op.sum() - om.sum()) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!((numeric - a).abs() < 1e-2, "x[{idx}]: {numeric} vs {a}");
        }
    }

    #[test]
    fn update_moves_weights_against_gradient() {
        let mut l = layer(Activation::Linear);
        let before = l.export_params();
        let input = Tensor::from_fn(&[1, 2, 5, 5], |i| (i % 3) as f32);
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        let delta = Tensor::full(out.dims(), -1.0); // pretend gradient
        let _ = l.backward(&delta, KernelMode::Native).unwrap();
        l.apply_update(
            &Hyper { learning_rate: 0.1, momentum: 0.9, decay: 0.0 },
            1,
        );
        let after = l.export_params();
        assert_ne!(before, after);
    }

    #[test]
    fn import_rejects_wrong_length() {
        let mut l = layer(Activation::Leaky);
        assert!(l.import_params(&[0.0; 3]).is_err());
    }

    fn bn_layer(seed: u64) -> Conv2d {
        let mut rng = StdRng::seed_from_u64(seed);
        Conv2d::with_batch_norm(
            &mut rng,
            &Shape::new(&[1, 4, 4]).unwrap(),
            2,
            3,
            1,
            1,
            Activation::Linear,
            true,
        )
    }

    #[test]
    fn batch_norm_normalises_train_output() {
        let mut l = bn_layer(31);
        let input = Tensor::from_fn(&[4, 1, 4, 4], |i| ((i * 7) % 23) as f32 / 11.0 - 1.0);
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        // γ=1, β=0 at init: each filter's outputs are ~N(0,1) over the batch.
        let per_filter = 4 * 16;
        for f in 0..2 {
            let vals: Vec<f32> = (0..4)
                .flat_map(|s| {
                    let base = (s * 2 + f) * 16;
                    out.as_slice()[base..base + 16].to_vec()
                })
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / per_filter as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / per_filter as f32;
            assert!(mean.abs() < 1e-4, "filter {f} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "filter {f} var {var}");
        }
    }

    #[test]
    fn batch_norm_gradient_check_input() {
        // Finite differences through conv+BN for loss = sum(out).
        // The per-batch statistics make this the full Jacobian test.
        let mut l = bn_layer(32);
        // Asymmetric weighting so the sum loss has non-trivial gradient
        // despite BN's mean-invariance.
        let weights_loss = |t: &Tensor| -> f32 {
            t.as_slice().iter().enumerate().map(|(i, v)| (i % 5) as f32 * v).sum()
        };
        let base = Tensor::from_fn(&[2, 1, 4, 4], |i| ((i * 13) % 17) as f32 / 8.0 - 1.0);
        let (out, _) = l.forward(&base, KernelMode::Native, true).unwrap();
        let dloss = Tensor::from_fn(out.dims(), |i| (i % 5) as f32);
        let (analytic, _) = l.backward(&dloss, KernelMode::Native).unwrap();

        let eps = 1e-2;
        for idx in [0usize, 7, 13, 30] {
            let mut plus = base.clone();
            plus.as_mut_slice()[idx] += eps;
            let (op, _) = l.forward(&plus, KernelMode::Native, true).unwrap();
            let mut minus = base.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (om, _) = l.forward(&minus, KernelMode::Native, true).unwrap();
            let numeric = (weights_loss(&op) - weights_loss(&om)) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (numeric - a).abs() < 0.05 * a.abs().max(1.0),
                "x[{idx}]: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn batch_norm_eval_uses_rolling_stats() {
        let mut l = bn_layer(33);
        let input = Tensor::from_fn(&[4, 1, 4, 4], |i| (i % 9) as f32 / 4.0);
        // Enough identical passes for the 0.99-EMA rolling stats to
        // converge to the batch statistics.
        for _ in 0..600 {
            let _ = l.forward(&input, KernelMode::Native, true).unwrap();
        }
        let (train_out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        let (eval_out, _) = l.forward(&input, KernelMode::Native, false).unwrap();
        // After many identical batches the rolling stats approach the
        // batch stats, so train and eval outputs are close (not equal).
        let diff: f32 = train_out
            .as_slice()
            .iter()
            .zip(eval_out.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 0.5, "train/eval divergence {diff}");
    }

    #[test]
    fn batch_norm_params_roundtrip() {
        let l = bn_layer(34);
        assert_eq!(l.param_count(), 2 * 9 + 2 + 3 * 2);
        let params = l.export_params();
        let mut l2 = bn_layer(35);
        l2.import_params(&params).unwrap();
        assert_eq!(l2.export_params(), params);
    }
}
