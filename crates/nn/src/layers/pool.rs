//! Pooling layers: max pooling and Darknet's global average pooling.
//!
//! Until PR 4 these were the only remaining *sequential* per-sample
//! batch loops on the training hot path. Both layers fan work across
//! the persistent `caltrain-runtime` worker pool the way `Conv2d` does:
//! static partitioning, disjoint output chunks per job, no cross-chunk
//! arithmetic at all — so worker count can never change a result bit.
//! Since PR 5 the partition axis is the **plane** (`(sample, channel)`
//! pair), not the sample: a pooling sweep never crosses a channel
//! plane, so `n·c` planes parallelise even batch-1 inference, matching
//! the conv layers' row-tiled batch-1 path. Small workloads stay inline
//! below [`PAR_MIN_BATCH_ELEMS`] (pooling is memory-bound; fanning out
//! only pays once there are real planes to sweep per worker).

use caltrain_runtime::{chunk_ranges, par_map_mut, Parallelism};
use caltrain_tensor::im2col::conv_out_extent;
use caltrain_tensor::{Shape, Tensor};

use crate::layers::{batch_size, Layer, LayerDescriptor, LayerKind};
use crate::network::KernelMode;
use crate::NnError;

/// Minimum whole-batch *touched elements* (window taps on the forward
/// sweep) before a pooling layer fans its per-sample loop across
/// workers. Pooling does ~1 compare/add per tap, so elements — not
/// FLOPs — are the cost unit. Unit-test-sized batches stay inline;
/// zoo-scale batches cross the threshold.
const PAR_MIN_BATCH_ELEMS: u64 = 1 << 17;

/// Shared fan-out policy for both pooling layers: 1 job (inline, no
/// pool) unless the worker knob and the whole-batch touched-element
/// volume both justify it; otherwise one job per worker, capped by the
/// **plane** count (`n·c`) — the partition axis, so a single large
/// sample still fans out.
fn pool_parallel_jobs(
    parallelism: Parallelism,
    n: usize,
    planes: usize,
    elems_per_sample: u64,
) -> usize {
    let workers = parallelism.workers();
    if workers <= 1 || n as u64 * elems_per_sample < PAR_MIN_BATCH_ELEMS {
        return 1;
    }
    workers.min(planes)
}

/// Max pooling with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool {
    input_shape: Shape,
    output_shape: Shape,
    size: usize,
    stride: usize,
    /// Flat input index of each output's argmax, for routing deltas back.
    /// Grow-only: rewritten in place each forward, never re-allocated in
    /// steady state.
    argmax: Vec<usize>,
    last_batch: usize,
    reuse_buffers: bool,
    /// Worker budget for the per-sample loops (never changes results).
    parallelism: Parallelism,
}

impl MaxPool {
    /// Creates a max-pooling layer (`size × size`, given stride, no pad —
    /// the Tables I–II configuration).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(input_shape: &Shape, size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "degenerate pool geometry");
        let d = input_shape.dims();
        assert_eq!(d.len(), 3, "pool input must be [c, h, w]");
        let oh = conv_out_extent(d[1], size, stride, 0);
        let ow = conv_out_extent(d[2], size, stride, 0);
        MaxPool {
            input_shape: input_shape.clone(),
            output_shape: Shape::new(&[d[0], oh, ow]).expect("non-degenerate output"),
            size,
            stride,
            argmax: Vec::new(),
            last_batch: 0,
            reuse_buffers: true,
            parallelism: Parallelism::default(),
        }
    }

    /// Job count for a batch of `n` (see [`pool_parallel_jobs`]).
    fn parallel_jobs(&self, n: usize) -> usize {
        let c = self.input_shape.dims()[0];
        pool_parallel_jobs(self.parallelism, n, n * c, self.flops_per_sample())
    }
}

impl Layer for MaxPool {
    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool
    }

    fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        _train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.input_shape)?;
        let d = self.input_shape.dims();
        let (c, h, w) = (d[0], d[1], d[2]);
        let o = self.output_shape.dims();
        let (oh, ow) = (o[1], o[2]);

        self.last_batch = n;
        let mut output = Tensor::zeros(&[n, c, oh, ow]);
        if !self.reuse_buffers {
            self.argmax = Vec::new();
        }
        // Every element is overwritten below; resize, don't re-allocate.
        self.argmax.resize(n * c * oh * ow, 0);

        let in_plane = h * w;
        let out_plane = oh * ow;
        let data = input.as_slice();
        let (size, stride) = (self.size, self.stride);

        // One job = one contiguous **plane** range (`plane = s·c + ch`)
        // writing disjoint output and argmax chunks; argmax stores
        // *absolute* input indices, so chunking needs no re-basing. No
        // cross-plane arithmetic exists in this layer, so the job count
        // cannot change any bit — and a batch-1 input still fans out
        // across its channel planes.
        let run_range = |planes: std::ops::Range<usize>, out: &mut [f32], amax: &mut [usize]| {
            let mut oidx = 0usize;
            for p in planes {
                let plane = p * in_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = plane;
                        for ky in 0..size {
                            let iy = oy * stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..size {
                                let ix = ox * stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                let idx = plane + iy * w + ix;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[oidx] = best;
                        amax[oidx] = best_idx;
                        oidx += 1;
                    }
                }
            }
        };

        let planes = n * c;
        let jobs = self.parallel_jobs(n);
        if jobs <= 1 {
            run_range(0..planes, output.as_mut_slice(), &mut self.argmax);
        } else {
            struct FwdJob<'a> {
                planes: std::ops::Range<usize>,
                out: &'a mut [f32],
                amax: &'a mut [usize],
            }
            let mut job_list = Vec::with_capacity(jobs);
            let mut out_rest = output.as_mut_slice();
            let mut amax_rest = self.argmax.as_mut_slice();
            for range in chunk_ranges(planes, jobs) {
                let (out, o_rest) = out_rest.split_at_mut(range.len() * out_plane);
                let (amax, a_rest) = amax_rest.split_at_mut(range.len() * out_plane);
                out_rest = o_rest;
                amax_rest = a_rest;
                job_list.push(FwdJob { planes: range, out, amax });
            }
            par_map_mut(self.parallelism, &mut job_list, |_, job| {
                run_range(job.planes.clone(), job.out, job.amax);
            });
        }
        let flops = n as u64 * self.flops_per_sample();
        Ok((output, flops))
    }

    fn backward(&mut self, delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, delta, &self.output_shape)?;
        if n != self.last_batch {
            return Err(NnError::BadTargets("backward batch differs from forward"));
        }
        let d = self.input_shape.dims();
        let in_plane = d[1] * d[2];
        let o = self.output_shape.dims();
        let out_plane = o[1] * o[2];
        let mut input_delta = Tensor::zeros(&[n, d[0], d[1], d[2]]);
        let dd = delta.as_slice();
        let argmax = &self.argmax;

        // Argmax indices always point inside the owning channel plane,
        // so per-plane-range routing touches only that range's chunk of
        // the input delta.
        let run_range = |planes: std::ops::Range<usize>, id: &mut [f32]| {
            let id_base = planes.start * in_plane;
            for oi in planes.start * out_plane..planes.end * out_plane {
                id[argmax[oi] - id_base] += dd[oi];
            }
        };

        let planes = n * d[0];
        let jobs = self.parallel_jobs(n);
        if jobs <= 1 {
            run_range(0..planes, input_delta.as_mut_slice());
        } else {
            struct BwdJob<'a> {
                planes: std::ops::Range<usize>,
                id: &'a mut [f32],
            }
            let mut job_list = Vec::with_capacity(jobs);
            let mut id_rest = input_delta.as_mut_slice();
            for range in chunk_ranges(planes, jobs) {
                let (id, rest) = id_rest.split_at_mut(range.len() * in_plane);
                id_rest = rest;
                job_list.push(BwdJob { planes: range, id });
            }
            par_map_mut(self.parallelism, &mut job_list, |_, job| {
                run_range(job.planes.clone(), job.id);
            });
        }
        Ok((input_delta, n as u64 * self.flops_per_sample()))
    }

    fn flops_per_sample(&self) -> u64 {
        (self.output_shape.volume() * self.size * self.size) as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::MaxPool,
            filters: None,
            size: format!("{}x{}/{}", self.size, self.size, self.stride),
            input: self.input_shape.dims().to_vec(),
            output: self.output_shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn set_buffer_reuse(&mut self, reuse: bool) {
        self.reuse_buffers = reuse;
        if !reuse {
            self.argmax = Vec::new();
        }
    }
}

/// Global average pooling: `[c, h, w] → [c]` (Darknet's `avg` layer,
/// rows 8/16 of Tables I–II).
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    input_shape: Shape,
    output_shape: Shape,
    last_batch: usize,
    /// Worker budget for the per-sample loops (never changes results).
    parallelism: Parallelism,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-3.
    pub fn new(input_shape: &Shape) -> Self {
        let d = input_shape.dims();
        assert_eq!(d.len(), 3, "avgpool input must be [c, h, w]");
        GlobalAvgPool {
            input_shape: input_shape.clone(),
            output_shape: Shape::new(&[d[0]]).expect("channel axis non-zero"),
            last_batch: 0,
            parallelism: Parallelism::default(),
        }
    }

    /// Job count for a batch of `n` (see [`pool_parallel_jobs`]).
    fn parallel_jobs(&self, n: usize) -> usize {
        let c = self.input_shape.dims()[0];
        pool_parallel_jobs(self.parallelism, n, n * c, self.flops_per_sample())
    }
}

impl Layer for GlobalAvgPool {
    fn kind(&self) -> LayerKind {
        LayerKind::AvgPool
    }

    fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        _train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.input_shape)?;
        let d = self.input_shape.dims();
        let (c, hw) = (d[0], d[1] * d[2]);
        self.last_batch = n;
        let mut output = Tensor::zeros(&[n, c]);
        let data = input.as_slice();

        // Each channel plane's mean is independent; the per-channel sum
        // keeps its single ascending accumulator chain regardless of
        // how planes are partitioned (a plane is never split).
        let run_range = |planes: std::ops::Range<usize>, out: &mut [f32]| {
            for (local, p) in planes.enumerate() {
                let plane = &data[p * hw..(p + 1) * hw];
                out[local] = plane.iter().sum::<f32>() / hw as f32;
            }
        };

        let planes = n * c;
        let jobs = self.parallel_jobs(n);
        if jobs <= 1 {
            run_range(0..planes, output.as_mut_slice());
        } else {
            struct FwdJob<'a> {
                planes: std::ops::Range<usize>,
                out: &'a mut [f32],
            }
            let mut job_list = Vec::with_capacity(jobs);
            let mut out_rest = output.as_mut_slice();
            for range in chunk_ranges(planes, jobs) {
                let (out, rest) = out_rest.split_at_mut(range.len());
                out_rest = rest;
                job_list.push(FwdJob { planes: range, out });
            }
            par_map_mut(self.parallelism, &mut job_list, |_, job| {
                run_range(job.planes.clone(), job.out);
            });
        }
        Ok((output, n as u64 * self.flops_per_sample()))
    }

    fn backward(&mut self, delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        let dims = delta.dims();
        let d = self.input_shape.dims();
        let (c, hw) = (d[0], d[1] * d[2]);
        if dims.len() != 2 || dims[1] != c || dims[0] != self.last_batch {
            return Err(NnError::ShapeMismatch {
                layer: usize::MAX,
                expected: vec![self.last_batch, c],
                got: dims.to_vec(),
            });
        }
        let n = dims[0];
        let mut input_delta = Tensor::zeros(&[n, c, d[1], d[2]]);
        let dd = delta.as_slice();

        let run_range = |planes: std::ops::Range<usize>, id: &mut [f32]| {
            for (local, p) in planes.enumerate() {
                let g = dd[p] / hw as f32;
                for v in &mut id[local * hw..(local + 1) * hw] {
                    *v = g;
                }
            }
        };

        let planes = n * c;
        let jobs = self.parallel_jobs(n);
        if jobs <= 1 {
            run_range(0..planes, input_delta.as_mut_slice());
        } else {
            struct BwdJob<'a> {
                planes: std::ops::Range<usize>,
                id: &'a mut [f32],
            }
            let mut job_list = Vec::with_capacity(jobs);
            let mut id_rest = input_delta.as_mut_slice();
            for range in chunk_ranges(planes, jobs) {
                let (id, rest) = id_rest.split_at_mut(range.len() * hw);
                id_rest = rest;
                job_list.push(BwdJob { planes: range, id });
            }
            par_map_mut(self.parallelism, &mut job_list, |_, job| {
                run_range(job.planes.clone(), job.id);
            });
        }
        Ok((input_delta, n as u64 * self.flops_per_sample()))
    }

    fn flops_per_sample(&self) -> u64 {
        self.input_shape.volume() as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::AvgPool,
            filters: None,
            size: String::new(),
            input: self.input_shape.dims().to_vec(),
            output: self.output_shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2_stride_2() {
        let mut l = MaxPool::new(&Shape::new(&[1, 4, 4]).unwrap(), 2, 2);
        assert_eq!(l.output_shape().dims(), &[1, 2, 2]);
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.125,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        assert_eq!(out.as_slice(), &[4.0, 8.0, -1.0, 0.5]);
    }

    #[test]
    fn maxpool_routes_delta_to_argmax() {
        let mut l = MaxPool::new(&Shape::new(&[1, 2, 2]).unwrap(), 2, 2);
        let input = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let _ = l.forward(&input, KernelMode::Native, true).unwrap();
        let delta = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let (id, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(id.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_matches_table_shapes() {
        // Table I row 3: max 2x2/2 on 28x28x128 -> 14x14x128.
        let l = MaxPool::new(&Shape::new(&[128, 28, 28]).unwrap(), 2, 2);
        assert_eq!(l.output_shape().dims(), &[128, 14, 14]);
    }

    #[test]
    fn maxpool_parallel_bit_identical_to_sequential() {
        // A batch big enough to cross PAR_MIN_BATCH_ELEMS: 16 × 32ch ×
        // 14x14 × 4 taps ≈ 400k touched elements.
        let shape = Shape::new(&[32, 28, 28]).unwrap();
        let input = Tensor::from_fn(&[16, 32, 28, 28], |i| {
            ((i as u64).wrapping_mul(2654435761) % 251) as f32 / 31.0 - 4.0
        });
        let delta = Tensor::from_fn(&[16, 32, 14, 14], |i| (i % 7) as f32 - 3.0);

        let mut seq = MaxPool::new(&shape, 2, 2);
        seq.set_parallelism(Parallelism::sequential());
        let (out_seq, _) = seq.forward(&input, KernelMode::Native, true).unwrap();
        let (id_seq, _) = seq.backward(&delta, KernelMode::Native).unwrap();

        for workers in [2, 4, 8] {
            let mut par = MaxPool::new(&shape, 2, 2);
            par.set_parallelism(Parallelism::new(workers));
            assert!(par.parallel_jobs(16) > 1, "batch must fan out at {workers} workers");
            let (out_par, _) = par.forward(&input, KernelMode::Native, true).unwrap();
            assert_eq!(out_seq.as_slice(), out_par.as_slice(), "forward w={workers}");
            assert_eq!(seq.argmax, par.argmax, "argmax w={workers}");
            let (id_par, _) = par.backward(&delta, KernelMode::Native).unwrap();
            assert_eq!(id_seq.as_slice(), id_par.as_slice(), "backward w={workers}");
        }
    }

    #[test]
    fn tiny_batches_stay_inline() {
        let l = MaxPool::new(&Shape::new(&[1, 4, 4]).unwrap(), 2, 2);
        // Even with a generous worker budget the threshold keeps small
        // unit-test batches off the pool.
        let mut l2 = l.clone();
        l2.set_parallelism(Parallelism::new(8));
        assert_eq!(l2.parallel_jobs(2), 1);
        let a = GlobalAvgPool::new(&Shape::new(&[2, 2, 2]).unwrap());
        let mut a2 = a.clone();
        a2.set_parallelism(Parallelism::new(8));
        assert_eq!(a2.parallel_jobs(4), 1);
    }

    #[test]
    fn avgpool_means_each_channel() {
        let mut l = GlobalAvgPool::new(&Shape::new(&[2, 2, 2]).unwrap());
        let input =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2])
                .unwrap();
        let (out, _) = l.forward(&input, KernelMode::Native, false).unwrap();
        assert_eq!(out.as_slice(), &[2.5, 25.0]);
    }

    #[test]
    fn avgpool_parallel_bit_identical_to_sequential() {
        let shape = Shape::new(&[64, 14, 14]).unwrap();
        let input = Tensor::from_fn(&[24, 64, 14, 14], |i| {
            ((i * 37) % 101) as f32 / 13.0 - 3.5
        });
        let delta = Tensor::from_fn(&[24, 64], |i| (i % 11) as f32 - 5.0);

        let mut seq = GlobalAvgPool::new(&shape);
        seq.set_parallelism(Parallelism::sequential());
        let (out_seq, _) = seq.forward(&input, KernelMode::Native, false).unwrap();
        let (id_seq, _) = seq.backward(&delta, KernelMode::Native).unwrap();

        for workers in [2, 4, 8] {
            let mut par = GlobalAvgPool::new(&shape);
            par.set_parallelism(Parallelism::new(workers));
            assert!(par.parallel_jobs(24) > 1, "batch must fan out at {workers} workers");
            let (out_par, _) = par.forward(&input, KernelMode::Native, false).unwrap();
            assert_eq!(out_seq.as_slice(), out_par.as_slice(), "forward w={workers}");
            let (id_par, _) = par.backward(&delta, KernelMode::Native).unwrap();
            assert_eq!(id_seq.as_slice(), id_par.as_slice(), "backward w={workers}");
        }
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let mut l = GlobalAvgPool::new(&Shape::new(&[1, 2, 2]).unwrap());
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = l.forward(&input, KernelMode::Native, false).unwrap();
        let delta = Tensor::from_vec(vec![8.0], &[1, 1]).unwrap();
        let (id, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(id.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_gradient_sum_preserved() {
        // Sum of distributed deltas equals the incoming delta (linearity).
        let mut l = GlobalAvgPool::new(&Shape::new(&[3, 7, 7]).unwrap());
        let input = Tensor::zeros(&[2, 3, 7, 7]);
        let _ = l.forward(&input, KernelMode::Native, false).unwrap();
        let delta = Tensor::from_fn(&[2, 3], |i| i as f32 + 1.0);
        let (id, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert!((id.sum() - delta.sum()).abs() < 1e-4);
    }
}
