//! Pooling layers: max pooling and Darknet's global average pooling.

use caltrain_tensor::im2col::conv_out_extent;
use caltrain_tensor::{Shape, Tensor};

use crate::layers::{batch_size, Layer, LayerDescriptor, LayerKind};
use crate::network::KernelMode;
use crate::NnError;

/// Max pooling with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool {
    input_shape: Shape,
    output_shape: Shape,
    size: usize,
    stride: usize,
    /// Flat input index of each output's argmax, for routing deltas back.
    /// Grow-only: rewritten in place each forward, never re-allocated in
    /// steady state.
    argmax: Vec<usize>,
    last_batch: usize,
    reuse_buffers: bool,
}

impl MaxPool {
    /// Creates a max-pooling layer (`size × size`, given stride, no pad —
    /// the Tables I–II configuration).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(input_shape: &Shape, size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "degenerate pool geometry");
        let d = input_shape.dims();
        assert_eq!(d.len(), 3, "pool input must be [c, h, w]");
        let oh = conv_out_extent(d[1], size, stride, 0);
        let ow = conv_out_extent(d[2], size, stride, 0);
        MaxPool {
            input_shape: input_shape.clone(),
            output_shape: Shape::new(&[d[0], oh, ow]).expect("non-degenerate output"),
            size,
            stride,
            argmax: Vec::new(),
            last_batch: 0,
            reuse_buffers: true,
        }
    }
}

impl Layer for MaxPool {
    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool
    }

    fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        _train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.input_shape)?;
        let d = self.input_shape.dims();
        let (c, h, w) = (d[0], d[1], d[2]);
        let o = self.output_shape.dims();
        let (oh, ow) = (o[1], o[2]);

        self.last_batch = n;
        let mut output = Tensor::zeros(&[n, c, oh, ow]);
        if !self.reuse_buffers {
            self.argmax = Vec::new();
        }
        // Every element is overwritten below; resize, don't re-allocate.
        self.argmax.resize(n * c * oh * ow, 0);

        let in_samp = c * h * w;
        let data = input.as_slice();
        let out = output.as_mut_slice();
        let mut oidx = 0usize;
        for s in 0..n {
            for ch in 0..c {
                let plane = s * in_samp + ch * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = plane;
                        for ky in 0..self.size {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.size {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                let idx = plane + iy * w + ix;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[oidx] = best;
                        self.argmax[oidx] = best_idx;
                        oidx += 1;
                    }
                }
            }
        }
        let flops = n as u64 * self.flops_per_sample();
        Ok((output, flops))
    }

    fn backward(&mut self, delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, delta, &self.output_shape)?;
        if n != self.last_batch {
            return Err(NnError::BadTargets("backward batch differs from forward"));
        }
        let mut input_delta =
            Tensor::zeros(&[n, self.input_shape.dim(0), self.input_shape.dim(1), self.input_shape.dim(2)]);
        let id = input_delta.as_mut_slice();
        for (o, &src) in self.argmax.iter().enumerate() {
            id[src] += delta.as_slice()[o];
        }
        Ok((input_delta, n as u64 * self.flops_per_sample()))
    }

    fn flops_per_sample(&self) -> u64 {
        (self.output_shape.volume() * self.size * self.size) as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::MaxPool,
            filters: None,
            size: format!("{}x{}/{}", self.size, self.size, self.stride),
            input: self.input_shape.dims().to_vec(),
            output: self.output_shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_buffer_reuse(&mut self, reuse: bool) {
        self.reuse_buffers = reuse;
        if !reuse {
            self.argmax = Vec::new();
        }
    }
}

/// Global average pooling: `[c, h, w] → [c]` (Darknet's `avg` layer,
/// rows 8/16 of Tables I–II).
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    input_shape: Shape,
    output_shape: Shape,
    last_batch: usize,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-3.
    pub fn new(input_shape: &Shape) -> Self {
        let d = input_shape.dims();
        assert_eq!(d.len(), 3, "avgpool input must be [c, h, w]");
        GlobalAvgPool {
            input_shape: input_shape.clone(),
            output_shape: Shape::new(&[d[0]]).expect("channel axis non-zero"),
            last_batch: 0,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn kind(&self) -> LayerKind {
        LayerKind::AvgPool
    }

    fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        _train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.input_shape)?;
        let d = self.input_shape.dims();
        let (c, hw) = (d[0], d[1] * d[2]);
        self.last_batch = n;
        let mut output = Tensor::zeros(&[n, c]);
        let data = input.as_slice();
        let out = output.as_mut_slice();
        for s in 0..n {
            for ch in 0..c {
                let plane = &data[(s * c + ch) * hw..(s * c + ch + 1) * hw];
                out[s * c + ch] = plane.iter().sum::<f32>() / hw as f32;
            }
        }
        Ok((output, n as u64 * self.flops_per_sample()))
    }

    fn backward(&mut self, delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        let dims = delta.dims();
        let d = self.input_shape.dims();
        let (c, hw) = (d[0], d[1] * d[2]);
        if dims.len() != 2 || dims[1] != c || dims[0] != self.last_batch {
            return Err(NnError::ShapeMismatch {
                layer: usize::MAX,
                expected: vec![self.last_batch, c],
                got: dims.to_vec(),
            });
        }
        let n = dims[0];
        let mut input_delta = Tensor::zeros(&[n, c, d[1], d[2]]);
        let id = input_delta.as_mut_slice();
        for s in 0..n {
            for ch in 0..c {
                let g = delta.as_slice()[s * c + ch] / hw as f32;
                for v in &mut id[(s * c + ch) * hw..(s * c + ch + 1) * hw] {
                    *v = g;
                }
            }
        }
        Ok((input_delta, n as u64 * self.flops_per_sample()))
    }

    fn flops_per_sample(&self) -> u64 {
        self.input_shape.volume() as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::AvgPool,
            filters: None,
            size: String::new(),
            input: self.input_shape.dims().to_vec(),
            output: self.output_shape.dims().to_vec(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2_stride_2() {
        let mut l = MaxPool::new(&Shape::new(&[1, 4, 4]).unwrap(), 2, 2);
        assert_eq!(l.output_shape().dims(), &[1, 2, 2]);
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.125,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        assert_eq!(out.as_slice(), &[4.0, 8.0, -1.0, 0.5]);
    }

    #[test]
    fn maxpool_routes_delta_to_argmax() {
        let mut l = MaxPool::new(&Shape::new(&[1, 2, 2]).unwrap(), 2, 2);
        let input = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let _ = l.forward(&input, KernelMode::Native, true).unwrap();
        let delta = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let (id, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(id.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_matches_table_shapes() {
        // Table I row 3: max 2x2/2 on 28x28x128 -> 14x14x128.
        let l = MaxPool::new(&Shape::new(&[128, 28, 28]).unwrap(), 2, 2);
        assert_eq!(l.output_shape().dims(), &[128, 14, 14]);
    }

    #[test]
    fn avgpool_means_each_channel() {
        let mut l = GlobalAvgPool::new(&Shape::new(&[2, 2, 2]).unwrap());
        let input =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2])
                .unwrap();
        let (out, _) = l.forward(&input, KernelMode::Native, false).unwrap();
        assert_eq!(out.as_slice(), &[2.5, 25.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let mut l = GlobalAvgPool::new(&Shape::new(&[1, 2, 2]).unwrap());
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = l.forward(&input, KernelMode::Native, false).unwrap();
        let delta = Tensor::from_vec(vec![8.0], &[1, 1]).unwrap();
        let (id, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(id.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_gradient_sum_preserved() {
        // Sum of distributed deltas equals the incoming delta (linearity).
        let mut l = GlobalAvgPool::new(&Shape::new(&[3, 7, 7]).unwrap());
        let input = Tensor::zeros(&[2, 3, 7, 7]);
        let _ = l.forward(&input, KernelMode::Native, false).unwrap();
        let delta = Tensor::from_fn(&[2, 3], |i| i as f32 + 1.0);
        let (id, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert!((id.sum() - delta.sum()).abs() < 1e-4);
    }
}
