//! The layer zoo of paper Tables I–II and the [`Layer`] abstraction.

use std::fmt;

use caltrain_runtime::Parallelism;
use caltrain_tensor::{Shape, Tensor};

use crate::network::{Hyper, KernelMode};
use crate::NnError;

mod conv;
mod dropout;
mod pool;
mod softmax;

pub use conv::{output_write_passes, Conv2d, PAR_MIN_BATCH_FLOPS};
pub use dropout::Dropout;
pub use pool::{GlobalAvgPool, MaxPool};
pub use softmax::{CostLayer, SoftmaxLayer};

// [`Activation`] moved into `caltrain-tensor` (PR 9) so the SIMD plane
// sweeps can lane-blend its branches; re-exported here so
// `caltrain_nn::Activation` keeps working for every caller.
pub use caltrain_tensor::Activation;

/// Discriminates layer types (for table printing and serialisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolutional layer (the only parameterised kind in Tables I–II).
    Conv,
    /// Max-pooling layer.
    MaxPool,
    /// Global average pooling (Darknet `avg`).
    AvgPool,
    /// Dropout regulariser.
    Dropout,
    /// Softmax normaliser.
    Softmax,
    /// Cross-entropy cost layer.
    Cost,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LayerKind::Conv => "conv",
            LayerKind::MaxPool => "max",
            LayerKind::AvgPool => "avg",
            LayerKind::Dropout => "dropout",
            LayerKind::Softmax => "softmax",
            LayerKind::Cost => "cost",
        };
        f.write_str(name)
    }
}

/// One row of a Table I/II-style architecture listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDescriptor {
    /// Layer kind (conv/max/avg/dropout/softmax/cost).
    pub kind: LayerKind,
    /// Filter count for convolutional layers.
    pub filters: Option<usize>,
    /// `"3x3/1"`-style size/stride, or dropout probability.
    pub size: String,
    /// Per-sample input extents.
    pub input: Vec<usize>,
    /// Per-sample output extents.
    pub output: Vec<usize>,
}

/// A differentiable network layer operating on mini-batches.
///
/// Invariants every implementation upholds:
///
/// * `forward` consumes `[n, ..input_shape]` and produces
///   `[n, ..output_shape]`, caching whatever `backward` will need;
/// * `backward` consumes the delta w.r.t. its output and produces the
///   delta w.r.t. its input, accumulating parameter gradients;
/// * both return the FLOPs they performed, so the caller can charge the
///   right simulated clock (enclave vs native);
/// * results are **bit-identical across [`KernelMode`]s** — the mode only
///   selects kernel implementation, never arithmetic order.
///
/// `Send + Sync` are supertraits because whole networks (and the
/// trainers that own them) migrate across the persistent worker pool of
/// `caltrain-runtime` during parallel hub rounds; every layer is plain
/// owned data, so the bounds cost implementations nothing.
pub trait Layer: fmt::Debug + Send + Sync {
    /// The layer's kind tag.
    fn kind(&self) -> LayerKind;

    /// Per-sample input shape.
    fn input_shape(&self) -> &Shape;

    /// Per-sample output shape.
    fn output_shape(&self) -> &Shape;

    /// Runs the forward pass for a mini-batch, returning `(output, flops)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input` is not
    /// `[n, ..input_shape]`.
    fn forward(
        &mut self,
        input: &Tensor,
        mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError>;

    /// Runs the backward pass, returning `(input_delta, flops)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `delta` does not match the
    /// shape produced by the preceding `forward`.
    fn backward(&mut self, delta: &Tensor, mode: KernelMode) -> Result<(Tensor, u64), NnError>;

    /// Applies accumulated gradients with Darknet's SGD-with-momentum rule
    /// and clears them. No-op for parameterless layers.
    fn apply_update(&mut self, hyper: &Hyper, batch: usize) {
        let _ = (hyper, batch);
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Flattened copy of the trainable parameters (weights then biases).
    fn export_params(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Loads parameters previously produced by [`Layer::export_params`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadWeightBlob`] on length mismatch.
    fn import_params(&mut self, params: &[f32]) -> Result<(), NnError> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(NnError::BadWeightBlob("layer takes no parameters"))
        }
    }

    /// Estimated forward FLOPs per sample (used by the partition advisor
    /// and the Fig. 6 cost accounting).
    fn flops_per_sample(&self) -> u64;

    /// Table I/II row for this layer.
    fn descriptor(&self) -> LayerDescriptor;

    /// Clones the layer behind a box ([`Network`](crate::Network) is
    /// cloneable for per-epoch snapshots).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Supplies ground-truth class indices (cost layer only).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadTargets`] for layers that take no targets.
    fn set_targets(&mut self, targets: &[usize]) -> Result<(), NnError> {
        let _ = targets;
        Err(NnError::BadTargets("layer takes no targets"))
    }

    /// The loss computed by the most recent forward pass (cost layer
    /// only).
    fn last_loss(&self) -> Option<f32> {
        None
    }

    /// Removes and returns the accumulated gradient buffers (weights,
    /// then biases, then BN scales), leaving them zeroed. Parameterless
    /// layers return an empty vector. This is the hook DP-SGD uses for
    /// per-sample gradient clipping.
    fn take_grads(&mut self) -> Vec<f32> {
        Vec::new()
    }

    /// Adds `grads` (in [`Layer::take_grads`] layout) back into the
    /// accumulated gradient buffers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadWeightBlob`] on length mismatch.
    fn add_grads(&mut self, grads: &[f32]) -> Result<(), NnError> {
        if grads.is_empty() {
            Ok(())
        } else {
            Err(NnError::BadWeightBlob("layer has no gradient buffers"))
        }
    }

    /// Sets the worker budget for this layer's per-sample loops.
    ///
    /// Layers with batch-parallel paths ([`Conv2d`], [`MaxPool`],
    /// [`GlobalAvgPool`]) fan their per-sample work across the
    /// persistent `caltrain-runtime` worker pool. The
    /// runtime invariant holds here as everywhere: **worker count never
    /// changes results** — partitioning is static and gradient
    /// reductions run in fixed sample order, so weights are bit-identical
    /// at any setting. Default: no-op for layers with no parallel path.
    fn set_parallelism(&mut self, _parallelism: Parallelism) {}

    /// Enables (default) or disables reuse of the layer's scratch
    /// buffers and caches across steps.
    ///
    /// With reuse off, every forward/backward re-allocates its working
    /// buffers — the historical allocation-heavy path. It is retained
    /// solely as the reference baseline the `training_throughput` bench
    /// compares against; arithmetic is unchanged, so both settings
    /// produce bit-identical results. Default: no-op for layers without
    /// internal buffers.
    fn set_buffer_reuse(&mut self, _reuse: bool) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Validates that `input` is `[n, ..expected]`, returning `n`.
pub(crate) fn batch_size(
    layer_index: usize,
    input: &Tensor,
    expected: &Shape,
) -> Result<usize, NnError> {
    let dims = input.dims();
    if dims.len() != expected.rank() + 1 || &dims[1..] != expected.dims() {
        return Err(NnError::ShapeMismatch {
            layer: layer_index,
            expected: expected.dims().to_vec(),
            got: dims.to_vec(),
        });
    }
    Ok(dims[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Linear.apply(-2.0), -2.0);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Leaky.apply(-2.0), -0.2);
        assert_eq!(Activation::Leaky.apply(3.0), 3.0);
    }

    #[test]
    fn activation_gradients() {
        assert_eq!(Activation::Linear.gradient(-5.0), 1.0);
        assert_eq!(Activation::Relu.gradient(-5.0), 0.0);
        assert_eq!(Activation::Relu.gradient(5.0), 1.0);
        assert_eq!(Activation::Leaky.gradient(-5.0), 0.1);
        assert_eq!(Activation::Leaky.gradient(5.0), 1.0);
    }

    #[test]
    fn kind_display_matches_tables() {
        assert_eq!(LayerKind::Conv.to_string(), "conv");
        assert_eq!(LayerKind::MaxPool.to_string(), "max");
        assert_eq!(LayerKind::AvgPool.to_string(), "avg");
        assert_eq!(LayerKind::Dropout.to_string(), "dropout");
        assert_eq!(LayerKind::Softmax.to_string(), "softmax");
        assert_eq!(LayerKind::Cost.to_string(), "cost");
    }

    #[test]
    fn batch_size_validation() {
        let shape = Shape::new(&[3, 4, 4]).unwrap();
        let good = Tensor::zeros(&[2, 3, 4, 4]);
        assert_eq!(batch_size(0, &good, &shape).unwrap(), 2);
        let bad = Tensor::zeros(&[2, 3, 4, 5]);
        assert!(matches!(
            batch_size(0, &bad, &shape),
            Err(NnError::ShapeMismatch { .. })
        ));
        let bad_rank = Tensor::zeros(&[3, 4, 4]);
        assert!(batch_size(0, &bad_rank, &shape).is_err());
    }
}
