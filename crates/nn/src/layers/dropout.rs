//! Inverted dropout (Table II rows 5/10/14, p = 0.5).

use caltrain_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layers::{batch_size, Layer, LayerDescriptor, LayerKind};
use crate::network::KernelMode;
use crate::NnError;

/// Dropout with probability `p`, scaling survivors by `1/(1-p)` at train
/// time (inverted dropout, matching Darknet) and acting as the identity at
/// inference time.
///
/// Each layer owns its RNG, seeded at network build time, so training runs
/// are reproducible and independent of kernel-mode choice — a prerequisite
/// for the bit-identical enclave/native comparison of Figs. 3–4.
#[derive(Debug, Clone)]
pub struct Dropout {
    shape: Shape,
    probability: f32,
    rng: StdRng,
    mask: Vec<f32>,
    last_batch: usize,
    reuse_buffers: bool,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1)`.
    pub fn new(shape: &Shape, probability: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            shape: shape.clone(),
            probability,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
            last_batch: 0,
            reuse_buffers: true,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.probability
    }
}

impl Layer for Dropout {
    fn kind(&self) -> LayerKind {
        LayerKind::Dropout
    }

    fn input_shape(&self) -> &Shape {
        &self.shape
    }

    fn output_shape(&self) -> &Shape {
        &self.shape
    }

    fn forward(
        &mut self,
        input: &Tensor,
        _mode: KernelMode,
        train: bool,
    ) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, input, &self.shape)?;
        self.last_batch = n;
        if !train {
            self.mask.clear();
            return Ok((input.clone(), 0));
        }
        let scale = 1.0 / (1.0 - self.probability);
        if !self.reuse_buffers {
            // Reference path: pay the historical mask allocation.
            self.mask = Vec::new();
        }
        // Same RNG draw order as the historical collect(), but into the
        // reused mask buffer — no allocation in steady state.
        self.mask.resize(input.volume(), 0.0);
        for m in self.mask.iter_mut() {
            *m = if self.rng.gen::<f32>() < self.probability { 0.0 } else { scale };
        }
        let mut output = input.clone();
        for (v, &m) in output.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        Ok((output, input.volume() as u64))
    }

    fn backward(&mut self, delta: &Tensor, _mode: KernelMode) -> Result<(Tensor, u64), NnError> {
        let n = batch_size(usize::MAX, delta, &self.shape)?;
        if n != self.last_batch {
            return Err(NnError::BadTargets("backward batch differs from forward"));
        }
        if self.mask.is_empty() {
            // Inference-mode backward (identity); used by assessment code.
            return Ok((delta.clone(), 0));
        }
        let mut out = delta.clone();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        Ok((out, delta.volume() as u64))
    }

    fn flops_per_sample(&self) -> u64 {
        self.shape.volume() as u64
    }

    fn descriptor(&self) -> LayerDescriptor {
        LayerDescriptor {
            kind: LayerKind::Dropout,
            filters: None,
            size: format!("p = {:.2}", self.probability),
            input: vec![self.shape.volume()],
            output: vec![self.shape.volume()],
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_buffer_reuse(&mut self, reuse: bool) {
        self.reuse_buffers = reuse;
        if !reuse {
            self.mask = Vec::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Shape {
        Shape::new(&[4, 4]).unwrap()
    }

    #[test]
    fn inference_is_identity() {
        let mut l = Dropout::new(&shape(), 0.5, 1);
        let input = Tensor::from_fn(&[2, 4, 4], |i| i as f32);
        let (out, _) = l.forward(&input, KernelMode::Native, false).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn train_zeroes_roughly_p_fraction() {
        let mut l = Dropout::new(&shape(), 0.5, 2);
        let input = Tensor::full(&[64, 4, 4], 1.0);
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        let zeros = out.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / out.volume() as f32;
        assert!((frac - 0.5).abs() < 0.06, "zero fraction {frac}");
        // Survivors scaled by 2.
        assert!(out.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
    }

    #[test]
    fn expectation_preserved() {
        let mut l = Dropout::new(&shape(), 0.5, 3);
        let input = Tensor::full(&[64, 4, 4], 1.0);
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        let mean = out.sum() / out.volume() as f32;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut l = Dropout::new(&shape(), 0.5, 4);
        let input = Tensor::full(&[1, 4, 4], 1.0);
        let (out, _) = l.forward(&input, KernelMode::Native, true).unwrap();
        let delta = Tensor::full(&[1, 4, 4], 1.0);
        let (back, _) = l.backward(&delta, KernelMode::Native).unwrap();
        assert_eq!(out.as_slice(), back.as_slice(), "same mask must gate both passes");
    }

    #[test]
    fn seeded_reproducibility() {
        let mut a = Dropout::new(&shape(), 0.5, 9);
        let mut b = Dropout::new(&shape(), 0.5, 9);
        let input = Tensor::full(&[2, 4, 4], 1.0);
        let (oa, _) = a.forward(&input, KernelMode::Strict, true).unwrap();
        let (ob, _) = b.forward(&input, KernelMode::Native, true).unwrap();
        assert_eq!(oa, ob, "mask independent of kernel mode");
    }
}
