//! A Darknet-style CPU deep-learning framework for the CalTrain
//! reproduction.
//!
//! The paper's prototype is built on Darknet (C/CUDA); this crate rebuilds
//! the parts CalTrain exercises, from scratch, in safe Rust:
//!
//! * the layer set of paper Tables I–II — convolution (leaky-ReLU),
//!   max pooling, global average pooling, dropout, softmax and
//!   cross-entropy cost ([`layers`]);
//! * mini-batch SGD with momentum and weight decay, with Darknet's exact
//!   update rule ([`Hyper`], [`Network::train_batch`]);
//! * Gaussian weight initialisation ([`init`]);
//! * in-enclave-style data augmentation — flip, shift, rotation,
//!   distortion ([`augment`]);
//! * Top-k accuracy metrics for Figs. 3–4 ([`metrics`]);
//! * weight (de)serialisation so models can be sealed, released to
//!   participants, or snapshotted per epoch ([`serialize`]).
//!
//! **Two kernel paths, one result.** Every compute layer accepts a
//! [`KernelMode`]: `Strict` models in-enclave code (scalar loops, no
//! fast-math), `Native` the accelerated outside path. The two paths are
//! *bit-identical* by construction (same operand orderings), which is how
//! the reproduction realises the paper's claim that CalTrain training
//! converges exactly like unprotected training (Figs. 3–4) — the enclave
//! only costs time, never accuracy.
//!
//! Forward/backward passes return FLOP counts; the partitioned trainer in
//! `caltrain-core` charges them to the enclave or native clock depending
//! on where each layer is placed.
//!
//! # Example
//!
//! ```
//! use caltrain_nn::{NetworkBuilder, Activation, KernelMode};
//! use caltrain_tensor::Tensor;
//!
//! let mut net = NetworkBuilder::new(&[3, 8, 8])
//!     .conv(4, 3, 1, 1, Activation::Leaky)
//!     .maxpool(2, 2)
//!     .conv(2, 1, 1, 0, Activation::Linear)
//!     .global_avgpool()
//!     .softmax()
//!     .cost()
//!     .build(42)?;
//! let batch = Tensor::zeros(&[1, 3, 8, 8]);
//! let (probs, _flops) = net.forward(&batch, KernelMode::Native, false)?;
//! assert_eq!(probs.dims(), &[1, 2]);
//! # Ok::<(), caltrain_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;

pub mod augment;
pub mod dpsgd;
pub mod init;
pub mod layers;
pub mod metrics;
pub mod serialize;
pub mod zoo;

pub use caltrain_runtime::Parallelism;
pub use error::NnError;
pub use layers::{Activation, Layer, LayerKind};
pub use network::{GemmFn, Hyper, KernelMode, Network, NetworkBuilder};
