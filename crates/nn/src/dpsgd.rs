//! Differentially private SGD (Abadi et al., CCS 2016).
//!
//! Paper §VII: "we can seamlessly replace the standard SGD with
//! Differential Private SGD (DP-SGD) … in the training stage to further
//! render Model Inversion Attack ineffective." This module is that
//! replacement: per-sample gradients are clipped to a global-L2 bound
//! `C`, summed, perturbed with Gaussian noise `N(0, (σC)²)`, and applied
//! with the network's usual update rule.

use caltrain_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::init::normal;
use crate::network::{Hyper, KernelMode, Network};
use crate::NnError;

/// DP-SGD parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Per-sample gradient clipping bound `C` (global L2 across layers).
    pub clip_norm: f32,
    /// Noise multiplier `σ`: Gaussian std-dev is `σ · C`.
    pub noise_multiplier: f32,
    /// Seed for the noise stream (the enclave supplies RDRAND here).
    pub seed: u64,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig { clip_norm: 1.0, noise_multiplier: 1.1, seed: 0 }
    }
}

/// Running state for a DP-SGD training session (noise RNG + step count
/// for privacy accounting).
#[derive(Debug)]
pub struct DpSgd {
    config: DpConfig,
    rng: StdRng,
    steps: u64,
}

impl DpSgd {
    /// Creates a DP-SGD driver.
    pub fn new(config: DpConfig) -> Self {
        DpSgd { config, rng: StdRng::seed_from_u64(config.seed), steps: 0 }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Number of noisy updates applied so far (the `T` of the moments
    /// accountant).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// One DP-SGD step over a labelled mini-batch: per-sample
    /// forward/backward, global-L2 clip to `C`, Gaussian noise `σC`,
    /// then the standard update. Returns the mean per-sample loss.
    ///
    /// # Errors
    ///
    /// Propagates network errors; rejects empty batches via
    /// [`NnError::BadTargets`].
    pub fn train_batch(
        &mut self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
        hyper: &Hyper,
        mode: KernelMode,
    ) -> Result<f32, NnError> {
        if labels.is_empty() {
            return Err(NnError::BadTargets("empty batch"));
        }
        let d = images.dims().to_vec();
        if d[0] != labels.len() {
            return Err(NnError::BadTargets("one label per image required"));
        }
        let sample_stride: usize = d[1..].iter().product();
        let n_layers = net.num_layers();
        let classes = net.layer(n_layers - 1).output_shape().dim(0);

        // Clear any residual gradient state.
        for i in 0..n_layers {
            let _ = net.take_layer_grads(i);
        }

        let mut accumulated: Vec<Vec<f32>> = Vec::new();
        let mut loss_acc = 0.0f32;

        for s in 0..labels.len() {
            let mut dims = vec![1usize];
            dims.extend_from_slice(&d[1..]);
            let image = Tensor::from_vec(
                images.as_slice()[s * sample_stride..(s + 1) * sample_stride].to_vec(),
                &dims,
            )?;
            net.set_targets(&labels[s..s + 1])?;
            net.forward_range(&image, 0, n_layers, mode, true)?;
            loss_acc += net.loss().ok_or(NnError::BadTargets("no loss after forward"))?;
            let seed = Tensor::zeros(&[1, classes]);
            net.backward_range(&seed, 0, n_layers, mode)?;

            // Per-sample gradient: take, clip globally, accumulate.
            let mut grads: Vec<Vec<f32>> =
                (0..n_layers).map(|i| net.take_layer_grads(i)).collect();
            let norm: f32 = grads
                .iter()
                .flat_map(|g| g.iter())
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            let scale = if norm > self.config.clip_norm {
                self.config.clip_norm / norm
            } else {
                1.0
            };
            for g in &mut grads {
                for v in g.iter_mut() {
                    *v *= scale;
                }
            }
            if accumulated.is_empty() {
                accumulated = grads;
            } else {
                for (acc, g) in accumulated.iter_mut().zip(&grads) {
                    for (a, v) in acc.iter_mut().zip(g) {
                        *a += v;
                    }
                }
            }
        }

        // Gaussian noise on the summed, clipped gradients.
        let std = self.config.noise_multiplier * self.config.clip_norm;
        if std > 0.0 {
            for g in &mut accumulated {
                for v in g.iter_mut() {
                    *v += std * normal(&mut self.rng);
                }
            }
        }

        for (i, g) in accumulated.iter().enumerate() {
            net.add_layer_grads(i, g)?;
        }
        net.update_range(0, n_layers, hyper, labels.len())?;
        self.steps += 1;
        Ok(loss_acc / labels.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new(&[1, 6, 6])
            .conv(4, 3, 1, 1, Activation::Leaky)
            .global_avgpool()
            .softmax()
            .cost()
            .build(seed)
            .unwrap()
    }

    fn toy_batch(n: usize) -> (Tensor, Vec<usize>) {
        let mut images = Tensor::zeros(&[n, 1, 6, 6]);
        let mut labels = Vec::with_capacity(n);
        for s in 0..n {
            let class = s % 2;
            labels.push(class);
            for y in 0..3 {
                for x in 0..3 {
                    images.set(&[s, 0, y + class * 3, x], 1.0).unwrap();
                }
            }
        }
        (images, labels)
    }

    #[test]
    fn noiseless_clipless_dp_matches_plain_sgd() {
        // With C = ∞ and σ = 0, DP-SGD degenerates to per-sample
        // accumulation — identical math to standard training.
        let (images, labels) = toy_batch(4);
        let hyper = Hyper { learning_rate: 0.1, momentum: 0.0, decay: 0.0 };

        let mut plain = tiny_net(1);
        plain.train_batch(&images, &labels, &hyper, KernelMode::Native).unwrap();

        let mut private = tiny_net(1);
        let mut dp = DpSgd::new(DpConfig {
            clip_norm: f32::INFINITY,
            noise_multiplier: 0.0,
            seed: 0,
        });
        dp.train_batch(&mut private, &images, &labels, &hyper, KernelMode::Native)
            .unwrap();

        for (a, b) in plain.export_params().iter().zip(private.export_params().iter()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
        assert_eq!(dp.steps(), 1);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let (images, labels) = toy_batch(2);
        // No noise: the update magnitude is bounded by n·C·lr/batch = C·lr.
        let hyper = Hyper { learning_rate: 1.0, momentum: 0.0, decay: 0.0 };
        let clip = 0.01f32;
        let mut net = tiny_net(2);
        let before: Vec<f32> = net.export_params().concat();
        let mut dp = DpSgd::new(DpConfig { clip_norm: clip, noise_multiplier: 0.0, seed: 0 });
        dp.train_batch(&mut net, &images, &labels, &hyper, KernelMode::Native).unwrap();
        let after: Vec<f32> = net.export_params().concat();
        let delta: f32 = before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(delta <= clip * hyper.learning_rate + 1e-5, "update {delta} exceeds bound");
    }

    #[test]
    fn noise_is_seed_deterministic_and_nonzero() {
        let (images, labels) = toy_batch(2);
        let hyper = Hyper { learning_rate: 0.1, momentum: 0.0, decay: 0.0 };
        let run = |seed: u64| -> Vec<Vec<f32>> {
            let mut net = tiny_net(3);
            let mut dp = DpSgd::new(DpConfig {
                clip_norm: 1.0,
                noise_multiplier: 1.0,
                seed,
            });
            dp.train_batch(&mut net, &images, &labels, &hyper, KernelMode::Native).unwrap();
            net.export_params()
        };
        assert_eq!(run(7), run(7), "same seed, same noise");
        assert_ne!(run(7), run(8), "different seed, different noise");

        // And noisy differs from noiseless.
        let mut clean = tiny_net(3);
        let mut dp0 = DpSgd::new(DpConfig { clip_norm: 1.0, noise_multiplier: 0.0, seed: 7 });
        dp0.train_batch(&mut clean, &images, &labels, &hyper, KernelMode::Native).unwrap();
        assert_ne!(run(7), clean.export_params());
    }

    #[test]
    fn dp_training_still_learns_with_modest_noise() {
        let (images, labels) = toy_batch(8);
        let hyper = Hyper { learning_rate: 0.5, momentum: 0.9, decay: 0.0 };
        let mut net = tiny_net(4);
        let mut dp = DpSgd::new(DpConfig { clip_norm: 2.0, noise_multiplier: 0.05, seed: 1 });
        let first = dp
            .train_batch(&mut net, &images, &labels, &hyper, KernelMode::Native)
            .unwrap();
        let mut last = first;
        for _ in 0..40 {
            last = dp
                .train_batch(&mut net, &images, &labels, &hyper, KernelMode::Native)
                .unwrap();
        }
        assert!(last < first, "DP training must still reduce loss: {first} -> {last}");
        assert_eq!(dp.steps(), 41);
    }

    #[test]
    fn rejects_malformed_batches() {
        let mut net = tiny_net(5);
        let mut dp = DpSgd::new(DpConfig::default());
        let images = Tensor::zeros(&[2, 1, 6, 6]);
        assert!(dp
            .train_batch(&mut net, &images, &[0], &Hyper::default(), KernelMode::Native)
            .is_err());
        assert!(dp
            .train_batch(&mut net, &images, &[], &Hyper::default(), KernelMode::Native)
            .is_err());
    }
}
