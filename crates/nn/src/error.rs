use std::error::Error;
use std::fmt;

use caltrain_tensor::TensorError;

/// Errors produced by network construction, execution and serialisation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer received input whose per-sample shape does not match its
    /// declared input shape.
    ShapeMismatch {
        /// Layer index in the network.
        layer: usize,
        /// Shape the layer expects.
        expected: Vec<usize>,
        /// Shape that arrived.
        got: Vec<usize>,
    },
    /// A network was built with no layers, or with softmax/cost in an
    /// invalid position.
    InvalidArchitecture(&'static str),
    /// A layer range was out of bounds or empty.
    InvalidRange {
        /// Start of the requested range.
        from: usize,
        /// End (exclusive) of the requested range.
        to: usize,
        /// Number of layers in the network.
        layers: usize,
    },
    /// Training was invoked without targets, or with a target batch whose
    /// size disagrees with the input batch.
    BadTargets(&'static str),
    /// Weight deserialisation failed (truncated, wrong magic, or
    /// architecture mismatch).
    BadWeightBlob(&'static str),
    /// An underlying tensor failure.
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { layer, expected, got } => {
                write!(f, "layer {layer} expected input {expected:?}, got {got:?}")
            }
            NnError::InvalidArchitecture(why) => write!(f, "invalid architecture: {why}"),
            NnError::InvalidRange { from, to, layers } => {
                write!(f, "invalid layer range {from}..{to} for {layers}-layer network")
            }
            NnError::BadTargets(why) => write!(f, "bad training targets: {why}"),
            NnError::BadWeightBlob(why) => write!(f, "bad weight blob: {why}"),
            NnError::Tensor(e) => write!(f, "tensor failure: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}
