//! Weight initialisation.
//!
//! The paper initialises all convolutional weights "from the Gaussian
//! distribution" (§VI-A). Darknet's `make_convolutional_layer` draws
//! `scale * rand_normal()` with `scale = sqrt(2 / (size·size·channels))`
//! — He initialisation — which is what [`he_normal`] reproduces.

use rand::Rng;

/// A standard-normal sample via the Box–Muller transform.
///
/// `rand` ships no Gaussian distribution without the `rand_distr` crate
/// (not available offline), so the transform is implemented directly.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard u1 away from zero: ln(0) = -inf.
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills `weights` with He-normal samples for a receptive field of
/// `fan_in` inputs (Darknet's convolutional initialisation).
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, weights: &mut [f32], fan_in: usize) {
    let scale = (2.0 / fan_in.max(1) as f32).sqrt();
    for w in weights.iter_mut() {
        *w = scale * normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn he_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut w_small = vec![0.0f32; 4096];
        let mut w_large = vec![0.0f32; 4096];
        he_normal(&mut rng, &mut w_small, 9);
        he_normal(&mut rng, &mut w_large, 9 * 128);
        let rms = |w: &[f32]| (w.iter().map(|v| v * v).sum::<f32>() / w.len() as f32).sqrt();
        assert!(rms(&w_small) > 3.0 * rms(&w_large));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut wa = vec![0.0f32; 16];
        let mut wb = vec![0.0f32; 16];
        he_normal(&mut a, &mut wa, 27);
        he_normal(&mut b, &mut wb, 27);
        assert_eq!(wa, wb);
    }

    #[test]
    fn all_finite() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            assert!(normal(&mut rng).is_finite());
        }
    }
}
