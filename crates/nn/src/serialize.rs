//! Weight (de)serialisation.
//!
//! CalTrain moves model weights across trust boundaries in three places
//! (paper §IV): per-epoch snapshots handed to participants for exposure
//! re-assessment, the final model release (with the FrontNet portion
//! *encrypted* under each participant's key), and loading the whole model
//! into the fingerprinting enclave. All three serialise through this
//! module; the FrontNet encryption itself lives in `caltrain-core`, on
//! top of these bytes.
//!
//! Format (little-endian): magic `CTW1`, layer count `u32`, then per layer
//! a `u32` parameter count followed by that many `f32`s.

use crate::network::Network;
use crate::NnError;

const MAGIC: &[u8; 4] = b"CTW1";

/// Serialises every layer's parameters.
pub fn weights_to_bytes(net: &Network) -> Vec<u8> {
    let params = net.export_params();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for layer in &params {
        out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
        for v in layer {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Serialises the parameters of layers `from..to` only — the unit CalTrain
/// encrypts separately when the FrontNet is released (paper §IV-B).
///
/// # Errors
///
/// Returns [`NnError::InvalidRange`] for bad ranges.
pub fn range_weights_to_bytes(net: &Network, from: usize, to: usize) -> Result<Vec<u8>, NnError> {
    if from >= to || to > net.num_layers() {
        return Err(NnError::InvalidRange { from, to, layers: net.num_layers() });
    }
    let params = net.export_params();
    let slice = &params[from..to];
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(slice.len() as u32).to_le_bytes());
    for layer in slice {
        out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
        for v in layer {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

fn parse(bytes: &[u8]) -> Result<Vec<Vec<f32>>, NnError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(NnError::BadWeightBlob("missing CTW1 magic"));
    }
    let layer_count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let mut offset = 8usize;
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        if bytes.len() < offset + 4 {
            return Err(NnError::BadWeightBlob("truncated layer header"));
        }
        let count =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        offset += 4;
        let needed = count.checked_mul(4).ok_or(NnError::BadWeightBlob("overflow"))?;
        if bytes.len() < offset + needed {
            return Err(NnError::BadWeightBlob("truncated layer payload"));
        }
        let mut vals = Vec::with_capacity(count);
        for i in 0..count {
            let p = offset + i * 4;
            vals.push(f32::from_le_bytes(bytes[p..p + 4].try_into().expect("4 bytes")));
        }
        offset += needed;
        layers.push(vals);
    }
    if offset != bytes.len() {
        return Err(NnError::BadWeightBlob("trailing bytes"));
    }
    Ok(layers)
}

/// Restores all weights into an architecturally identical network.
///
/// # Errors
///
/// Returns [`NnError::BadWeightBlob`] on malformed input or architecture
/// mismatch.
pub fn weights_from_bytes(net: &mut Network, bytes: &[u8]) -> Result<(), NnError> {
    let layers = parse(bytes)?;
    net.import_params(&layers)
}

/// Restores weights for layers `from..to` from bytes produced by
/// [`range_weights_to_bytes`].
///
/// # Errors
///
/// Returns [`NnError::BadWeightBlob`] / [`NnError::InvalidRange`] on
/// malformed input or mismatch.
pub fn range_weights_from_bytes(
    net: &mut Network,
    from: usize,
    to: usize,
    bytes: &[u8],
) -> Result<(), NnError> {
    if from >= to || to > net.num_layers() {
        return Err(NnError::InvalidRange { from, to, layers: net.num_layers() });
    }
    let parsed = parse(bytes)?;
    if parsed.len() != to - from {
        return Err(NnError::BadWeightBlob("range length mismatch"));
    }
    let mut full = net.export_params();
    full[from..to].clone_from_slice(&parsed);
    net.import_params(&full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::KernelMode;
    use crate::{Activation, NetworkBuilder};
    use caltrain_tensor::Tensor;

    fn net(seed: u64) -> Network {
        NetworkBuilder::new(&[1, 6, 6])
            .conv(4, 3, 1, 1, Activation::Leaky)
            .maxpool(2, 2)
            .conv(3, 1, 1, 0, Activation::Linear)
            .global_avgpool()
            .softmax()
            .cost()
            .build(seed)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut a = net(1);
        let mut b = net(2);
        let bytes = weights_to_bytes(&a);
        weights_from_bytes(&mut b, &bytes).unwrap();
        let images = Tensor::from_fn(&[2, 1, 6, 6], |i| i as f32 / 72.0);
        let pa = a.predict_probs(&images, KernelMode::Native).unwrap();
        let pb = b.predict_probs(&images, KernelMode::Native).unwrap();
        assert_eq!(pa.as_slice(), pb.as_slice());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut n = net(3);
        assert!(matches!(
            weights_from_bytes(&mut n, b"NOPE"),
            Err(NnError::BadWeightBlob(_))
        ));
        let bytes = weights_to_bytes(&n);
        assert!(weights_from_bytes(&mut n, &bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(weights_from_bytes(&mut n, &extended).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let small = net(4);
        let mut big = NetworkBuilder::new(&[1, 6, 6])
            .conv(8, 3, 1, 1, Activation::Leaky)
            .maxpool(2, 2)
            .conv(3, 1, 1, 0, Activation::Linear)
            .global_avgpool()
            .softmax()
            .cost()
            .build(5)
            .unwrap();
        assert!(weights_from_bytes(&mut big, &weights_to_bytes(&small)).is_err());
    }

    #[test]
    fn range_roundtrip_swaps_only_frontnet() {
        let a = net(6);
        let mut b = net(7);
        let before = b.export_params();
        // Transplant layers 0..2 (the "FrontNet") from a into b.
        let bytes = range_weights_to_bytes(&a, 0, 2).unwrap();
        range_weights_from_bytes(&mut b, 0, 2, &bytes).unwrap();
        let after = b.export_params();
        assert_eq!(after[0], a.export_params()[0], "frontnet layer replaced");
        assert_eq!(after[2], before[2], "backnet layer untouched");
    }

    #[test]
    fn range_validates_bounds() {
        let a = net(8);
        assert!(range_weights_to_bytes(&a, 2, 2).is_err());
        assert!(range_weights_to_bytes(&a, 0, 99).is_err());
        let mut b = net(9);
        let bytes = range_weights_to_bytes(&a, 0, 2).unwrap();
        assert!(range_weights_from_bytes(&mut b, 0, 3, &bytes).is_err());
    }
}
