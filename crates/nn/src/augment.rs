//! In-enclave data augmentation (paper §IV-A "Data Augmentation").
//!
//! CalTrain can only augment *after* decrypting inside the enclave, using
//! the on-chip RNG for randomness. The transforms here are the paper's
//! list for image classification: "random rotation, flipping, and
//! distortion". Every transform preserves shape and is driven by an
//! injected RNG so the enclave simulator can supply its RDRAND stream.

use caltrain_tensor::Tensor;
use rand::Rng;

/// Augmentation policy; each field is a knob from the paper's list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_probability: f32,
    /// Maximum |shift| in pixels for random translation.
    pub max_shift: usize,
    /// Maximum |angle| in radians for random rotation.
    pub max_rotation: f32,
    /// Maximum multiplicative brightness distortion (`1 ± x`).
    pub max_distortion: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            flip_probability: 0.5,
            max_shift: 2,
            max_rotation: 0.12,
            max_distortion: 0.1,
        }
    }
}

/// Flips an image `[c, h, w]` horizontally.
///
/// # Panics
///
/// Panics if `image` is not rank-3.
pub fn flip_horizontal(image: &Tensor) -> Tensor {
    let d = image.dims();
    assert_eq!(d.len(), 3, "expected [c, h, w]");
    let (c, h, w) = (d[0], d[1], d[2]);
    let mut out = Tensor::zeros(d);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let v = image.as_slice()[ch * h * w + y * w + x];
                out.as_mut_slice()[ch * h * w + y * w + (w - 1 - x)] = v;
            }
        }
    }
    out
}

/// Translates an image by `(dy, dx)` pixels, zero-filling exposed borders.
///
/// # Panics
///
/// Panics if `image` is not rank-3.
pub fn shift(image: &Tensor, dy: isize, dx: isize) -> Tensor {
    let d = image.dims();
    assert_eq!(d.len(), 3, "expected [c, h, w]");
    let (c, h, w) = (d[0], d[1], d[2]);
    let mut out = Tensor::zeros(d);
    for ch in 0..c {
        for y in 0..h {
            let sy = y as isize - dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize - dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                out.as_mut_slice()[ch * h * w + y * w + x] =
                    image.as_slice()[ch * h * w + sy as usize * w + sx as usize];
            }
        }
    }
    out
}

/// Rotates an image by `angle` radians about its centre (nearest-neighbour
/// resampling, zero fill).
///
/// # Panics
///
/// Panics if `image` is not rank-3.
pub fn rotate(image: &Tensor, angle: f32) -> Tensor {
    let d = image.dims();
    assert_eq!(d.len(), 3, "expected [c, h, w]");
    let (c, h, w) = (d[0], d[1], d[2]);
    let (cy, cx) = ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0);
    let (sin, cos) = angle.sin_cos();
    let mut out = Tensor::zeros(d);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                // Inverse-rotate the destination coordinate.
                let ry = y as f32 - cy;
                let rx = x as f32 - cx;
                let sy = (cos * ry + sin * rx + cy).round();
                let sx = (-sin * ry + cos * rx + cx).round();
                if sy >= 0.0 && sy < h as f32 && sx >= 0.0 && sx < w as f32 {
                    out.as_mut_slice()[ch * h * w + y * w + x] =
                        image.as_slice()[ch * h * w + sy as usize * w + sx as usize];
                }
            }
        }
    }
    out
}

/// Scales pixel intensities by `factor`, clamping to `[0, 1]`.
pub fn distort_brightness(image: &Tensor, factor: f32) -> Tensor {
    image.map(|v| (v * factor).clamp(0.0, 1.0))
}

/// Applies the full random augmentation pipeline to one image.
///
/// # Panics
///
/// Panics if `image` is not rank-3.
pub fn augment<R: Rng + ?Sized>(image: &Tensor, config: &AugmentConfig, rng: &mut R) -> Tensor {
    let mut out = image.clone();
    if rng.gen::<f32>() < config.flip_probability {
        out = flip_horizontal(&out);
    }
    if config.max_shift > 0 {
        let range = config.max_shift as isize;
        let dy = rng.gen_range(-range..=range);
        let dx = rng.gen_range(-range..=range);
        if dy != 0 || dx != 0 {
            out = shift(&out, dy, dx);
        }
    }
    if config.max_rotation > 0.0 {
        let angle = rng.gen_range(-config.max_rotation..config.max_rotation);
        out = rotate(&out, angle);
    }
    if config.max_distortion > 0.0 {
        let factor = 1.0 + rng.gen_range(-config.max_distortion..config.max_distortion);
        out = distort_brightness(&out, factor);
    }
    out
}

/// Augments every image in a batch `[n, c, h, w]` independently.
///
/// # Panics
///
/// Panics if `batch` is not rank-4.
pub fn augment_batch<R: Rng + ?Sized>(
    batch: &Tensor,
    config: &AugmentConfig,
    rng: &mut R,
) -> Tensor {
    let d = batch.dims();
    assert_eq!(d.len(), 4, "expected [n, c, h, w]");
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let stride = c * h * w;
    let mut out = Tensor::zeros(d);
    for s in 0..n {
        let img = Tensor::from_vec(
            batch.as_slice()[s * stride..(s + 1) * stride].to_vec(),
            &[c, h, w],
        )
        .expect("slice matches shape");
        let aug = augment(&img, config, rng);
        out.as_mut_slice()[s * stride..(s + 1) * stride].copy_from_slice(aug.as_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gradient_image() -> Tensor {
        Tensor::from_fn(&[1, 4, 4], |i| i as f32 / 16.0)
    }

    #[test]
    fn flip_is_involution() {
        let img = gradient_image();
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_ne!(flip_horizontal(&img), img);
    }

    #[test]
    fn flip_mirrors_rows() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]).unwrap();
        assert_eq!(flip_horizontal(&img).as_slice(), &[4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn shift_moves_and_zero_fills() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let s = shift(&img, 1, 0); // down by one
        assert_eq!(s.as_slice(), &[0.0, 0.0, 1.0, 2.0]);
        let s2 = shift(&img, 0, -1); // left by one
        assert_eq!(s2.as_slice(), &[2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn zero_rotation_is_identity() {
        let img = gradient_image();
        assert_eq!(rotate(&img, 0.0), img);
    }

    #[test]
    fn quarter_turn_moves_mass() {
        let mut img = Tensor::zeros(&[1, 5, 5]);
        img.set(&[0, 0, 2], 1.0).unwrap(); // top centre
        let r = rotate(&img, std::f32::consts::FRAC_PI_2);
        // Energy preserved somewhere else in the frame.
        assert!((r.sum() - 1.0).abs() < 1e-6);
        assert_eq!(r.get(&[0, 0, 2]).unwrap(), 0.0);
    }

    #[test]
    fn distortion_clamps() {
        let img = Tensor::from_vec(vec![0.5, 0.9], &[1, 1, 2]).unwrap();
        let d = distort_brightness(&img, 1.5);
        assert_eq!(d.as_slice(), &[0.75, 1.0]);
    }

    #[test]
    fn augment_preserves_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let img = Tensor::from_fn(&[3, 8, 8], |i| (i % 17) as f32 / 16.0);
        for _ in 0..50 {
            let a = augment(&img, &AugmentConfig::default(), &mut rng);
            assert_eq!(a.dims(), img.dims());
            assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn augment_batch_is_per_sample() {
        let mut rng = StdRng::seed_from_u64(12);
        let batch = Tensor::from_fn(&[4, 1, 6, 6], |i| (i % 5) as f32 / 4.0);
        let out = augment_batch(&batch, &AugmentConfig::default(), &mut rng);
        assert_eq!(out.dims(), batch.dims());
    }

    #[test]
    fn deterministic_under_seed() {
        let img = gradient_image();
        let mut r1 = StdRng::seed_from_u64(13);
        let mut r2 = StdRng::seed_from_u64(13);
        let a = augment(&img, &AugmentConfig::default(), &mut r1);
        let b = augment(&img, &AugmentConfig::default(), &mut r2);
        assert_eq!(a, b);
    }
}
