//! The paper's network architectures (Tables I and II) plus the scaled
//! variants and face-recognition model used by the experiment harness.
//!
//! Paper-exact constructors reproduce every row of the appendix tables —
//! unit tests below assert each Input/Output shape. The `_scaled`
//! variants divide filter counts by a factor so the full 12-epoch
//! training runs of Figs. 3–5 finish at laptop scale; the architecture
//! (depth, layer kinds, partition points) is unchanged, which is what the
//! experiments actually exercise.

use crate::layers::Activation;
use crate::network::{Network, NetworkBuilder};
use crate::NnError;

/// Divides a paper filter count by `scale`, keeping at least 4 filters.
fn scaled(filters: usize, scale: usize) -> usize {
    (filters / scale.max(1)).max(4)
}

/// The 10-layer CIFAR-10 network of paper Table I (input 28×28×3).
///
/// # Errors
///
/// Never fails for this fixed architecture; the `Result` mirrors
/// [`NetworkBuilder::build`].
pub fn cifar10_10layer(seed: u64) -> Result<Network, NnError> {
    cifar10_10layer_scaled(1, seed)
}

/// Table I with filter counts divided by `scale`.
///
/// # Errors
///
/// See [`cifar10_10layer`].
pub fn cifar10_10layer_scaled(scale: usize, seed: u64) -> Result<Network, NnError> {
    NetworkBuilder::new(&[3, 28, 28])
        .conv_bn(scaled(128, scale), 3, 1, 1, Activation::Leaky) // 1
        .conv_bn(scaled(128, scale), 3, 1, 1, Activation::Leaky) // 2
        .maxpool(2, 2) // 3
        .conv_bn(scaled(64, scale), 3, 1, 1, Activation::Leaky) // 4
        .maxpool(2, 2) // 5
        .conv_bn(scaled(128, scale), 3, 1, 1, Activation::Leaky) // 6
        .conv(10, 1, 1, 0, Activation::Linear) // 7
        .global_avgpool() // 8
        .softmax() // 9
        .cost() // 10
        .build(seed)
}

/// The 18-layer CIFAR-10 network of paper Table II (input 28×28×3,
/// three dropout layers at p = 0.5).
///
/// # Errors
///
/// Never fails for this fixed architecture.
pub fn cifar10_18layer(seed: u64) -> Result<Network, NnError> {
    cifar10_18layer_scaled(1, seed)
}

/// Table II with filter counts divided by `scale`.
///
/// # Errors
///
/// See [`cifar10_18layer`].
pub fn cifar10_18layer_scaled(scale: usize, seed: u64) -> Result<Network, NnError> {
    NetworkBuilder::new(&[3, 28, 28])
        .conv_bn(scaled(128, scale), 3, 1, 1, Activation::Leaky) // 1
        .conv_bn(scaled(128, scale), 3, 1, 1, Activation::Leaky) // 2
        .conv_bn(scaled(128, scale), 3, 1, 1, Activation::Leaky) // 3
        .maxpool(2, 2) // 4
        .dropout(0.5) // 5
        .conv_bn(scaled(256, scale), 3, 1, 1, Activation::Leaky) // 6
        .conv_bn(scaled(256, scale), 3, 1, 1, Activation::Leaky) // 7
        .conv_bn(scaled(256, scale), 3, 1, 1, Activation::Leaky) // 8
        .maxpool(2, 2) // 9
        .dropout(0.5) // 10
        .conv_bn(scaled(512, scale), 3, 1, 1, Activation::Leaky) // 11
        .conv_bn(scaled(512, scale), 3, 1, 1, Activation::Leaky) // 12
        .conv_bn(scaled(512, scale), 3, 1, 1, Activation::Leaky) // 13
        .dropout(0.5) // 14
        .conv(10, 1, 1, 0, Activation::Linear) // 15
        .global_avgpool() // 16
        .softmax() // 17
        .cost() // 18
        .build(seed)
}

/// The face-recognition model standing in for VGG-Face in Experiment IV.
///
/// The paper retrains a released VGG-Face model whose penultimate layer
/// (the 2622-way logits) supplies the fingerprint embedding. This model
/// has the same structural property — its penultimate layer is the
/// `identities`-way logit vector feeding softmax — on a 24×24×3 synthetic
/// face input.
///
/// # Errors
///
/// Returns [`NnError::InvalidArchitecture`] only if `identities == 0`
/// would degenerate the head (guarded by the builder).
pub fn face_net(identities: usize, seed: u64) -> Result<Network, NnError> {
    NetworkBuilder::new(&[3, 24, 24])
        .conv_bn(16, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv_bn(32, 3, 1, 1, Activation::Leaky)
        .maxpool(2, 2)
        .conv_bn(32, 3, 1, 1, Activation::Leaky)
        .conv(identities, 1, 1, 0, Activation::Linear)
        .global_avgpool()
        .softmax()
        .cost()
        .build(seed)
}

/// The IR validation network (IRValNet) for the information-exposure
/// assessment: "a different well-trained deep learning model \[that\] acts
/// as the oracle to inspect IR images" (paper §IV-B). Structurally the
/// Table I network at reduced width, built from an independent seed.
///
/// # Errors
///
/// Never fails for this fixed architecture.
pub fn irvalnet(scale: usize, seed: u64) -> Result<Network, NnError> {
    cifar10_10layer_scaled(scale, seed ^ 0xA5A5_5A5A)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerKind;

    /// Asserts one table row: kind, filters, size string, output dims
    /// (paper tables list W×H×C; we store C×H×W).
    fn assert_row(
        net: &Network,
        idx: usize,
        kind: LayerKind,
        filters: Option<usize>,
        size: &str,
        output: &[usize],
    ) {
        let d = net.describe()[idx].clone();
        assert_eq!(d.kind, kind, "row {} kind", idx + 1);
        assert_eq!(d.filters, filters, "row {} filters", idx + 1);
        if !size.is_empty() {
            assert_eq!(d.size, size, "row {} size", idx + 1);
        }
        if !output.is_empty() {
            assert_eq!(d.output, output, "row {} output", idx + 1);
        }
    }

    #[test]
    fn table_i_rows_exact() {
        let net = cifar10_10layer(0).unwrap();
        assert_eq!(net.num_layers(), 10);
        assert_row(&net, 0, LayerKind::Conv, Some(128), "3x3/1", &[128, 28, 28]);
        assert_row(&net, 1, LayerKind::Conv, Some(128), "3x3/1", &[128, 28, 28]);
        assert_row(&net, 2, LayerKind::MaxPool, None, "2x2/2", &[128, 14, 14]);
        assert_row(&net, 3, LayerKind::Conv, Some(64), "3x3/1", &[64, 14, 14]);
        assert_row(&net, 4, LayerKind::MaxPool, None, "2x2/2", &[64, 7, 7]);
        assert_row(&net, 5, LayerKind::Conv, Some(128), "3x3/1", &[128, 7, 7]);
        assert_row(&net, 6, LayerKind::Conv, Some(10), "1x1/1", &[10, 7, 7]);
        assert_row(&net, 7, LayerKind::AvgPool, None, "", &[10]);
        assert_row(&net, 8, LayerKind::Softmax, None, "", &[10]);
        assert_row(&net, 9, LayerKind::Cost, None, "", &[10]);
    }

    #[test]
    fn table_ii_rows_exact() {
        let net = cifar10_18layer(0).unwrap();
        assert_eq!(net.num_layers(), 18);
        for i in 0..3 {
            assert_row(&net, i, LayerKind::Conv, Some(128), "3x3/1", &[128, 28, 28]);
        }
        assert_row(&net, 3, LayerKind::MaxPool, None, "2x2/2", &[128, 14, 14]);
        // Table II row 5: dropout p=0.50, input/output 25088 = 14·14·128.
        let drop = net.describe()[4].clone();
        assert_eq!(drop.kind, LayerKind::Dropout);
        assert_eq!(drop.input, vec![25088]);
        assert_eq!(drop.output, vec![25088]);
        for i in 5..8 {
            assert_row(&net, i, LayerKind::Conv, Some(256), "3x3/1", &[256, 14, 14]);
        }
        assert_row(&net, 8, LayerKind::MaxPool, None, "2x2/2", &[256, 7, 7]);
        let drop2 = net.describe()[9].clone();
        assert_eq!(drop2.input, vec![12544], "row 10 dropout over 7·7·256");
        for i in 10..13 {
            assert_row(&net, i, LayerKind::Conv, Some(512), "3x3/1", &[512, 7, 7]);
        }
        let drop3 = net.describe()[13].clone();
        assert_eq!(drop3.input, vec![25088], "row 14 dropout over 7·7·512");
        assert_row(&net, 14, LayerKind::Conv, Some(10), "1x1/1", &[10, 7, 7]);
        assert_row(&net, 15, LayerKind::AvgPool, None, "", &[10]);
        assert_row(&net, 16, LayerKind::Softmax, None, "", &[10]);
        assert_row(&net, 17, LayerKind::Cost, None, "", &[10]);
    }

    #[test]
    fn table_ii_has_ten_conv_layers() {
        // The Fig. 6 x-axis sweeps 0..=10 in-enclave conv layers.
        let net = cifar10_18layer(0).unwrap();
        assert_eq!(net.conv_layer_indices().len(), 10);
    }

    #[test]
    fn scaled_variants_preserve_structure() {
        let net = cifar10_18layer_scaled(8, 1).unwrap();
        assert_eq!(net.num_layers(), 18);
        assert_eq!(net.conv_layer_indices().len(), 10);
        let d = net.describe();
        assert_eq!(d[0].filters, Some(16));
        assert_eq!(d[14].filters, Some(10), "head width is class count, never scaled");
        let tiny = cifar10_10layer_scaled(1000, 2).unwrap();
        assert_eq!(tiny.describe()[0].filters, Some(4), "floor at 4 filters");
    }

    #[test]
    fn face_net_penultimate_is_identity_logits() {
        let net = face_net(16, 3).unwrap();
        let pi = net.penultimate_index();
        assert_eq!(net.layer(pi).output_shape().dims(), &[16]);
        assert_eq!(net.layer(pi).kind(), LayerKind::AvgPool);
    }

    #[test]
    fn irvalnet_differs_from_irgennet_seed() {
        let a = cifar10_10layer_scaled(16, 7).unwrap();
        let b = irvalnet(16, 7).unwrap();
        assert_ne!(
            a.export_params()[0], b.export_params()[0],
            "oracle must be an independently initialised model"
        );
    }

    #[test]
    fn paper_nets_param_counts() {
        // Table I: conv params = Σ filters·(c·k·k) + biases, plus
        // 3·filters (γ, rolling mean, rolling var) per batch-normalised
        // convolution.
        let net = cifar10_10layer(0).unwrap();
        let expect = 128 * (3 * 9) + 128
            + 128 * (128 * 9) + 128
            + 64 * (128 * 9) + 64
            + 128 * (64 * 9) + 128
            + 10 * 128 + 10
            + 3 * (128 + 128 + 64 + 128);
        assert_eq!(net.param_count(), expect);
    }
}
