//! Model accountability: fingerprints, linkage records and queries
//! (paper §IV-C, Experiments in §VI-D).
//!
//! For every training instance CalTrain stores a 4-tuple linkage record
//! **Ω = [F, Y, S, H]**:
//!
//! * `F` — the L2-normalised penultimate-layer embedding
//!   ([`Fingerprint`]), a one-way representation: without the (partially
//!   encrypted) model it cannot be inverted back to the training input;
//! * `Y` — the class label, used to prune the search space at query time;
//! * `S` — the contributing participant;
//! * `H` — a SHA-256 digest of the raw instance, so that data handed over
//!   during a forensic investigation can be proven to be *exactly* the
//!   bytes used in training.
//!
//! When a model user hits a misprediction, they extract the input's
//! fingerprint and ask the [`db::LinkageDb`] for the nearest training
//! fingerprints in the predicted class (L2 distance). The returned
//! sources tell the investigator which participants to subpoena; the
//! hashes verify what they hand back. [`lle`] reproduces the paper's
//! Fig. 7 visualisation of this embedding space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod index;
pub mod lle;
mod record;
pub mod soa;

pub use db::{LinkageDb, QueryMatch};
pub use index::{IndexParams, IndexedDb, LshIndex, QueryStrategy};
pub use record::{Fingerprint, LinkageRecord};
pub use soa::FingerprintBlock;
