//! Locally linear embedding (Roweis & Saul), used by the paper to project
//! 2622-dimensional face fingerprints to 2-D for Fig. 7.
//!
//! Standard three-step LLE:
//!
//! 1. `k` nearest neighbours per point (exact, L2);
//! 2. reconstruction weights minimising `‖xᵢ − Σⱼ wᵢⱼ xⱼ‖²` subject to
//!    `Σⱼ wᵢⱼ = 1`, via the regularised local Gram system;
//! 3. bottom eigenvectors of `M = (I − W)ᵀ(I − W)` (skipping the constant
//!    eigenvector) as embedding coordinates — computed with the Jacobi
//!    eigensolver from `caltrain-tensor`.

use caltrain_tensor::linalg::{solve, symmetric_eigen};
use caltrain_tensor::stats::cmp_nan_last;
use caltrain_tensor::{Tensor, TensorError};

/// Configuration for [`embed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LleConfig {
    /// Neighbours per point (paper-typical 10–15; must be < n).
    pub neighbors: usize,
    /// Output dimensionality (2 for Fig. 7).
    pub out_dim: usize,
    /// Gram regularisation factor (scaled by the local trace).
    pub regularization: f32,
}

impl Default for LleConfig {
    fn default() -> Self {
        LleConfig { neighbors: 12, out_dim: 2, regularization: 1e-3 }
    }
}

/// Embeds `points` (`[n, d]`) into `config.out_dim` dimensions,
/// returning `[n, out_dim]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] for non-rank-2 input or too few
/// points (`n` must exceed `neighbors + 1` and `out_dim + 1`), and
/// [`TensorError::Numerical`] if the eigensolve fails.
pub fn embed(points: &Tensor, config: &LleConfig) -> Result<Tensor, TensorError> {
    let dims = points.dims();
    if dims.len() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "lle",
            lhs: dims.to_vec(),
            rhs: vec![],
        });
    }
    let (n, d) = (dims[0], dims[1]);
    let k = config.neighbors;
    if n <= k + 1 || n <= config.out_dim + 1 || k == 0 {
        return Err(TensorError::ShapeMismatch {
            op: "lle (need n > neighbors+1 and n > out_dim+1)",
            lhs: vec![n, d],
            rhs: vec![k, config.out_dim],
        });
    }
    let data = points.as_slice();
    let row = |i: usize| &data[i * d..(i + 1) * d];

    // Step 1: exact k-NN per point.
    let mut neighbor_ids = vec![vec![0usize; k]; n];
    for i in 0..n {
        let mut dists: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dist: f32 = row(i)
                    .iter()
                    .zip(row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (dist, j)
            })
            .collect();
        // NaN distances (degenerate input rows) rank last instead of
        // panicking the embedding.
        dists.sort_by(|a, b| cmp_nan_last(a.0, b.0).then(a.1.cmp(&b.1)));
        for (slot, &(_, j)) in neighbor_ids[i].iter_mut().zip(dists.iter()) {
            *slot = j;
        }
    }

    // Step 2: reconstruction weights via local Gram systems.
    let mut weights = vec![0.0f32; n * n]; // dense W (n is a few hundred)
    for i in 0..n {
        let ids = &neighbor_ids[i];
        let mut gram = Tensor::zeros(&[k, k]);
        for a in 0..k {
            for b in 0..k {
                let mut acc = 0.0f32;
                for t in 0..d {
                    let da = row(i)[t] - row(ids[a])[t];
                    let db = row(i)[t] - row(ids[b])[t];
                    acc += da * db;
                }
                gram.set(&[a, b], acc)?;
            }
        }
        // Regularise: G += reg · trace(G)/k · I (handles k > d rank
        // deficiency, as in the reference implementation).
        let trace: f32 = (0..k).map(|a| gram.get(&[a, a]).expect("in bounds")).sum();
        let reg = config.regularization * (trace / k as f32).max(1e-12);
        for a in 0..k {
            let v = gram.get(&[a, a])?;
            gram.set(&[a, a], v + reg)?;
        }
        let w = solve(&gram, &vec![1.0f32; k])?;
        let sum: f32 = w.iter().sum();
        if sum.abs() < 1e-12 {
            return Err(TensorError::Numerical("degenerate LLE weights"));
        }
        for (a, &j) in ids.iter().enumerate() {
            weights[i * n + j] = w[a] / sum;
        }
    }

    // Step 3: M = (I − W)ᵀ(I − W), bottom eigenvectors.
    let mut m = Tensor::zeros(&[n, n]);
    {
        let mm = m.as_mut_slice();
        // I - W
        let mut iw = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                iw[i * n + j] = (if i == j { 1.0 } else { 0.0 }) - weights[i * n + j];
            }
        }
        for a in 0..n {
            for b in 0..n {
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += iw[i * n + a] * iw[i * n + b];
                }
                mm[a * n + b] = acc;
            }
        }
    }
    let (_vals, vecs) = symmetric_eigen(&m)?;

    // Rows 1..=out_dim of `vecs` (ascending order) skip the constant
    // eigenvector at index 0.
    let mut out = Tensor::zeros(&[n, config.out_dim]);
    let scale = (n as f32).sqrt();
    for dim in 0..config.out_dim {
        for i in 0..n {
            let v = vecs.get(&[dim + 1, i])?;
            out.set(&[i, dim], v * scale)?;
        }
    }
    Ok(out)
}

/// Mean pairwise L2 distance between two groups of embedded points —
/// the cluster-separation statistic the Fig. 7 harness reports.
///
/// # Panics
///
/// Panics if `embedding` is not rank-2 or any index is out of bounds.
pub fn group_separation(embedding: &Tensor, group_a: &[usize], group_b: &[usize]) -> f32 {
    let d = embedding.dims();
    assert_eq!(d.len(), 2, "expected [n, dim]");
    let dim = d[1];
    let data = embedding.as_slice();
    if group_a.is_empty() || group_b.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f32;
    for &i in group_a {
        for &j in group_b {
            let dist: f32 = (0..dim)
                .map(|t| {
                    let diff = data[i * dim + t] - data[j * dim + t];
                    diff * diff
                })
                .sum::<f32>()
                .sqrt();
            acc += dist;
        }
    }
    acc / (group_a.len() * group_b.len()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 10-D.
    fn two_blobs(n_per: usize) -> (Tensor, Vec<usize>, Vec<usize>) {
        let n = n_per * 2;
        let d = 10;
        let mut data = vec![0.0f32; n * d];
        // Deterministic pseudo-noise.
        let noise = |i: usize, t: usize| ((i * 31 + t * 17) % 13) as f32 / 13.0 - 0.5;
        for i in 0..n_per {
            for t in 0..d {
                data[i * d + t] = noise(i, t) * 0.3;
                data[(n_per + i) * d + t] = 5.0 + noise(i + 100, t) * 0.3;
            }
        }
        let a: Vec<usize> = (0..n_per).collect();
        let b: Vec<usize> = (n_per..n).collect();
        (Tensor::from_vec(data, &[n, d]).unwrap(), a, b)
    }

    #[test]
    fn preserves_cluster_structure() {
        let (points, a, b) = two_blobs(15);
        let emb = embed(&points, &LleConfig { neighbors: 5, out_dim: 2, regularization: 1e-3 })
            .unwrap();
        assert_eq!(emb.dims(), &[30, 2]);
        // With two disconnected manifolds, at least one embedding axis is
        // (near-)piecewise-constant per cluster: the group means along
        // that axis must be far apart relative to within-group spread.
        let mut separated = false;
        for dim in 0..2 {
            let mean = |ids: &[usize]| -> f32 {
                ids.iter().map(|&i| emb.get(&[i, dim]).unwrap()).sum::<f32>() / ids.len() as f32
            };
            let spread = |ids: &[usize], m: f32| -> f32 {
                (ids.iter()
                    .map(|&i| (emb.get(&[i, dim]).unwrap() - m).powi(2))
                    .sum::<f32>()
                    / ids.len() as f32)
                    .sqrt()
            };
            let (ma, mb) = (mean(&a), mean(&b));
            let s = spread(&a, ma).max(spread(&b, mb)).max(1e-6);
            if (ma - mb).abs() > 3.0 * s {
                separated = true;
            }
        }
        assert!(separated, "some embedding axis must separate the two blobs");
        // And inter-group distance still exceeds both intra-group spreads.
        let inter = group_separation(&emb, &a, &b);
        let intra_a = group_separation(&emb, &a, &a);
        let intra_b = group_separation(&emb, &b, &b);
        assert!(inter > intra_a && inter > intra_b, "inter {inter} vs {intra_a}/{intra_b}");
    }

    #[test]
    fn output_has_unit_scale() {
        // Eigenvectors are unit-norm; scaled by sqrt(n) the embedding's
        // per-axis RMS is 1.
        let (points, _, _) = two_blobs(10);
        let emb = embed(&points, &LleConfig { neighbors: 4, out_dim: 2, regularization: 1e-3 })
            .unwrap();
        for dim in 0..2 {
            let rms: f32 = ((0..20)
                .map(|i| emb.get(&[i, dim]).unwrap().powi(2))
                .sum::<f32>()
                / 20.0)
                .sqrt();
            assert!((rms - 1.0).abs() < 0.1, "dim {dim} rms {rms}");
        }
    }

    #[test]
    fn rejects_degenerate_requests() {
        let points = Tensor::zeros(&[5, 3]);
        assert!(embed(&points, &LleConfig { neighbors: 5, out_dim: 2, regularization: 1e-3 })
            .is_err());
        assert!(embed(&points, &LleConfig { neighbors: 0, out_dim: 2, regularization: 1e-3 })
            .is_err());
        let rank3 = Tensor::zeros(&[5, 3, 2]);
        assert!(embed(&rank3, &LleConfig::default()).is_err());
    }

    #[test]
    fn group_separation_zero_for_identical_groups_of_one() {
        let emb = Tensor::from_vec(vec![0.0, 0.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(group_separation(&emb, &[0], &[0]), 0.0);
        assert!((group_separation(&emb, &[0], &[1]) - 5.0).abs() < 1e-6);
        assert_eq!(group_separation(&emb, &[], &[1]), 0.0);
    }
}
