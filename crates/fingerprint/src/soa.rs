//! Structure-of-arrays fingerprint storage for the rerank fast path.
//!
//! A [`FingerprintBlock`] holds one LSH bucket's fingerprints as a
//! single contiguous **dimension-major** `dim × n` matrix
//! (`data[d * n + j]` = component `d` of column `j`), the transpose of
//! the record store's array-of-fingerprints layout. The rerank kernel
//! ([`caltrain_tensor::distance::distances_to_block`]) then streams
//! whole cache lines per dimension and lets SIMD lanes own distinct
//! candidates — while keeping every candidate's reduction the exact
//! ascending-`d` scalar chain of [`Fingerprint::distance`], so block
//! distances are **bitwise identical** to the oracle scan's.

use crate::db::QueryMatch;
use crate::record::Fingerprint;

use caltrain_tensor::distance::distances_to_block;

/// A dim-major SoA block of fingerprints plus the record index each
/// column came from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FingerprintBlock {
    dim: usize,
    records: Vec<usize>,
    data: Vec<f32>,
}

impl FingerprintBlock {
    /// Packs `(record index, fingerprint)` columns into the dim-major
    /// layout. Column order is preserved (callers pass insertion
    /// order, keeping builds worker-count invariant).
    ///
    /// # Panics
    ///
    /// Panics if any fingerprint's dimensionality differs from `dim`.
    pub fn from_columns(dim: usize, columns: &[(usize, &Fingerprint)]) -> Self {
        let n = columns.len();
        let mut records = Vec::with_capacity(n);
        let mut data = vec![0.0f32; dim * n];
        for (j, &(idx, fp)) in columns.iter().enumerate() {
            assert_eq!(fp.dim(), dim, "fingerprint dimensionality mismatch in block");
            records.push(idx);
            for (d, &v) in fp.values().iter().enumerate() {
                data[d * n + j] = v;
            }
        }
        FingerprintBlock { dim, records, data }
    }

    /// Number of fingerprints (columns) stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the block holds no columns.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The record index behind each column, in column order.
    pub fn records(&self) -> &[usize] {
        &self.records
    }

    /// Exact L2 distances from `probe` to every column, appended to
    /// `out` as [`QueryMatch`]es through the tensor SIMD dispatch.
    /// `scratch` is a reusable distance buffer (resized to fit).
    ///
    /// # Panics
    ///
    /// Panics if `probe.dim() != self.dim()`.
    pub fn distances_into(
        &self,
        probe: &Fingerprint,
        scratch: &mut Vec<f32>,
        out: &mut Vec<QueryMatch>,
    ) {
        assert_eq!(probe.dim(), self.dim, "probe dimensionality mismatch");
        let n = self.records.len();
        scratch.clear();
        scratch.resize(n, 0.0);
        distances_to_block(self.dim, n, probe.values(), &self.data, scratch);
        out.extend(
            self.records
                .iter()
                .zip(scratch.iter())
                .map(|(&record, &distance)| QueryMatch { record, distance }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(values: &[f32]) -> Fingerprint {
        Fingerprint::from_embedding(values)
    }

    #[test]
    fn block_distances_bitwise_match_pairwise_oracle() {
        let fps: Vec<Fingerprint> = (0..13)
            .map(|i| {
                let t = i as f32 * 0.47;
                fp(&[t.sin(), t.cos(), (t * 1.7).sin(), (t * 0.9).cos()])
            })
            .collect();
        let columns: Vec<(usize, &Fingerprint)> =
            fps.iter().enumerate().map(|(i, f)| (i * 3, f)).collect();
        let block = FingerprintBlock::from_columns(4, &columns);
        assert_eq!(block.len(), 13);
        assert_eq!(block.dim(), 4);

        let probe = fp(&[0.3, -0.8, 0.5, 0.1]);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        block.distances_into(&probe, &mut scratch, &mut out);

        assert_eq!(out.len(), 13);
        for (j, f) in fps.iter().enumerate() {
            assert_eq!(out[j].record, j * 3, "record indices ride along");
            assert_eq!(
                out[j].distance.to_bits(),
                f.distance(&probe).to_bits(),
                "column {j} must equal the oracle distance to the bit"
            );
        }
    }

    #[test]
    fn distances_append_rather_than_overwrite() {
        let a = fp(&[1.0, 0.0]);
        let block = FingerprintBlock::from_columns(2, &[(7, &a)]);
        let mut scratch = Vec::new();
        let mut out = vec![QueryMatch { record: 99, distance: 0.25 }];
        block.distances_into(&fp(&[0.0, 1.0]), &mut scratch, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].record, 99, "existing matches survive");
        assert_eq!(out[1].record, 7);
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let block = FingerprintBlock::from_columns(3, &[]);
        assert!(block.is_empty());
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        block.distances_into(&fp(&[1.0, 0.0, 0.0]), &mut scratch, &mut out);
        assert!(out.is_empty());
    }
}
