//! Sub-linear accountability serving: a deterministic two-tier ANN
//! index over unit-norm fingerprints (ROADMAP "millions of records"
//! item; the query itself is paper §IV-C).
//!
//! # Structure
//!
//! Tier 1 — **seeded random-hyperplane LSH**. Fingerprints are
//! L2-normalised, so the sign of a dot product against a random
//! hyperplane is the natural locality hash: nearby vectors agree on
//! most sign bits. Hyperplanes are drawn once from the vendored
//! [`StdRng`] with a fixed [`IndexParams::seed`], sequentially — builds
//! are bit-reproducible and worker-count invariant. Each class shards
//! its records into `2^p` buckets keyed by the `p` *most balanced*
//! sign bits — the planes whose popcount over the shard's members is
//! closest to half (a plane that misses the class cap entirely gives a
//! constant bit and would collapse buckets). `p` adapts to the class
//! size so buckets stay near [`IndexParams::target_bucket`] records,
//! and the selection is a pure function of the member multiset
//! (popcounts are additive), so it too is worker-count invariant and
//! identical whether the shard was built in one shot or incrementally.
//!
//! Tier 2 — **exact SIMD rerank**. A query multi-probes the
//! [`IndexParams::probes`] most plausible buckets (flipping the
//! lowest-confidence sign bits first), then reranks the candidate
//! union with exact L2 distances on the bucket's dim-major
//! [`FingerprintBlock`] through the `caltrain_tensor` SIMD dispatch.
//! Because rerank is exact and bitwise identical to
//! [`Fingerprint::distance`], [`IndexedDb::query`] returns bitwise-
//! identical [`QueryMatch`] lists to the oracle scan whenever the
//! candidate set covers the true top-k — and `probes = usize::MAX`
//! probes every bucket, making coverage total by construction.
//!
//! # Staleness safety
//!
//! The index carries a watermark (`indexed_len`): records inserted
//! after the last [`IndexedDb::refresh`] are scanned exactly (the
//! oracle tail scan), so a stale index can delay the speedup but can
//! never change an answer. [`refresh`](IndexedDb::refresh) is
//! incremental: new codes are computed in one worker-pool fan-out
//! (pure per record, merged sequentially in insertion order — the PR-2
//! pattern), and only touched buckets are repacked unless a class
//! outgrew its plane count.

use std::collections::{BTreeMap, HashMap};

use caltrain_runtime::{chunk_ranges, par_map};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::db::{LinkageDb, QueryMatch};
use crate::record::Fingerprint;
use crate::soa::FingerprintBlock;

/// Tuning knobs for the LSH index. The defaults hold bucket sizes near
/// 128 and probe 32 buckets per query (the 5 least-confident sign bits
/// at million-record scale) — ≥95% recall@10 on clustered fingerprint
/// distributions while scanning a few percent of the class instead of
/// all of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexParams {
    /// RNG seed for the hyperplane draw. Two indexes with the same
    /// seed, dimensionality and insertion sequence are identical.
    pub seed: u64,
    /// Upper bound on sign bits per class (so `2^max_planes` caps the
    /// bucket count). Clamped to 24.
    pub max_planes: u32,
    /// Desired records per bucket; a class of size `s` uses
    /// `min(ilog2(s / target_bucket), max_planes)` planes once
    /// `s / target_bucket >= 2`, else a single bucket.
    pub target_bucket: usize,
    /// Buckets probed per query (least-confident sign bits flipped
    /// first). `usize::MAX` probes every bucket — total coverage, so
    /// results are always bitwise equal to the oracle.
    pub probes: usize,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams { seed: 0x00CA_17A1, max_planes: 16, target_bucket: 128, probes: 32 }
    }
}

/// How a [`QueryService`](../../caltrain_core) resolves fingerprint
/// k-NN queries: the exact oracle scan, or the LSH index with exact
/// rerank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryStrategy {
    /// Exhaustive exact scan ([`LinkageDb::query`]) — the verification
    /// oracle, and the default.
    #[default]
    Oracle,
    /// Sharded LSH index + SIMD SoA rerank ([`IndexedDb`]).
    Indexed(IndexParams),
}

/// One class's shard: every member's full code (kept so re-sharding
/// never recomputes projections) plus the current bucket partition.
#[derive(Debug, Clone, PartialEq)]
struct ClassShard {
    /// Plane indices whose sign bits form the bucket key, ascending
    /// (empty = one bucket). Chosen by balance — see [`select_key_bits`].
    key_bits: Vec<u32>,
    /// `(record index, full max_planes-bit code)` in insertion order.
    members: Vec<(usize, u32)>,
    /// Bucket key (gathered `key_bits` of the code) → packed SoA block.
    buckets: HashMap<u32, FingerprintBlock>,
}

impl ClassShard {
    fn new() -> Self {
        ClassShard { key_bits: Vec::new(), members: Vec::new(), buckets: HashMap::new() }
    }
}

/// The `want` plane indices whose sign bits split `members` most
/// evenly (popcount closest to half; ties to the lower plane index),
/// returned ascending. A pure function of the member *multiset* — the
/// popcounts are additive — so insertion order, batching and worker
/// count cannot change the selection.
fn select_key_bits(members: &[(usize, u32)], max_planes: u32, want: u32) -> Vec<u32> {
    let half = members.len(); // imbalance in units of half a member
    let mut scored: Vec<(usize, u32)> = (0..max_planes)
        .map(|b| {
            let ones = members.iter().filter(|&&(_, code)| (code >> b) & 1 == 1).count();
            ((2 * ones).abs_diff(half), b)
        })
        .collect();
    scored.sort();
    scored.truncate(want as usize);
    let mut bits: Vec<u32> = scored.into_iter().map(|(_, b)| b).collect();
    bits.sort_unstable();
    bits
}

/// Gathers the selected sign bits of `code` into a dense bucket key.
fn key_of(code: u32, key_bits: &[u32]) -> u32 {
    key_bits
        .iter()
        .enumerate()
        .fold(0u32, |key, (i, &b)| key | (((code >> b) & 1) << i))
}

/// The deterministic two-tier LSH index (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LshIndex {
    params: IndexParams,
    dim: usize,
    /// `max_planes × dim` hyperplane matrix, row-major.
    planes: Vec<f32>,
    shards: HashMap<usize, ClassShard>,
    /// Records below this index are sharded; the rest are tail-scanned.
    indexed_len: usize,
}

impl LshIndex {
    /// Draws the hyperplanes for `dim`-dimensional fingerprints. The
    /// draw is sequential from the seeded [`StdRng`], so it is
    /// identical at any worker count.
    fn new(params: IndexParams, dim: usize) -> Self {
        let max_planes = params.max_planes.min(24);
        let params = IndexParams { max_planes, ..params };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let planes: Vec<f32> =
            (0..max_planes as usize * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        LshIndex { params, dim, planes, shards: HashMap::new(), indexed_len: 0 }
    }

    /// Records covered by the shard structure; everything at or past
    /// this watermark is answered by the exact tail scan.
    pub fn indexed_len(&self) -> usize {
        self.indexed_len
    }

    /// Sign bits for a class of `size` records.
    fn planes_for(params: &IndexParams, size: usize) -> u32 {
        let quotient = size / params.target_bucket.max(1);
        if quotient < 2 {
            0
        } else {
            quotient.ilog2().min(params.max_planes)
        }
    }

    /// The full `max_planes`-bit sign code of one fingerprint. Each
    /// projection is the ascending-`d` scalar dot chain; bit `b` is set
    /// iff projection `b` is `>= 0` (NaN projections clear the bit, so
    /// degenerate fingerprints land deterministically too).
    fn code_of(&self, fp: &Fingerprint) -> u32 {
        assert_eq!(fp.dim(), self.dim, "fingerprint dimensionality changed under the index");
        let mut code = 0u32;
        for b in 0..self.params.max_planes as usize {
            if Self::project(&self.planes[b * self.dim..(b + 1) * self.dim], fp.values()) >= 0.0 {
                code |= 1 << b;
            }
        }
        code
    }

    fn project(plane: &[f32], values: &[f32]) -> f32 {
        plane.iter().zip(values).map(|(p, v)| p * v).sum()
    }

    /// Incrementally absorbs `db` records past the watermark. Pure
    /// per-record code computation fans out across the worker pool;
    /// merges are sequential in insertion order, so the result is
    /// bit-identical at any worker count.
    fn refresh(&mut self, db: &LinkageDb) {
        let records = db.records();
        let (start, end) = (self.indexed_len, records.len());
        if start == end {
            return;
        }

        // 1. Full codes for the new span — one pool fan-out.
        let span = end - start;
        let workers = db.parallelism().workers();
        let ranges = chunk_ranges(span, workers.max(1) * 4);
        let code_chunks: Vec<Vec<u32>> = par_map(db.parallelism(), &ranges, |_, range| {
            range.clone().map(|off| self.code_of(&records[start + off].fingerprint)).collect()
        });
        let codes: Vec<u32> = code_chunks.into_iter().flatten().collect();

        // 2. Group the new members by class, in insertion order.
        // BTreeMap: classes are then rebuilt in sorted label order.
        let mut fresh: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
        for (off, code) in codes.into_iter().enumerate() {
            let idx = start + off;
            fresh.entry(records[idx].label).or_default().push((idx, code));
        }

        // 3. Per touched class: append members, re-select the balanced
        // key bits, then either repack only the touched buckets or
        // re-shard wholesale when the selection (count *or* identity)
        // changed. Because the selection depends only on the final
        // member multiset, an incremental build lands on the same
        // partition as a from-scratch one.
        for (label, new_members) in fresh {
            let prior = self.shards.get(&label).map_or(0, |s| s.members.len());
            let want = Self::planes_for(&self.params, prior + new_members.len());
            let max_planes = self.params.max_planes;
            let dim = self.dim;
            let shard = self.shards.entry(label).or_insert_with(ClassShard::new);
            shard.members.extend(new_members.iter().copied());
            let selected = select_key_bits(&shard.members, max_planes, want);

            let touched: Vec<(u32, Vec<usize>)> = if selected != shard.key_bits {
                // Re-shard: regroup every member under the new key bits.
                shard.key_bits = selected;
                shard.buckets.clear();
                let mut grouped: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
                for &(idx, code) in &shard.members {
                    grouped.entry(key_of(code, &shard.key_bits)).or_default().push(idx);
                }
                grouped.into_iter().collect()
            } else {
                // Same partition: only buckets that gained members need
                // a repack; carry their existing columns forward.
                let mut grouped: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
                for &(idx, code) in &new_members {
                    grouped.entry(key_of(code, &shard.key_bits)).or_default().push(idx);
                }
                grouped
                    .into_iter()
                    .map(|(key, fresh_recs)| {
                        let mut recs = shard
                            .buckets
                            .get(&key)
                            .map_or_else(Vec::new, |b| b.records().to_vec());
                        recs.extend(fresh_recs);
                        (key, recs)
                    })
                    .collect()
            };
            for (key, recs) in touched {
                let columns: Vec<(usize, &Fingerprint)> =
                    recs.into_iter().map(|i| (i, &records[i].fingerprint)).collect();
                shard.buckets.insert(key, FingerprintBlock::from_columns(dim, &columns));
            }
        }
        self.indexed_len = end;
    }

    /// Gathers exact rerank distances for the probed buckets of one
    /// class shard into `out`.
    fn probe_shard(
        &self,
        label: usize,
        probe: &Fingerprint,
        scratch: &mut Vec<f32>,
        out: &mut Vec<QueryMatch>,
    ) {
        let Some(shard) = self.shards.get(&label) else { return };
        let p = shard.key_bits.len() as u32;

        // Projections of the probe against the shard's key planes; the
        // sign bits give the home bucket, the magnitudes rank
        // confidence. `code` is in key-position space (bit `i` ↔
        // `key_bits[i]`), matching the stored bucket keys.
        let mut code = 0u32;
        let mut proj = vec![0.0f32; p as usize];
        for (i, slot) in proj.iter_mut().enumerate() {
            let b = shard.key_bits[i] as usize;
            *slot = Self::project(&self.planes[b * self.dim..(b + 1) * self.dim], probe.values());
            if *slot >= 0.0 {
                code |= 1 << i;
            }
        }

        // Least-confident key positions first (|projection|, then
        // position — total order even under NaN projections).
        let mut order: Vec<u32> = (0..p).collect();
        order.sort_by(|&a, &b| {
            proj[a as usize]
                .abs()
                .total_cmp(&proj[b as usize].abs())
                .then(a.cmp(&b))
        });

        // Mask `m` flips the `i`-th least-confident bit iff bit `i` of
        // `m` is set: masks `0..2^p` enumerate every bucket exactly
        // once, nearest-first — so `probes = usize::MAX` is total
        // coverage, not an overflow.
        let all = 1usize << p;
        let masks = self.params.probes.clamp(1, all);
        for m in 0..masks {
            let mut key = code;
            for (i, &bit) in order.iter().enumerate() {
                if (m >> i) & 1 == 1 {
                    key ^= 1 << bit;
                }
            }
            if let Some(bucket) = shard.buckets.get(&key) {
                bucket.distances_into(probe, scratch, out);
            }
        }
    }
}

/// A [`LinkageDb`] plus an optional [`LshIndex`], dispatching queries
/// by [`QueryStrategy`]. The oracle scan stays available unchanged
/// (`db().query(..)`); the indexed path is bitwise identical whenever
/// its candidate union covers the true top-k.
#[derive(Debug, Clone, Default)]
pub struct IndexedDb {
    db: LinkageDb,
    strategy: QueryStrategy,
    index: Option<LshIndex>,
}

impl IndexedDb {
    /// Wraps a database with the oracle strategy (exact scans, no
    /// index) — drop-in for existing call sites.
    pub fn new(db: LinkageDb) -> Self {
        IndexedDb { db, strategy: QueryStrategy::Oracle, index: None }
    }

    /// Wraps a database with an explicit strategy, building the index
    /// eagerly for [`QueryStrategy::Indexed`].
    pub fn with_strategy(db: LinkageDb, strategy: QueryStrategy) -> Self {
        let mut this = IndexedDb { db, strategy, index: None };
        this.refresh();
        this
    }

    /// The strategy in force.
    pub fn strategy(&self) -> QueryStrategy {
        self.strategy
    }

    /// Switches strategy; switching *to* `Indexed` builds the index.
    pub fn set_strategy(&mut self, strategy: QueryStrategy) {
        if self.strategy != strategy {
            self.strategy = strategy;
            self.index = None;
            self.refresh();
        }
    }

    /// The underlying exact store (the verification oracle).
    pub fn db(&self) -> &LinkageDb {
        &self.db
    }

    /// Mutable access to the store. Safe with a live index: records
    /// inserted here sit past the watermark and are tail-scanned
    /// exactly until the next [`refresh`](Self::refresh).
    pub fn db_mut(&mut self) -> &mut LinkageDb {
        &mut self.db
    }

    /// The built index, if the strategy is `Indexed` and the db is
    /// non-empty.
    pub fn index(&self) -> Option<&LshIndex> {
        self.index.as_ref()
    }

    /// Inserts a record (index refresh is deferred — call
    /// [`refresh`](Self::refresh) after the batch).
    pub fn insert(&mut self, record: crate::record::LinkageRecord) -> usize {
        self.db.insert(record)
    }

    /// Absorbs all records past the watermark into the index
    /// (no-op under the oracle strategy or when nothing changed).
    pub fn refresh(&mut self) {
        let QueryStrategy::Indexed(params) = self.strategy else { return };
        if self.db.is_empty() {
            return;
        }
        let index = self.index.get_or_insert_with(|| {
            LshIndex::new(params, self.db.records()[0].fingerprint.dim())
        });
        index.refresh(&self.db);
    }

    /// The `k` nearest records within class `label` — the paper's
    /// accountability query, answered by the configured strategy.
    pub fn query(&self, probe: &Fingerprint, label: usize, k: usize) -> Vec<QueryMatch> {
        match (&self.strategy, &self.index) {
            (QueryStrategy::Indexed(_), Some(index)) => {
                let mut scratch = Vec::new();
                let mut matches = Vec::new();
                index.probe_shard(label, probe, &mut scratch, &mut matches);
                self.append_tail(index, Some(label), probe, &mut matches);
                LinkageDb::rank(matches, k)
            }
            _ => self.db.query(probe, label, k),
        }
    }

    /// The `k` nearest records across every class (ablation baseline).
    pub fn query_all_classes(&self, probe: &Fingerprint, k: usize) -> Vec<QueryMatch> {
        match (&self.strategy, &self.index) {
            (QueryStrategy::Indexed(_), Some(index)) => {
                let mut scratch = Vec::new();
                let mut matches = Vec::new();
                // Shard iteration order is irrelevant: rank's
                // comparator is a total order over (distance, record).
                for &label in index.shards.keys() {
                    index.probe_shard(label, probe, &mut scratch, &mut matches);
                }
                self.append_tail(index, None, probe, &mut matches);
                LinkageDb::rank(matches, k)
            }
            _ => self.db.query_all_classes(probe, k),
        }
    }

    /// Exact oracle scan over records past the index watermark —
    /// restricted to one class when `label` is given. This is what
    /// makes a stale index safe.
    fn append_tail(
        &self,
        index: &LshIndex,
        label: Option<usize>,
        probe: &Fingerprint,
        out: &mut Vec<QueryMatch>,
    ) {
        let watermark = index.indexed_len;
        if watermark >= self.db.len() {
            return;
        }
        match label {
            Some(label) => {
                // Class indices ascend (insertion order), so the
                // unindexed tail is a suffix.
                let class = self.db.class_indices(label);
                let from = class.partition_point(|&idx| idx < watermark);
                out.extend(self.db.scan(&class[from..], probe));
            }
            None => {
                let tail: Vec<usize> = (watermark..self.db.len()).collect();
                out.extend(self.db.scan(&tail, probe));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LinkageRecord;

    fn record(dir: &[f32], label: usize, source: u32) -> LinkageRecord {
        LinkageRecord::new(Fingerprint::from_embedding(dir), label, source, b"instance")
    }

    /// Deterministic clustered corpus: `classes` cluster centres on the
    /// unit sphere with small angular jitter per record.
    fn clustered_db(n: usize, classes: usize, dim: usize) -> LinkageDb {
        let mut db = LinkageDb::new();
        for i in 0..n {
            let label = i % classes;
            let mut v: Vec<f32> = (0..dim)
                .map(|d| {
                    let centre = ((label * dim + d) as f32 * 2.399).sin();
                    let jitter = ((i * dim + d) as f32 * 0.713).sin() * 0.15;
                    centre + jitter
                })
                .collect();
            if v.iter().all(|x| x.abs() < 1e-6) {
                v[0] = 1.0;
            }
            db.insert(record(&v, label, (i % 7) as u32));
        }
        db
    }

    fn exhaustive() -> QueryStrategy {
        QueryStrategy::Indexed(IndexParams { probes: usize::MAX, ..IndexParams::default() })
    }

    #[test]
    fn oracle_strategy_is_a_passthrough() {
        let db = clustered_db(300, 3, 8);
        let probe = db.records()[17].fingerprint.clone();
        let indexed = IndexedDb::new(db.clone());
        assert_eq!(indexed.strategy(), QueryStrategy::Oracle);
        assert!(indexed.index().is_none());
        assert_eq!(indexed.query(&probe, 2, 5), db.query(&probe, 2, 5));
        assert_eq!(indexed.query_all_classes(&probe, 5), db.query_all_classes(&probe, 5));
    }

    #[test]
    fn exhaustive_probing_is_bitwise_identical_to_oracle() {
        let db = clustered_db(
            600,
            4,
            12,
        );
        let indexed = IndexedDb::with_strategy(
            db.clone(),
            QueryStrategy::Indexed(IndexParams {
                target_bucket: 32, // force several buckets per class
                probes: usize::MAX,
                ..IndexParams::default()
            }),
        );
        assert!(indexed.index().is_some());
        for probe_idx in [0, 11, 123, 599] {
            let probe = db.records()[probe_idx].fingerprint.clone();
            for label in 0..4 {
                let want = db.query(&probe, label, 10);
                let got = indexed.query(&probe, label, 10);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.record, w.record);
                    assert_eq!(g.distance.to_bits(), w.distance.to_bits());
                }
            }
            let want = db.query_all_classes(&probe, 10);
            let got = indexed.query_all_classes(&probe, 10);
            assert_eq!(
                got.iter().map(|m| (m.record, m.distance.to_bits())).collect::<Vec<_>>(),
                want.iter().map(|m| (m.record, m.distance.to_bits())).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn stale_index_tail_scan_keeps_answers_exact() {
        let db = clustered_db(400, 2, 8);
        let mut indexed = IndexedDb::with_strategy(db, exhaustive());
        let watermark = indexed.index().unwrap().indexed_len();
        assert_eq!(watermark, 400);

        // Insert WITHOUT refreshing: the nearest record to the new
        // probe is now past the watermark.
        let special = Fingerprint::from_embedding(&[9.0, -9.0, 9.0, -9.0, 9.0, -9.0, 9.0, -9.0]);
        let idx = indexed
            .insert(LinkageRecord::new(special.clone(), 0, 99, b"late"));
        assert_eq!(indexed.index().unwrap().indexed_len(), 400, "refresh deferred");

        let hits = indexed.query(&special, 0, 3);
        assert_eq!(hits[0].record, idx, "tail scan found the unindexed record");
        assert!(hits[0].distance < 1e-6);
        let all = indexed.query_all_classes(&special, 3);
        assert_eq!(all[0].record, idx);

        // After refresh the same answer comes from the index.
        indexed.refresh();
        assert_eq!(indexed.index().unwrap().indexed_len(), 401);
        assert_eq!(indexed.query(&special, 0, 3)[0].record, idx);
    }

    #[test]
    fn incremental_refresh_equals_from_scratch_build() {
        let full = clustered_db(700, 3, 10);
        let strategy = QueryStrategy::Indexed(IndexParams {
            target_bucket: 64,
            ..IndexParams::default()
        });

        // One-shot build.
        let oneshot = IndexedDb::with_strategy(full.clone(), strategy);

        // Three insert+refresh rounds over the same records.
        let mut incremental = IndexedDb::with_strategy(LinkageDb::new(), strategy);
        for chunk in [0..250usize, 250..520, 520..700] {
            for i in chunk {
                incremental.insert(full.records()[i].clone());
            }
            incremental.refresh();
        }

        assert_eq!(oneshot.index(), incremental.index(), "incremental == from-scratch");
    }

    #[test]
    fn empty_and_unknown_class_queries_are_safe() {
        let empty = IndexedDb::with_strategy(LinkageDb::new(), exhaustive());
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        assert!(empty.query(&probe, 0, 5).is_empty());
        assert!(empty.query_all_classes(&probe, 5).is_empty());

        let db = clustered_db(100, 2, 8);
        let indexed = IndexedDb::with_strategy(db.clone(), exhaustive());
        let probe = db.records()[0].fingerprint.clone();
        assert!(indexed.query(&probe, 77, 5).is_empty(), "unknown class is empty");
    }

    #[test]
    fn default_params_reach_high_recall_on_clusters() {
        let db = clustered_db(3000, 3, 16);
        let indexed = IndexedDb::with_strategy(
            db.clone(),
            QueryStrategy::Indexed(IndexParams { target_bucket: 64, ..IndexParams::default() }),
        );
        let mut hit = 0usize;
        let mut total = 0usize;
        for probe_idx in (0..3000).step_by(97) {
            let probe = db.records()[probe_idx].fingerprint.clone();
            let label = db.records()[probe_idx].label;
            let want: Vec<usize> = db.query(&probe, label, 10).iter().map(|m| m.record).collect();
            let got: Vec<usize> =
                indexed.query(&probe, label, 10).iter().map(|m| m.record).collect();
            total += want.len();
            hit += want.iter().filter(|r| got.contains(r)).count();
        }
        let recall = hit as f32 / total as f32;
        assert!(recall >= 0.95, "recall@10 {recall} below 0.95");
    }
}
