//! The linkage-structure database and its nearest-neighbour query
//! interface (the paper's "Linkage Structure Database" + query process).

use std::collections::HashMap;

use crate::record::{Fingerprint, LinkageRecord};

/// One query hit: a record index and its L2 distance to the probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMatch {
    /// Index into [`LinkageDb::records`].
    pub record: usize,
    /// L2 distance between probe and record fingerprints.
    pub distance: f32,
}

/// An in-memory store of linkage records with a class index.
///
/// Paper §IV-C: "we use Y to reduce the search space to a specified class
/// label" — [`LinkageDb::query`] scans only the predicted class, while
/// [`LinkageDb::query_all_classes`] is the un-pruned ablation baseline
/// (benchmarked in `caltrain-bench`).
#[derive(Debug, Clone, Default)]
pub struct LinkageDb {
    records: Vec<LinkageRecord>,
    by_class: HashMap<usize, Vec<usize>>,
}

impl LinkageDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record, returning its index.
    pub fn insert(&mut self, record: LinkageRecord) -> usize {
        let idx = self.records.len();
        self.by_class.entry(record.label).or_default().push(idx);
        self.records.push(record);
        idx
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[LinkageRecord] {
        &self.records
    }

    /// Borrows record `index`.
    pub fn record(&self, index: usize) -> Option<&LinkageRecord> {
        self.records.get(index)
    }

    /// Record indices for one class label.
    pub fn class_indices(&self, label: usize) -> &[usize] {
        self.by_class.get(&label).map_or(&[], Vec::as_slice)
    }

    /// The `k` nearest records **within class `label`** to `probe`,
    /// ascending by distance (ties broken by insertion order). This is
    /// the paper's query: the mispredicted input's fingerprint is probed
    /// against training fingerprints sharing its (mis)predicted label.
    pub fn query(&self, probe: &Fingerprint, label: usize, k: usize) -> Vec<QueryMatch> {
        let candidates = self.class_indices(label);
        let mut matches: Vec<QueryMatch> = candidates
            .iter()
            .map(|&idx| QueryMatch {
                record: idx,
                distance: self.records[idx].fingerprint.distance(probe),
            })
            .collect();
        matches.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
                .then(a.record.cmp(&b.record))
        });
        matches.truncate(k);
        matches
    }

    /// The `k` nearest records across *every* class — the ablation
    /// baseline without the paper's Y-pruning.
    pub fn query_all_classes(&self, probe: &Fingerprint, k: usize) -> Vec<QueryMatch> {
        let mut matches: Vec<QueryMatch> = self
            .records
            .iter()
            .enumerate()
            .map(|(idx, r)| QueryMatch { record: idx, distance: r.fingerprint.distance(probe) })
            .collect();
        matches.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
                .then(a.record.cmp(&b.record))
        });
        matches.truncate(k);
        matches
    }

    /// Distinct sources among a set of matches — the participants the
    /// investigator will demand data from.
    pub fn sources_of(&self, matches: &[QueryMatch]) -> Vec<u32> {
        let mut sources: Vec<u32> =
            matches.iter().filter_map(|m| self.records.get(m.record)).map(|r| r.source).collect();
        sources.sort_unstable();
        sources.dedup();
        sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dir: &[f32], label: usize, source: u32, bytes: &[u8]) -> LinkageRecord {
        LinkageRecord::new(Fingerprint::from_embedding(dir), label, source, bytes)
    }

    fn sample_db() -> LinkageDb {
        let mut db = LinkageDb::new();
        db.insert(record(&[1.0, 0.0], 0, 10, b"a"));
        db.insert(record(&[0.9, 0.1], 0, 11, b"b"));
        db.insert(record(&[0.0, 1.0], 0, 12, b"c"));
        db.insert(record(&[1.0, 0.05], 1, 13, b"d"));
        db
    }

    #[test]
    fn query_is_class_pruned_and_sorted() {
        let db = sample_db();
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        let hits = db.query(&probe, 0, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].record, 0, "exact match first");
        assert!(hits[0].distance < 1e-6);
        assert_eq!(hits[1].record, 1);
        assert!(hits[0].distance <= hits[1].distance);
        // Record 3 (class 1) is closer than record 2 but excluded by Y.
        assert!(hits.iter().all(|m| db.record(m.record).unwrap().label == 0));
    }

    #[test]
    fn query_all_classes_ignores_pruning() {
        let db = sample_db();
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        let hits = db.query_all_classes(&probe, 2);
        assert_eq!(hits[0].record, 0);
        assert_eq!(hits[1].record, 3, "cross-class neighbour admitted");
    }

    #[test]
    fn k_larger_than_class_is_safe() {
        let db = sample_db();
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        assert_eq!(db.query(&probe, 0, 100).len(), 3);
        assert!(db.query(&probe, 99, 5).is_empty(), "unknown class is empty");
    }

    #[test]
    fn sources_deduplicated() {
        let mut db = sample_db();
        db.insert(record(&[0.95, 0.05], 0, 10, b"e")); // same source as record 0
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        let hits = db.query(&probe, 0, 3);
        let sources = db.sources_of(&hits);
        assert_eq!(sources.len(), sources.iter().collect::<std::collections::HashSet<_>>().len());
    }

    #[test]
    fn class_index_consistent() {
        let db = sample_db();
        assert_eq!(db.len(), 4);
        assert_eq!(db.class_indices(0), &[0, 1, 2]);
        assert_eq!(db.class_indices(1), &[3]);
        assert!(db.record(99).is_none());
    }
}
