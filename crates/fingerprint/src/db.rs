//! The linkage-structure database and its nearest-neighbour query
//! interface (the paper's "Linkage Structure Database" + query process).

use std::collections::HashMap;

use caltrain_runtime::{par_map, Parallelism};
use caltrain_tensor::stats::cmp_nan_last;

use crate::record::{Fingerprint, LinkageRecord};

/// One query hit: a record index and its L2 distance to the probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMatch {
    /// Index into [`LinkageDb::records`].
    pub record: usize,
    /// L2 distance between probe and record fingerprints.
    pub distance: f32,
}

/// An in-memory store of linkage records with a class index.
///
/// Paper §IV-C: "we use Y to reduce the search space to a specified class
/// label" — [`LinkageDb::query`] scans only the predicted class, while
/// [`LinkageDb::query_all_classes`] is the un-pruned ablation baseline
/// (benchmarked in `caltrain-bench`).
#[derive(Debug, Clone, Default)]
pub struct LinkageDb {
    records: Vec<LinkageRecord>,
    by_class: HashMap<usize, Vec<usize>>,
    parallelism: Parallelism,
}

/// Candidate count above which the distance scan fans out across the
/// worker pool; below it, spawning threads costs more than the scan.
pub const PAR_SCAN_THRESHOLD: usize = 1024;

impl LinkageDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-pool knob for large distance scans (defaults to
    /// [`Parallelism::default`], i.e. sequential unless
    /// `CALTRAIN_WORKERS` is set). Query results are bit-identical at
    /// any worker count.
    ///
    /// Setting a parallel budget pre-spawns the persistent runtime pool
    /// so the first large scan does not pay thread creation.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        caltrain_runtime::pool::warm(parallelism.workers());
        self.parallelism = parallelism;
    }

    /// The worker-pool knob in force.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Inserts a record, returning its index.
    pub fn insert(&mut self, record: LinkageRecord) -> usize {
        let idx = self.records.len();
        self.by_class.entry(record.label).or_default().push(idx);
        self.records.push(record);
        idx
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[LinkageRecord] {
        &self.records
    }

    /// Borrows record `index`.
    pub fn record(&self, index: usize) -> Option<&LinkageRecord> {
        self.records.get(index)
    }

    /// Record indices for one class label.
    pub fn class_indices(&self, label: usize) -> &[usize] {
        self.by_class.get(&label).map_or(&[], Vec::as_slice)
    }

    /// The `k` nearest records **within class `label`** to `probe`,
    /// ascending by distance (ties broken by insertion order). This is
    /// the paper's query: the mispredicted input's fingerprint is probed
    /// against training fingerprints sharing its (mis)predicted label.
    pub fn query(&self, probe: &Fingerprint, label: usize, k: usize) -> Vec<QueryMatch> {
        Self::rank(self.scan(self.class_indices(label), probe), k)
    }

    /// The `k` nearest records across *every* class — the ablation
    /// baseline without the paper's Y-pruning.
    pub fn query_all_classes(&self, probe: &Fingerprint, k: usize) -> Vec<QueryMatch> {
        // Scans the record slice directly (no candidate index list —
        // this path visits everything anyway).
        Self::rank(self.scan_distances(&self.records, probe, |idx, _| idx), k)
    }

    /// Distances from `probe` to every candidate record, in candidate
    /// order.
    pub(crate) fn scan(&self, candidates: &[usize], probe: &Fingerprint) -> Vec<QueryMatch> {
        self.scan_distances(candidates, probe, |_, &idx| idx)
    }

    /// The one distance-scan engine behind both query paths (and the
    /// index's unindexed-tail scan): maps each item to its record index
    /// and measures the probe distance, fanning out across the worker
    /// pool past [`PAR_SCAN_THRESHOLD`]. The per-pair distance is pure,
    /// so worker count never changes the result.
    fn scan_distances<T, F>(&self, items: &[T], probe: &Fingerprint, to_record: F) -> Vec<QueryMatch>
    where
        T: Sync,
        F: Fn(usize, &T) -> usize + Sync,
    {
        let measure = |i: usize, item: &T| {
            let record = to_record(i, item);
            QueryMatch { record, distance: self.records[record].fingerprint.distance(probe) }
        };
        if items.len() >= PAR_SCAN_THRESHOLD {
            par_map(self.parallelism, items, measure)
        } else {
            items.iter().enumerate().map(|(i, item)| measure(i, item)).collect()
        }
    }

    /// The shared top-`k` tail of every query path: ascending by
    /// distance, ties broken by insertion order, NaN distances last (a
    /// degenerate fingerprint must never panic the query).
    ///
    /// Bounded selection: `select_nth_unstable_by` partitions the `k`
    /// smallest to the front in O(n), then only that prefix is sorted —
    /// O(n + k log k) instead of the old full O(n log n) sort. The
    /// comparator is a total order (NaN compares greater than every
    /// real, record index breaks distance ties), so selection + prefix
    /// sort returns exactly what the full sort did.
    pub(crate) fn rank(mut matches: Vec<QueryMatch>, k: usize) -> Vec<QueryMatch> {
        let cmp = |a: &QueryMatch, b: &QueryMatch| {
            cmp_nan_last(a.distance, b.distance).then(a.record.cmp(&b.record))
        };
        if k == 0 {
            matches.clear();
            return matches;
        }
        if matches.len() > k {
            matches.select_nth_unstable_by(k - 1, cmp);
            matches.truncate(k);
        }
        matches.sort_by(cmp);
        matches
    }

    /// Distinct sources among a set of matches — the participants the
    /// investigator will demand data from.
    pub fn sources_of(&self, matches: &[QueryMatch]) -> Vec<u32> {
        let mut sources: Vec<u32> =
            matches.iter().filter_map(|m| self.records.get(m.record)).map(|r| r.source).collect();
        sources.sort_unstable();
        sources.dedup();
        sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dir: &[f32], label: usize, source: u32, bytes: &[u8]) -> LinkageRecord {
        LinkageRecord::new(Fingerprint::from_embedding(dir), label, source, bytes)
    }

    fn sample_db() -> LinkageDb {
        let mut db = LinkageDb::new();
        db.insert(record(&[1.0, 0.0], 0, 10, b"a"));
        db.insert(record(&[0.9, 0.1], 0, 11, b"b"));
        db.insert(record(&[0.0, 1.0], 0, 12, b"c"));
        db.insert(record(&[1.0, 0.05], 1, 13, b"d"));
        db
    }

    #[test]
    fn query_is_class_pruned_and_sorted() {
        let db = sample_db();
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        let hits = db.query(&probe, 0, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].record, 0, "exact match first");
        assert!(hits[0].distance < 1e-6);
        assert_eq!(hits[1].record, 1);
        assert!(hits[0].distance <= hits[1].distance);
        // Record 3 (class 1) is closer than record 2 but excluded by Y.
        assert!(hits.iter().all(|m| db.record(m.record).unwrap().label == 0));
    }

    #[test]
    fn query_all_classes_ignores_pruning() {
        let db = sample_db();
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        let hits = db.query_all_classes(&probe, 2);
        assert_eq!(hits[0].record, 0);
        assert_eq!(hits[1].record, 3, "cross-class neighbour admitted");
    }

    #[test]
    fn k_larger_than_class_is_safe() {
        let db = sample_db();
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        assert_eq!(db.query(&probe, 0, 100).len(), 3);
        assert!(db.query(&probe, 99, 5).is_empty(), "unknown class is empty");
    }

    #[test]
    fn sources_deduplicated() {
        let mut db = sample_db();
        db.insert(record(&[0.95, 0.05], 0, 10, b"e")); // same source as record 0
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);
        let hits = db.query(&probe, 0, 3);
        let sources = db.sources_of(&hits);
        assert_eq!(sources.len(), sources.iter().collect::<std::collections::HashSet<_>>().len());
    }

    #[test]
    fn nan_fingerprint_cannot_panic_the_query() {
        // A degenerate (all-NaN-direction) fingerprint yields NaN
        // distances; both query paths must rank it last, not panic.
        let mut db = sample_db();
        let nan_idx = db.insert(record(&[f32::NAN, 0.0], 0, 14, b"degenerate"));
        let probe = Fingerprint::from_embedding(&[1.0, 0.0]);

        let hits = db.query(&probe, 0, 10);
        assert_eq!(hits.len(), 4);
        assert_eq!(hits.last().unwrap().record, nan_idx, "NaN distance sorts last");
        assert!(hits.last().unwrap().distance.is_nan());
        assert!(hits[..3].iter().all(|m| m.distance.is_finite()));

        let all = db.query_all_classes(&probe, 10);
        assert_eq!(all.len(), 5);
        assert_eq!(all.last().unwrap().record, nan_idx);

        // The NaN probe direction is equally survivable.
        let nan_probe = Fingerprint::from_embedding(&[f32::NAN, f32::NAN]);
        assert_eq!(db.query(&nan_probe, 0, 10).len(), 4);
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        // Class 0 alone clears PAR_SCAN_THRESHOLD, so the worker pool
        // really runs on *both* paths: the class-pruned scan and the
        // all-classes scan.
        let build = || {
            let mut db = LinkageDb::new();
            for i in 0..(PAR_SCAN_THRESHOLD + 500) {
                let dir = [(i as f32 * 0.37).sin(), (i as f32 * 0.73).cos()];
                let label = usize::from(i >= PAR_SCAN_THRESHOLD + 200);
                db.insert(record(&dir, label, (i % 11) as u32, &i.to_le_bytes()));
            }
            db
        };
        let mut sequential = build();
        sequential.set_parallelism(Parallelism::sequential());
        let mut parallel = build();
        parallel.set_parallelism(Parallelism::new(4));

        let probe = Fingerprint::from_embedding(&[0.6, -0.8]);
        assert_eq!(
            sequential.query_all_classes(&probe, 25),
            parallel.query_all_classes(&probe, 25),
            "worker count must not change query results"
        );
        assert!(
            sequential.class_indices(0).len() >= PAR_SCAN_THRESHOLD,
            "class 0 must be large enough to drive the parallel class scan"
        );
        assert_eq!(sequential.query(&probe, 0, 25), parallel.query(&probe, 0, 25));
        assert_eq!(sequential.query(&probe, 1, 25), parallel.query(&probe, 1, 25));
    }

    #[test]
    fn rank_ties_at_the_selection_boundary_break_by_insertion_order() {
        // Five candidates tie at the k=3 boundary distance: the bounded
        // selection must keep exactly the lowest record indices among
        // the tied group, like the full sort did.
        let matches = vec![
            QueryMatch { record: 9, distance: 0.5 },
            QueryMatch { record: 2, distance: 0.5 },
            QueryMatch { record: 7, distance: 0.5 },
            QueryMatch { record: 4, distance: 0.5 },
            QueryMatch { record: 5, distance: 0.1 },
        ];
        let top = LinkageDb::rank(matches, 3);
        assert_eq!(
            top,
            vec![
                QueryMatch { record: 5, distance: 0.1 },
                QueryMatch { record: 2, distance: 0.5 },
                QueryMatch { record: 4, distance: 0.5 },
            ]
        );
    }

    #[test]
    fn rank_nan_at_the_selection_boundary_sorts_last() {
        // NaN distances straddle the k boundary: finite candidates must
        // win the selection, NaN fills only leftover slots.
        let matches = vec![
            QueryMatch { record: 0, distance: f32::NAN },
            QueryMatch { record: 1, distance: 2.0 },
            QueryMatch { record: 2, distance: f32::NAN },
            QueryMatch { record: 3, distance: 1.0 },
            QueryMatch { record: 4, distance: 3.0 },
        ];
        let top = LinkageDb::rank(matches.clone(), 3);
        assert_eq!(
            top.iter().map(|m| m.record).collect::<Vec<_>>(),
            vec![3, 1, 4],
            "all-finite top-3 excludes NaN"
        );
        let top4 = LinkageDb::rank(matches, 4);
        assert_eq!(top4[3].record, 0, "NaN fills the leftover slot, lowest index first");
        assert!(top4[3].distance.is_nan());
    }

    #[test]
    fn rank_matches_full_sort_reference() {
        // Pseudo-random distances (ties included via quantisation):
        // bounded selection == full sort + truncate, for every k.
        let matches: Vec<QueryMatch> = (0..97)
            .map(|i| {
                let noisy = ((i as u32).wrapping_mul(2654435761) >> 20) as f32;
                QueryMatch { record: i, distance: (noisy / 64.0).floor() }
            })
            .collect();
        for k in [0, 1, 5, 50, 96, 97, 200] {
            let mut want = matches.clone();
            want.sort_by(|a, b| cmp_nan_last(a.distance, b.distance).then(a.record.cmp(&b.record)));
            want.truncate(k);
            assert_eq!(LinkageDb::rank(matches.clone(), k), want, "k={k}");
        }
    }

    #[test]
    fn class_index_consistent() {
        let db = sample_db();
        assert_eq!(db.len(), 4);
        assert_eq!(db.class_indices(0), &[0, 1, 2]);
        assert_eq!(db.class_indices(1), &[3]);
        assert!(db.record(99).is_none());
    }
}
