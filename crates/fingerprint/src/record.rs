//! Fingerprints and linkage records.

use caltrain_crypto::sha256::{Digest, Sha256};
use caltrain_tensor::{Tensor, TensorError};

/// An L2-normalised penultimate-layer embedding (paper §IV-C
/// "Fingerprint Generation").
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    values: Vec<f32>,
}

impl Fingerprint {
    /// Builds a fingerprint from a raw embedding, normalising it.
    ///
    /// # Panics
    ///
    /// Panics if `embedding` is empty.
    pub fn from_embedding(embedding: &[f32]) -> Self {
        assert!(!embedding.is_empty(), "empty embedding");
        let norm = embedding.iter().map(|v| v * v).sum::<f32>().sqrt();
        let values = if norm > 0.0 {
            embedding.iter().map(|v| v / norm).collect()
        } else {
            embedding.to_vec()
        };
        Fingerprint { values }
    }

    /// Builds fingerprints for every row of an embedding matrix `[n, d]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `embeddings` is not
    /// rank-2.
    pub fn from_embedding_rows(embeddings: &Tensor) -> Result<Vec<Fingerprint>, TensorError> {
        let d = embeddings.dims();
        if d.len() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "fingerprint rows",
                lhs: d.to_vec(),
                rhs: vec![],
            });
        }
        let (n, dim) = (d[0], d[1]);
        Ok((0..n)
            .map(|i| Fingerprint::from_embedding(&embeddings.as_slice()[i * dim..(i + 1) * dim]))
            .collect())
    }

    /// The normalised embedding values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// L2 distance to another fingerprint — the similarity measure of
    /// §IV-C.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ (fingerprints from different
    /// models are never comparable).
    pub fn distance(&self, other: &Fingerprint) -> f32 {
        assert_eq!(self.dim(), other.dim(), "fingerprint dimensionality mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }
}

/// The linkage structure Ω = [F, Y, S, H] for one training instance.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkageRecord {
    /// `F`: the fingerprint.
    pub fingerprint: Fingerprint,
    /// `Y`: the training label.
    pub label: usize,
    /// `S`: the contributing participant (u32 id).
    pub source: u32,
    /// `H`: SHA-256 digest of the raw instance bytes.
    pub hash: Digest,
}

impl LinkageRecord {
    /// Builds a record, hashing the instance bytes.
    pub fn new(fingerprint: Fingerprint, label: usize, source: u32, instance_bytes: &[u8]) -> Self {
        LinkageRecord { fingerprint, label, source, hash: Sha256::digest(instance_bytes) }
    }

    /// Verifies that `submitted` is byte-identical to the instance used
    /// in training — the investigator's check when a participant turns in
    /// demanded data (paper §IV-C).
    pub fn verify_instance(&self, submitted: &[u8]) -> bool {
        Sha256::digest(submitted) == self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_unit_norm() {
        let f = Fingerprint::from_embedding(&[3.0, 4.0]);
        let norm: f32 = f.values().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert_eq!(f.dim(), 2);
    }

    #[test]
    fn zero_embedding_survives() {
        let f = Fingerprint::from_embedding(&[0.0, 0.0, 0.0]);
        assert_eq!(f.values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn distance_is_scale_invariant() {
        // Same direction, different magnitudes -> distance 0.
        let a = Fingerprint::from_embedding(&[1.0, 2.0, 2.0]);
        let b = Fingerprint::from_embedding(&[2.0, 4.0, 4.0]);
        assert!(a.distance(&b) < 1e-6);
        let c = Fingerprint::from_embedding(&[-1.0, -2.0, -2.0]);
        assert!(a.distance(&c) > 1.9, "antipodal points are maximally far");
    }

    #[test]
    fn rows_helper() {
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap();
        let fps = Fingerprint::from_embedding_rows(&m).unwrap();
        assert_eq!(fps.len(), 2);
        assert_eq!(fps[0].values(), &[1.0, 0.0]);
        assert_eq!(fps[1].values(), &[0.0, 1.0]);
        let bad = Tensor::zeros(&[2, 2, 2]);
        assert!(Fingerprint::from_embedding_rows(&bad).is_err());
    }

    #[test]
    fn record_hash_verification() {
        let f = Fingerprint::from_embedding(&[1.0, 0.0]);
        let record = LinkageRecord::new(f, 3, 7, b"training instance bytes");
        assert!(record.verify_instance(b"training instance bytes"));
        assert!(!record.verify_instance(b"training instance bytez"));
        assert_eq!(record.label, 3);
        assert_eq!(record.source, 7);
    }
}
