//! Property tests for the sub-linear serving tier
//! (`caltrain_fingerprint::index`): the exact-oracle contract, recall
//! under the default multi-probe budget, and worker-count-invariant
//! builds.

use caltrain_fingerprint::{
    Fingerprint, IndexParams, IndexedDb, LinkageDb, LinkageRecord, QueryStrategy,
};
use caltrain_runtime::Parallelism;
use proptest::prelude::*;

/// Deterministic clustered corpus keyed by a proptest-drawn seed:
/// `classes` unit-sphere cluster centres, per-record angular jitter —
/// the shape real penultimate-layer fingerprints take (§VI-D).
fn clustered_db(seed: u64, n: usize, classes: usize, dim: usize, jitter: f32) -> LinkageDb {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    };
    let centres: Vec<Vec<f32>> = (0..classes).map(|_| (0..dim).map(|_| next()).collect()).collect();
    let mut db = LinkageDb::new();
    for i in 0..n {
        let label = i % classes;
        let mut v: Vec<f32> = centres[label].iter().map(|c| c + next() * jitter).collect();
        if v.iter().all(|x| x.abs() < 1e-6) {
            v[0] = 1.0;
        }
        db.insert(LinkageRecord::new(
            Fingerprint::from_embedding(&v),
            label,
            (i % 7) as u32,
            &i.to_le_bytes(),
        ));
    }
    db
}

fn bits(matches: &[caltrain_fingerprint::QueryMatch]) -> Vec<(usize, u32)> {
    matches.iter().map(|m| (m.record, m.distance.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With `probes = usize::MAX` every bucket is probed, so coverage
    /// (recall) is total — and the indexed answer must equal the
    /// oracle scan **to the bit**, for every class and probe.
    #[test]
    fn total_coverage_is_bitwise_identical_to_oracle(
        seed in any::<u64>(),
        n in 50usize..600,
        classes in 1usize..5,
        target_bucket in 8usize..64,
        k in 1usize..15,
    ) {
        let db = clustered_db(seed, n, classes, 10, 0.4);
        let indexed = IndexedDb::with_strategy(
            db.clone(),
            QueryStrategy::Indexed(IndexParams {
                seed,
                target_bucket,
                probes: usize::MAX,
                ..IndexParams::default()
            }),
        );
        for probe_idx in [0, n / 3, n - 1] {
            let probe = db.records()[probe_idx].fingerprint.clone();
            for label in 0..classes {
                prop_assert_eq!(
                    bits(&indexed.query(&probe, label, k)),
                    bits(&db.query(&probe, label, k)),
                    "class query seed={} n={} label={}", seed, n, label
                );
            }
            prop_assert_eq!(
                bits(&indexed.query_all_classes(&probe, k)),
                bits(&db.query_all_classes(&probe, k)),
                "all-classes query seed={} n={}", seed, n
            );
        }
    }

    /// Under the default probe budget, recall@10 across seeded
    /// clustered distributions stays at or above 0.95.
    #[test]
    fn default_probes_recall_at_10_is_at_least_95_percent(
        seed in any::<u64>(),
        classes in 2usize..5,
    ) {
        let n = 2400;
        let db = clustered_db(seed, n, classes, 16, 0.3);
        let indexed = IndexedDb::with_strategy(
            db.clone(),
            QueryStrategy::Indexed(IndexParams {
                seed,
                target_bucket: 64, // small enough to force real sharding at this n
                ..IndexParams::default()
            }),
        );
        let mut hit = 0usize;
        let mut total = 0usize;
        for probe_idx in (0..n).step_by(131) {
            let probe = db.records()[probe_idx].fingerprint.clone();
            let label = db.records()[probe_idx].label;
            let want: Vec<usize> = db.query(&probe, label, 10).iter().map(|m| m.record).collect();
            let got: Vec<usize> =
                indexed.query(&probe, label, 10).iter().map(|m| m.record).collect();
            total += want.len();
            hit += want.iter().filter(|r| got.contains(r)).count();
        }
        let recall = hit as f32 / total as f32;
        prop_assert!(recall >= 0.95, "recall@10 {} below 0.95 (seed={})", recall, seed);
    }

    /// Index builds are worker-count invariant: the full structure
    /// (planes, shard membership order, bucket blocks) is identical
    /// whether codes were computed on 1 worker or 4.
    #[test]
    fn build_is_bit_identical_at_1_and_4_workers(
        seed in any::<u64>(),
        n in 100usize..800,
        classes in 1usize..4,
    ) {
        let strategy = QueryStrategy::Indexed(IndexParams {
            seed,
            target_bucket: 16,
            ..IndexParams::default()
        });
        let build = |workers: usize| {
            let mut db = clustered_db(seed, n, classes, 12, 0.5);
            db.set_parallelism(Parallelism::new(workers));
            IndexedDb::with_strategy(db, strategy)
        };
        let one = build(1);
        let four = build(4);
        prop_assert_eq!(one.index(), four.index(), "builds diverged at 1 vs 4 workers");

        // And the answers they serve agree to the bit.
        let probe = one.db().records()[n / 2].fingerprint.clone();
        prop_assert_eq!(
            bits(&one.query(&probe, 0, 10)),
            bits(&four.query(&probe, 0, 10))
        );
    }
}
