//! Property-based tests for the linkage database and fingerprints.

use caltrain_fingerprint::{Fingerprint, LinkageDb, LinkageRecord};
use proptest::prelude::*;

fn db_strategy() -> impl Strategy<Value = (LinkageDb, usize)> {
    (
        proptest::collection::vec(
            (proptest::collection::vec(-5.0f32..5.0, 6), 0usize..4, 0u32..5),
            1..40,
        ),
        0usize..4,
    )
        .prop_map(|(rows, probe_class)| {
            let mut db = LinkageDb::new();
            for (i, (emb, label, source)) in rows.into_iter().enumerate() {
                db.insert(LinkageRecord::new(
                    Fingerprint::from_embedding(&emb),
                    label,
                    source,
                    &i.to_le_bytes(),
                ));
            }
            (db, probe_class)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_results_sorted_class_pure_and_bounded(
        (db, class) in db_strategy(),
        probe in proptest::collection::vec(-5.0f32..5.0, 6),
        k in 1usize..12,
    ) {
        let probe = Fingerprint::from_embedding(&probe);
        let hits = db.query(&probe, class, k);
        prop_assert!(hits.len() <= k);
        prop_assert_eq!(hits.len(), k.min(db.class_indices(class).len()));
        for pair in hits.windows(2) {
            prop_assert!(pair[0].distance <= pair[1].distance);
        }
        for h in &hits {
            prop_assert_eq!(db.record(h.record).unwrap().label, class);
            prop_assert!(h.distance >= 0.0);
            // Normalised fingerprints live on the unit sphere: max L2
            // distance is the diameter 2.
            prop_assert!(h.distance <= 2.0 + 1e-4);
        }
    }

    #[test]
    fn class_query_is_full_scan_filtered(
        (db, class) in db_strategy(),
        probe in proptest::collection::vec(-5.0f32..5.0, 6),
    ) {
        let probe = Fingerprint::from_embedding(&probe);
        let class_hits = db.query(&probe, class, db.len());
        let full = db.query_all_classes(&probe, db.len());
        let filtered: Vec<usize> = full
            .iter()
            .filter(|m| db.record(m.record).unwrap().label == class)
            .map(|m| m.record)
            .collect();
        let got: Vec<usize> = class_hits.iter().map(|m| m.record).collect();
        prop_assert_eq!(got, filtered, "Y-pruning must not change the ranking");
    }

    #[test]
    fn hash_verification_accepts_exactly_the_original(
        bytes in proptest::collection::vec(any::<u8>(), 1..64),
        tamper_at in 0usize..64,
    ) {
        let record = LinkageRecord::new(
            Fingerprint::from_embedding(&[1.0, 0.0]),
            0,
            0,
            &bytes,
        );
        prop_assert!(record.verify_instance(&bytes));
        let mut bad = bytes.clone();
        let i = tamper_at % bad.len();
        bad[i] ^= 0x01;
        prop_assert!(!record.verify_instance(&bad));
    }

    #[test]
    fn fingerprint_distance_is_a_metric(
        a in proptest::collection::vec(-3.0f32..3.0, 5),
        b in proptest::collection::vec(-3.0f32..3.0, 5),
        c in proptest::collection::vec(-3.0f32..3.0, 5),
    ) {
        let fa = Fingerprint::from_embedding(&a);
        let fb = Fingerprint::from_embedding(&b);
        let fc = Fingerprint::from_embedding(&c);
        prop_assert!((fa.distance(&fb) - fb.distance(&fa)).abs() < 1e-5);
        prop_assert!(fa.distance(&fa) < 1e-6);
        prop_assert!(fa.distance(&fb) <= fa.distance(&fc) + fc.distance(&fb) + 1e-4);
    }

    #[test]
    fn sources_of_deduplicates((db, class) in db_strategy()) {
        let probe = Fingerprint::from_embedding(&[1.0; 6]);
        let hits = db.query(&probe, class, db.len());
        let sources = db.sources_of(&hits);
        let mut sorted = sources.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sources, sorted);
    }
}
