//! Property-based tests for the tensor substrate: algebraic laws the rest
//! of the CalTrain stack silently relies on.

use caltrain_tensor::gemm::{gemm_blocked, gemm_strict};
use caltrain_tensor::im2col::{col2im, conv_out_extent, im2col};
use caltrain_tensor::stats::{kl_divergence, softmax, top_k_indices, uniform_distribution};
use caltrain_tensor::Tensor;
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(v in small_vec(12), w in small_vec(12)) {
        let a = Tensor::from_vec(v, &[3, 4]).unwrap();
        let b = Tensor::from_vec(w, &[3, 4]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_then_add_roundtrips(v in small_vec(8), w in small_vec(8)) {
        let a = Tensor::from_vec(v, &[8]).unwrap();
        let b = Tensor::from_vec(w, &[8]).unwrap();
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scaling_scales_norm(v in small_vec(6), k in 0.1f32..4.0) {
        let a = Tensor::from_vec(v, &[6]).unwrap();
        let scaled = a.scaled(k);
        prop_assert!((scaled.l2_norm() - k * a.l2_norm()).abs() < 1e-2);
    }

    #[test]
    fn l2_distance_symmetric_and_triangle(
        v in small_vec(5), w in small_vec(5), u in small_vec(5)
    ) {
        let a = Tensor::from_vec(v, &[5]).unwrap();
        let b = Tensor::from_vec(w, &[5]).unwrap();
        let c = Tensor::from_vec(u, &[5]).unwrap();
        let ab = a.l2_distance(&b).unwrap();
        let ba = b.l2_distance(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-5);
        let ac = a.l2_distance(&c).unwrap();
        let cb = c.l2_distance(&b).unwrap();
        prop_assert!(ab <= ac + cb + 1e-4);
    }

    #[test]
    fn normalized_has_unit_norm(v in small_vec(7)) {
        let a = Tensor::from_vec(v, &[7]).unwrap();
        prop_assume!(a.l2_norm() > 1e-3);
        prop_assert!((a.l2_normalized().l2_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn blocked_gemm_matches_strict(
        m in 1usize..20, n in 1usize..20, k in 1usize..20,
        seed in 0u64..1000
    ) {
        let gen = |len: usize, s: u64| -> Vec<f32> {
            let mut state = s.wrapping_mul(0x9E3779B97F4A7C15);
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }).collect()
        };
        let a = gen(m * k, seed);
        let b = gen(k * n, seed + 1);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_strict(m, n, k, &a, &b, &mut c1);
        gemm_blocked(m, n, k, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        v in small_vec(6), w in small_vec(6), u in small_vec(6)
    ) {
        let a = Tensor::from_vec(v, &[2, 3]).unwrap();
        let b = Tensor::from_vec(w, &[3, 2]).unwrap();
        let c = Tensor::from_vec(u, &[3, 2]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_always_distribution(v in small_vec(10)) {
        let p = softmax(&v);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn kl_nonnegative(v in small_vec(8), w in small_vec(8)) {
        let p = softmax(&v);
        let q = softmax(&w);
        prop_assert!(kl_divergence(&p, &q) >= -1e-5);
    }

    #[test]
    fn kl_self_zero(v in small_vec(8)) {
        let p = softmax(&v);
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-5);
    }

    #[test]
    fn top_k_sorted_descending(v in small_vec(16), k in 1usize..16) {
        let idx = top_k_indices(&v, k);
        prop_assert_eq!(idx.len(), k.min(v.len()));
        for pair in idx.windows(2) {
            prop_assert!(v[pair[0]] >= v[pair[1]]);
        }
    }

    #[test]
    fn uniform_kl_to_softmax_bounded(v in small_vec(10)) {
        // D_KL(p || u) = ln n - H(p) <= ln n.
        let p = softmax(&v);
        let u = uniform_distribution(10);
        let d = kl_divergence(&p, &u);
        prop_assert!(d <= (10f32).ln() + 1e-4);
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 3usize..8, w in 3usize..8, size in 1usize..4, seed in 0u64..100
    ) {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // that makes convolution backprop correct.
        prop_assume!(size <= h && size <= w);
        let stride = 1usize;
        let pad = size / 2;
        let oh = conv_out_extent(h, size, stride, pad);
        let ow = conv_out_extent(w, size, stride, pad);
        let cols_len = size * size * oh * ow;

        let gen = |len: usize, s: u64| -> Vec<f32> {
            let mut state = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }).collect()
        };
        let x = gen(h * w, seed);
        let y = gen(cols_len, seed + 13);

        let mut cols = vec![0.0; cols_len];
        im2col(&x, 1, h, w, size, stride, pad, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();

        let mut img = vec![0.0; h * w];
        col2im(&y, 1, h, w, size, stride, pad, &mut img);
        let rhs: f32 = x.iter().zip(&img).map(|(a, b)| a * b).sum();

        prop_assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
    }
}
