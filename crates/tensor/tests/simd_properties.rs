//! Property tests for the SIMD backend's bitwise contract: every GEMM
//! variant must equal its strict scalar reference **to the bit** at
//! arbitrary shapes — with the remainder-lane edge cases (`n` not a
//! multiple of the 8-lane width, `n` below it, `k == 0`, odd row-tile
//! splits) drawn deliberately often. On hosts without AVX2 the `*_simd`
//! entry points fall back to the scalar kernels, so the properties hold
//! — and keep running — everywhere.

use caltrain_tensor::distance::distances_to_block_strict;
use caltrain_tensor::gemm::{
    gemm_a_bt, gemm_at_b_strict, gemm_row_tile, gemm_strict, GemmKernel,
};
use caltrain_tensor::simd::{distances_simd, gemm_a_bt_simd, gemm_at_b_simd, gemm_simd};
use proptest::prelude::*;

/// Deterministic matrix fill: the same tiny LCG the kernel unit tests
/// use, keyed by a proptest-drawn seed so shrinking stays meaningful.
fn lcg_matrix(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Column counts spanning the lane-width edge cases: `1..40` covers
/// below one AVX2 vector (`n < 8`), the 8-lane and 16-lane block
/// boundaries, and every remainder class `n % 8` / `n % 16` on the far
/// side.
fn edge_n() -> impl Strategy<Value = usize> {
    1usize..40
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simd_gemm_bitwise_equals_strict(
        m in 1usize..12, n in edge_n(), k in 0usize..24, seed in any::<u64>()
    ) {
        let a = lcg_matrix(m * k, seed);
        let b = lcg_matrix(k * n, seed ^ 0x9e37);
        let mut c1 = lcg_matrix(m * n, seed ^ 0x79b9); // non-zero initial C
        let mut c2 = c1.clone();
        gemm_strict(m, n, k, &a, &b, &mut c1);
        gemm_simd(m, n, k, &a, &b, &mut c2);
        for i in 0..m * n {
            prop_assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "{}x{}x{} elem {}", m, n, k, i);
        }
    }

    #[test]
    fn simd_at_b_bitwise_equals_strict(
        m in 1usize..12, n in edge_n(), k in 0usize..24, seed in any::<u64>()
    ) {
        let at = lcg_matrix(k * m, seed);
        let b = lcg_matrix(k * n, seed ^ 0x9e37);
        let mut c1 = lcg_matrix(m * n, seed ^ 0x79b9);
        let mut c2 = c1.clone();
        gemm_at_b_strict(m, n, k, &at, &b, &mut c1);
        gemm_at_b_simd(m, n, k, &at, &b, &mut c2);
        for i in 0..m * n {
            prop_assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "{}x{}x{} elem {}", m, n, k, i);
        }
    }

    #[test]
    fn simd_a_bt_bitwise_equals_strict(
        m in 1usize..12, n in edge_n(), k in 0usize..24, seed in any::<u64>()
    ) {
        let a = lcg_matrix(m * k, seed);
        let bt = lcg_matrix(n * k, seed ^ 0x9e37);
        let mut c1 = lcg_matrix(m * n, seed ^ 0x79b9);
        let mut c2 = c1.clone();
        gemm_a_bt(m, n, k, &a, &bt, &mut c1); // doubles as the strict kernel
        gemm_a_bt_simd(m, n, k, &a, &bt, &mut c2);
        for i in 0..m * n {
            prop_assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "{}x{}x{} elem {}", m, n, k, i);
        }
    }

    /// Odd row tiles: splitting the SIMD GEMM into arbitrary uneven
    /// row tiles (partial microkernel bands included) reproduces both
    /// the full SIMD call and the strict reference bit for bit — the
    /// shared-wide-GEMM worker contract, now on the SIMD rung.
    #[test]
    fn simd_row_tiles_bitwise_match_full(
        m in 1usize..14, n in edge_n(), k in 0usize..20,
        tile_rows in 1usize..6, seed in any::<u64>()
    ) {
        let a = lcg_matrix(m * k, seed);
        let b = lcg_matrix(k * n, seed ^ 0x9e37);

        let mut want = vec![0.0f32; m * n];
        gemm_strict(m, n, k, &a, &b, &mut want);

        let mut c = vec![0.0f32; m * n];
        let mut start = 0;
        while start < m {
            let end = (start + tile_rows).min(m);
            gemm_row_tile(
                gemm_simd as GemmKernel,
                start..end,
                n,
                k,
                &a,
                &b,
                &mut c[start * n..end * n],
            );
            start = end;
        }
        for i in 0..m * n {
            prop_assert_eq!(
                c[i].to_bits(), want[i].to_bits(),
                "tile_rows {} {}x{}x{} elem {}", tile_rows, m, n, k, i
            );
        }
    }

    /// The rerank distance sweep (`distances_simd` over a dim-major SoA
    /// block) equals the strict scalar chain to the bit at every
    /// remainder class of the 16/8/4-lane column blocking.
    #[test]
    fn simd_distances_bitwise_equal_strict(
        dim in 1usize..24, n in edge_n(), seed in any::<u64>()
    ) {
        let probe = lcg_matrix(dim, seed);
        let block = lcg_matrix(dim * n, seed ^ 0x9e37);
        let mut strict = vec![0.0f32; n];
        let mut simd = vec![0.0f32; n];
        distances_to_block_strict(dim, n, &probe, &block, &mut strict);
        distances_simd(dim, n, &probe, &block, &mut simd);
        for j in 0..n {
            prop_assert_eq!(strict[j].to_bits(), simd[j].to_bits(), "dim={} n={} j={}", dim, n, j);
        }
    }
}
