//! The GEMM **epilogue**: everything a convolution applies to the wide
//! GEMM output on its way back to sample-major layout — bias or
//! batch-norm normalisation, plus the elementwise activation — fused
//! into the scatter so the conv output buffer is written in **one**
//! pass instead of the historical bias/normalise/activate sweep chain.
//!
//! The fusion is bit-identity-safe by construction: every function here
//! is strictly per-element (no cross-element arithmetic), and the one
//! cross-element computation batch-norm needs — the per-channel batch
//! moments — is provided as an explicitly *canonical* accumulation
//! ([`accumulate_wide_moments`] / [`fused_channel_moments`] +
//! [`finalize_moments`]): a single fused sweep per channel, sample
//! ascending then spatial ascending, accumulating the sum and the sum
//! of squares side by side. Both kernel modes, the optimized scatter
//! path and the retained per-sample reference path all call into this
//! module, so they share one addition chain and one expression tree —
//! the property the CalTrain strict/native parity claim (and the
//! worker-count determinism tests) pin bitwise.
//!
//! Layout vocabulary, shared with [`crate::im2col`]:
//!
//! * **wide** — `[filters, tile_cols]` row-major, `tile_cols =
//!   span·ohw`, sample-major along the column axis (the
//!   [`crate::im2col::im2col_batch`] GEMM output);
//! * **planes** — the sample-major view `[n, filters, ohw]` flattened
//!   to `n·filters` contiguous planes of `ohw` elements; plane
//!   `p = s·filters + f`. Plane ranges are how callers fan the scatter
//!   across workers: any split is safe because nothing crosses a plane.

/// Activation functions supported by the conv epilogue (and re-exported
/// as `caltrain_nn::Activation`).
///
/// Darknet's CIFAR configurations use leaky ReLU on every convolutional
/// layer; the final 1×1 projection runs linear into the softmax. The
/// enum lives here (rather than in the nn crate) so the SIMD plane
/// sweeps in [`crate::simd`] can select the lane-blend form of each
/// branch — a closure would be opaque to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// `max(0, x)`.
    Relu,
    /// Darknet's leaky ReLU: `x > 0 ? x : 0.1x`.
    Leaky,
}

impl Activation {
    /// Applies the activation.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => {
                if x > 0.0 {
                    x
                } else {
                    0.0
                }
            }
            Activation::Leaky => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
        }
    }

    /// Derivative with respect to the pre-activation input.
    pub fn gradient(self, x: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Leaky => {
                if x > 0.0 {
                    1.0
                } else {
                    0.1
                }
            }
        }
    }
}

/// What the scatter applies, per element, between the raw GEMM value
/// and the activation.
///
/// Per-channel parameters are indexed by the filter `f` of the plane
/// being written. The two variants cover every conv configuration:
/// plain bias, and batch-norm normalisation (with batch statistics in
/// train mode or rolling statistics in eval mode — the caller chooses
/// which slices to pass).
#[derive(Debug, Clone, Copy)]
pub enum GemmEpilogue<'a> {
    /// `z = v + biases[f]` — the non-batch-norm epilogue.
    Bias {
        /// Per-filter bias.
        biases: &'a [f32],
    },
    /// `x̂ = (v − mean[f])·inv_std[f]`, `z = gamma[f]·x̂ + beta[f]` —
    /// the batch-norm epilogue. The grouping (scale x̂, then γ·x̂+β) is
    /// part of the canonical expression tree; do not refactor it.
    Normalize {
        /// Per-filter mean (batch or rolling).
        mean: &'a [f32],
        /// Per-filter `1/√(var+ε)` (batch or rolling).
        inv_std: &'a [f32],
        /// Per-filter scale γ.
        gamma: &'a [f32],
        /// Per-filter shift β.
        beta: &'a [f32],
    },
}

impl GemmEpilogue<'_> {
    /// The pre-activation value `z` for raw GEMM output `v` on filter
    /// `f` — the exact expression both the fused and the reference
    /// paths evaluate.
    #[inline]
    pub fn z(&self, f: usize, v: f32) -> f32 {
        match *self {
            GemmEpilogue::Bias { biases } => v + biases[f],
            GemmEpilogue::Normalize { mean, inv_std, gamma, beta } => {
                let xhat = (v - mean[f]) * inv_std[f];
                gamma[f] * xhat + beta[f]
            }
        }
    }

    /// Like [`GemmEpilogue::z`], also returning the normalised value x̂
    /// (meaningful for [`GemmEpilogue::Normalize`]; for
    /// [`GemmEpilogue::Bias`] the raw value is returned in its place).
    #[inline]
    pub fn xhat_z(&self, f: usize, v: f32) -> (f32, f32) {
        match *self {
            GemmEpilogue::Bias { biases } => (v, v + biases[f]),
            GemmEpilogue::Normalize { mean, inv_std, gamma, beta } => {
                let xhat = (v - mean[f]) * inv_std[f];
                (xhat, gamma[f] * xhat + beta[f])
            }
        }
    }

    /// Filter `f`'s scalar parameter slice, for the SIMD plane sweep.
    #[inline]
    pub(crate) fn plane_op(&self, f: usize) -> crate::simd::PlaneOp {
        match *self {
            GemmEpilogue::Bias { biases } => crate::simd::PlaneOp::Bias(biases[f]),
            GemmEpilogue::Normalize { mean, inv_std, gamma, beta } => crate::simd::PlaneOp::Norm {
                mean: mean[f],
                inv_std: inv_std[f],
                gamma: gamma[f],
                beta: beta[f],
            },
        }
    }
}

#[inline]
fn plane_src(wide: &[f32], tile_cols: usize, filters: usize, ohw: usize, p: usize) -> &[f32] {
    let (s, f) = (p / filters, p % filters);
    &wide[f * tile_cols + s * ohw..][..ohw]
}

/// Scatters wide rows back to sample-major planes with **no** epilogue
/// — the raw-staging pass batch-norm training uses before the batch
/// statistics exist.
///
/// `planes` indexes planes of the *tile* (`p = local_s·filters + f`);
/// `dst` is that range's contiguous chunk, `planes.len()·ohw` long.
///
/// # Panics
///
/// Panics if slice lengths disagree with the geometry.
pub fn scatter_wide_planes(
    wide: &[f32],
    tile_cols: usize,
    filters: usize,
    ohw: usize,
    planes: std::ops::Range<usize>,
    dst: &mut [f32],
) {
    assert_eq!(wide.len(), filters * tile_cols, "wide geometry");
    assert_eq!(dst.len(), planes.len() * ohw, "destination geometry");
    for (i, p) in planes.enumerate() {
        dst[i * ohw..(i + 1) * ohw]
            .copy_from_slice(plane_src(wide, tile_cols, filters, ohw, p));
    }
}

/// The fused single-pass scatter: wide rows → sample-major planes,
/// applying the epilogue and the activation per element, recording the
/// pre-activation `z` alongside.
///
/// This writes the conv output (`out`) exactly **once** per element —
/// the historical bias-scatter / normalise-sweep / activation-sweep
/// chain collapsed into one loop. Per-element arithmetic matches
/// [`GemmEpilogue::z`] followed by `act`, so it is bit-identical to the
/// separate sweeps it replaces. On SIMD hosts
/// ([`crate::simd::enabled`]) each plane runs the lane-parallel sweep —
/// bitwise identical by the no-FMA lane contract; `CALTRAIN_SIMD=0`
/// keeps the scalar loop.
///
/// # Panics
///
/// Panics if slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn scatter_wide_epilogue(
    wide: &[f32],
    tile_cols: usize,
    filters: usize,
    ohw: usize,
    planes: std::ops::Range<usize>,
    epilogue: &GemmEpilogue<'_>,
    act: Activation,
    out: &mut [f32],
    pre_act: &mut [f32],
) {
    assert_eq!(wide.len(), filters * tile_cols, "wide geometry");
    assert_eq!(out.len(), planes.len() * ohw, "output geometry");
    assert_eq!(pre_act.len(), out.len(), "pre-activation geometry");
    let simd = crate::simd::enabled();
    for (i, p) in planes.enumerate() {
        let f = p % filters;
        let src = plane_src(wide, tile_cols, filters, ohw, p);
        let dst = &mut out[i * ohw..(i + 1) * ohw];
        let pre = &mut pre_act[i * ohw..(i + 1) * ohw];
        if simd {
            crate::simd::plane_scatter(src, epilogue.plane_op(f), act, dst, pre);
            continue;
        }
        for ((d, z_slot), &v) in dst.iter_mut().zip(pre.iter_mut()).zip(src) {
            let z = epilogue.z(f, v);
            *z_slot = z;
            *d = act.apply(z);
        }
    }
}

/// The deferred epilogue pass batch-norm training runs once the batch
/// moments exist: reads the staged raw values (`raw_to_z`, sample-major
/// planes), writes x̂ into `xhat`, overwrites the staging slot with the
/// pre-activation `z` in place, and writes the activated output — one
/// pass over each buffer, the conv output written exactly once.
///
/// # Panics
///
/// Panics if slice lengths disagree or the epilogue is not
/// [`GemmEpilogue::Normalize`] (batch-norm is the only layer with a
/// deferred pass).
#[allow(clippy::too_many_arguments)]
pub fn apply_epilogue_planes(
    planes: std::ops::Range<usize>,
    filters: usize,
    ohw: usize,
    epilogue: &GemmEpilogue<'_>,
    act: Activation,
    raw_to_z: &mut [f32],
    xhat: &mut [f32],
    out: &mut [f32],
) {
    let GemmEpilogue::Normalize { mean, inv_std, gamma, beta } = *epilogue else {
        panic!("deferred epilogue is batch-norm only");
    };
    assert_eq!(raw_to_z.len(), planes.len() * ohw, "staging geometry");
    assert_eq!(xhat.len(), raw_to_z.len(), "xhat geometry");
    assert_eq!(out.len(), raw_to_z.len(), "output geometry");
    let simd = crate::simd::enabled();
    for (i, p) in planes.enumerate() {
        let f = p % filters;
        let base = i * ohw;
        if simd {
            crate::simd::plane_apply_norm(
                mean[f],
                inv_std[f],
                gamma[f],
                beta[f],
                act,
                &mut raw_to_z[base..base + ohw],
                &mut xhat[base..base + ohw],
                &mut out[base..base + ohw],
            );
            continue;
        }
        for j in base..base + ohw {
            let xh = (raw_to_z[j] - mean[f]) * inv_std[f];
            let z = gamma[f] * xh + beta[f];
            xhat[j] = xh;
            raw_to_z[j] = z;
            out[j] = act.apply(z);
        }
    }
}

/// Floats per filter in a moment accumulator: the shift `K`, `Σ(v−K)`
/// and `Σ(v−K)²`.
pub const MOMENT_ACC_STRIDE: usize = 3;

/// Arms a moment accumulator for a fresh filter sweep: sums to zero and
/// every shift slot `K` to NaN.
///
/// The NaN is the latch [`accumulate_wide_moments`] `debug_assert`s
/// against: the first tile of a sweep (and only the first) must pass
/// `first_tile = true`, which overwrites the NaN with the row's shift.
/// A sweep that forgets the latch — or latches twice — trips the assert
/// in debug builds instead of silently producing wrong variance, the
/// PR 5 gotcha that used to be enforced only by convention.
pub fn reset_wide_moments(acc: &mut [f32]) {
    assert_eq!(acc.len() % MOMENT_ACC_STRIDE, 0, "accumulator geometry");
    for filter_acc in acc.chunks_exact_mut(MOMENT_ACC_STRIDE) {
        filter_acc[0] = f32::NAN;
        filter_acc[1] = 0.0;
        filter_acc[2] = 0.0;
    }
}

/// Accumulates the canonical batch-norm moment partials from a block of
/// **wide** rows in one fused sweep: for each row `r` (one filter),
/// `acc[3r+1] += Σ (v−K)` and `acc[3r+2] += Σ (v−K)²`, sweeping the row
/// left to right — i.e. sample ascending, then spatial ascending, the
/// canonical order. The shift `K` (`acc[3r]`) is captured from the
/// row's first element when `first_tile` is set; shifting by a value
/// near the mean is what keeps the single-pass variance free of the
/// catastrophic cancellation a plain `Σv²/m − mean²` suffers.
///
/// Call once per sample tile, tiles in ascending-sample order
/// (`first_tile` on the first), and the per-filter accumulation chain
/// is **identical** to the single full sweep [`fused_channel_moments`]
/// performs — which is what lets the scratch-capped tiled GEMM path and
/// the reference path agree bitwise.
///
/// # Panics
///
/// Panics if slice lengths disagree (`acc` holds
/// [`MOMENT_ACC_STRIDE`] floats per row) or a row is empty.
pub fn accumulate_wide_moments(
    wide_rows: &[f32],
    cols: usize,
    acc: &mut [f32],
    first_tile: bool,
) {
    assert!(cols > 0, "empty wide rows have no moments");
    assert_eq!(
        acc.len() * cols,
        wide_rows.len() * MOMENT_ACC_STRIDE,
        "accumulator geometry"
    );
    // Latch pass first (cheap, per row), then the row sweeps — which on
    // SIMD hosts run eight filter rows in lockstep with the per-row
    // chain untouched, so the accumulation stays bitwise canonical.
    for (r, row) in wide_rows.chunks_exact(cols).enumerate() {
        let base = MOMENT_ACC_STRIDE * r;
        debug_assert!(
            first_tile == acc[base].is_nan(),
            "accumulate_wide_moments: first_tile must latch exactly once per \
             filter sweep (arm the accumulator with reset_wide_moments, pass \
             first_tile = true for the first tile only)"
        );
        if first_tile {
            acc[base] = row[0];
        }
    }
    if crate::simd::enabled() {
        crate::simd::moment_rows(wide_rows, cols, acc);
        return;
    }
    for (r, row) in wide_rows.chunks_exact(cols).enumerate() {
        let base = MOMENT_ACC_STRIDE * r;
        let k = acc[base];
        let mut s1 = acc[base + 1];
        let mut s2 = acc[base + 2];
        for &v in row {
            let d = v - k;
            s1 += d;
            s2 += d * d;
        }
        acc[base + 1] = s1;
        acc[base + 2] = s2;
    }
}

/// Converts accumulated shifted partials into the canonical mean and
/// variance: `mean = K + Σ(v−K)/m`,
/// `var = max(Σ(v−K)²/m − (Σ(v−K)/m)², 0)`.
///
/// The `max(…, 0)` clamps the tiny negative values the fused formula
/// can produce for near-constant channels; it is part of the canonical
/// expression and applied identically on every path.
///
/// # Panics
///
/// Panics if slice lengths disagree.
pub fn finalize_moments(acc: &[f32], m: f32, mean: &mut [f32], var: &mut [f32]) {
    assert_eq!(acc.len(), mean.len() * MOMENT_ACC_STRIDE, "accumulator geometry");
    assert_eq!(mean.len(), var.len(), "moment geometry");
    for f in 0..mean.len() {
        let base = MOMENT_ACC_STRIDE * f;
        let shift_mean = acc[base + 1] / m;
        mean[f] = acc[base] + shift_mean;
        var[f] = (acc[base + 2] / m - shift_mean * shift_mean).max(0.0);
    }
}

/// The canonical batch moments computed in one fused sweep over a
/// **sample-major** buffer `[n, filters, ohw]` — the reference-path
/// counterpart of [`accumulate_wide_moments`] + [`finalize_moments`],
/// accumulating per filter in the identical order (sample ascending,
/// spatial ascending, shift = the filter's first raw value) and
/// finishing through the identical [`finalize_moments`] expressions.
///
/// # Panics
///
/// Panics if slice lengths disagree with the geometry or the batch is
/// empty.
pub fn fused_channel_moments(
    raw: &[f32],
    n: usize,
    filters: usize,
    ohw: usize,
    mean: &mut [f32],
    var: &mut [f32],
) {
    assert_eq!(raw.len(), n * filters * ohw, "raw geometry");
    assert_eq!(mean.len(), filters, "mean geometry");
    assert_eq!(var.len(), filters, "var geometry");
    assert!(n * ohw > 0, "empty batch has no moments");
    let m = (n * ohw) as f32;
    for f in 0..filters {
        let k = raw[f * ohw];
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        for s in 0..n {
            let base = (s * filters + f) * ohw;
            for &v in &raw[base..base + ohw] {
                let d = v - k;
                s1 += d;
                s2 += d * d;
            }
        }
        let acc = [k, s1, s2];
        finalize_moments(&acc, m, &mut mean[f..f + 1], &mut var[f..f + 1]);
    }
}

/// The fused **backward** epilogue, pass one: activation chain rule
/// (and, for eval-mode batch-norm, the constant per-filter scale) in a
/// single sweep over a plane range.
///
/// Writes `out[i] = delta[i] · act.gradient(pre_act[i])`, then — when
/// `scale` is provided — multiplies by `scale[f]` as a second step on
/// the local value. The two-step form is deliberate: it reproduces the
/// historical "derivative sweep, then scale sweep" expression chain
/// bit-for-bit while touching each element once.
///
/// `planes` are global plane indices (`p = s·filters + f`, only `f`
/// matters here); `delta`, `pre_act` and `out` are that range's
/// contiguous chunks. `out` may alias a scratch buffer the caller later
/// reduces from; it is overwritten, not accumulated.
///
/// # Panics
///
/// Panics if slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn backward_delta_planes(
    planes: std::ops::Range<usize>,
    filters: usize,
    ohw: usize,
    delta: &[f32],
    pre_act: &[f32],
    act: Activation,
    scale: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(delta.len(), planes.len() * ohw, "delta geometry");
    assert_eq!(pre_act.len(), delta.len(), "pre-activation geometry");
    assert_eq!(out.len(), delta.len(), "output geometry");
    if let Some(scale) = scale {
        assert_eq!(scale.len(), filters, "scale geometry");
    }
    let simd = crate::simd::enabled();
    for (i, p) in planes.enumerate() {
        let f = p % filters;
        let base = i * ohw;
        let k = scale.map(|s| s[f]);
        if simd {
            crate::simd::plane_backward_delta(
                &delta[base..base + ohw],
                &pre_act[base..base + ohw],
                act,
                k,
                &mut out[base..base + ohw],
            );
            continue;
        }
        for j in base..base + ohw {
            let mut d = delta[j] * act.gradient(pre_act[j]);
            if let Some(k) = k {
                d *= k;
            }
            out[j] = d;
        }
    }
}

/// One sample's leaf of the batch-norm backward reduction: per filter,
/// `out[2f] = Σ dy` and `out[2f+1] = Σ dy·x̂` over the sample's plane
/// (spatial ascending, both sums advanced side by side — the canonical
/// order). Overwrites `out`; the caller reduces leaves along the
/// canonical tree (`crate::tree`) to get batch totals that are
/// bit-identical at any worker count.
///
/// # Panics
///
/// Panics if slice lengths disagree with the geometry.
pub fn bn_backward_sums_sample(
    filters: usize,
    ohw: usize,
    delta_sample: &[f32],
    xhat_sample: &[f32],
    out: &mut [f32],
) {
    assert_eq!(delta_sample.len(), filters * ohw, "delta geometry");
    assert_eq!(xhat_sample.len(), delta_sample.len(), "xhat geometry");
    assert_eq!(out.len(), 2 * filters, "sums geometry");
    for f in 0..filters {
        let mut sum_dy = 0.0f32;
        let mut sum_dy_xhat = 0.0f32;
        let base = f * ohw;
        for j in base..base + ohw {
            sum_dy += delta_sample[j];
            sum_dy_xhat += delta_sample[j] * xhat_sample[j];
        }
        out[2 * f] = sum_dy;
        out[2 * f + 1] = sum_dy_xhat;
    }
}

/// The fused **backward** epilogue, pass two: the train-mode batch-norm
/// delta transform over a plane range, in place.
///
/// `delta[i] = k · (m·delta[i] − Σdy − x̂[i]·Σdy·x̂)` with
/// `k = γ[f]·inv_std[f]/m` — the exact canonical expression the
/// monolithic backward sweep used, with the batch totals (`sums`,
/// `[Σdy, Σdy·x̂]` interleaved per filter as
/// [`bn_backward_sums_sample`] lays them out) supplied by the caller's
/// tree reduction. `delta` and `xhat` are the plane range's contiguous
/// chunks; `sums`, `gamma` and `inv_std` are full per-filter tables.
///
/// # Panics
///
/// Panics if slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn bn_backward_transform_planes(
    planes: std::ops::Range<usize>,
    filters: usize,
    ohw: usize,
    m: f32,
    gamma: &[f32],
    inv_std: &[f32],
    sums: &[f32],
    xhat: &[f32],
    delta: &mut [f32],
) {
    assert_eq!(delta.len(), planes.len() * ohw, "delta geometry");
    assert_eq!(xhat.len(), delta.len(), "xhat geometry");
    assert_eq!(sums.len(), 2 * filters, "sums geometry");
    assert_eq!(gamma.len(), filters, "gamma geometry");
    assert_eq!(inv_std.len(), filters, "inv_std geometry");
    let simd = crate::simd::enabled();
    for (i, p) in planes.enumerate() {
        let f = p % filters;
        let k = gamma[f] * inv_std[f] / m;
        let (sum_dy, sum_dy_xhat) = (sums[2 * f], sums[2 * f + 1]);
        let base = i * ohw;
        if simd {
            crate::simd::plane_bn_backward(
                k,
                m,
                sum_dy,
                sum_dy_xhat,
                &xhat[base..base + ohw],
                &mut delta[base..base + ohw],
            );
            continue;
        }
        for j in base..base + ohw {
            delta[j] = k * (m * delta[j] - sum_dy - xhat[j] * sum_dy_xhat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    const LEAKY: fn(f32) -> f32 = |v| if v > 0.0 { v } else { 0.1 * v };

    #[test]
    fn raw_scatter_is_exact_relayout() {
        let (n, filters, ohw) = (3usize, 4usize, 5usize);
        let tile_cols = n * ohw;
        let wide = arb(filters * tile_cols, 1);
        let mut dst = vec![0.0; n * filters * ohw];
        scatter_wide_planes(&wide, tile_cols, filters, ohw, 0..n * filters, &mut dst);
        for s in 0..n {
            for f in 0..filters {
                for o in 0..ohw {
                    assert_eq!(
                        dst[(s * filters + f) * ohw + o].to_bits(),
                        wide[f * tile_cols + s * ohw + o].to_bits(),
                    );
                }
            }
        }
    }

    #[test]
    fn fused_scatter_matches_separate_sweeps_bitwise() {
        // The whole point: one fused pass == scatter, then bias sweep,
        // then activation sweep, to the bit.
        let (n, filters, ohw) = (2usize, 3usize, 7usize);
        let tile_cols = n * ohw;
        let wide = arb(filters * tile_cols, 2);
        let biases = arb(filters, 3);

        // Reference: the historical three separate passes.
        let mut want = vec![0.0; n * filters * ohw];
        scatter_wide_planes(&wide, tile_cols, filters, ohw, 0..n * filters, &mut want);
        let mut want_pre = want.clone();
        for p in 0..n * filters {
            let b = biases[p % filters];
            for v in &mut want_pre[p * ohw..(p + 1) * ohw] {
                *v += b;
            }
        }
        let want_out: Vec<f32> = want_pre.iter().map(|&z| LEAKY(z)).collect();

        let mut out = vec![0.0; want.len()];
        let mut pre = vec![0.0; want.len()];
        scatter_wide_epilogue(
            &wide,
            tile_cols,
            filters,
            ohw,
            0..n * filters,
            &GemmEpilogue::Bias { biases: &biases },
            Activation::Leaky,
            &mut out,
            &mut pre,
        );
        for i in 0..out.len() {
            assert_eq!(pre[i].to_bits(), want_pre[i].to_bits(), "pre-activation at {i}");
            assert_eq!(out[i].to_bits(), want_out[i].to_bits(), "output at {i}");
        }
    }

    #[test]
    fn plane_splits_never_change_bits() {
        // Scatter fan-out safety: any plane partition produces the bits
        // of the single full call.
        let (n, filters, ohw) = (3usize, 4usize, 6usize);
        let tile_cols = n * ohw;
        let wide = arb(filters * tile_cols, 4);
        let biases = arb(filters, 5);
        let ep = GemmEpilogue::Bias { biases: &biases };

        let mut full_out = vec![0.0; n * filters * ohw];
        let mut full_pre = full_out.clone();
        scatter_wide_epilogue(
            &wide, tile_cols, filters, ohw, 0..n * filters, &ep, Activation::Leaky,
            &mut full_out, &mut full_pre,
        );

        for split in 1..=5usize {
            let mut out = vec![0.0; full_out.len()];
            let mut pre = out.clone();
            let planes = n * filters;
            let per = planes.div_ceil(split);
            let mut start = 0;
            while start < planes {
                let end = (start + per).min(planes);
                scatter_wide_epilogue(
                    &wide, tile_cols, filters, ohw, start..end, &ep, Activation::Leaky,
                    &mut out[start * ohw..end * ohw],
                    &mut pre[start * ohw..end * ohw],
                );
                start = end;
            }
            assert!(
                out.iter().zip(&full_out).all(|(a, b)| a.to_bits() == b.to_bits()),
                "split {split}"
            );
        }
    }

    #[test]
    fn tiled_moments_match_fused_sweep_bitwise() {
        // Tile-by-tile accumulation over wide rows must reproduce the
        // one-sweep sample-major moments exactly: same chain per filter.
        let (n, filters, ohw) = (7usize, 3usize, 4usize);
        let raw_planes = arb(n * filters * ohw, 6);

        let mut want_mean = vec![0.0; filters];
        let mut want_var = vec![0.0; filters];
        fused_channel_moments(&raw_planes, n, filters, ohw, &mut want_mean, &mut want_var);

        // Re-express the same data as wide tiles of 3/3/1 samples and
        // accumulate.
        let mut acc = vec![0.0; MOMENT_ACC_STRIDE * filters];
        reset_wide_moments(&mut acc);
        let mut s0 = 0;
        for span in [3usize, 3, 1] {
            let tile_cols = span * ohw;
            let mut wide = vec![0.0; filters * tile_cols];
            for f in 0..filters {
                for ls in 0..span {
                    let s = s0 + ls;
                    wide[f * tile_cols + ls * ohw..][..ohw]
                        .copy_from_slice(&raw_planes[(s * filters + f) * ohw..][..ohw]);
                }
            }
            accumulate_wide_moments(&wide, tile_cols, &mut acc, s0 == 0);
            s0 += span;
        }
        let mut mean = vec![0.0; filters];
        let mut var = vec![0.0; filters];
        finalize_moments(&acc, (n * ohw) as f32, &mut mean, &mut var);
        for f in 0..filters {
            assert_eq!(mean[f].to_bits(), want_mean[f].to_bits(), "mean {f}");
            assert_eq!(var[f].to_bits(), want_var[f].to_bits(), "var {f}");
        }
    }

    #[test]
    fn moments_are_sane_and_var_clamps() {
        let filters = 2;
        // Channel 0 constant, channel 1 spread.
        let raw = vec![2.0, 2.0, 2.0, -1.0, 0.0, 1.0];
        let (n, ohw) = (1, 3);
        let mut mean = vec![0.0; filters];
        let mut var = vec![0.0; filters];
        fused_channel_moments(&raw, n, filters, ohw, &mut mean, &mut var);
        assert_eq!(mean[0], 2.0);
        assert!(var[0] >= 0.0, "clamped, not tiny-negative");
        assert!((mean[1] - 0.0).abs() < 1e-6);
        assert!((var[1] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn reset_arms_the_latch() {
        let filters = 3;
        let mut acc = vec![7.0; MOMENT_ACC_STRIDE * filters];
        reset_wide_moments(&mut acc);
        for f in 0..filters {
            assert!(acc[MOMENT_ACC_STRIDE * f].is_nan(), "shift slot armed");
            assert_eq!(acc[MOMENT_ACC_STRIDE * f + 1], 0.0);
            assert_eq!(acc[MOMENT_ACC_STRIDE * f + 2], 0.0);
        }
        // A correctly-latched sweep runs clean and clears the arming.
        let wide = arb(filters * 4, 20);
        accumulate_wide_moments(&wide, 4, &mut acc, true);
        accumulate_wide_moments(&wide, 4, &mut acc, false);
        assert!(acc.iter().all(|v| v.is_finite()));
    }

    /// The PR 5 gotcha, now machine-enforced: latching `first_tile`
    /// twice in one sweep trips the debug assert.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "first_tile must latch exactly once")]
    fn double_first_tile_latch_is_caught() {
        let filters = 2;
        let mut acc = vec![0.0; MOMENT_ACC_STRIDE * filters];
        reset_wide_moments(&mut acc);
        let wide = arb(filters * 4, 21);
        accumulate_wide_moments(&wide, 4, &mut acc, true);
        accumulate_wide_moments(&wide, 4, &mut acc, true); // second latch: boom
    }

    /// ... and so does forgetting to latch on the first tile.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "first_tile must latch exactly once")]
    fn missing_first_tile_latch_is_caught() {
        let filters = 2;
        let mut acc = vec![0.0; MOMENT_ACC_STRIDE * filters];
        reset_wide_moments(&mut acc);
        let wide = arb(filters * 4, 22);
        accumulate_wide_moments(&wide, 4, &mut acc, false); // never latched: boom
    }

    #[test]
    fn backward_delta_matches_separate_sweeps_bitwise() {
        // Fused derivative(+scale) pass == the historical two sweeps.
        let (n, filters, ohw) = (3usize, 4usize, 5usize);
        let len = n * filters * ohw;
        let delta = arb(len, 13);
        let pre = arb(len, 14);
        let scale: Vec<f32> = arb(filters, 15).iter().map(|v| v + 2.0).collect();
        // Leaky's gradient, written long-hand for the reference sweeps.
        let grad = |z: f32| if z > 0.0 { 1.0 } else { 0.1 };

        // Reference: derivative sweep, then scale sweep.
        let mut want: Vec<f32> =
            delta.iter().zip(&pre).map(|(&d, &z)| d * grad(z)).collect();
        for p in 0..n * filters {
            let k = scale[p % filters];
            for v in &mut want[p * ohw..(p + 1) * ohw] {
                *v *= k;
            }
        }

        let mut out = vec![0.0; len];
        backward_delta_planes(
            0..n * filters, filters, ohw, &delta, &pre, Activation::Leaky, Some(&scale), &mut out,
        );
        assert!(out.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits()));

        // And chunked by plane range, without the scale.
        let want_noscale: Vec<f32> =
            delta.iter().zip(&pre).map(|(&d, &z)| d * grad(z)).collect();
        let mut chunked = vec![0.0; len];
        for p in 0..n * filters {
            backward_delta_planes(
                p..p + 1, filters, ohw,
                &delta[p * ohw..(p + 1) * ohw],
                &pre[p * ohw..(p + 1) * ohw],
                Activation::Leaky, None,
                &mut chunked[p * ohw..(p + 1) * ohw],
            );
        }
        assert!(chunked.iter().zip(&want_noscale).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn bn_backward_pieces_match_monolithic_sweep() {
        // Per-sample sums reduced along the canonical tree + the
        // plane-range transform must reproduce the historical
        // one-function batch-norm backward exactly (up to the documented
        // tree-vs-fold order change in the *sums*; here we feed the
        // transform the same sums both ways, so bits must match).
        let (n, filters, ohw) = (4usize, 3usize, 6usize);
        let len = n * filters * ohw;
        let delta0 = arb(len, 16);
        let xhat = arb(len, 17);
        let gamma = arb(filters, 18);
        let var: Vec<f32> = arb(filters, 19).iter().map(|v| v.abs() + 0.2).collect();
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + 1e-5).sqrt()).collect();
        let m = (n * ohw) as f32;

        // Canonical-tree sums over per-sample leaves.
        let mut levels = vec![0.0; crate::tree::tree_levels(n) * 2 * filters];
        let mut sums = vec![0.0; 2 * filters];
        crate::tree::reduce_tree(
            0..n,
            2 * filters,
            &mut levels,
            &mut |s, out| {
                let base = s * filters * ohw;
                bn_backward_sums_sample(
                    filters, ohw,
                    &delta0[base..base + filters * ohw],
                    &xhat[base..base + filters * ohw],
                    out,
                );
            },
            &mut sums,
        );

        // Reference transform from the same sums, written long-hand.
        let mut want = delta0.clone();
        for f in 0..filters {
            let k = gamma[f] * inv_std[f] / m;
            let (sum_dy, sum_dy_xhat) = (sums[2 * f], sums[2 * f + 1]);
            for s in 0..n {
                let base = (s * filters + f) * ohw;
                for i in base..base + ohw {
                    want[i] = k * (m * want[i] - sum_dy - xhat[i] * sum_dy_xhat);
                }
            }
        }

        // Fused transform, chunked into uneven plane ranges.
        let mut got = delta0.clone();
        let planes = n * filters;
        for (start, end) in [(0usize, 5usize), (5, 6), (6, planes)] {
            bn_backward_transform_planes(
                start..end, filters, ohw, m, &gamma, &inv_std, &sums,
                &xhat[start * ohw..end * ohw],
                &mut got[start * ohw..end * ohw],
            );
        }
        assert!(got.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits()));

        // Leaf sanity: a single sample's leaf equals the naive sums.
        let mut leaf = vec![0.0; 2 * filters];
        bn_backward_sums_sample(
            filters, ohw,
            &delta0[..filters * ohw],
            &xhat[..filters * ohw],
            &mut leaf,
        );
        for f in 0..filters {
            let naive_dy: f32 = delta0[f * ohw..(f + 1) * ohw].iter().sum();
            assert_eq!(leaf[2 * f].to_bits(), naive_dy.to_bits());
        }
    }

    #[test]
    fn deferred_pass_matches_inline_normalize() {
        // apply_epilogue_planes (staged raw → x̂/z/out) must equal the
        // inline scatter_wide_epilogue on the same values.
        let (n, filters, ohw) = (2usize, 2usize, 5usize);
        let tile_cols = n * ohw;
        let wide = arb(filters * tile_cols, 8);
        let mean = arb(filters, 9);
        let var: Vec<f32> = arb(filters, 10).iter().map(|v| v.abs() + 0.3).collect();
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + 1e-5).sqrt()).collect();
        let gamma = arb(filters, 11);
        let beta = arb(filters, 12);
        let ep = GemmEpilogue::Normalize {
            mean: &mean,
            inv_std: &inv_std,
            gamma: &gamma,
            beta: &beta,
        };

        let planes = n * filters;
        let mut inline_out = vec![0.0; planes * ohw];
        let mut inline_pre = inline_out.clone();
        scatter_wide_epilogue(
            &wide, tile_cols, filters, ohw, 0..planes, &ep, Activation::Leaky,
            &mut inline_out, &mut inline_pre,
        );

        let mut staged = vec![0.0; planes * ohw];
        scatter_wide_planes(&wide, tile_cols, filters, ohw, 0..planes, &mut staged);
        let mut xhat = vec![0.0; staged.len()];
        let mut out = vec![0.0; staged.len()];
        apply_epilogue_planes(
            0..planes, filters, ohw, &ep, Activation::Leaky, &mut staged, &mut xhat, &mut out,
        );
        for i in 0..out.len() {
            assert_eq!(out[i].to_bits(), inline_out[i].to_bits(), "out at {i}");
            assert_eq!(staged[i].to_bits(), inline_pre[i].to_bits(), "z at {i}");
        }
    }
}
